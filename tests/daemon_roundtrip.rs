//! The daemon contract: a client's response stream over the socket is
//! **byte-identical** to `pmevo-cli predict` run offline over the same
//! input lines — regardless of how many other clients are being served
//! concurrently, how the coalescer windows the traffic, or whether a
//! hot reload lands mid-stream on another connection.

use proptest::prelude::*;
use pmevo::machine::platforms;
use pmevo::serve::{store_from_specs, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

/// Writes the TINY ground-truth mapping as an artifact and returns its
/// path — the same file format `pmevo-cli infer --out` produces.
fn tiny_artifact(file: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pmevo_daemon_roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(file);
    std::fs::write(&path, platforms::tiny().ground_truth().to_json_pretty())
        .expect("write artifact");
    path
}

fn start_daemon() -> (Server, SocketAddr, PathBuf) {
    let artifact = tiny_artifact("tiny.json");
    let store = store_from_specs(&[format!("TINY={}", artifact.display())], None)
        .expect("ground-truth artifact loads");
    let config = ServeConfig {
        workers: 2,
        cache_capacity: 4096,
        max_batch: 16,
        max_delay: Duration::from_millis(1),
        max_inflight: 64,
    };
    let server = Server::new(store, config).expect("non-empty store");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    server.listen_tcp(listener);
    (server, addr, artifact)
}

/// One client session: send every line, half-close, read to EOF.
fn via_daemon(addr: SocketAddr, input: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(input.as_bytes()).expect("send");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => response.push_str(&line),
            Err(e) => panic!("daemon read failed: {e}"),
        }
    }
    response
}

/// The offline reference: the same lines through `pmevo-cli predict`.
fn via_offline(artifact: &Path, input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pmevo-cli"))
        .args(["predict", "--mapping", &format!("TINY={}", artifact.display())])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pmevo-cli predict");
    child.stdin.take().expect("stdin").write_all(input.as_bytes()).expect("feed stdin");
    let out = child.wait_with_output().expect("pmevo-cli predict runs");
    assert!(out.status.success(), "offline predict must succeed");
    String::from_utf8(out.stdout).expect("utf-8 records")
}

/// A random input line: valid sequences (optionally `TINY:`-prefixed,
/// with repeat counts), junk that parses to an error record, and blank
/// or comment lines that produce no record at all.
fn line_strategy() -> impl Strategy<Value = String> {
    let forms: Vec<String> =
        platforms::tiny().isa().forms().iter().map(|f| f.name.clone()).collect();
    let form = {
        let forms = forms.clone();
        (0..forms.len()).prop_map(move |i| forms[i].clone())
    };
    let seq = {
        let forms = forms.clone();
        ((0..forms.len()), 1u32..4).prop_map(move |(i, n)| format!("{} x{n}", forms[i]))
    };
    let multi = {
        let forms = forms.clone();
        ((0..forms.len()), (0..forms.len()), 1u32..3)
            .prop_map(move |(a, b, n)| format!("{}; {}:{n}", forms[a], forms[b]))
    };
    let bad_count = {
        let forms = forms.clone();
        (0..forms.len()).prop_map(move |i| format!("{} x0", forms[i]))
    };
    prop_oneof![
        seq,
        multi,
        form.prop_map(|f| format!("TINY: {f}")),
        Just("definitely_not_an_instruction".to_string()),
        bad_count,
        Just(String::new()),
        Just("# just a comment".to_string()),
    ]
}

proptest! {
    // Each case stands up a daemon and spawns one offline CLI process
    // per client, so the case budget stays tiny; coverage comes from
    // the random interleavings inside each case.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// N concurrent clients with random line mixes: every client's
    /// socket response stream equals its own offline run, byte for
    /// byte. This is the whole serving contract — coalescing windows,
    /// scheduling and batching may differ run to run, response bytes
    /// may not.
    #[test]
    fn concurrent_clients_match_offline_byte_for_byte(
        scripts in proptest::collection::vec(
            proptest::collection::vec(line_strategy(), 1..24),
            2..4,
        )
    ) {
        let (server, addr, artifact) = start_daemon();
        let clients: Vec<_> = scripts
            .iter()
            .map(|lines| {
                let input = lines.iter().map(|l| format!("{l}\n")).collect::<String>();
                std::thread::spawn(move || via_daemon(addr, &input))
            })
            .collect();
        let served: Vec<String> =
            clients.into_iter().map(|h| h.join().expect("client thread")).collect();
        for (lines, served) in scripts.iter().zip(served) {
            let input = lines.iter().map(|l| format!("{l}\n")).collect::<String>();
            let offline = via_offline(&artifact, &input);
            prop_assert_eq!(
                &offline, &served,
                "daemon responses must be byte-identical to offline predict"
            );
        }
        server.stop();
        server.join();
    }
}

/// `!stats` reports the hit/miss split *per window* (since the previous
/// `!stats`): a first wave of distinct sequences is all misses, the
/// identical second wave is answered entirely from the cache. The verb
/// is a barrier in the coalescer, so every prediction of a wave is
/// counted before its stats record is built.
#[test]
fn stats_windows_split_hits_and_misses() {
    let (server, addr, _artifact) = start_daemon();
    let lines: String = (1..=5).map(|n| format!("add_r64_r64_r64 x{n}\n")).collect();
    let first = via_daemon(addr, &format!("{lines}!stats\n"));
    let stats1 = first.lines().last().expect("stats record");
    assert!(
        stats1.contains("\"window\":{\"queries\":5,\"cache_hits\":0,\"misses\":5,"),
        "first window must be all misses: {stats1}"
    );
    let second = via_daemon(addr, &format!("{lines}!stats\n"));
    let stats2 = second.lines().last().expect("stats record");
    assert!(
        stats2.contains("\"window\":{\"queries\":5,\"cache_hits\":5,\"misses\":0,"),
        "second window must be all cache hits: {stats2}"
    );
    for stats in [stats1, stats2] {
        assert!(stats.contains("\"miss_solve_share\":"), "window solve share: {stats}");
        assert!(stats.contains("\"miss_solve_ms\":"), "cumulative solve time: {stats}");
    }
    server.stop();
    server.join();
}

/// `!mappings` lists every loaded `name@version` with its cumulative
/// query count — and, being a coalescer barrier like `!stats`, counts
/// every prediction of the preceding lines before answering.
#[test]
fn mappings_verb_lists_versions_and_query_counts() {
    let (server, addr, artifact) = start_daemon();

    let empty = via_daemon(addr, "!mappings\n");
    let record = empty.trim_end();
    assert!(
        record.starts_with("{\"line\":1,\"mappings\":[{\"mapping\":\"TINY@1\",\"queries\":0,")
            && record.contains("\"resident\":true,\"bytes\":"),
        "fresh daemon: one mapping, zero queries, resident: {record}"
    );

    let lines: String = (1..=7).map(|n| format!("add_r64_r64_r64 x{n}\n")).collect();
    let after = via_daemon(addr, &format!("{lines}!mappings\n"));
    let record = after.lines().last().expect("mappings record");
    assert!(
        record.starts_with("{\"line\":8,\"mappings\":[{\"mapping\":\"TINY@1\",\"queries\":7,"),
        "the verb is a barrier: all 7 queries are counted before it answers: {record}"
    );

    // After a hot reload both versions are listed; only the new one
    // takes subsequent (unprefixed) traffic.
    let v2 = tiny_artifact("tiny_mappings_v2.json");
    let reload = via_daemon(
        addr,
        &format!("!reload TINY={}\nadd_r64_r64_r64 x2\n!mappings\n", v2.display()),
    );
    let record = reload.lines().last().expect("mappings record");
    assert!(
        record.starts_with("{\"line\":3,\"mappings\":[{\"mapping\":\"TINY@1\",\"queries\":7,")
            && record.contains("{\"mapping\":\"TINY@2\",\"queries\":1,"),
        "both versions listed, traffic attributed per version: {record}"
    );

    server.stop();
    server.join();
    drop(artifact);
}

/// A hot reload on one connection must not disturb another client's
/// in-flight stream: the bystander keeps getting records for every
/// line, all referencing a valid mapping version, in input order.
#[test]
fn reload_mid_stream_leaves_other_clients_consistent() {
    let (server, addr, _artifact) = start_daemon();
    let v2 = tiny_artifact("tiny_v2.json");

    let streamer = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut responses = Vec::new();
        for i in 0..200 {
            writeln!(stream, "add_r64_r64_r64 x{}", i % 7 + 1).expect("send");
            if i == 100 {
                // Give the reloader a window to land mid-stream.
                std::thread::sleep(Duration::from_millis(5));
            }
            let mut line = String::new();
            reader.read_line(&mut line).expect("response");
            responses.push(line);
        }
        responses
    });

    std::thread::sleep(Duration::from_millis(2));
    let reload_response =
        via_daemon(addr, &format!("!reload TINY={}\n", v2.display()));
    assert!(
        reload_response.contains("\"reloaded\":\"TINY@2\""),
        "reload must answer with the new version: {reload_response}"
    );

    let responses = streamer.join().expect("streamer thread");
    assert_eq!(responses.len(), 200, "every line answered across the reload");
    for (i, line) in responses.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"line\":{},\"mapping\":\"TINY@", i + 1)),
            "line {} stays ordered and routed across the reload: {line}",
            i + 1
        );
        assert!(line.contains("\"cycles\":"), "line {}: {line}", i + 1);
    }
    server.stop();
    server.join();
}
