//! The concrete numbers from the paper's worked examples, as tests:
//! Figure 2 / Example 1 / Example 2 (two-level), Figure 4 (three-level),
//! and the §3.2 reduction.

use pmevo::core::bottleneck::{lp_throughput, throughput_fast, throughput_naive, MassVector};
use pmevo::core::{Experiment, InstId, PortSet, ThreeLevelMapping, TwoLevelMapping, UopEntry};

const MUL: InstId = InstId(0);
const ADD: InstId = InstId(1);
const SUB: InstId = InstId(2);
const STORE: InstId = InstId(3);

fn figure2() -> TwoLevelMapping {
    TwoLevelMapping::new(
        3,
        vec![
            PortSet::from_ports(&[0]),    // mul -> P1
            PortSet::from_ports(&[0, 1]), // add -> P1, P2
            PortSet::from_ports(&[0, 1]), // sub -> P1, P2
            PortSet::from_ports(&[2]),    // store -> P3
        ],
    )
}

fn figure4() -> ThreeLevelMapping {
    let u1 = PortSet::from_ports(&[0]);
    let u2 = PortSet::from_ports(&[0, 1]);
    let u3 = PortSet::from_ports(&[2]);
    ThreeLevelMapping::new(
        3,
        vec![
            vec![UopEntry::new(2, u1)],
            vec![UopEntry::new(1, u2)],
            vec![UopEntry::new(1, u2)],
            vec![UopEntry::new(1, u2), UopEntry::new(1, u3)],
        ],
    )
}

#[test]
fn example1_throughput_is_one_and_a_half() {
    let e = Experiment::from_counts(&[(ADD, 2), (MUL, 1), (STORE, 1)]);
    assert_eq!(figure2().throughput(&e), 1.5);
}

#[test]
fn example2_bottleneck_set_is_p1_p2() {
    // Equation 1 by hand: the maximizing Q is {P1, P2} with mass 3.
    let m = figure2();
    let e = Experiment::from_counts(&[(ADD, 2), (MUL, 1), (STORE, 1)]);
    // Q = {P1}: only mul is confined -> 1; Q = {P3}: store -> 1;
    // Q = {P1, P2}: mul + 2 add = 3 mass over 2 ports -> 1.5.
    assert_eq!(m.throughput(&e), 1.5);
    // Dropping the store leaves the bottleneck unchanged.
    let e2 = Experiment::from_counts(&[(ADD, 2), (MUL, 1)]);
    assert_eq!(m.throughput(&e2), 1.5);
    // Dropping one add moves the bottleneck to mass 2 over 2 ports.
    let e3 = Experiment::from_counts(&[(ADD, 1), (MUL, 1)]);
    assert_eq!(m.throughput(&e3), 1.0);
}

#[test]
fn add_and_sub_are_interchangeable_in_figure2() {
    let m = figure2();
    let with_add = Experiment::from_counts(&[(ADD, 2), (MUL, 1)]);
    let with_sub = Experiment::from_counts(&[(SUB, 2), (MUL, 1)]);
    let mixed = Experiment::from_counts(&[(ADD, 1), (SUB, 1), (MUL, 1)]);
    assert_eq!(m.throughput(&with_add), m.throughput(&with_sub));
    assert_eq!(m.throughput(&with_add), m.throughput(&mixed));
}

#[test]
fn figure4_store_has_partial_conflict_with_add() {
    // The paper notes the three-level model captures store's partial
    // conflict with add/sub, which the two-level model cannot.
    let m = figure4();
    // store alone: U2 and U3 on different ports -> 1 cycle.
    assert_eq!(m.throughput(&Experiment::singleton(STORE)), 1.0);
    // store + add + sub: three U2 µops over P1, P2 -> 1.5 cycles.
    let e = Experiment::from_counts(&[(STORE, 1), (ADD, 1), (SUB, 1)]);
    assert_eq!(m.throughput(&e), 1.5);
}

#[test]
fn figure4_mul_decomposes_into_two_uops() {
    let m = figure4();
    assert_eq!(m.num_uops_of(MUL), 2);
    assert_eq!(m.throughput(&Experiment::singleton(MUL)), 2.0);
    // Volume: mul 2×1 + add 1×2 + sub 1×2 + store (1×2 + 1×1) = 9.
    assert_eq!(m.volume(), 9);
}

#[test]
fn section_3_2_reduction_to_two_level() {
    let m = figure4();
    let e = Experiment::from_counts(&[(MUL, 1), (ADD, 2), (STORE, 1)]);
    // Manual reduction: e' = {U1 ↦ 2, U2 ↦ 3, U3 ↦ 1}.
    let mut manual = MassVector::new();
    manual.add(PortSet::from_ports(&[0]), 2.0);
    manual.add(PortSet::from_ports(&[0, 1]), 3.0);
    manual.add(PortSet::from_ports(&[2]), 1.0);
    assert_eq!(m.uop_masses(&e), manual);
    // All engines agree on its throughput: bottleneck at {P1,P2} = 5/2.
    assert_eq!(m.throughput(&e), 2.5);
    assert_eq!(throughput_fast(&manual), 2.5);
    assert_eq!(throughput_naive(&manual), 2.5);
    assert!((lp_throughput(&manual) - 2.5).abs() < 1e-9);
}
