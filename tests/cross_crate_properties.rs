//! Cross-crate property tests: the simulator, the analytical model and
//! the predictors must stay mutually consistent.

use proptest::prelude::*;
use pmevo::baselines::{mca_like, oracle};
use pmevo::core::{Experiment, InstId, ThroughputPredictor};
use pmevo::isa::LoopBuilder;
use pmevo::machine::{platforms, simulate_kernel, MeasureConfig, Measurer};
use pmevo::stats::spearman;

proptest! {
    // Case budget: capped so the whole workspace suite stays well under
    // a minute; override downward with PROPTEST_CASES=<n> (see vendored
    // proptest). Cases are drawn from a per-test deterministic seed.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's Figure 6 premise: for short dependency-free
    /// experiments, the ground-truth bottleneck model tracks the
    /// simulator within a modest relative error (front-end limits put a
    /// floor under measured cycles, so the model is clamped the same
    /// way).
    #[test]
    fn model_tracks_simulator_on_short_experiments(
        a in 0u32..310,
        b in 0u32..310,
        n in 1u32..3,
    ) {
        let p = platforms::skl();
        let e = if a == b {
            Experiment::from_counts(&[(InstId(a), 1 + n)])
        } else {
            Experiment::pair(InstId(a), 1, InstId(b), n)
        };
        // Front-end floor: the machine fetches µops, not instructions.
        let uops: u32 = e
            .iter()
            .map(|(i, n)| p.ground_truth().num_uops_of(i) * n)
            .sum();
        let model = p
            .ground_truth()
            .throughput(&e)
            .max(f64::from(uops) / f64::from(p.fetch_width()));
        let kernel = LoopBuilder::new(p.isa()).build(&e);
        let sim = simulate_kernel(&p, &kernel, 10, 60).cycles_per_instance;
        let rel = (sim - model).abs() / model;
        prop_assert!(rel < 0.35, "model {model} vs sim {sim} for {e} (rel {rel:.2})");
    }

    /// Measured throughput is reproducible (same seed, same value) and
    /// positive.
    #[test]
    fn measurement_is_deterministic(a in 0u32..390, b in 0u32..390) {
        let p = platforms::a72();
        let e = if a == b {
            Experiment::singleton(InstId(a))
        } else {
            Experiment::pair(InstId(a), 1, InstId(b), 1)
        };
        let m = Measurer::new(&p, MeasureConfig::default());
        let t1 = m.measure(&e);
        let t2 = m.measure(&e);
        prop_assert!(t1 > 0.0);
        prop_assert_eq!(t1, t2);
    }
}

/// On ZEN, the ground-truth oracle must rank experiments better than the
/// deliberately coarse llvm-mca model (the Table 4 ordering).
#[test]
fn oracle_outranks_mca_on_zen() {
    let p = platforms::zen();
    let o = oracle(&p);
    let mca = mca_like(&p);
    let measurer = Measurer::new(&p, MeasureConfig::exact());

    let mut experiments = Vec::new();
    for i in (0..300u32).step_by(23) {
        for j in (7..300u32).step_by(41) {
            if i != j {
                experiments.push(Experiment::pair(InstId(i), 2, InstId(j), 1));
            }
        }
    }
    let measured: Vec<f64> = experiments.iter().map(|e| measurer.measure(e)).collect();
    let o_pred: Vec<f64> = experiments.iter().map(|e| o.predict(e)).collect();
    let m_pred: Vec<f64> = experiments.iter().map(|e| mca.predict(e)).collect();

    let o_scc = spearman(&o_pred, &measured);
    let m_scc = spearman(&m_pred, &measured);
    assert!(
        o_scc > 0.6,
        "oracle rank correlation unexpectedly low: {o_scc:.2}"
    );
    assert!(
        o_scc > m_scc - 0.05,
        "oracle ({o_scc:.2}) should not rank behind coarse mca ({m_scc:.2})"
    );

    // And the mca model must systematically over-estimate cycles on ZEN.
    let over = m_pred
        .iter()
        .zip(&measured)
        .filter(|(p, m)| *p > *m)
        .count();
    assert!(
        over * 3 > experiments.len() * 2,
        "expected over-estimation on most experiments ({over}/{})",
        experiments.len()
    );
}
