//! Cross-crate property tests: the simulator, the analytical model and
//! the predictors must stay mutually consistent.

use proptest::prelude::*;
use pmevo::baselines::{mca_like, oracle};
use pmevo::core::{Experiment, InstId, ThroughputPredictor};
use pmevo::isa::LoopBuilder;
use pmevo::machine::{platforms, simulate_kernel, MeasureConfig, Measurer};
use pmevo::stats::spearman;

proptest! {
    // Case budget: capped so the whole workspace suite stays well under
    // a minute; override downward with PROPTEST_CASES=<n> (see vendored
    // proptest). Cases are drawn from a per-test deterministic seed.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's Figure 6 premise: for short dependency-free
    /// experiments, the ground-truth bottleneck model tracks the
    /// simulator within a modest relative error (front-end limits put a
    /// floor under measured cycles, so the model is clamped the same
    /// way).
    #[test]
    fn model_tracks_simulator_on_short_experiments(
        a in 0u32..310,
        b in 0u32..310,
        n in 1u32..3,
    ) {
        let p = platforms::skl();
        let e = if a == b {
            Experiment::from_counts(&[(InstId(a), 1 + n)])
        } else {
            Experiment::pair(InstId(a), 1, InstId(b), n)
        };
        // Front-end floor: the machine fetches µops, not instructions.
        let uops: u32 = e
            .iter()
            .map(|(i, n)| p.ground_truth().num_uops_of(i) * n)
            .sum();
        let model = p
            .ground_truth()
            .throughput(&e)
            .max(f64::from(uops) / f64::from(p.fetch_width()));
        let kernel = LoopBuilder::new(p.isa()).build(&e);
        let sim = simulate_kernel(&p, &kernel, 10, 60).cycles_per_instance;
        let rel = (sim - model).abs() / model;
        prop_assert!(rel < 0.35, "model {model} vs sim {sim} for {e} (rel {rel:.2})");
    }

    /// Measured throughput is reproducible (same seed, same value) and
    /// positive.
    #[test]
    fn measurement_is_deterministic(a in 0u32..390, b in 0u32..390) {
        let p = platforms::a72();
        let e = if a == b {
            Experiment::singleton(InstId(a))
        } else {
            Experiment::pair(InstId(a), 1, InstId(b), 1)
        };
        let m = Measurer::new(&p, MeasureConfig::default());
        let t1 = m.measure(&e);
        let t2 = m.measure(&e);
        prop_assert!(t1 > 0.0);
        prop_assert_eq!(t1, t2);
    }
}

/// On ZEN, the ground-truth oracle must rank experiments better than the
/// deliberately coarse llvm-mca model (the Table 4 ordering).
#[test]
fn oracle_outranks_mca_on_zen() {
    let p = platforms::zen();
    let o = oracle(&p);
    let mca = mca_like(&p);
    let measurer = Measurer::new(&p, MeasureConfig::exact());

    let mut experiments = Vec::new();
    for i in (0..300u32).step_by(23) {
        for j in (7..300u32).step_by(41) {
            if i != j {
                experiments.push(Experiment::pair(InstId(i), 2, InstId(j), 1));
            }
        }
    }
    let measured: Vec<f64> = experiments.iter().map(|e| measurer.measure(e)).collect();
    let o_pred: Vec<f64> = experiments.iter().map(|e| o.predict(e)).collect();
    let m_pred: Vec<f64> = experiments.iter().map(|e| mca.predict(e)).collect();

    let o_scc = spearman(&o_pred, &measured);
    let m_scc = spearman(&m_pred, &measured);
    assert!(
        o_scc > 0.6,
        "oracle rank correlation unexpectedly low: {o_scc:.2}"
    );
    assert!(
        o_scc > m_scc - 0.05,
        "oracle ({o_scc:.2}) should not rank behind coarse mca ({m_scc:.2})"
    );

    // And the mca model must systematically over-estimate cycles on ZEN.
    let over = m_pred
        .iter()
        .zip(&measured)
        .filter(|(p, m)| *p > *m)
        .count();
    assert!(
        over * 3 > experiments.len() * 2,
        "expected over-estimation on most experiments ({over}/{})",
        experiments.len()
    );
}

// ---------------------------------------------------------------------------
// Island-model evolution: a single island is the classic loop, and any
// island count is invariant under the fitness-worker count.

use pmevo::core::{MeasuredExperiment, PortSet, ThreeLevelMapping, UopEntry};
use pmevo::evo::{evolve_islands, evolve_resumable, EvoConfig, IslandConfig, IslandStart};

/// A deterministic toy ground truth plus training set (all singletons
/// and pairs), parameterized by `seed` with plain arithmetic — every
/// proptest case sees a different machine, with no RNG involved.
fn toy_training(
    seed: u64,
    num_insts: usize,
    num_ports: usize,
) -> (Vec<MeasuredExperiment>, Vec<f64>) {
    let decomp = (0..num_insts)
        .map(|i| {
            let a = (seed as usize + i) % num_ports;
            let b = (seed as usize / 3 + 2 * i + 1) % num_ports;
            vec![UopEntry::new(
                1 + (i as u32 + seed as u32) % 2,
                PortSet::from_ports(&[a, b]),
            )]
        })
        .collect();
    let ground_truth = ThreeLevelMapping::new(num_ports, decomp);
    let mut measured = Vec::new();
    let mut indiv = Vec::new();
    for i in 0..num_insts as u32 {
        let e = Experiment::singleton(InstId(i));
        let t = ground_truth.throughput(&e);
        indiv.push(t);
        measured.push(MeasuredExperiment::new(e, t));
    }
    for i in 0..num_insts as u32 {
        for j in i + 1..num_insts as u32 {
            let e = Experiment::pair(InstId(i), 1, InstId(j), 1);
            let t = ground_truth.throughput(&e);
            measured.push(MeasuredExperiment::new(e, t));
        }
    }
    (measured, indiv)
}

fn evo_config(seed: u64, population: usize, threads: usize) -> EvoConfig {
    EvoConfig {
        population_size: population,
        max_generations: 8,
        stall_generations: 8,
        num_threads: threads,
        seed,
        ..EvoConfig::default()
    }
}

proptest! {
    // Each case runs several full evolutions; keep the budget small
    // (PROPTEST_CASES only caps this downward).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A single island IS the classic loop: `evolve_islands` with
    /// `count = 1` reproduces `evolve_resumable` bit-for-bit — same
    /// winner, same objectives, same history, same final population.
    #[test]
    fn one_island_is_the_classic_loop(seed in 0u64..10_000, pop in 8usize..20) {
        let (training, indiv) = toy_training(seed, 5, 3);
        let config = evo_config(seed, pop, 2);
        let classic = evolve_resumable(5, 3, &training, &indiv, &config, Vec::new(), true);
        let islands = evolve_islands(
            5, 3, &training, &indiv, &config,
            &IslandConfig::default(),
            IslandStart::Fresh(Vec::new()), true, None,
        );
        prop_assert!(!islands.halted);
        prop_assert_eq!(islands.islands.len(), 1);
        prop_assert_eq!(&islands.result.mapping, &classic.result.mapping);
        prop_assert_eq!(islands.result.objectives, classic.result.objectives);
        prop_assert_eq!(&islands.result.history, &classic.result.history);
        prop_assert_eq!(&islands.islands[0].population, &classic.population);
    }

    /// For any island count, evolution is independent of the
    /// fitness-worker count: 1, 2 and 8 threads produce bit-identical
    /// winners, histories and final island populations.
    #[test]
    fn island_evolution_is_worker_count_invariant(
        seed in 0u64..10_000,
        islands in 1u32..5,
    ) {
        let (training, indiv) = toy_training(seed, 5, 3);
        let island_config = IslandConfig { count: islands, interval: 2, migrants: 1 };
        let run = |threads: usize| {
            evolve_islands(
                5, 3, &training, &indiv,
                &evo_config(seed, 12, threads),
                &island_config,
                IslandStart::Fresh(Vec::new()), true, None,
            )
        };
        let reference = run(1);
        for threads in [2usize, 8] {
            let out = run(threads);
            prop_assert_eq!(&out.result.mapping, &reference.result.mapping, "threads {}", threads);
            prop_assert_eq!(&out.result.history, &reference.result.history, "threads {}", threads);
            prop_assert_eq!(out.islands.len(), reference.islands.len());
            for (ours, reference_island) in out.islands.iter().zip(&reference.islands) {
                prop_assert_eq!(
                    &ours.population,
                    &reference_island.population,
                    "threads {}", threads
                );
            }
        }
    }
}
