//! Acceptance test for adaptive measurement-budget experiment
//! selection (ISSUE 4): on the synthetic x86 platform with a fixed
//! seed, the disagreement-driven scheduler must reach held-out accuracy
//! equal to or better than the one-shot pipeline using at most 50% of
//! its measurements — deterministically.

use pmevo::core::{MeasurementBudget, SelectionPolicy, ThreeLevelMapping};
use pmevo::isa::InstructionSet;
use pmevo::machine::{platforms, MeasureConfig, Platform};
use pmevo::Session;

// Pinned like the repo's other seed-sensitive evolution tests: the
// comparison is deterministic for any fixed seed, and this one leaves a
// wide accuracy margin on both sides.
const SEED: u64 = 21;

/// A 15-form slice of the synthetic x86 ISA with the SKL ground truth:
/// plain ALU (two congruent forms), flagged ALU, ALU-with-load, plain
/// and double shifts, both `lea` flavors, multiply variants, bit tests,
/// `cmov`, `popcnt` and a vector op — port-diverse enough that held-out
/// accuracy measures real inference quality, small enough that the
/// quadratic one-shot corpus keeps the test fast. (A plain ISA prefix
/// would be all congruent ALU forms — a degenerate universe.)
fn x86_subset_platform() -> Platform {
    let skl = platforms::skl();
    let names = [
        "add_r32_r32",
        "add_r64_r64",
        "adc_r32_r32",
        "add_r32_m32",
        "shl_r32_i32",
        "shld_r32_r32_i32",
        "lea_r32_r64",
        "lea3_r32_r64_r64",
        "mulhi_r32_r32",
        "imul_r64_r64",
        "bt_r32_i32",
        "btc_r32_i32",
        "popcnt_r32_r32",
        "cmove_r32_r32",
        "paddb_v128_v128_v128",
    ];
    let mut isa = InstructionSet::new("x86-64 subset");
    let mut decomp = Vec::with_capacity(names.len());
    let mut exec = Vec::with_capacity(names.len());
    for name in names {
        let id = skl
            .isa()
            .find(name)
            .unwrap_or_else(|| panic!("synthetic x86 form {name} exists"));
        isa.push(skl.isa().form(id).clone());
        decomp.push(skl.ground_truth().decomposition(id).to_vec());
        exec.push(skl.exec_params(id));
    }
    Platform::new(
        "SKL-subset",
        skl.info().clone(),
        isa,
        ThreeLevelMapping::new(skl.num_ports(), decomp),
        exec,
        skl.fetch_width(),
        skl.window_size(),
    )
}

fn session(selection: SelectionPolicy, budget: MeasurementBudget) -> Session {
    Session::builder()
        .platform(x86_subset_platform())
        .measure_config(MeasureConfig::exact())
        .seed(SEED)
        .selection(selection)
        .budget(budget)
        .population(120)
        .max_generations(25)
        .accuracy_benchmarks(64)
        .build()
        .expect("acceptance session configuration is valid")
}

#[test]
fn adaptive_selection_matches_one_shot_accuracy_at_half_the_budget() {
    let one_shot = session(SelectionPolicy::OneShot, MeasurementBudget::UNLIMITED).run();
    let one_shot_accuracy = one_shot.accuracy.as_ref().expect("platform session reports accuracy");
    assert!(one_shot.measurements_performed > 0);

    // Half of what one-shot spent, enforced as a hard budget.
    let budget = one_shot.measurements_performed / 2;
    let adaptive = session(
        SelectionPolicy::Disagreement { top_k: 8 },
        MeasurementBudget::measurements(budget),
    )
    .run();
    let adaptive_accuracy = adaptive.accuracy.as_ref().expect("platform session reports accuracy");

    // ≤ 50% of the one-shot measurements, actually spent in rounds.
    assert!(
        adaptive.measurements_performed * 2 <= one_shot.measurements_performed,
        "adaptive spent {} of one-shot's {} measurements",
        adaptive.measurements_performed,
        one_shot.measurements_performed
    );
    assert!(adaptive.rounds.len() > 1, "expected a multi-round adaptive run");
    assert_eq!(
        adaptive.accuracy_trajectory.len(),
        adaptive.rounds.len(),
        "one trajectory point per round"
    );

    // Held-out accuracy no worse than one-shot's, on the identical
    // seed-derived benchmark set.
    assert!(
        adaptive_accuracy.mape <= one_shot_accuracy.mape,
        "adaptive MAPE {:.3}% vs one-shot MAPE {:.3}% at half the measurements",
        adaptive_accuracy.mape,
        one_shot_accuracy.mape
    );

    // Round accounting is coherent: cumulative counts are monotone and
    // end at the total, and the budget was respected.
    for w in adaptive.rounds.windows(2) {
        assert!(w[1].cumulative_measurements >= w[0].cumulative_measurements);
    }
    assert_eq!(
        adaptive.rounds.last().unwrap().cumulative_measurements,
        adaptive.measurements_performed
    );
    assert!(adaptive.measurements_performed <= budget);

    // Deterministic end to end: an identical session replays to a
    // bit-identical report (timings aside), serialized form included.
    let again = session(
        SelectionPolicy::Disagreement { top_k: 8 },
        MeasurementBudget::measurements(budget),
    )
    .run();
    assert_eq!(
        again.without_timings().to_json(),
        adaptive.without_timings().to_json(),
        "adaptive session is not deterministic"
    );
}
