//! Integration tests of the inference-session API: `SessionReport`
//! JSON round-trips (property-based), `Service::run_many` determinism
//! across worker-thread counts, backend swapping (replay), and builder
//! validation.

use pmevo::core::{
    CachingBackend, InstId, MeasurementBackend, MeasurementBudget, PortSet, ReplayBackend,
    RoundStats, SelectionPolicy, ThreeLevelMapping, UopEntry,
};
use pmevo::evo::{EvoConfig, PipelineConfig, PmEvoAlgorithm};
use pmevo::isa::synth::tiny_isa;
use pmevo::machine::platform::ExecParams;
use pmevo::machine::{MeasureConfig, Platform, PlatformInfo, SimBackend};
use pmevo::{AccuracyReport, Service, Session, SessionError, SessionReport};
use proptest::prelude::*;
use std::time::Duration;

fn toy_platform() -> Platform {
    let isa = tiny_isa();
    let u = |count, ports: &[usize]| UopEntry::new(count, PortSet::from_ports(ports));
    let decomp = vec![
        vec![u(1, &[0, 1])],
        vec![u(1, &[0])],
        vec![u(3, &[0])],
        vec![u(1, &[2])],
        vec![u(1, &[3]), u(1, &[2])],
        vec![u(1, &[1])],
    ];
    let exec = (0..isa.len())
        .map(|_| ExecParams {
            latency: 2,
            blocking: 1,
        })
        .collect();
    Platform::new(
        "TOY",
        PlatformInfo {
            manufacturer: "test".into(),
            processor: "toy".into(),
            microarch: "toy".into(),
            ports_desc: "4".into(),
            isa_name: "tiny".into(),
            clock_ghz: 1.0,
        },
        isa,
        ThreeLevelMapping::new(4, decomp),
        exec,
        4,
        32,
    )
}

fn toy_session(seed: u64) -> Session {
    Session::builder()
        .platform(toy_platform())
        .measure_config(MeasureConfig::exact())
        .seed(seed)
        .population(60)
        .max_generations(8)
        .accuracy_benchmarks(24)
        .benchmark_size(3)
        .build()
        .expect("toy session configuration is valid")
}

// --- SessionReport JSON round-trip (property-based) -----------------

fn label_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("plain".to_string()),
        Just("with \"quotes\" and \\ backslash".to_string()),
        Just("newline\nand\ttab".to_string()),
        Just("unicode µops × ports".to_string()),
    ]
}

/// Finite floats covering the writer's two paths (integral values are
/// emitted as `x.0`, the rest through the shortest round-trip format).
fn float_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e12..1.0e12f64,
        -1.0..1.0f64,
        (0u64..1000).prop_map(|n| n as f64),
        Just(0.0),
        Just(-0.0),
        Just(1.5e-300),
    ]
}

fn mapping_strategy() -> impl Strategy<Value = ThreeLevelMapping> {
    collection::vec(
        collection::vec((1u32..4, 1u64..15), 1..3),
        1..5,
    )
    .prop_map(|rows| {
        let decomp = rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|(count, mask)| UopEntry::new(count, PortSet::from_mask(mask)))
                    .collect()
            })
            .collect();
        ThreeLevelMapping::new(4, decomp)
    })
}

fn accuracy_strategy() -> impl Strategy<Value = Option<AccuracyReport>> {
    prop_oneof![
        Just(None),
        (float_strategy(), float_strategy(), float_strategy(), 1usize..100_000).prop_map(
            |(mape, pearson, spearman, num_benchmarks)| {
                Some(AccuracyReport {
                    mape,
                    pearson,
                    spearman,
                    num_benchmarks,
                })
            }
        ),
    ]
}

fn selection_strategy() -> impl Strategy<Value = SelectionPolicy> {
    prop_oneof![
        Just(SelectionPolicy::OneShot),
        (1usize..1000).prop_map(|top_k| SelectionPolicy::Disagreement { top_k }),
        (1usize..1000).prop_map(|top_k| SelectionPolicy::Uniform { top_k }),
    ]
}

fn budget_strategy() -> impl Strategy<Value = MeasurementBudget> {
    let opt_u64 = || prop_oneof![Just(None), (0u64..u64::MAX).prop_map(Some)];
    (opt_u64(), opt_u64()).prop_map(|(max_measurements, time_ns)| MeasurementBudget {
        max_measurements,
        max_measurement_time: time_ns.map(Duration::from_nanos),
    })
}

fn rounds_strategy() -> impl Strategy<Value = Vec<RoundStats>> {
    collection::vec(
        (
            0u64..1_000_000,
            0u64..1_000_000,
            0u64..u64::MAX,
            0u64..u64::MAX,
            float_strategy(),
        ),
        0..5,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(
                |(i, (submitted, performed, time_ns, cumulative, training_error))| RoundStats {
                    round: i as u32,
                    experiments_submitted: submitted,
                    measurements_performed: performed,
                    measurement_time: Duration::from_nanos(time_ns),
                    cumulative_measurements: cumulative,
                    training_error,
                },
            )
            .collect()
    })
}

fn report_strategy() -> impl Strategy<Value = SessionReport> {
    let head = (
        label_strategy(),
        prop_oneof![Just(None), label_strategy().prop_map(Some)],
        label_strategy(),
        label_strategy(),
        0u64..u64::MAX,
    );
    let counts = (1usize..1000, 1usize..64, 0usize..100_000, 0u64..1_000_000);
    let times = (0u64..u64::MAX, 0u64..u64::MAX);
    let metrics = (
        float_strategy(),
        1usize..1000,
        prop_oneof![Just(None), float_strategy().prop_map(Some)],
        accuracy_strategy(),
        mapping_strategy(),
    );
    let budgeting = (
        selection_strategy(),
        budget_strategy(),
        rounds_strategy(),
        collection::vec(float_strategy(), 0..5),
    );
    (head, counts, times, metrics, budgeting).prop_map(
        |(
            (label, platform, backend, algorithm, seed),
            (num_insts, num_ports, num_experiments, measurements_performed),
            (bench_ns, infer_ns),
            (congruent_fraction, num_classes, training_error, accuracy, mapping),
            (selection, budget, rounds, accuracy_trajectory),
        )| SessionReport {
            label,
            platform,
            backend,
            algorithm,
            seed,
            selection,
            budget,
            num_insts,
            num_ports,
            num_experiments,
            measurements_performed,
            benchmarking_time: Duration::from_nanos(bench_ns),
            inference_time: Duration::from_nanos(infer_ns),
            congruent_fraction,
            num_classes,
            training_error,
            rounds,
            accuracy,
            accuracy_trajectory,
            mapping,
        },
    )
}

proptest! {
    // Case budget: capped so the whole workspace suite stays well under
    // a minute; override with PROPTEST_CASES=<n>.
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode → decode → bit-identical, for both the compact and the
    /// pretty writer.
    #[test]
    fn session_report_roundtrips_through_json(report in report_strategy()) {
        let compact = SessionReport::from_json(&report.to_json())
            .expect("compact report JSON parses");
        prop_assert_eq!(&compact, &report);
        let pretty = SessionReport::from_json(&report.to_json_pretty())
            .expect("pretty report JSON parses");
        prop_assert_eq!(&pretty, &report);
    }
}

#[test]
fn session_report_rejects_malformed_json() {
    for bad in [
        "",
        "{}",
        "[1,2]",
        r#"{"label":"x"}"#,
        // Valid except the mapping shape.
        r#"{"label":"x","platform":null,"backend":"b","algorithm":"a","seed":1,
            "num_insts":1,"num_ports":1,"num_experiments":0,"measurements_performed":0,
            "benchmarking_time_ns":0,"inference_time_ns":0,"congruent_fraction":0.0,
            "num_classes":1,"training_error":null,"accuracy":null,"mapping":{"decomp":[]}}"#,
    ] {
        assert!(SessionReport::from_json(bad).is_err(), "{bad:?} should not parse");
    }
}

// --- Service::run_many determinism ----------------------------------

/// An adaptive (round-based, budget-capped) sibling of [`toy_session`],
/// so the worker-count-independence contract covers the interleaved
/// measure→evolve pipeline too.
fn toy_adaptive_session(seed: u64) -> Session {
    Session::builder()
        .platform(toy_platform())
        .measure_config(MeasureConfig::exact())
        .seed(seed)
        .selection(SelectionPolicy::Disagreement { top_k: 3 })
        .budget(MeasurementBudget::measurements(14))
        .population(40)
        .max_generations(5)
        .accuracy_benchmarks(16)
        .benchmark_size(3)
        .build()
        .expect("toy adaptive session configuration is valid")
}

/// Regression for the `without_timings` contract: the docs promise that
/// *all* wall-clock fields are zeroed — not just the two session totals
/// but also every round's `measurement_time` (the PR-4 round fields
/// were once missing from the struct-level docs).
#[test]
fn without_timings_zeroes_every_wall_clock_field() {
    let report = toy_adaptive_session(23).run();
    assert!(report.rounds.len() > 1, "adaptive session reports rounds");
    let stripped = report.without_timings();
    assert_eq!(stripped.benchmarking_time, Duration::ZERO);
    assert_eq!(stripped.inference_time, Duration::ZERO);
    assert!(stripped.rounds.iter().all(|r| r.measurement_time == Duration::ZERO));
    // Non-timing fields are untouched.
    assert_eq!(stripped.rounds.len(), report.rounds.len());
    assert_eq!(stripped.mapping, report.mapping);
    assert_eq!(stripped.accuracy, report.accuracy);

    // Two reports that differ only in wall-clock fields (of all three
    // kinds) must become equal once stripped.
    let mut other = report.clone();
    other.benchmarking_time += Duration::from_millis(5);
    other.inference_time += Duration::from_millis(7);
    for round in &mut other.rounds {
        round.measurement_time += Duration::from_millis(1);
    }
    assert_ne!(other, report);
    assert_eq!(other.without_timings(), report.without_timings());
}

/// The acceptance criterion of the session API: with fixed per-job
/// seeds, `run_many` produces bit-identical reports (up to wall-clock
/// timings) for every worker-thread count — one-shot and adaptive
/// sessions alike.
#[test]
fn run_many_is_worker_count_independent() {
    let seeds = [11u64, 12, 13];
    let jobs = || -> Vec<Session> {
        let mut jobs: Vec<Session> = seeds.iter().map(|&s| toy_session(s)).collect();
        jobs.push(toy_adaptive_session(17));
        jobs
    };
    let reference: Vec<String> = Service::new(1)
        .run_many(jobs())
        .iter()
        .map(|r| r.without_timings().to_json())
        .collect();
    // Different seeds genuinely produce different sessions.
    assert_ne!(reference[0], reference[1]);
    // The adaptive job really ran in rounds.
    assert!(reference[3].contains("\"round\":1"));
    for workers in [2, 8] {
        let got: Vec<String> = Service::new(workers)
            .run_many(jobs())
            .iter()
            .map(|r| r.without_timings().to_json())
            .collect();
        assert_eq!(got, reference, "{workers} workers changed the reports");
    }
}

#[test]
fn run_many_preserves_job_order_and_labels() {
    let jobs: Vec<Session> = (0..5)
        .map(|i| {
            Session::builder()
                .platform(toy_platform())
                .measure_config(MeasureConfig::exact())
                .label(format!("job-{i}"))
                .seed(i as u64)
                .population(30)
                .max_generations(2)
                .accuracy_benchmarks(0)
                .build()
                .expect("valid session")
        })
        .collect();
    let reports = Service::new(3).run_many(jobs);
    let labels: Vec<&str> = reports.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, ["job-0", "job-1", "job-2", "job-3", "job-4"]);
    assert!(Service::new(4).run_many(Vec::new()).is_empty());
}

// --- Backend swapping through the session ----------------------------

/// Record all measurements of a pipeline run with a `CachingBackend`,
/// replay them through a `ReplayBackend`-backed session, and require
/// the identical mapping — measurement artifacts decouple inference
/// from the machine.
#[test]
fn replayed_session_reproduces_the_simulator_session() {
    let platform = toy_platform();
    let config = PipelineConfig {
        evo: EvoConfig {
            population_size: 60,
            max_generations: 6,
            num_threads: 2,
            seed: 33,
            ..EvoConfig::default()
        },
        ..PipelineConfig::default()
    };

    // Live run against the simulator, recording every measurement.
    let mut recording =
        CachingBackend::new(SimBackend::new(platform.clone(), MeasureConfig::exact()));
    let live = pmevo::evo::run(
        platform.isa().len(),
        platform.num_ports(),
        &mut recording,
        &config,
    );
    let artifact = pmevo::core::measurements_to_json(&recording.measurements());

    // Replayed run: same algorithm, no simulator access at all.
    let replay = ReplayBackend::from_json(&artifact).expect("artifact parses");
    let report = Session::builder()
        .universe(platform.isa().len(), platform.num_ports())
        .backend(replay)
        .algorithm(PmEvoAlgorithm::new(config))
        .seed(33)
        .build()
        .expect("replay session configuration is valid")
        .run();

    assert_eq!(report.mapping, live.mapping);
    assert_eq!(report.num_experiments, live.num_experiments);
    assert!(report.platform.is_none());
    assert!(report.accuracy.is_none(), "no platform, no ground-truth accuracy");
    assert!(report.backend.contains("replay"));
}

/// A recorded *adaptive* run replays identically: the round-based
/// scheduler decides what to measure from what it has measured, so a
/// `ReplayBackend` holding the recording must drive it through the
/// exact same rounds to the exact same report (timings aside).
#[test]
fn replayed_adaptive_session_reproduces_the_live_session() {
    let platform = toy_platform();
    let selection = SelectionPolicy::Disagreement { top_k: 3 };
    let budget = MeasurementBudget::measurements(14);
    let config = PipelineConfig {
        selection,
        budget,
        evo: EvoConfig {
            population_size: 40,
            max_generations: 6,
            num_threads: 2,
            seed: 27,
            ..EvoConfig::default()
        },
        ..PipelineConfig::default()
    };

    // Live adaptive run against the simulator, recording everything.
    let mut recording =
        CachingBackend::new(SimBackend::new(platform.clone(), MeasureConfig::exact()));
    let live = pmevo::evo::run(
        platform.isa().len(),
        platform.num_ports(),
        &mut recording,
        &config,
    );
    assert!(live.rounds.len() > 1, "expected a multi-round live run");
    let artifact = pmevo::core::measurements_to_json(&recording.measurements());

    // Replayed run: same configuration, no simulator access at all.
    let replay = ReplayBackend::from_json(&artifact).expect("artifact parses");
    let report = Session::builder()
        .universe(platform.isa().len(), platform.num_ports())
        .backend(replay)
        .algorithm(PmEvoAlgorithm::new(config))
        .selection(selection)
        .budget(budget)
        .seed(27)
        .build()
        .expect("replay session configuration is valid")
        .run();

    assert_eq!(report.mapping, live.mapping);
    assert_eq!(report.num_experiments, live.num_experiments);
    assert_eq!(report.measurements_performed, live.measurements_performed);
    assert_eq!(report.rounds.len(), live.rounds.len());
    for (replayed, lived) in report.rounds.iter().zip(&live.rounds) {
        assert_eq!(replayed.without_timing(), lived.without_timing());
    }
    assert_eq!(report.selection, selection);
    assert_eq!(report.budget, budget);
    // The report (budget/round fields included) JSON round-trips
    // bit-exactly, compact and pretty.
    let compact = SessionReport::from_json(&report.to_json()).expect("compact JSON parses");
    assert_eq!(compact, report);
    let pretty = SessionReport::from_json(&report.to_json_pretty()).expect("pretty JSON parses");
    assert_eq!(pretty, report);
}

/// The caching decorator keeps `measurements_performed` honest: the
/// singleton experiments the accuracy-free toy session re-requests are
/// measured once.
#[test]
fn session_counts_deduplicated_measurements_once() {
    let report = toy_session(5).run();
    assert!(report.measurements_performed <= report.num_experiments as u64);
    assert!(report.measurements_performed > 0);
    assert!(report.backend.starts_with("cached("));
}

// --- Builder validation ----------------------------------------------

#[test]
fn builder_reports_configuration_errors() {
    assert_eq!(
        Session::builder().build().err(),
        Some(SessionError::MissingUniverse)
    );
    assert_eq!(
        Session::builder().universe(4, 2).build().err(),
        Some(SessionError::MissingBackend)
    );
    assert_eq!(
        Session::builder()
            .universe(0, 2)
            .backend(ReplayBackend::default())
            .build()
            .err(),
        Some(SessionError::EmptyUniverse)
    );
    // A backend-only session (no platform) is valid.
    let mut model = pmevo::core::ModelBackend::new(ThreeLevelMapping::new(
        2,
        vec![vec![UopEntry::new(1, PortSet::from_ports(&[0]))]],
    ));
    let _ = model.measure_batch(&[pmevo::core::Experiment::singleton(InstId(0))]);
    assert!(Session::builder()
        .universe(1, 2)
        .backend(model)
        .build()
        .is_ok());
}
