//! End-to-end integration test: PMEvo inference against the cycle-level
//! simulator recovers a mapping that predicts *held-out* experiments —
//! the core claim of the paper, at toy scale, through the backend API.

use pmevo::core::{
    Experiment, InstId, MeasurementBackend, NoisyBackend, PortSet, ThreeLevelMapping,
    ThroughputPredictor, UopEntry,
};
use pmevo::core::MappingPredictor;
use pmevo::evo::{run, EvoConfig, PipelineConfig};
use pmevo::isa::synth::tiny_isa;
use pmevo::machine::platform::ExecParams;
use pmevo::machine::{MeasureConfig, Measurer, Platform, PlatformInfo, SimBackend};
use pmevo::stats::mape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn toy_platform() -> Platform {
    let isa = tiny_isa();
    let u = |count, ports: &[usize]| UopEntry::new(count, PortSet::from_ports(ports));
    let decomp = vec![
        vec![u(1, &[0, 1])],
        vec![u(1, &[0])],
        vec![u(3, &[0])],
        vec![u(1, &[2])],
        vec![u(1, &[3]), u(1, &[2])],
        vec![u(1, &[1])],
    ];
    let exec = (0..isa.len())
        .map(|_| ExecParams {
            latency: 2,
            blocking: 1,
        })
        .collect();
    Platform::new(
        "TOY",
        PlatformInfo {
            manufacturer: "test".into(),
            processor: "toy".into(),
            microarch: "toy".into(),
            ports_desc: "4".into(),
            isa_name: "tiny".into(),
            clock_ghz: 1.0,
        },
        isa,
        ThreeLevelMapping::new(4, decomp),
        exec,
        4,
        32,
    )
}

#[test]
fn inferred_mapping_predicts_held_out_experiments() {
    let platform = toy_platform();
    let mut backend = SimBackend::new(platform.clone(), MeasureConfig::exact());

    let config = PipelineConfig {
        evo: EvoConfig {
            population_size: 120,
            max_generations: 35,
            num_threads: 2,
            seed: 20,
            ..EvoConfig::default()
        },
        ..PipelineConfig::default()
    };
    let result = run(
        platform.isa().len(),
        platform.num_ports(),
        &mut backend,
        &config,
    );

    // Training fit must be good on noise-free data.
    assert!(
        result.evo.objectives.error < 0.08,
        "training D_avg too high: {}",
        result.evo.objectives.error
    );
    // The backend performed exactly the pipeline's training experiments.
    assert_eq!(result.measurements_performed, result.num_experiments as u64);

    // Held-out: random multisets of size 3 (never part of training,
    // which only uses singletons and pairs).
    let mut rng = StdRng::seed_from_u64(77);
    let held_out: Vec<Experiment> = (0..25)
        .map(|_| {
            let counts: Vec<(InstId, u32)> = (0..3)
                .map(|_| (InstId(rng.gen_range(0..6)), 1))
                .collect();
            Experiment::from_counts(&counts)
        })
        .collect();
    let predictor = MappingPredictor::new("pmevo", result.mapping.clone());
    let predictions: Vec<f64> = held_out.iter().map(|e| predictor.predict(e)).collect();
    let measurer = Measurer::new(&platform, MeasureConfig::exact());
    let measured: Vec<f64> = held_out.iter().map(|e| measurer.measure(e)).collect();
    let err = mape(&predictions, &measured);
    assert!(err < 25.0, "held-out MAPE {err:.1}% too high");
}

#[test]
fn inference_without_congruence_filtering_also_works() {
    let platform = toy_platform();
    let mut backend = SimBackend::new(platform.clone(), MeasureConfig::exact());
    let config = PipelineConfig {
        congruence_filtering: false,
        evo: EvoConfig {
            population_size: 100,
            max_generations: 25,
            num_threads: 2,
            seed: 21,
            ..EvoConfig::default()
        },
        ..PipelineConfig::default()
    };
    let result = run(
        platform.isa().len(),
        platform.num_ports(),
        &mut backend,
        &config,
    );
    assert_eq!(result.num_classes, platform.isa().len());
    assert!(
        result.evo.objectives.error < 0.12,
        "unfiltered D_avg {}",
        result.evo.objectives.error
    );
}

#[test]
fn noise_does_not_break_inference() {
    let platform = toy_platform();
    // Seeded noise injection through the decorator, over an exact
    // simulator — the robustness scenario of paper §5.1.
    let mut backend = NoisyBackend::new(
        SimBackend::new(platform.clone(), MeasureConfig::exact()),
        0.02,
        22,
    );
    let config = PipelineConfig {
        epsilon: 0.08, // wider than the noise level
        evo: EvoConfig {
            population_size: 100,
            max_generations: 25,
            num_threads: 2,
            seed: 22,
            ..EvoConfig::default()
        },
        ..PipelineConfig::default()
    };
    let result = run(
        platform.isa().len(),
        platform.num_ports(),
        &mut backend,
        &config,
    );
    assert!(
        result.evo.objectives.error < 0.15,
        "noisy D_avg {}",
        result.evo.objectives.error
    );
    assert_eq!(
        backend.stats().measurements_requested,
        result.num_experiments as u64
    );
}
