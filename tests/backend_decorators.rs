//! Decorator-composition coverage: `CachingBackend` + `NoisyBackend`
//! under multi-round adaptive selection.
//!
//! The adaptive scheduler submits many small batches across rounds and
//! runs; the decorator stack must (a) never double-bill an experiment
//! that the cache already answered, and (b) produce values that do not
//! depend on decorator order, batch boundaries or submission order —
//! the noise stream is a pure function of `(seed, experiment)`.

use pmevo::core::{
    CachingBackend, Experiment, InstId, MeasurementBackend, MeasurementBudget, ModelBackend,
    NoisyBackend, PortSet, SelectionPolicy, ThreeLevelMapping, UopEntry,
};
use pmevo::evo::{run, AdaptiveTuning, EvoConfig, PipelineConfig};

fn uop(count: u32, ports: &[usize]) -> UopEntry {
    UopEntry::new(count, PortSet::from_ports(ports))
}

fn ground_truth() -> ThreeLevelMapping {
    ThreeLevelMapping::new(
        3,
        vec![
            vec![uop(1, &[0])],
            vec![uop(1, &[0, 1])],
            vec![uop(2, &[2])],
            vec![uop(1, &[1, 2])],
            vec![uop(1, &[2]), uop(1, &[0])],
        ],
    )
}

fn adaptive_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        selection: SelectionPolicy::Disagreement { top_k: 2 },
        budget: MeasurementBudget::measurements(13),
        adaptive: AdaptiveTuning {
            gens_per_round: 3,
            ..AdaptiveTuning::default()
        },
        evo: EvoConfig {
            population_size: 20,
            max_generations: 6,
            num_threads: 2,
            seed,
            ..EvoConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// A cached noisy backend, driven through two whole adaptive runs:
/// the second run's submissions are all cache hits, so its rounds bill
/// zero real measurements and its result is bit-identical.
#[test]
fn multi_round_selection_never_double_bills_cached_experiments() {
    let mut stack = CachingBackend::new(NoisyBackend::new(ModelBackend::new(ground_truth()), 0.02, 9));
    let config = adaptive_config(5);

    let first = run(5, 3, &mut stack, &config);
    let after_first = stack.stats();
    // Every real measurement this run performed is a distinct cache
    // entry, and the run billed exactly those.
    assert_eq!(after_first.measurements_performed, stack.cache_size() as u64);
    assert_eq!(first.measurements_performed, after_first.measurements_performed);
    assert!(first.rounds.len() > 1, "expected a multi-round run");

    let second = run(5, 3, &mut stack, &config);
    let after_second = stack.stats();
    // The second run re-requests the seed corpus (and every experiment
    // the first run measured) from the cache for free — its budget only
    // pays for genuinely new experiments, so it may legitimately
    // explore further. The invariant: real measurements grew by exactly
    // the number of new distinct cache entries, never by a re-bill.
    let new_entries = stack.cache_size() as u64 - after_first.measurements_performed;
    assert_eq!(
        after_second.measurements_performed - after_first.measurements_performed,
        new_entries,
        "cache hits were double-billed"
    );
    assert_eq!(second.measurements_performed, new_entries);
    assert!(after_second.measurements_requested > after_first.measurements_requested);
    // The budget caps real measurements per run regardless of cache
    // traffic.
    assert!(second.measurements_performed <= 13);
    // Round 0 resubmits the seed corpus (the five singletons plus the
    // congruence-verification pairs) — all cache hits.
    assert!(second.rounds[0].experiments_submitted >= 5);
    assert_eq!(
        second.rounds[0].experiments_submitted,
        first.rounds[0].experiments_submitted
    );
    assert_eq!(second.rounds[0].measurements_performed, 0);
    // Cached values are identical, so the shared prefix of the two runs
    // evolved identically: the first training error (computed on the
    // seed corpus alone) must match bit for bit.
    assert_eq!(
        second.rounds[0].training_error,
        first.rounds[0].training_error
    );
}

/// `cached(noisy(model))` and `noisy(cached(model))` agree on every
/// value: the noise stream depends only on `(seed, experiment)`, so
/// caching under or over the noise is observationally equivalent.
#[test]
fn decorator_order_does_not_change_measured_values() {
    let sigma = 0.05;
    let seed = 42;
    let mut cached_noisy =
        CachingBackend::new(NoisyBackend::new(ModelBackend::new(ground_truth()), sigma, seed));
    let mut noisy_cached =
        NoisyBackend::new(CachingBackend::new(ModelBackend::new(ground_truth())), sigma, seed);

    let exps: Vec<Experiment> = (0..5u32)
        .map(|i| Experiment::singleton(InstId(i)))
        .chain((0..4u32).map(|i| Experiment::pair(InstId(i), 1, InstId(i + 1), 2)))
        .collect();
    // Same experiments, different batch boundaries and repetition
    // patterns per stack.
    let a: Vec<f64> = exps.chunks(3).flat_map(|c| cached_noisy.measure_batch(c)).collect();
    let mut b: Vec<f64> = Vec::new();
    for e in &exps {
        b.push(noisy_cached.measure_batch(std::slice::from_ref(e))[0]);
    }
    assert_eq!(a, b, "decorator order changed measured values");
    // Noise actually fired (the stack is not silently exact).
    let mut exact = ModelBackend::new(ground_truth());
    assert_ne!(a, exact.measure_batch(&exps));

    // Re-measuring in reverse order answers from cache with the same
    // values and bills nothing new on the caching stack.
    let performed = cached_noisy.stats().measurements_performed;
    let reversed: Vec<Experiment> = exps.iter().rev().cloned().collect();
    let c = cached_noisy.measure_batch(&reversed);
    assert_eq!(
        c,
        a.iter().rev().copied().collect::<Vec<f64>>(),
        "submission order changed cached values"
    );
    assert_eq!(cached_noisy.stats().measurements_performed, performed);
}

/// The full adaptive pipeline over both stack orders produces the same
/// inference outcome — the scheduler sees identical measurements either
/// way.
#[test]
fn adaptive_run_is_stack_order_independent() {
    let sigma = 0.03;
    let noise_seed = 7;
    let config = adaptive_config(11);
    let mut cached_noisy = CachingBackend::new(NoisyBackend::new(
        ModelBackend::new(ground_truth()),
        sigma,
        noise_seed,
    ));
    let mut noisy_cached = NoisyBackend::new(
        CachingBackend::new(ModelBackend::new(ground_truth())),
        sigma,
        noise_seed,
    );
    let a = run(5, 3, &mut cached_noisy, &config);
    let b = run(5, 3, &mut noisy_cached, &config);
    assert_eq!(a.mapping, b.mapping);
    assert_eq!(a.num_experiments, b.num_experiments);
    assert_eq!(a.evo.objectives.error, b.evo.objectives.error);
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.training_error, rb.training_error);
        assert_eq!(ra.experiments_submitted, rb.experiments_submitted);
    }
}
