//! The serving path of `pmevo-cli` must never panic on malformed
//! input: bad numeric flags, zero worker/batch counts and a missing
//! `--mapping` all get a printable error plus the usage text on stderr
//! and a nonzero exit — no backtraces, no aborts.

use std::process::{Command, Output, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pmevo-cli"))
}

fn run(args: &[&str]) -> Output {
    cli()
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("spawn pmevo-cli")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Every graceful failure: no panic marker, an `error:` line naming the
/// offense, the usage text for orientation.
fn assert_graceful(out: &Output, needle: &str) {
    let stderr = stderr_of(out);
    assert!(
        !stderr.contains("panicked"),
        "serving path must not panic:\n{stderr}"
    );
    assert!(stderr.contains(needle), "stderr must contain {needle:?}:\n{stderr}");
    assert!(stderr.contains("usage: pmevo-cli"), "stderr must show usage:\n{stderr}");
    assert!(!out.status.success());
}

#[test]
fn malformed_numeric_flags_error_instead_of_panicking() {
    for flag in ["--jobs", "--cache", "--batch"] {
        let out = run(&["predict", "--mapping", "TINY=whatever.json", flag, "abc"]);
        assert_graceful(&out, &format!("error: {flag} expects a number, got \"abc\""));
        assert_eq!(out.status.code(), Some(1), "bad {flag} value exits 1");
    }
    for (cmd, flag) in [("infer", "--population"), ("infer", "--seed"), ("show", "--limit")] {
        let out = run(&[cmd, "--platform", "TINY", flag, "abc"]);
        assert_graceful(&out, &format!("error: {flag} expects a number, got \"abc\""));
    }
}

#[test]
fn zero_worker_and_batch_counts_are_rejected_loudly() {
    // --jobs 0 would build an empty worker pool; --batch 0 would turn
    // the flush threshold into "always" and silently degrade batching.
    for flag in ["--jobs", "--batch"] {
        let out = run(&["predict", "--mapping", "TINY=whatever.json", flag, "0"]);
        assert_graceful(&out, &format!("error: {flag} must be at least 1, got 0"));
        assert_eq!(out.status.code(), Some(1));
    }
}

#[test]
fn predict_without_mappings_asks_for_one() {
    let out = run(&["predict"]);
    assert_graceful(&out, "at least one --mapping NAME=file.json is required");
    assert_eq!(out.status.code(), Some(2), "missing flags are usage errors");
}

#[test]
fn unreadable_and_malformed_mapping_specs_error_cleanly() {
    let out = run(&["predict", "--mapping", "TINY=/definitely/not/here.json"]);
    assert_graceful(&out, "cannot read /definitely/not/here.json");

    let out = run(&["predict", "--mapping", "M1=x.json"]);
    assert_graceful(&out, "unknown platform \"M1\"");
}

#[test]
fn client_without_an_endpoint_is_a_usage_error() {
    let out = run(&["client"]);
    assert_graceful(&out, "exactly one of --connect HOST:PORT or --unix PATH");
}
