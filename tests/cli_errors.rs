//! The serving path of `pmevo-cli` must never panic on malformed
//! input: bad numeric flags, zero worker/batch counts and a missing
//! `--mapping` all get a printable error plus the usage text on stderr
//! and a nonzero exit — no backtraces, no aborts. Corpus-replay mode
//! additionally pinpoints bad corpus lines by line *and* column and
//! suggests the nearest known mnemonic for typos.

use pmevo::machine::platforms;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pmevo-cli"))
}

fn run(args: &[&str]) -> Output {
    cli()
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("spawn pmevo-cli")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Every graceful failure: no panic marker, an `error:` line naming the
/// offense, the usage text for orientation.
fn assert_graceful(out: &Output, needle: &str) {
    let stderr = stderr_of(out);
    assert!(
        !stderr.contains("panicked"),
        "serving path must not panic:\n{stderr}"
    );
    assert!(stderr.contains(needle), "stderr must contain {needle:?}:\n{stderr}");
    assert!(stderr.contains("usage: pmevo-cli"), "stderr must show usage:\n{stderr}");
    assert!(!out.status.success());
}

#[test]
fn malformed_numeric_flags_error_instead_of_panicking() {
    for flag in ["--jobs", "--cache", "--batch"] {
        let out = run(&["predict", "--mapping", "TINY=whatever.json", flag, "abc"]);
        assert_graceful(&out, &format!("error: {flag} expects a number, got \"abc\""));
        assert_eq!(out.status.code(), Some(1), "bad {flag} value exits 1");
    }
    for (cmd, flag) in [("infer", "--population"), ("infer", "--seed"), ("show", "--limit")] {
        let out = run(&[cmd, "--platform", "TINY", flag, "abc"]);
        assert_graceful(&out, &format!("error: {flag} expects a number, got \"abc\""));
    }
}

#[test]
fn zero_worker_and_batch_counts_are_rejected_loudly() {
    // --jobs 0 would build an empty worker pool; --batch 0 would turn
    // the flush threshold into "always" and silently degrade batching.
    for flag in ["--jobs", "--batch"] {
        let out = run(&["predict", "--mapping", "TINY=whatever.json", flag, "0"]);
        assert_graceful(&out, &format!("error: {flag} must be at least 1, got 0"));
        assert_eq!(out.status.code(), Some(1));
    }
}

#[test]
fn predict_without_mappings_asks_for_one() {
    let out = run(&["predict"]);
    assert_graceful(&out, "at least one --mapping NAME=file.json is required");
    assert_eq!(out.status.code(), Some(2), "missing flags are usage errors");
}

#[test]
fn unreadable_and_malformed_mapping_specs_error_cleanly() {
    let out = run(&["predict", "--mapping", "TINY=/definitely/not/here.json"]);
    assert_graceful(&out, "cannot read /definitely/not/here.json");

    // A free (non-platform) name is legal only for binary artifacts,
    // which embed their instruction names; a JSON artifact under one is
    // refused with a pointer at the converter.
    let tiny = scratch("free_name.json", &platforms::tiny().ground_truth().to_json_pretty());
    let out = run(&["predict", "--mapping", &format!("M1={}", tiny.display())]);
    assert_graceful(&out, "\"M1\" is not a built-in platform");
    assert_graceful(&out, "see `pmevo-cli convert`");
}

#[test]
fn mapping_names_with_reserved_characters_are_rejected() {
    // `@` is the version separator of the `name@version` grammar; a
    // registered name containing it would make `!reload TINY@2=...`
    // ambiguous forever after.
    let out = run(&["predict", "--mapping", "TINY@2=whatever.json"]);
    assert_graceful(&out, "invalid mapping name \"TINY@2\"");
    assert_graceful(&out, "must not contain '@'");

    let out = run(&["predict", "--mapping", "BAD NAME=whatever.json"]);
    assert_graceful(&out, "invalid mapping name \"BAD NAME\"");
}

#[test]
fn malformed_store_budget_is_rejected_loudly() {
    for bad in ["abc", "12q", "-5"] {
        let out = run(&["predict", "--mapping", "TINY=whatever.json", "--store-budget", bad]);
        assert_graceful(
            &out,
            &format!("error: --store-budget expects bytes (with an optional k/m/g suffix), got {bad:?}"),
        );
        assert_eq!(out.status.code(), Some(1), "bad --store-budget value exits 1");
    }
}

#[test]
fn infer_rejects_unknown_artifact_formats() {
    let out = run(&["infer", "--platform", "TINY", "--format", "msgpack"]);
    let stderr = stderr_of(&out);
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(stderr.contains("unknown --format msgpack; expected json or bin"), "{stderr}");
    assert_eq!(out.status.code(), Some(2), "unknown format is a usage error");
}

#[test]
fn convert_errors_are_reported_cleanly() {
    // Missing --in/--out is a usage error.
    let out = run(&["convert"]);
    assert_corpus_error(&out, "convert needs --in <artifact> and --out <artifact>");
    assert_eq!(out.status.code(), Some(2));

    let out = run(&["convert", "--in", "/definitely/not/here.bin", "--out", "x.json"]);
    assert_corpus_error(&out, "cannot read /definitely/not/here.bin");
    assert_eq!(out.status.code(), Some(1));

    // JSON → binary without a platform: the binary format embeds the
    // instruction-name table, which JSON artifacts do not carry.
    let tiny = scratch("convert_tiny.json", &platforms::tiny().ground_truth().to_json_pretty());
    let out = run(&["convert", "--in", tiny.to_str().unwrap(), "--out", "x.bin"]);
    assert_corpus_error(&out, "converting a JSON artifact to binary needs --platform");
    assert_eq!(out.status.code(), Some(2));

    // A corrupt binary artifact decodes to a structured error naming the
    // byte offset, not a panic.
    let garbage = scratch("convert_garbage.bin", "PMEVOBINgarbage-not-a-real-artifact");
    let out = run(&["convert", "--in", garbage.to_str().unwrap(), "--out", "x.json"]);
    assert_corpus_error(&out, "cannot decode");
    assert_corpus_error(&out, "at byte");
}

#[test]
fn client_without_an_endpoint_is_a_usage_error() {
    let out = run(&["client"]);
    assert_graceful(&out, "exactly one of --connect HOST:PORT or --unix PATH");
}

/// A corpus-mode failure: nonzero exit, no panic, a stderr line naming
/// the offense (these are flag-level errors, reported without the full
/// usage dump).
fn assert_corpus_error(out: &Output, needle: &str) {
    let stderr = stderr_of(out);
    assert!(!stderr.contains("panicked"), "corpus mode must not panic:\n{stderr}");
    assert!(stderr.contains(needle), "stderr must contain {needle:?}:\n{stderr}");
    assert!(!out.status.success());
}

/// Writes `file` into a temp dir for corpus-mode tests and returns its
/// path.
fn scratch(file: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pmevo_cli_errors");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(file);
    std::fs::write(&path, contents).expect("write scratch file");
    path
}

#[test]
fn corpus_mode_flag_errors_are_reported_cleanly() {
    let corpus = scratch("corpus_flags.txt", "addq %rax, %rbx\n");
    let corpus = corpus.to_str().unwrap();

    let out = run(&["predict", "--corpus", corpus]);
    assert_corpus_error(&out, "missing --uarch (skl, zen or a72)");
    assert_eq!(out.status.code(), Some(2));

    let out = run(&["predict", "--corpus", corpus, "--uarch", "m1"]);
    assert_corpus_error(&out, "unknown uarch m1; expected skl, zen or a72");

    let out = run(&["predict", "--corpus", corpus, "--uarch", "skl", "--isa", "riscv"]);
    assert_corpus_error(&out, "unsupported --isa riscv");

    // A mapping for the wrong platform: the error names the one needed.
    let tiny = scratch("tiny.json", &platforms::tiny().ground_truth().to_json_pretty());
    let out = run(&[
        "predict", "--corpus", corpus, "--uarch", "skl",
        "--mapping", &format!("TINY={}", tiny.display()),
    ]);
    assert_corpus_error(&out, "corpus replay on skl needs --mapping SKL=file.json");

    let skl = scratch("skl.json", &platforms::skl().ground_truth().to_json_pretty());
    let out = run(&[
        "predict", "--corpus", "/definitely/not/here.txt", "--uarch", "skl",
        "--mapping", &format!("SKL={}", skl.display()),
    ]);
    assert_corpus_error(&out, "cannot read /definitely/not/here.txt");
}

/// Unmappable corpus lines come back as records carrying the 1-based
/// line *and column* of the offending token, and typo'd mnemonics get a
/// nearest-known suggestion.
#[test]
fn corpus_records_carry_line_column_and_suggestions() {
    let corpus = scratch(
        "corpus_bad.txt",
        "addq %rax, %rbx\n\naddd %rax, %rbx\n\nmov rax, @x\n",
    );
    let skl = scratch("skl.json", &platforms::skl().ground_truth().to_json_pretty());
    let out = run(&[
        "predict",
        "--corpus", corpus.to_str().unwrap(),
        "--uarch", "skl",
        "--mapping", &format!("SKL={}", skl.display()),
    ]);
    let stderr = stderr_of(&out);
    assert!(out.status.success(), "replay with bad lines still exits 0:\n{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);

    // Block 0 maps; block 1 is a typo with a suggestion; block 2 is
    // lexically malformed with a column inside the operand.
    assert!(stdout.contains("\"block\":0,\"line\":1,\"insts\":1,\"mapping\":\"SKL@1\",\"cycles\":"), "{stdout}");
    assert!(
        stdout.contains("\"block\":1,\"line\":3,\"column\":1,\"reason\":\"unknown_mnemonic\""),
        "{stdout}"
    );
    assert!(stdout.contains("did you mean \\\"add\\\"?"), "{stdout}");
    assert!(
        stdout.contains("\"block\":2,\"line\":5,\"column\":10,\"reason\":\"malformed_line\""),
        "{stdout}"
    );
    // The final line is the accounting summary, with every block counted.
    let last = stdout.lines().last().expect("accounting line");
    assert!(last.starts_with("{\"blocks\":3,\"mapped_blocks\":1,"), "{last}");
    assert!(last.contains("\"by_reason\":{\"malformed_line\":1,\"unknown_mnemonic\":1}"), "{last}");
}

/// The one-off `--experiment` path suggests the nearest known form for
/// a typo'd instruction name.
#[test]
fn experiment_mode_suggests_nearest_form() {
    let tiny = scratch("tiny.json", &platforms::tiny().ground_truth().to_json_pretty());
    let out = run(&[
        "predict",
        "--platform", "TINY",
        "--mapping", tiny.to_str().unwrap(),
        "--experiment", "add_r64_r64_r6:1",
    ]);
    assert!(!out.status.success());
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains(
            "unknown instruction form \"add_r64_r64_r6\" (did you mean \"add_r64_r64_r64\"?)"
        ),
        "{stderr}"
    );
}

// ---------------------------------------------------------------------------
// Checkpoint/resume error paths: a corrupted, truncated, missing or
// mismatched artifact must produce a positioned error, never a panic.

/// The committed known-good v1 checkpoint artifact.
fn golden_checkpoint() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/checkpoint_v1.json"
    ))
    .expect("golden checkpoint fixture present")
}

#[test]
fn resume_without_checkpoint_flag_is_a_usage_error() {
    let out = run(&["infer", "--platform", "TINY", "--resume"]);
    assert_corpus_error(&out, "--resume needs --checkpoint FILE");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn truncated_checkpoint_reports_the_byte_position() {
    let golden = golden_checkpoint();
    let truncated = scratch("ck_truncated.json", &golden[..golden.len() / 2]);
    let out = run(&[
        "infer", "--platform", "TINY",
        "--checkpoint", truncated.to_str().unwrap(),
        "--resume",
    ]);
    assert_corpus_error(&out, "error: cannot resume:");
    assert_corpus_error(&out, "at byte");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn corrupted_checkpoint_is_rejected_without_panicking() {
    let garbage = scratch("ck_garbage.json", "this is not a checkpoint");
    let out = run(&[
        "infer", "--platform", "TINY",
        "--checkpoint", garbage.to_str().unwrap(),
        "--resume",
    ]);
    assert_corpus_error(&out, "error: cannot resume:");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn future_checkpoint_version_is_named_in_the_error() {
    let from_the_future = golden_checkpoint().replace("\"version\":1,", "\"version\":99,");
    let path = scratch("ck_v99.json", &from_the_future);
    let out = run(&[
        "infer", "--platform", "TINY",
        "--checkpoint", path.to_str().unwrap(),
        "--resume",
    ]);
    assert_corpus_error(&out, "unsupported checkpoint version 99");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn missing_checkpoint_file_names_the_path() {
    let out = run(&[
        "infer", "--platform", "TINY",
        "--checkpoint", "/definitely/not/here/ck.json",
        "--resume",
    ]);
    assert_corpus_error(&out, "checkpoint I/O error on /definitely/not/here/ck.json");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn checkpoint_for_another_platform_is_a_header_mismatch() {
    // The golden artifact records the 6-form TINY universe; resuming it
    // into an SKL session must name the universe mismatch.
    let path = scratch("ck_tiny.json", &golden_checkpoint());
    let out = run(&[
        "infer", "--platform", "SKL",
        "--checkpoint", path.to_str().unwrap(),
        "--resume",
    ]);
    assert_corpus_error(&out, "checkpoint does not match this session:");
    assert_corpus_error(&out, "checkpointed universe is 6x4");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn conflicting_seed_on_resume_is_a_header_mismatch() {
    // Flags not repeated on resume are adopted from the artifact, but an
    // explicitly conflicting one is an error, not a silent divergence.
    let path = scratch("ck_seed.json", &golden_checkpoint());
    let out = run(&[
        "infer", "--platform", "TINY",
        "--checkpoint", path.to_str().unwrap(),
        "--resume",
        "--seed", "1",
    ]);
    assert_corpus_error(&out, "checkpoint does not match this session:");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn islands_and_checkpoint_require_the_pmevo_algorithm() {
    let out = run(&["infer", "--platform", "TINY", "--algorithm", "counting", "--islands", "2"]);
    assert_corpus_error(&out, "--islands and --checkpoint are only supported by the pmevo algorithm");
    assert_eq!(out.status.code(), Some(2));
}
