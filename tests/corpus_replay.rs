//! Corpus replay is a *golden* pipeline: the checked-in fixture is
//! byte-reproducible from its generator, SKL coverage meets the ≥95%
//! bar with every miss accounted for by reason, and the accounting JSON
//! is byte-identical across predictor worker counts — pinned here
//! against a literal golden string so any drift in parsing,
//! normalization, resolution or prediction order is caught as a diff.

use pmevo::machine::platforms;
use pmevo::predict::{MappingId, MappingStore, Predictor, PredictorConfig};
use pmevo::x86::{
    accounting_json, by_name, normalize, parse_line, replay, synthetic_corpus, BlockResult,
    Resolver,
};
use proptest::prelude::*;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/x86_corpus.txt");
const FIXTURE_BLOCKS: usize = 1200;
const FIXTURE_SEED: u64 = 0xB10C5;

fn fixture() -> String {
    std::fs::read_to_string(FIXTURE).expect("checked-in corpus fixture")
}

/// Ground-truth SKL predictor, `workers` wide.
fn skl_predictor(workers: usize) -> (Predictor, MappingId) {
    let p = platforms::skl();
    let mut store = MappingStore::new();
    let names = p.isa().forms().iter().map(|f| f.name.clone()).collect();
    let id = store.insert(p.name(), names, p.ground_truth().clone());
    (Predictor::new(store, PredictorConfig { workers, cache_capacity: 4096 }), id)
}

/// Regenerates the checked-in fixture. Run explicitly after changing the
/// corpus generator:
/// `cargo test --test corpus_replay -- --ignored regenerate_fixture`
#[test]
#[ignore = "overwrites the checked-in fixture"]
fn regenerate_fixture() {
    std::fs::write(FIXTURE, synthetic_corpus(FIXTURE_BLOCKS, FIXTURE_SEED))
        .expect("write corpus fixture");
}

/// The fixture is exactly what its generator produces — nobody can edit
/// one without the other, and the corpus stays reviewable as a seed
/// instead of as 1200 blocks of diff.
#[test]
fn fixture_matches_its_generator() {
    assert_eq!(
        fixture(),
        synthetic_corpus(FIXTURE_BLOCKS, FIXTURE_SEED),
        "tests/fixtures/x86_corpus.txt diverged from synthetic_corpus({FIXTURE_BLOCKS}, {FIXTURE_SEED:#x}); \
         regenerate it with `cargo test --test corpus_replay -- --ignored regenerate_fixture`"
    );
}

/// The ISSUE acceptance bar: ≥95% of the corpus maps on SKL, and every
/// block that does not map is accounted for under exactly one reason.
#[test]
fn skl_coverage_meets_the_bar_with_complete_accounting() {
    let corpus = fixture();
    let isa = pmevo::isa::synth::synthetic_x86();
    let resolver = Resolver::new(by_name("skl").unwrap(), &isa);
    let (predictor, id) = skl_predictor(1);
    let r = replay(&corpus, &resolver, &predictor, id);
    let acc = &r.accounting;

    assert_eq!(acc.blocks, FIXTURE_BLOCKS as u64);
    assert!(
        acc.inst_coverage() >= 0.95,
        "SKL instruction coverage {:.3} below the 95% bar",
        acc.inst_coverage()
    );

    // Accounting is complete: mapped + per-reason failures == all blocks.
    let unmapped: u64 = acc.by_reason.values().sum();
    assert_eq!(acc.mapped_blocks + unmapped, acc.blocks);

    // And it agrees with the per-block outcomes, reason by reason.
    let known = ["malformed_line", "unknown_mnemonic", "unsupported_operands", "missing_extension"];
    let mut mapped = 0u64;
    let mut by_reason = std::collections::BTreeMap::new();
    for outcome in &r.outcomes {
        match &outcome.result {
            BlockResult::Cycles(t) => {
                assert!(t.is_finite() && *t > 0.0, "mapped blocks get real cycle counts");
                mapped += 1;
            }
            BlockResult::Unmapped { line, column, reason, .. } => {
                assert!(known.contains(reason), "unexpected reason {reason:?}");
                assert!(*line > 0 && *column > 0, "failures carry 1-based positions");
                *by_reason.entry(*reason).or_insert(0u64) += 1;
            }
        }
    }
    assert_eq!(mapped, acc.mapped_blocks);
    assert_eq!(by_reason, acc.by_reason);
}

/// The golden accounting line: byte-identical across 1/2/8 predictor
/// workers *and* pinned to a literal, so determinism regressions and
/// silent pipeline drift both fail this test.
#[test]
fn accounting_json_is_golden_across_worker_counts() {
    const GOLDEN: &str = "{\"blocks\":1200,\"mapped_blocks\":1138,\"insts\":4209,\
                          \"mapped_insts\":4146,\"inst_coverage\":0.985032074126871,\
                          \"block_coverage\":0.9483333333333334,\
                          \"by_reason\":{\"malformed_line\":13,\"unknown_mnemonic\":37,\
                          \"unsupported_operands\":12},\"checksum\":16607107859544355903}";
    let corpus = fixture();
    let isa = pmevo::isa::synth::synthetic_x86();
    let resolver = Resolver::new(by_name("skl").unwrap(), &isa);
    for workers in [1, 2, 8] {
        let (predictor, id) = skl_predictor(workers);
        let r = replay(&corpus, &resolver, &predictor, id);
        assert_eq!(
            accounting_json(&r.accounting),
            GOLDEN,
            "accounting drifted (workers={workers})"
        );
    }
}

/// Uniform pick from a static word list (the vendored proptest stub has
/// no `sample::select`).
fn pick(options: &'static [&'static str]) -> impl Strategy<Value = &'static str> {
    (0..options.len()).prop_map(move |i| options[i])
}

fn reg64() -> impl Strategy<Value = &'static str> {
    pick(&["rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8", "r9"])
}

fn reg32() -> impl Strategy<Value = &'static str> {
    pick(&["eax", "ebx", "ecx", "edx", "esi", "edi", "r10d", "r11d"])
}

fn xmm() -> impl Strategy<Value = &'static str> {
    pick(&["xmm0", "xmm1", "xmm2", "xmm3", "xmm4", "xmm5"])
}

fn ymm() -> impl Strategy<Value = &'static str> {
    pick(&["ymm0", "ymm1", "ymm2", "ymm3"])
}

/// The same instruction spelled in both dialects, over the form
/// universe's main operand shapes: ALU reg/imm/mem, lea, movzx, shifts,
/// SSE two-operand, AVX three-operand.
fn att_intel_pairs() -> impl Strategy<Value = (String, String)> {
    prop_oneof![
        (pick(&["add", "sub", "and", "or", "xor", "cmp"]), reg64(), reg64())
            .prop_map(|(m, d, s)| (format!("{m}q %{s}, %{d}"), format!("{m} {d}, {s}"))),
        (pick(&["add", "sub", "cmp", "mov"]), reg64(), 0u32..64)
            .prop_map(|(m, d, i)| (format!("{m}q ${i}, %{d}"), format!("{m} {d}, {i}"))),
        (pick(&["add", "sub", "xor"]), reg64(), reg64(), 0usize..8).prop_map(
            |(m, d, b, k)| (
                format!("{m}q {}(%{b}), %{d}", 8 * k),
                format!("{m} {d}, qword ptr [{b}+{}]", 8 * k),
            )
        ),
        (reg64(), reg64(), 0usize..8).prop_map(|(d, b, k)| (
            format!("leaq {}(%{b}), %{d}", 8 * k),
            format!("lea {d}, [{b}+{}]", 8 * k),
        )),
        (reg32(), reg64()).prop_map(|(d, b)| (
            format!("movzbl (%{b}), %{d}"),
            format!("movzx {d}, byte ptr [{b}]"),
        )),
        (pick(&["shl", "shr", "sar"]), reg64(), 0u32..64)
            .prop_map(|(m, d, i)| (format!("{m}q ${i}, %{d}"), format!("{m} {d}, {i}"))),
        (
            pick(&["paddd", "psubq", "pand", "pxor", "addps", "mulpd"]),
            xmm(),
            xmm()
        )
            .prop_map(|(m, d, s)| (format!("{m} %{s}, %{d}"), format!("{m} {d}, {s}"))),
        (pick(&["paddd", "pxor", "addps", "mulps"]), ymm(), ymm(), ymm())
            .prop_map(|(m, d, a, b)| (
                format!("v{m} %{b}, %{a}, %{d}"),
                format!("v{m} {d}, {a}, {b}"),
            )),
    ]
}

proptest! {
    /// Mnemonic normalization round-trips: the AT&T and Intel spellings
    /// of one instruction normalize to the same canonical mnemonic and
    /// operand shapes, and resolve to the same SKL instruction form.
    #[test]
    fn att_and_intel_spellings_resolve_to_the_same_form((att, intel) in att_intel_pairs()) {
        let isa = pmevo::isa::synth::synthetic_x86();
        let resolver = Resolver::new(by_name("skl").unwrap(), &isa);
        let a = normalize(&parse_line(&att).expect("att parses").expect("att is code"));
        let b = normalize(&parse_line(&intel).expect("intel parses").expect("intel is code"));
        prop_assert_eq!(&a, &b, "normalization must be dialect-independent: {} vs {}", att, intel);
        let fa = resolver.resolve(&a).expect("att spelling resolves on SKL");
        let fb = resolver.resolve(&b).expect("intel spelling resolves on SKL");
        prop_assert_eq!(fa, fb);
    }
}

/// Sanity anchor for the proptest: one concrete pair through the whole
/// pipe, with the resolved form name spelled out.
#[test]
fn concrete_pair_resolves_to_add_r64_r64() {
    let isa = pmevo::isa::synth::synthetic_x86();
    let resolver = Resolver::new(by_name("skl").unwrap(), &isa);
    for line in ["addq %rax, %rbx", "add rbx, rax"] {
        let id = resolver
            .resolve(&normalize(&parse_line(line).unwrap().unwrap()))
            .expect("resolves");
        assert_eq!(isa.form(id).name, "add_r64_r64");
    }
}
