//! Checkpoint/resume test pyramid: a session killed at an arbitrary
//! checkpoint and resumed from the artifact must reproduce the
//! uninterrupted run bit-for-bit (timings aside), for every worker
//! count and island count — plus a golden on-disk fixture that pins the
//! v1 artifact format itself.

use proptest::prelude::*;
use pmevo::core::{MeasurementBudget, SelectionPolicy};
use pmevo::machine::platforms;
use pmevo::{Session, SessionCheckpoint, SessionReport};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A per-test scratch directory under the system temp dir. Tests write
/// uniquely-named files into it, so no cleanup races between tests.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pmevo_checkpoint_resume").join(name);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Everything that parameterizes one inference run in these tests.
#[derive(Clone, Copy)]
struct Run {
    seed: u64,
    islands: u32,
    workers: usize,
    /// `true` → adaptive (disagreement selection under a budget),
    /// `false` → one-shot over the full corpus.
    adaptive: bool,
}

/// Build and run a TINY-platform session. `checkpoint` is
/// `(path, every, halt_after)`; `halt_after = 0` means run to the end.
fn run_session(
    run: Run,
    checkpoint: Option<(&Path, u32, u32)>,
    resume: Option<SessionCheckpoint>,
) -> SessionReport {
    let mut builder = Session::builder()
        .platform(platforms::tiny())
        .seed(run.seed)
        .population(24)
        .max_generations(10)
        .islands(run.islands)
        .accuracy_benchmarks(6);
    if run.adaptive {
        builder = builder
            .selection(SelectionPolicy::Disagreement { top_k: 3 })
            .budget(MeasurementBudget::measurements(30));
    }
    if let Some((path, every, halt_after)) = checkpoint {
        builder = builder.checkpoint(path, every);
        if halt_after > 0 {
            builder = builder.halt_after_checkpoints(halt_after);
        }
    }
    if let Some(snapshot) = resume {
        builder = builder.resume_from(snapshot);
    }
    let mut session = builder.build().expect("session config is valid");
    session.set_worker_threads(run.workers);
    session.run()
}

/// Run the kill → resume → compare cycle once and return
/// `(uninterrupted, resumed)` reports.
fn kill_and_resume(run: Run, dir: &Path, tag: &str, halt_after: u32) -> (SessionReport, SessionReport) {
    let ck = dir.join(format!("ck_{tag}.json"));
    let full = run_session(run, None, None);
    let halted = run_session(run, Some((&ck, 1, halt_after)), None);
    // The halted run must actually have stopped early, or the test
    // degenerates into comparing two complete runs.
    assert!(
        halted.rounds.len() <= full.rounds.len(),
        "halted run ran past the uninterrupted one"
    );
    let snapshot = SessionCheckpoint::load(&ck).expect("halted run wrote a checkpoint");
    let resumed = run_session(run, Some((&ck, 1, 0)), Some(snapshot));
    (full, resumed)
}

/// The acceptance bar from the issue: an adaptive session killed
/// mid-flight and resumed from its checkpoint produces a report
/// bit-identical to the uninterrupted run — at 1, 2 and 8 workers.
#[test]
fn killed_adaptive_session_resumes_bit_identically_at_1_2_8_workers() {
    let dir = scratch_dir("adaptive_workers");
    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        let run = Run { seed: 77, islands: 2, workers, adaptive: true };
        let (full, resumed) = kill_and_resume(run, &dir, &format!("w{workers}"), 3);
        assert_eq!(
            resumed.without_timings(),
            full.without_timings(),
            "resume diverged at {workers} workers"
        );
        reports.push(full.without_timings());
    }
    // And the uninterrupted runs themselves are worker-count invariant.
    assert_eq!(reports[0], reports[1], "1 vs 2 workers");
    assert_eq!(reports[0], reports[2], "1 vs 8 workers");
}

/// Same bar for the one-shot pipeline, which snapshots mid-evolution
/// rather than between selection rounds.
#[test]
fn killed_one_shot_session_resumes_bit_identically() {
    let dir = scratch_dir("one_shot");
    for workers in [1usize, 2, 8] {
        let run = Run { seed: 5, islands: 3, workers, adaptive: false };
        let (full, resumed) = kill_and_resume(run, &dir, &format!("w{workers}"), 2);
        assert_eq!(
            resumed.without_timings(),
            full.without_timings(),
            "one-shot resume diverged at {workers} workers"
        );
    }
}

/// The island × worker bit-identity matrix: for each island count, all
/// worker counts agree, and for a fixed seed the report depends only on
/// the island count.
#[test]
fn island_reports_are_worker_count_invariant() {
    for islands in [1u32, 2, 4] {
        let reference = run_session(
            Run { seed: 11, islands, workers: 1, adaptive: false },
            None,
            None,
        )
        .without_timings();
        for workers in [2usize, 8] {
            let report = run_session(
                Run { seed: 11, islands, workers, adaptive: false },
                None,
                None,
            );
            assert_eq!(
                report.without_timings(),
                reference,
                "islands={islands} diverged at {workers} workers"
            );
        }
    }
}

/// A resumed run must not re-measure experiments the checkpointed
/// segment already paid for: total measurements across the kill/resume
/// cycle equal the uninterrupted run's.
#[test]
fn resume_does_not_re_measure() {
    let dir = scratch_dir("billing");
    let run = Run { seed: 3, islands: 2, workers: 2, adaptive: true };
    let (full, resumed) = kill_and_resume(run, &dir, "billing", 2);
    assert_eq!(resumed.measurements_performed, full.measurements_performed);
}

proptest! {
    // Each case runs three full inference sessions; keep the budget
    // small (PROPTEST_CASES only caps this downward).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill/resume fuzz: checkpoint at a random generation of a run
    /// with random seed/island-count/pipeline, drop the session, resume
    /// from the artifact — the final report is bit-identical to the
    /// uninterrupted run.
    #[test]
    fn resume_from_any_checkpoint_reproduces_the_uninterrupted_run(
        seed in 0u64..10_000,
        halt_after in 1u32..6,
        islands in 1u32..5,
        adaptive in 0u32..2,
    ) {
        let adaptive = adaptive == 1;
        let dir = scratch_dir("fuzz");
        let run = Run { seed, islands, workers: 2, adaptive };
        let tag = format!("s{seed}_h{halt_after}_i{islands}_{adaptive}");
        let (full, resumed) = kill_and_resume(run, &dir, &tag, halt_after);
        prop_assert_eq!(resumed.without_timings(), full.without_timings());
    }
}

/// Path of the committed golden checkpoint artifact.
fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/checkpoint_v1.json")
}

/// The parameters the golden fixture was generated with; the regen test
/// below and the decode test must agree on them.
const GOLDEN: Run = Run { seed: 424_242, islands: 2, workers: 2, adaptive: true };

/// The committed v1 artifact keeps decoding: old checkpoints stay
/// resumable as the code evolves. Also pins the canonical round trip.
#[test]
fn golden_checkpoint_v1_still_decodes() {
    let text = std::fs::read_to_string(fixture_path()).expect("golden fixture present");
    let cp = SessionCheckpoint::from_json(&text).expect("golden v1 checkpoint decodes");
    assert_eq!(cp.seed, GOLDEN.seed);
    assert_eq!(cp.islands, GOLDEN.islands);
    assert_eq!(cp.num_insts, platforms::tiny().isa().len());
    assert_eq!(cp.num_ports, platforms::tiny().num_ports());
    assert_eq!(cp.selection, SelectionPolicy::Disagreement { top_k: 3 });
    assert_eq!(cp.budget, MeasurementBudget::measurements(30));
    let evo = cp.evo.as_ref().expect("mid-evolution checkpoint carries state");
    assert_eq!(evo.islands.len(), GOLDEN.islands as usize);
    for island in &evo.islands {
        assert_eq!(island.population.len(), cp.population_size as usize);
    }
    // Canonical form survives a decode → encode → decode cycle.
    let again = SessionCheckpoint::from_json(&cp.to_json()).expect("round trip decodes");
    assert_eq!(again, cp);
}

/// The golden fixture still resumes to the same report as the
/// uninterrupted run with its recorded parameters.
#[test]
fn golden_checkpoint_v1_still_resumes() {
    let dir = scratch_dir("golden_resume");
    let ck = dir.join("golden_live.json");
    // Copy the fixture so the resumed run's own checkpoints don't
    // overwrite the committed artifact.
    std::fs::copy(fixture_path(), &ck).expect("copy fixture into scratch");
    let snapshot = SessionCheckpoint::load(&ck).expect("golden fixture loads");
    let resumed = run_session(GOLDEN, Some((&ck, 1, 0)), Some(snapshot));
    let full = run_session(GOLDEN, None, None);
    assert_eq!(resumed.without_timings(), full.without_timings());
}

/// Regenerates `tests/fixtures/checkpoint_v1.json`. Run explicitly
/// (`cargo test -- --ignored regenerate_golden`) after an intentional
/// format change, then commit the new artifact.
#[test]
#[ignore = "writes the committed golden fixture; run by hand after intentional format changes"]
fn regenerate_golden_checkpoint_fixture() {
    let dir = scratch_dir("golden_regen");
    let ck = dir.join("ck.json");
    let _ = run_session(GOLDEN, Some((&ck, 1, 2)), None);
    let mut cp = SessionCheckpoint::load(&ck).expect("halted run wrote a checkpoint");
    // Wall-clock time is the only run-to-run unstable field; zero it so
    // the committed artifact is reproducible.
    cp.used.measurement_time = Duration::ZERO;
    cp.rounds = cp.rounds.drain(..).map(|r| r.without_timing()).collect();
    cp.save(&fixture_path()).expect("write golden fixture");
}
