//! Property tests for the binary artifact codec (ISSUE 9 tentpole):
//! `to_bytes`/`from_bytes` round-trips are bit-exact and agree with the
//! JSON codec on random mappings and name tables, and random truncation
//! or corruption never panics the decoder.

use pmevo_core::{MappingArtifact, PortSet, ThreeLevelMapping, UopEntry};
use proptest::prelude::*;

const MAX_PORTS_TESTED: usize = 6;

fn artifact_strategy() -> impl Strategy<Value = MappingArtifact> {
    (1usize..=MAX_PORTS_TESTED)
        .prop_flat_map(|num_ports| {
            let decomp = proptest::collection::vec(
                proptest::collection::vec((0u32..5, 0u64..(1 << num_ports)), 0..5),
                0..8,
            );
            (Just(num_ports), decomp)
        })
        .prop_map(|(num_ports, decomp)| {
            let mapping = ThreeLevelMapping::new(
                num_ports,
                decomp
                    .into_iter()
                    .map(|entries| {
                        entries
                            .into_iter()
                            .map(|(n, mask)| UopEntry::new(n, PortSet::from_mask(mask)))
                            .collect()
                    })
                    .collect(),
            );
            // Name table with empty, unicode and collision-prone names.
            let names = (0..mapping.num_insts())
                .map(|i| match i % 4 {
                    0 => String::new(),
                    1 => format!("inst_{i}"),
                    2 => format!("µop_{i}"),
                    _ => "x".repeat(i),
                })
                .collect();
            MappingArtifact::new(names, mapping)
        })
}

proptest! {
    /// artifact → bytes → artifact is the identity, and re-encoding the
    /// decoded artifact reproduces the very same bytes.
    #[test]
    fn bytes_roundtrip_is_bit_exact(a in artifact_strategy()) {
        let bytes = a.to_bytes();
        let back = MappingArtifact::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &a);
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// The binary codec and the JSON codec agree: decoding either
    /// serialization of the same mapping yields structurally equal
    /// mappings (both re-normalize identically).
    #[test]
    fn binary_equals_json_roundtrip(a in artifact_strategy()) {
        let via_json = ThreeLevelMapping::from_json(&a.mapping().to_json()).unwrap();
        let via_bin = MappingArtifact::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(via_bin.mapping(), &via_json);
        prop_assert_eq!(via_bin.mapping(), &via_json.clone());
        prop_assert_eq!(a.mapping(), &via_json);
    }

    /// Truncating an artifact anywhere yields an error (with an in-range
    /// offset), never a panic or a silent partial decode.
    #[test]
    fn truncation_never_decodes(a in artifact_strategy(), frac in 0.0f64..1.0) {
        let bytes = a.to_bytes();
        let len = ((bytes.len() as f64) * frac) as usize;
        if len < bytes.len() {
            let err = MappingArtifact::from_bytes(&bytes[..len]).unwrap_err();
            prop_assert!(err.offset <= bytes.len());
        }
    }

    /// Flipping any single bit is caught (by the checksum or a
    /// structural check) — corrupt artifacts never decode cleanly.
    #[test]
    fn corruption_never_decodes(a in artifact_strategy(), pos in 0usize..4096, bit in 0u8..8) {
        let mut bytes = a.to_bytes();
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        prop_assert!(MappingArtifact::from_bytes(&bytes).is_err());
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = MappingArtifact::from_bytes(&bytes);
    }
}
