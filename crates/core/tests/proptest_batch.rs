//! Lockstep-vs-scalar bit-identity of the batched solve path:
//! [`ThroughputSolver::predict_batch`] (and `predict_all`) must return,
//! for every experiment, the **exact bits** of a per-index `predict` —
//! across random platforms, batch sizes 1/7/64, and crafted shapes that
//! force each of the four kernel strategies (union-closure, scatter,
//! scalar zeta, and the lane-parallel zeta that only coalesced batches
//! can reach).

use proptest::prelude::*;
use pmevo_core::{
    CompiledExperiments, Experiment, InstId, MeasuredExperiment, PortSet, ThreeLevelMapping,
    ThroughputSolver, UopEntry,
};

/// A random non-empty port set over `num_ports` ports.
fn port_set(num_ports: usize) -> impl Strategy<Value = PortSet> {
    (1u64..(1u64 << num_ports)).prop_map(PortSet::from_mask)
}

fn three_level_mapping(
    num_ports: usize,
    num_insts: usize,
) -> impl Strategy<Value = ThreeLevelMapping> {
    proptest::collection::vec(
        proptest::collection::vec((1u32..4, port_set(num_ports)), 1..4),
        num_insts,
    )
    .prop_map(move |decomp| {
        ThreeLevelMapping::new(
            num_ports,
            decomp
                .into_iter()
                .map(|entries| entries.into_iter().map(|(n, ps)| UopEntry::new(n, ps)).collect())
                .collect(),
        )
    })
}

fn experiment(num_insts: usize) -> impl Strategy<Value = Experiment> {
    proptest::collection::vec((0..num_insts as u32, 1u32..5), 1..6).prop_map(|counts| {
        counts.into_iter().map(|(i, n)| (InstId(i), n)).collect::<Experiment>()
    })
}

fn compile(experiments: &[Experiment]) -> CompiledExperiments {
    // The measured field is a positive placeholder; prediction never
    // reads it.
    let measured: Vec<MeasuredExperiment> =
        experiments.iter().map(|e| MeasuredExperiment::new(e.clone(), 1.0)).collect();
    CompiledExperiments::compile(&measured)
}

/// Asserts that `predict_batch` over every `chunk`-sized slice of the
/// experiment set, and `predict_all`, both reproduce the bits of a
/// scalar per-index `predict` — on a *fresh* solver each, so no path
/// can lean on scratch state another path left behind.
fn assert_batch_is_bit_identical(mapping: &ThreeLevelMapping, experiments: &[Experiment]) {
    let compiled = compile(experiments);
    let mut scalar = ThroughputSolver::new();
    scalar.load_mapping(&compiled, mapping);
    let reference: Vec<f64> =
        (0..experiments.len()).map(|e| scalar.predict(&compiled, e)).collect();
    // The scalar compiled path itself matches the ad-hoc reference.
    for (e, &t) in experiments.iter().zip(&reference) {
        assert_eq!(t.to_bits(), mapping.throughput(e).to_bits(), "scalar drift on {e}");
    }

    for chunk in [1usize, 7, 64] {
        let mut solver = ThroughputSolver::new();
        solver.load_mapping(&compiled, mapping);
        let mut out = Vec::new();
        let indices: Vec<u32> = (0..experiments.len() as u32).collect();
        for (c, slice) in indices.chunks(chunk).enumerate() {
            solver.predict_batch(&compiled, slice, &mut out);
            assert_eq!(out.len(), slice.len());
            for (&e, &t) in slice.iter().zip(&out) {
                assert_eq!(
                    t.to_bits(),
                    reference[e as usize].to_bits(),
                    "batch size {chunk}, chunk {c}: lockstep result differs from scalar \
                     predict on experiment {e}"
                );
            }
        }
    }

    let mut solver = ThroughputSolver::new();
    solver.load_mapping(&compiled, mapping);
    let mut all = Vec::new();
    solver.predict_all(&compiled, &mut all);
    let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&all), bits(&reference), "predict_all differs from scalar predict");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random platforms × random experiment sets: the batched path may
    /// never drift from the scalar one, for any batch size.
    #[test]
    fn batch_matches_scalar_on_random_platforms(
        (m, es) in (1usize..=8).prop_flat_map(|p| three_level_mapping(p, 6)).prop_flat_map(|m| {
            let n = m.num_insts();
            (Just(m), proptest::collection::vec(experiment(n), 1..40))
        })
    ) {
        assert_batch_is_bit_identical(&m, &es);
    }
}

/// Union-closure shape: 8 live ports but only 6 distinct µop masks, so
/// `d · 2^d = 384` undercuts both the zeta (`9 · 2^8 = 2304`) and
/// scatter (`≈ 928`) costs.
fn union_closure_decomp(seed: u32) -> Vec<UopEntry> {
    vec![
        UopEntry::new(1 + seed % 3, PortSet::from_ports(&[0])),
        UopEntry::new(1, PortSet::from_ports(&[1])),
        UopEntry::new(2, PortSet::from_ports(&[2])),
        UopEntry::new(1 + seed % 2, PortSet::from_ports(&[3])),
        UopEntry::new(1, PortSet::from_ports(&[4])),
        UopEntry::new(1, PortSet::from_ports(&[5, 6, 7])),
    ]
}

/// Scatter shape: 6 live ports, 16 distinct *wide* masks (|mask| ≥ 4),
/// so supersets are few (`scatter ≈ 2^6 + 16·4 = 128`) while
/// `d = 16` disables union-closure and zeta stays at `7 · 2^6 = 448`.
fn scatter_decomp(seed: u32) -> Vec<UopEntry> {
    let mut uops = Vec::new();
    let mut masks: Vec<u64> = (0u64..64)
        .filter(|m| m.count_ones() >= 4)
        .collect();
    masks.truncate(16);
    for (i, &m) in masks.iter().enumerate() {
        uops.push(UopEntry::new(1 + (seed + i as u32) % 3, PortSet::from_mask(m)));
    }
    uops
}

/// Zeta shape: 6 live ports, all 21 singleton and pair masks — narrow
/// µops make the scatter cost (`2^6 + 6·32 + 15·16 = 496`) exceed the
/// zeta cost (`448`), and `d = 21` disables union-closure.
fn zeta_decomp(seed: u32) -> Vec<UopEntry> {
    let mut uops = Vec::new();
    let mut i = 0u32;
    for a in 0..6usize {
        uops.push(UopEntry::new(1 + (seed + i) % 3, PortSet::from_ports(&[a])));
        i += 1;
        for b in (a + 1)..6 {
            uops.push(UopEntry::new(1 + (seed + i) % 2, PortSet::from_ports(&[a, b])));
            i += 1;
        }
    }
    uops
}

/// One platform whose instructions force, per experiment, each scalar
/// strategy — and whose zeta instructions are numerous enough that a
/// batch coalesces full lanes through the lockstep kernel.
fn strategy_zoo() -> (ThreeLevelMapping, Vec<Experiment>) {
    let mut decomps = Vec::new();
    // 12 zeta-shaped instructions: a full LANES=8 chunk plus a ragged
    // scalar tail of 4 in any batch containing all of them.
    for s in 0..12 {
        decomps.push(zeta_decomp(s));
    }
    for s in 0..3 {
        decomps.push(union_closure_decomp(s));
    }
    for s in 0..3 {
        decomps.push(scatter_decomp(s));
    }
    let mapping = ThreeLevelMapping::new(8, decomps);
    let mut experiments: Vec<Experiment> = (0..18u32).map(InstId).map(Experiment::singleton).collect();
    // Pairs that mix strategies within one experiment's aggregation.
    experiments.push(Experiment::pair(InstId(0), 2, InstId(12), 1));
    experiments.push(Experiment::pair(InstId(12), 1, InstId(15), 3));
    experiments.push(Experiment::pair(InstId(3), 1, InstId(7), 2));
    (mapping, experiments)
}

/// All four strategies in one batch: full lanes, ragged zeta tail,
/// union-closure and scatter slots — bit-identical to scalar across
/// every batch size.
#[test]
fn strategy_zoo_is_bit_identical_across_batch_sizes() {
    let (mapping, experiments) = strategy_zoo();
    assert_batch_is_bit_identical(&mapping, &experiments);
}

/// Ragged lane buckets: batches whose zeta population is just below, at
/// and just above the lane width all reproduce scalar bits (the tail
/// must fall back to the scalar zeta kernel, never pad with junk).
#[test]
fn ragged_lane_buckets_match_scalar() {
    for live in [1usize, 7, 8, 9, 11] {
        let decomps: Vec<Vec<UopEntry>> = (0..live as u32).map(zeta_decomp).collect();
        let mapping = ThreeLevelMapping::new(6, decomps);
        let experiments: Vec<Experiment> =
            (0..live as u32).map(InstId).map(Experiment::singleton).collect();
        assert_batch_is_bit_identical(&mapping, &experiments);
    }
}
