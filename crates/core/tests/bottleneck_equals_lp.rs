//! Verifies paper Appendix A: the bottleneck simulation algorithm computes
//! exactly the optimum of the throughput linear program, for random
//! two-level and three-level instances, and the fast (zeta-transform) and
//! naive (rescan) variants agree bit-for-bit structure-wise.

use proptest::prelude::*;
use pmevo_core::bottleneck::{lp_throughput, throughput_fast, throughput_naive, MassVector};
use pmevo_core::{Experiment, InstId, PortSet, ThreeLevelMapping, UopEntry};

/// A random non-empty port set over `num_ports` ports.
fn port_set(num_ports: usize) -> impl Strategy<Value = PortSet> {
    (1u64..(1u64 << num_ports)).prop_map(PortSet::from_mask)
}

fn mass_vector(num_ports: usize) -> impl Strategy<Value = MassVector> {
    proptest::collection::vec((port_set(num_ports), 0.01..20.0f64), 1..8)
        .prop_map(|items| items.into_iter().collect())
}

fn three_level_mapping(num_ports: usize, num_insts: usize) -> impl Strategy<Value = ThreeLevelMapping> {
    proptest::collection::vec(
        proptest::collection::vec((1u32..4, port_set(num_ports)), 1..4),
        num_insts,
    )
    .prop_map(move |decomp| {
        ThreeLevelMapping::new(
            num_ports,
            decomp
                .into_iter()
                .map(|entries| {
                    entries
                        .into_iter()
                        .map(|(n, ps)| UopEntry::new(n, ps))
                        .collect()
                })
                .collect(),
        )
    })
}

fn experiment(num_insts: usize) -> impl Strategy<Value = Experiment> {
    proptest::collection::vec((0..num_insts as u32, 1u32..5), 1..6)
        .prop_map(|counts| {
            counts
                .into_iter()
                .map(|(i, n)| (InstId(i), n))
                .collect::<Experiment>()
        })
}

proptest! {
    // Case budget: capped so the whole workspace suite stays well under
    // a minute; override downward with PROPTEST_CASES=<n> (see vendored
    // proptest). Cases are drawn from a per-test deterministic seed.
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Appendix A, two-level: bottleneck == LP optimum.
    #[test]
    fn two_level_bottleneck_equals_lp(mv in mass_vector(6)) {
        let fast = throughput_fast(&mv);
        let lp = lp_throughput(&mv);
        prop_assert!((fast - lp).abs() < 1e-6,
            "bottleneck {fast} != LP {lp} for {mv:?}");
    }

    /// The fast (zeta) and naive (rescan) engines agree exactly.
    #[test]
    fn fast_equals_naive(mv in mass_vector(8)) {
        let fast = throughput_fast(&mv);
        let naive = throughput_naive(&mv);
        prop_assert!((fast - naive).abs() < 1e-9,
            "fast {fast} != naive {naive} for {mv:?}");
    }

    /// §3.2 reduction: three-level throughput equals the two-level
    /// throughput of the µop mass vector, and equals the LP optimum.
    #[test]
    fn three_level_reduction_is_consistent(
        (m, e) in three_level_mapping(5, 6).prop_flat_map(|m| {
            let n = m.num_insts();
            (Just(m), experiment(n))
        })
    ) {
        let tp = m.throughput(&e);
        let masses = m.uop_masses(&e);
        let via_two_level = throughput_fast(&masses);
        prop_assert!((tp - via_two_level).abs() < 1e-12);
        let lp = lp_throughput(&masses);
        prop_assert!((tp - lp).abs() < 1e-6, "3L bottleneck {tp} != LP {lp}");
    }

    /// Monotonicity: adding mass never decreases throughput.
    #[test]
    fn throughput_is_monotone_in_mass(
        mv in mass_vector(6),
        extra in (port_set(6), 0.01..5.0f64),
    ) {
        let base = throughput_fast(&mv);
        let mut bigger = mv.clone();
        bigger.add(extra.0, extra.1);
        prop_assert!(throughput_fast(&bigger) >= base - 1e-12);
    }

    /// Scaling: throughput is positively homogeneous in the masses.
    #[test]
    fn throughput_is_homogeneous(mv in mass_vector(6), scale in 0.1..10.0f64) {
        let scaled: MassVector = mv.iter().map(|(p, m)| (p, m * scale)).collect();
        let a = throughput_fast(&mv) * scale;
        let b = throughput_fast(&scaled);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    /// Lower/upper bounds: total_mass/|P| ≤ t* ≤ total_mass, and t* is at
    /// least the heaviest single µop's mass divided by its width.
    #[test]
    fn throughput_bounds(mv in mass_vector(6)) {
        let t = throughput_fast(&mv);
        let total = mv.total_mass();
        let live = mv.live_ports().len() as f64;
        prop_assert!(t <= total + 1e-9);
        prop_assert!(t >= total / live - 1e-9);
        for (p, m) in mv.iter() {
            prop_assert!(t >= m / p.len() as f64 - 1e-9);
        }
    }
}
