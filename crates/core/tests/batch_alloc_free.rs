//! The batched solve path performs **zero heap allocations after
//! warm-up**, like the scalar one: `predict_batch` / `predict_all` run
//! entirely out of the solver's arena scratch once every buffer has
//! grown to steady-state size — including the sort-merge aggregation
//! path and the lane-parallel zeta plane.
//!
//! The counter is a per-thread cell, so allocations by the libtest
//! harness (which runs on its own threads) cannot leak into the measured
//! window — only what the evaluating thread itself allocates counts.

use pmevo_core::{
    CompiledExperiments, Experiment, InstId, MeasuredExperiment, PortSet, ThreeLevelMapping,
    ThroughputSolver, UopEntry,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

std::thread_local! {
    /// Const-initialized so reading/bumping it never allocates itself.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

fn bump() {
    // `try_with`: allocations during TLS teardown are simply not counted.
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A platform that drives every batch machinery piece at once: 12
/// zeta-heavy instructions (full LANES chunk + ragged tail, and > 16
/// µop contributions per row so the sort-merge aggregation path runs),
/// plus narrow instructions whose singletons take union-closure.
fn workload() -> (ThreeLevelMapping, CompiledExperiments) {
    let mut decomps: Vec<Vec<UopEntry>> = Vec::new();
    for s in 0..12u32 {
        let mut uops = Vec::new();
        for a in 0..6usize {
            uops.push(UopEntry::new(1 + (s + a as u32) % 3, PortSet::from_ports(&[a])));
            for b in (a + 1)..6 {
                uops.push(UopEntry::new(1 + s % 2, PortSet::from_ports(&[a, b])));
            }
        }
        decomps.push(uops);
    }
    for s in 0..4usize {
        decomps.push(vec![
            UopEntry::new(1, PortSet::from_ports(&[s])),
            UopEntry::new(2, PortSet::from_ports(&[s + 1])),
        ]);
    }
    let mapping = ThreeLevelMapping::new(6, decomps);
    let n = mapping.num_insts() as u32;
    let mut experiments: Vec<Experiment> = (0..n).map(InstId).map(Experiment::singleton).collect();
    for i in 0..n {
        experiments.push(Experiment::pair(InstId(i), 2, InstId((i + 5) % n), 1));
    }
    let measured: Vec<MeasuredExperiment> =
        experiments.into_iter().map(|e| MeasuredExperiment::new(e, 1.0)).collect();
    (mapping, CompiledExperiments::compile(&measured))
}

#[test]
fn batch_path_is_allocation_free_after_warmup() {
    let (mapping, compiled) = workload();
    let mut solver = ThroughputSolver::new();
    let indices: Vec<u32> = (0..compiled.num_experiments() as u32).collect();
    let mut out = Vec::new();
    let mut all = Vec::new();

    // Warm-up: grow the kernel scratch, the batch arena, the lane plane
    // and the output vectors to steady-state size.
    solver.load_mapping(&compiled, &mapping);
    for _ in 0..3 {
        solver.predict_batch(&compiled, &indices, &mut out);
        solver.predict_all(&compiled, &mut all);
        for e in 0..compiled.num_experiments() {
            solver.predict(&compiled, e);
        }
    }

    let before = thread_allocations();
    let mut acc = 0.0f64;
    for _ in 0..32 {
        solver.load_mapping(&compiled, &mapping);
        solver.predict_batch(&compiled, &indices, &mut out);
        acc += out.iter().sum::<f64>();
        solver.predict_all(&compiled, &mut all);
        acc += all.iter().sum::<f64>();
        for e in 0..compiled.num_experiments() {
            acc += solver.predict(&compiled, e);
        }
    }
    let after = thread_allocations();

    assert!(acc.is_finite() && acc > 0.0);
    assert_eq!(
        after - before,
        0,
        "batched solve path allocated {} times across 32 rounds",
        after - before
    );
}
