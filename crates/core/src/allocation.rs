//! Bottleneck diagnosis and port allocations.
//!
//! Beyond the scalar throughput, the throughput LP carries two artifacts
//! that performance tools surface to users:
//!
//! * the **bottleneck set** `Q*` — the subset of ports that limits the
//!   experiment (Equation 1's argmax; what IACA reports as the
//!   "bottleneck resource"), and
//! * a **port allocation** — an optimal distribution of µop mass over
//!   ports (the bucket diagram of paper Figure 3).
//!
//! Both are computed exactly: the bottleneck set by the same subset
//! enumeration as the throughput, the allocation from the simplex
//! solution of the LP.

use crate::bottleneck_impl::{compact_for_allocation, MassVector};
use crate::{PortSet, MAX_PORTS};
use pmevo_lp::{Problem, Relation};

/// The diagnosis of one experiment under one mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Bottleneck {
    /// The smallest maximizing port subset `Q*` of Equation 1.
    pub ports: PortSet,
    /// The throughput `t*` determined by that set.
    pub throughput: f64,
    /// Total µop mass confined to `Q*`.
    pub mass: f64,
}

/// Computes the bottleneck set of Equation 1: the *smallest* subset of
/// ports attaining the maximal mass/size quotient (ties broken toward
/// fewer ports, then lower port numbers, so the result is deterministic
/// and maximally specific).
///
/// Returns `None` for an empty experiment.
///
/// # Panics
///
/// Panics if more than [`crate::bottleneck::MAX_ENUMERABLE_PORTS`]
/// ports are live.
pub fn bottleneck_set(masses: &MassVector) -> Option<Bottleneck> {
    let live = masses.live_ports();
    let k = live.len();
    if k == 0 {
        return None;
    }
    let (compacted, dense_to_global) = compact_for_allocation(masses, live);
    let size = 1usize << k;
    let mut sum = vec![0.0f64; size];
    for &(mask, mass) in &compacted {
        sum[mask as usize] += mass;
    }
    for bit in 0..k {
        let b = 1usize << bit;
        for q in 0..size {
            if q & b != 0 {
                sum[q] += sum[q ^ b];
            }
        }
    }
    let mut best_q = 1usize;
    let mut best_t = f64::NEG_INFINITY;
    for (q, &s) in sum.iter().enumerate().skip(1) {
        let t = s / (q.count_ones() as f64);
        let better = t > best_t + 1e-12
            || ((t - best_t).abs() <= 1e-12 && q.count_ones() < best_q.count_ones());
        if better {
            best_t = t;
            best_q = q;
        }
    }
    let mut ports = PortSet::EMPTY;
    for bit in 0..k {
        if best_q & (1 << bit) != 0 {
            ports = ports.with(dense_to_global[bit]);
        }
    }
    Some(Bottleneck {
        ports,
        throughput: best_t,
        mass: sum[best_q],
    })
}

/// An optimal distribution of µop mass over ports: entry `(u, k)` is the
/// mass of µop `u` (identified by its port set) executed on port `k` —
/// the paper's `x_uk` variables, i.e. the bucket diagram of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct PortAllocation {
    /// `(µop port set, port, mass)` triples with positive mass.
    pub shares: Vec<(PortSet, usize, f64)>,
    /// The optimal throughput (max port load).
    pub throughput: f64,
    /// Number of ports of the underlying machine view (live ports only).
    pub num_ports: usize,
}

impl PortAllocation {
    /// Total mass assigned to `port`.
    pub fn load_of(&self, port: usize) -> f64 {
        self.shares
            .iter()
            .filter(|&&(_, k, _)| k == port)
            .map(|&(_, _, m)| m)
            .sum()
    }

    /// All per-port loads, indexed by port number (dense up to the
    /// highest used port).
    pub fn loads(&self) -> Vec<f64> {
        let max_port = self
            .shares
            .iter()
            .map(|&(_, k, _)| k)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let mut out = vec![0.0; max_port];
        for &(_, k, m) in &self.shares {
            out[k] += m;
        }
        out
    }
}

/// Solves the throughput LP and extracts the full optimal allocation.
///
/// Returns `None` for an empty experiment.
///
/// # Panics
///
/// Panics if the LP solver fails (impossible for well-formed inputs).
pub fn optimal_allocation(masses: &MassVector) -> Option<PortAllocation> {
    if masses.is_empty() {
        return None;
    }
    let live = masses.live_ports();
    let ports: Vec<usize> = live.iter().collect();

    let mut edge_vars: Vec<Vec<(usize, usize)>> = Vec::with_capacity(masses.len());
    let mut next_var = 0usize;
    for (uop_ports, _) in masses.iter() {
        let vars = uop_ports
            .iter()
            .map(|p| {
                let v = next_var;
                next_var += 1;
                (p, v)
            })
            .collect();
        edge_vars.push(vars);
    }
    let t_var = next_var;
    let mut problem = Problem::minimize(t_var + 1);
    problem.set_objective_coeff(t_var, 1.0);
    for (u, (_, mass)) in masses.iter().enumerate() {
        let terms: Vec<(usize, f64)> = edge_vars[u].iter().map(|&(_, v)| (v, 1.0)).collect();
        problem.add_constraint(&terms, Relation::Eq, mass);
    }
    for &port in &ports {
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for vars in &edge_vars {
            for &(p, v) in vars {
                if p == port {
                    terms.push((v, 1.0));
                }
            }
        }
        terms.push((t_var, -1.0));
        problem.add_constraint(&terms, Relation::Le, 0.0);
    }
    let solution = problem
        .solve()
        .expect("throughput LP is feasible and bounded by construction");

    let mut shares = Vec::new();
    for (u, (uop_ports, _)) in masses.iter().enumerate() {
        for &(p, v) in &edge_vars[u] {
            let m = solution.value(v);
            if m > 1e-9 {
                shares.push((uop_ports, p, m));
            }
        }
    }
    Some(PortAllocation {
        shares,
        throughput: solution.objective(),
        num_ports: MAX_PORTS.min(ports.last().map(|p| p + 1).unwrap_or(0)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(ports: &[usize]) -> PortSet {
        PortSet::from_ports(ports)
    }

    fn example1() -> MassVector {
        let mut mv = MassVector::new();
        mv.add(ps(&[0, 1]), 2.0); // 2×add
        mv.add(ps(&[0]), 1.0); // mul
        mv.add(ps(&[2]), 1.0); // store
        mv
    }

    #[test]
    fn example2_bottleneck_is_p1_p2() {
        // Paper Example 2: Q* = {P1, P2} (our ports 0, 1).
        let b = bottleneck_set(&example1()).unwrap();
        assert_eq!(b.ports, ps(&[0, 1]));
        assert_eq!(b.throughput, 1.5);
        assert_eq!(b.mass, 3.0);
    }

    #[test]
    fn smallest_bottleneck_set_wins_ties() {
        // Port 0 carries 2 mass; ports {1,2} carry 4 together: both give
        // t = 2; the singleton must be reported.
        let mut mv = MassVector::new();
        mv.add(ps(&[0]), 2.0);
        mv.add(ps(&[1, 2]), 4.0);
        let b = bottleneck_set(&mv).unwrap();
        assert_eq!(b.throughput, 2.0);
        assert_eq!(b.ports, ps(&[0]));
    }

    #[test]
    fn empty_experiment_has_no_bottleneck() {
        assert_eq!(bottleneck_set(&MassVector::new()), None);
        assert_eq!(optimal_allocation(&MassVector::new()), None);
    }

    #[test]
    fn allocation_reproduces_figure3() {
        let alloc = optimal_allocation(&example1()).unwrap();
        assert!((alloc.throughput - 1.5).abs() < 1e-9);
        // Mass conservation per µop.
        let add_mass: f64 = alloc
            .shares
            .iter()
            .filter(|&&(u, _, _)| u == ps(&[0, 1]))
            .map(|&(_, _, m)| m)
            .sum();
        assert!((add_mass - 2.0).abs() < 1e-9);
        // No port exceeds the throughput.
        for (p, load) in alloc.loads().iter().enumerate() {
            assert!(*load <= alloc.throughput + 1e-9, "port {p} overloaded");
        }
        // The bottleneck ports are fully loaded.
        assert!((alloc.load_of(0) - 1.5).abs() < 1e-9);
        assert!((alloc.load_of(1) - 1.5).abs() < 1e-9);
        assert!((alloc.load_of(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_throughput_matches_fast_engine() {
        use crate::bottleneck_impl::throughput_fast;
        let cases: Vec<MassVector> = vec![
            example1(),
            [(ps(&[0, 3]), 2.5), (ps(&[1, 3]), 0.5), (ps(&[0, 1]), 1.5)]
                .into_iter()
                .collect(),
            [(ps(&[5]), 4.0)].into_iter().collect(),
        ];
        for mv in cases {
            let b = bottleneck_set(&mv).unwrap();
            assert!((b.throughput - throughput_fast(&mv)).abs() < 1e-9);
            let a = optimal_allocation(&mv).unwrap();
            assert!((a.throughput - b.throughput).abs() < 1e-7);
        }
    }

    #[test]
    fn high_port_numbers_map_back_correctly() {
        let mut mv = MassVector::new();
        mv.add(ps(&[40]), 3.0);
        mv.add(ps(&[40, 63]), 1.0);
        let b = bottleneck_set(&mv).unwrap();
        assert_eq!(b.ports, ps(&[40]));
        assert_eq!(b.throughput, 3.0);
    }
}
