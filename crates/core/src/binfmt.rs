//! Compact binary mapping artifacts — the fleet-scale on-disk format.
//!
//! A [`MappingArtifact`] bundles a [`ThreeLevelMapping`] with the
//! instruction-name table it was inferred against, serialized as a
//! packed little-endian byte stream:
//!
//! ```text
//! offset  size              field
//! ------  ----              -----
//!      0  8                 magic  b"PMEVOBIN"
//!      8  4                 format version (currently 1)
//!     12  4                 num_ports
//!     16  4                 num_insts
//!     20  4                 total µop entries across all instructions
//!     24  4                 name-blob length in bytes
//!     28  4·num_insts       name end offsets (monotonic prefix sums)
//!      …  name-blob length  instruction names, concatenated UTF-8
//!      …  4·num_insts       decomposition end offsets (prefix sums)
//!      …  12·total entries  µop entries: count u32 + port mask u64
//!      …  8                 FNV-1a checksum of every preceding byte
//! ```
//!
//! Both offset tables are prefix sums (entry `i` ends where entry `i+1`
//! begins), so each instruction's name and decomposition are O(1) slices
//! of the two flat arrays — the dense per-proc packing idiom, applied to
//! mapping storage. There is no per-instruction framing overhead; a
//! typical inferred mapping is 5–10× smaller than its pretty JSON and
//! decodes without parsing text.
//!
//! The codec mirrors the JSON codec's discipline: `to_bytes`/`from_bytes`
//! round-trips are bit-exact (and agree with `to_json`/`from_json`),
//! decoding re-validates and re-normalizes the mapping, and corrupt or
//! truncated input produces a structured [`BinDecodeError`] carrying the
//! byte offset of the first inconsistency — never a panic.

use crate::{PortSet, ThreeLevelMapping, UopEntry, MAX_PORTS};
use std::fmt;

/// The 8-byte magic prefix of every binary mapping artifact.
pub const BIN_MAGIC: [u8; 8] = *b"PMEVOBIN";

/// The current (and only) binary format version.
pub const BIN_VERSION: u32 = 1;

/// Size in bytes of one serialized µop entry (`count: u32` + `ports: u64`).
const ENTRY_BYTES: usize = 12;

/// Size in bytes of the fixed header (magic + version + 4 counters).
const HEADER_BYTES: usize = 8 + 4 + 4 + 4 + 4 + 4;

/// A mapping plus the instruction-name table it is indexed by — the unit
/// of storage of the serving fleet.
///
/// JSON artifacts carry only the decomposition table and rely on the
/// platform registry for names; binary artifacts embed the names so a
/// `.bin` file is self-describing and a store can verify that successive
/// versions of one platform agree on their instruction universe.
///
/// # Example
///
/// ```
/// use pmevo_core::{MappingArtifact, PortSet, ThreeLevelMapping, UopEntry};
///
/// let mapping = ThreeLevelMapping::new(2, vec![
///     vec![UopEntry::new(1, PortSet::from_ports(&[0]))],
///     vec![UopEntry::new(2, PortSet::from_ports(&[0, 1]))],
/// ]);
/// let artifact = MappingArtifact::new(vec!["add".into(), "mul".into()], mapping);
/// let bytes = artifact.to_bytes();
/// let back = MappingArtifact::from_bytes(&bytes).unwrap();
/// assert_eq!(back, artifact);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingArtifact {
    inst_names: Vec<String>,
    mapping: ThreeLevelMapping,
}

impl MappingArtifact {
    /// Bundles `mapping` with its instruction names.
    ///
    /// # Panics
    ///
    /// Panics if `inst_names.len()` disagrees with `mapping.num_insts()`
    /// — an artifact whose name table cannot index its decomposition
    /// table is unrepresentable.
    pub fn new(inst_names: Vec<String>, mapping: ThreeLevelMapping) -> Self {
        assert_eq!(
            inst_names.len(),
            mapping.num_insts(),
            "{} instruction names for a {}-instruction mapping",
            inst_names.len(),
            mapping.num_insts()
        );
        MappingArtifact { inst_names, mapping }
    }

    /// The instruction-name table, indexed by [`crate::InstId`].
    pub fn inst_names(&self) -> &[String] {
        &self.inst_names
    }

    /// The decomposition table.
    pub fn mapping(&self) -> &ThreeLevelMapping {
        &self.mapping
    }

    /// Consumes the artifact into its `(names, mapping)` parts.
    pub fn into_parts(self) -> (Vec<String>, ThreeLevelMapping) {
        (self.inst_names, self.mapping)
    }

    /// Serializes the artifact into the packed binary layout.
    ///
    /// The output is a pure function of the artifact (no timestamps, no
    /// platform-dependent fields), so equal artifacts always serialize to
    /// identical bytes — the same determinism contract as the JSON codec.
    pub fn to_bytes(&self) -> Vec<u8> {
        let names_blob_len: usize = self.inst_names.iter().map(|n| n.len()).sum();
        let total_entries: usize = self
            .mapping
            .decompositions()
            .iter()
            .map(|d| d.len())
            .sum();
        let num_insts = self.inst_names.len();
        let cap = HEADER_BYTES
            + 4 * num_insts // name ends
            + names_blob_len
            + 4 * num_insts // decomp ends
            + ENTRY_BYTES * total_entries
            + 8; // checksum
        let mut out = Vec::with_capacity(cap);

        out.extend_from_slice(&BIN_MAGIC);
        out.extend_from_slice(&BIN_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.mapping.num_ports() as u32).to_le_bytes());
        out.extend_from_slice(&(num_insts as u32).to_le_bytes());
        out.extend_from_slice(&(total_entries as u32).to_le_bytes());
        out.extend_from_slice(&(names_blob_len as u32).to_le_bytes());

        let mut end = 0u32;
        for name in &self.inst_names {
            end += name.len() as u32;
            out.extend_from_slice(&end.to_le_bytes());
        }
        for name in &self.inst_names {
            out.extend_from_slice(name.as_bytes());
        }
        let mut end = 0u32;
        for d in self.mapping.decompositions() {
            end += d.len() as u32;
            out.extend_from_slice(&end.to_le_bytes());
        }
        for d in self.mapping.decompositions() {
            for e in d {
                out.extend_from_slice(&e.count.to_le_bytes());
                out.extend_from_slice(&e.ports.mask().to_le_bytes());
            }
        }
        out.extend_from_slice(&fnv1a(&out).to_le_bytes());
        debug_assert_eq!(out.len(), cap);
        out
    }

    /// Parses an artifact from the bytes produced by [`Self::to_bytes`],
    /// re-validating every field and re-normalizing the mapping.
    ///
    /// Never panics: truncated, corrupt or adversarial input yields a
    /// [`BinDecodeError`] naming the byte offset of the first
    /// inconsistency. Allocation is bounded by the input length, so a
    /// forged header cannot request more memory than the file could hold.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, BinDecodeError> {
        let mut r = Reader { bytes, pos: 0 };

        let magic = r.take(8, "magic")?;
        if magic != BIN_MAGIC {
            return Err(BinDecodeError::at(0, "bad magic (not a PMEVOBIN artifact)"));
        }
        let version_at = r.pos;
        let version = r.u32("format version")?;
        if version != BIN_VERSION {
            return Err(BinDecodeError::at(
                version_at,
                format!("unsupported format version {version} (expected {BIN_VERSION})"),
            ));
        }
        let num_ports_at = r.pos;
        let num_ports = r.u32("num_ports")? as usize;
        if num_ports > MAX_PORTS {
            return Err(BinDecodeError::at(
                num_ports_at,
                format!("num_ports {num_ports} exceeds {MAX_PORTS}"),
            ));
        }
        let num_insts = r.u32("num_insts")? as usize;
        let total_entries = r.u32("total entry count")? as usize;
        let names_blob_len = r.u32("name-blob length")? as usize;

        // Everything after the header has a size fully determined by the
        // four counters; check it against the real input length up front
        // so truncation is one error and per-field reads cannot run off
        // the end. (Also bounds all allocations below by `bytes.len()`.)
        let body = 4usize
            .checked_mul(num_insts)
            .and_then(|n| n.checked_add(names_blob_len))
            .and_then(|n| n.checked_add(4 * num_insts))
            .and_then(|n| total_entries.checked_mul(ENTRY_BYTES).map(|e| n + e))
            .and_then(|n| n.checked_add(8))
            .ok_or_else(|| BinDecodeError::at(12, "header counters overflow"))?;
        let expect = HEADER_BYTES + body;
        if bytes.len() != expect {
            return Err(BinDecodeError::at(
                bytes.len().min(expect),
                format!("artifact is {} bytes, header implies {expect}", bytes.len()),
            ));
        }

        // Checksum before structure: a flipped bit anywhere should be
        // reported as corruption, not as whatever shape error it mimics.
        let payload = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv1a(payload) != stored {
            return Err(BinDecodeError::at(
                payload.len(),
                "checksum mismatch (artifact is corrupt)",
            ));
        }

        let name_ends = r.prefix_sums(num_insts, names_blob_len, "name end offset")?;
        let names_at = r.pos;
        let names_blob = r.take(names_blob_len, "name blob")?;
        let mut inst_names = Vec::with_capacity(num_insts);
        let mut start = 0usize;
        for (i, &end) in name_ends.iter().enumerate() {
            let raw = &names_blob[start..end as usize];
            let name = std::str::from_utf8(raw).map_err(|_| {
                BinDecodeError::at(names_at + start, format!("name {i} is not valid UTF-8"))
            })?;
            inst_names.push(name.to_owned());
            start = end as usize;
        }

        let decomp_ends = r.prefix_sums(num_insts, total_entries, "decomposition end offset")?;
        let valid = PortSet::first_n(num_ports);
        let mut entries = Vec::with_capacity(total_entries);
        for i in 0..total_entries {
            let count = r.u32("µop count")?;
            let mask_at = r.pos;
            let mask = r.u64("µop port mask")?;
            let ports = PortSet::from_mask(mask);
            if !ports.is_subset_of(valid) {
                return Err(BinDecodeError::at(
                    mask_at,
                    format!("entry {i}: ports {ports} outside the {num_ports}-port machine"),
                ));
            }
            entries.push(UopEntry::new(count, ports));
        }

        let mut decomp = Vec::with_capacity(num_insts);
        let mut start = 0usize;
        for &end in &decomp_ends {
            decomp.push(entries[start..end as usize].to_vec());
            start = end as usize;
        }
        // Validated above: num_ports and every mask are in range, so
        // `ThreeLevelMapping::new` cannot panic.
        Ok(MappingArtifact {
            inst_names,
            mapping: ThreeLevelMapping::new(num_ports, decomp),
        })
    }

    /// Whether `bytes` start with the binary artifact magic — the format
    /// sniff used to tell `.bin` from `.json` content without trusting
    /// file extensions.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= 8 && bytes[..8] == BIN_MAGIC
    }
}

/// Failure to decode a binary mapping artifact.
///
/// Carries the byte offset where decoding first went wrong, so a corrupt
/// artifact in a fleet of thousands can be diagnosed from the error alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinDecodeError {
    /// Byte offset of the first inconsistency.
    pub offset: usize,
    /// What was wrong at that offset.
    pub what: String,
}

impl BinDecodeError {
    fn at(offset: usize, what: impl Into<String>) -> Self {
        BinDecodeError { offset, what: what.into() }
    }
}

impl fmt::Display for BinDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid binary mapping at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for BinDecodeError {}

/// FNV-1a over `bytes` — the workspace's standard content checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bounds-checked little-endian cursor over the input bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], BinDecodeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(BinDecodeError::at(
                self.bytes.len(),
                format!("truncated while reading {what}"),
            )),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, BinDecodeError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, BinDecodeError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads `n` u32 prefix sums that must be monotonic and end exactly
    /// at `total` — the invariant that makes the flat arrays sliceable.
    fn prefix_sums(
        &mut self,
        n: usize,
        total: usize,
        what: &str,
    ) -> Result<Vec<u32>, BinDecodeError> {
        let mut ends = Vec::with_capacity(n);
        let mut prev = 0u32;
        for i in 0..n {
            let at = self.pos;
            let end = self.u32(what)?;
            if end < prev {
                return Err(BinDecodeError::at(
                    at,
                    format!("{what} {i} goes backwards ({end} after {prev})"),
                ));
            }
            prev = end;
            ends.push(end);
        }
        if prev as usize != total {
            return Err(BinDecodeError::at(
                self.pos.saturating_sub(4),
                format!("last {what} is {prev}, header implies {total}"),
            ));
        }
        Ok(ends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MappingArtifact {
        let u1 = PortSet::from_ports(&[0]);
        let u2 = PortSet::from_ports(&[0, 1]);
        let u3 = PortSet::from_ports(&[2]);
        MappingArtifact::new(
            vec!["mul".into(), "add".into(), "sub".into(), "store".into()],
            ThreeLevelMapping::new(
                3,
                vec![
                    vec![UopEntry::new(2, u1)],
                    vec![UopEntry::new(1, u2)],
                    vec![UopEntry::new(1, u2)],
                    vec![UopEntry::new(1, u2), UopEntry::new(1, u3)],
                ],
            ),
        )
    }

    #[test]
    fn roundtrip_is_exact() {
        let a = sample();
        let bytes = a.to_bytes();
        assert!(MappingArtifact::sniff(&bytes));
        let back = MappingArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back, a);
        // Re-serializing the decoded artifact is byte-identical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn binary_agrees_with_json() {
        let a = sample();
        let via_json = ThreeLevelMapping::from_json(&a.mapping().to_json()).unwrap();
        let via_bin = MappingArtifact::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(via_bin.mapping(), &via_json);
    }

    #[test]
    fn empty_names_and_decomps_roundtrip() {
        // Zero-length names and instructions without µops are legal.
        let a = MappingArtifact::new(
            vec![String::new(), "x".into()],
            ThreeLevelMapping::new(
                1,
                vec![vec![], vec![UopEntry::new(1, PortSet::from_ports(&[0]))]],
            ),
        );
        let back = MappingArtifact::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back, a);

        let empty = MappingArtifact::new(vec![], ThreeLevelMapping::new(0, vec![]));
        let back = MappingArtifact::from_bytes(&empty.to_bytes()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn every_truncation_errors_without_panicking() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let err = MappingArtifact::from_bytes(&bytes[..len])
                .expect_err("truncated artifact must not decode");
            assert!(err.offset <= bytes.len(), "offset {} out of range", err.offset);
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                MappingArtifact::from_bytes(&bad).is_err(),
                "flipping byte {i} must not decode cleanly"
            );
        }
    }

    #[test]
    fn decode_errors_name_offset_and_cause() {
        let err = MappingArtifact::from_bytes(b"JUNKJUNKtrailing")
            .expect_err("bad magic");
        assert_eq!(err.offset, 0);
        assert!(err.to_string().contains("bad magic"), "{err}");

        let mut bytes = sample().to_bytes();
        bytes[8] = 9; // version
        let err = MappingArtifact::from_bytes(&bytes).expect_err("bad version");
        assert_eq!(err.offset, 8);
        assert!(err.to_string().contains("unsupported format version 9"), "{err}");
    }

    #[test]
    fn forged_counters_cannot_overallocate() {
        // Header claims u32::MAX instructions in a 40-byte file: the size
        // check must fail before any table allocation happens.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BIN_MAGIC);
        bytes.extend_from_slice(&BIN_VERSION.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 12]);
        let err = MappingArtifact::from_bytes(&bytes).expect_err("forged header");
        assert!(err.what.contains("header implies") || err.what.contains("overflow"), "{err}");
    }

    #[test]
    fn decoding_renormalizes_like_json() {
        // Hand-build bytes whose entries are unsorted with duplicates:
        // the decoder must normalize exactly as `ThreeLevelMapping::new`.
        let unnormalized = MappingArtifact {
            inst_names: vec!["a".into()],
            mapping: ThreeLevelMapping::new(
                2,
                vec![vec![UopEntry::new(1, PortSet::from_ports(&[0, 1]))]],
            ),
        };
        let mut bytes = unnormalized.to_bytes();
        // Patch the single entry's count from 1 to 0 (dropped on decode)
        // and fix up the checksum.
        let entry_at = HEADER_BYTES + 4 + 1 + 4;
        bytes[entry_at] = 0;
        let len = bytes.len();
        let sum = fnv1a(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        let back = MappingArtifact::from_bytes(&bytes).unwrap();
        assert!(back.mapping().decomposition(crate::InstId(0)).is_empty());
    }
}
