//! A minimal JSON reader/writer for mapping artifacts.
//!
//! The build environment has no crates.io access, so instead of `serde` +
//! `serde_json` the workspace serializes its one persistent artifact type
//! ([`ThreeLevelMapping`](crate::ThreeLevelMapping), written by the bench
//! harness cache and the CLI) through this module. The wire format is
//! exactly what a serde derive would emit for the same structs — objects
//! with the field names as keys and `PortSet` as its raw `u64` mask — so
//! artifacts stay forward-compatible with a future registry-backed serde.

use std::fmt;

/// A parsed JSON value.
///
/// Integers that fit `u64` are kept exact in [`Value::UInt`] (port masks
/// may exceed the 2^53 range where `f64` is lossless); everything else
/// numeric is [`Value::Num`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number (negative, fractional, or in scientific
    /// notation).
    Num(f64),
    /// A string.
    Str(String),
    /// An array of values.
    Arr(Vec<Value>),
    /// An object as an ordered list of `(key, value)` fields —
    /// insertion order is preserved so serialization is deterministic.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            // Strict bound: `u64::MAX as f64` rounds up to 2^64, which is
            // already out of range, so `<=` would saturate-accept it.
            Value::Num(f) if f >= 0.0 && f.fract() == 0.0 && f < u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Nesting bound (matches serde_json's default): corrupt input made of
/// repeated `[`/`{` must produce a [`ParseError`], not a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for mapping
                            // artifacts; reject them rather than mis-decode.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(b) => {
                    // Copy one UTF-8 scalar (multi-byte sequences arrive as
                    // valid UTF-8 because the input is a &str).
                    let start = self.pos;
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos += width;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { offset: start, message: "invalid number".into() })
    }
}

/// Serializes a value compactly (no whitespace).
pub fn write_compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, None, 0, &mut out);
    out
}

/// Serializes a value with 2-space indentation.
pub fn write_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, Some(2), 0, &mut out);
    out
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Num(f) => {
            if !f.is_finite() {
                // JSON has no NaN/Infinity; follow JSON.stringify and
                // emit null so the output always re-parses.
                out.push_str("null");
            } else if f.fract() == 0.0 {
                // Keep integral floats readable and round-trippable.
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => write_seq(b"[]", items.iter(), indent, depth, out, |item, d, o| {
            write_value(item, indent, d, o)
        }),
        Value::Obj(fields) => write_seq(b"{}", fields.iter(), indent, depth, out, |(k, val), d, o| {
            write_string(k, o);
            o.push(':');
            if indent.is_some() {
                o.push(' ');
            }
            write_value(val, indent, d, o);
        }),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq<T>(
    delims: &[u8; 2],
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(T, usize, &mut String),
) {
    out.push(delims[0] as char);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(item, depth + 1, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(delims[1] as char);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Value::UInt(42));
        assert_eq!(parse("-1.5").unwrap(), Value::Num(-1.5));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn big_masks_stay_exact() {
        let mask = u64::MAX;
        let v = parse(&mask.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(mask));
    }

    #[test]
    fn roundtrips_nested_documents() {
        let doc = Value::Obj(vec![
            ("num_ports".into(), Value::UInt(3)),
            (
                "decomp".into(),
                Value::Arr(vec![Value::Arr(vec![Value::Obj(vec![
                    ("count".into(), Value::UInt(2)),
                    ("ports".into(), Value::UInt(1)),
                ])])]),
            ),
        ]);
        for text in [write_compact(&doc), write_pretty(&doc)] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let bomb = "[".repeat(1_000_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Nesting at the limit still parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        assert!(parse(&format!("[{ok}]")).is_err());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let text = write_compact(&Value::Arr(vec![Value::Num(f)]));
            assert_eq!(text, "[null]");
            assert!(parse(&text).is_ok());
        }
    }

    #[test]
    fn out_of_range_float_integers_are_not_u64() {
        // 2^64 must not saturate to u64::MAX, whether written as an
        // integer literal (falls through u64 parsing to f64) or a float.
        assert_eq!(parse("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(parse("1.8446744073709552e19").unwrap().as_u64(), None);
        // Largest f64-representable integer below 2^64 still converts.
        assert_eq!(
            parse("1.8446744073709550e19").unwrap().as_u64(),
            Some(18446744073709549568),
        );
    }
}
