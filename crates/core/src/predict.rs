//! The throughput-predictor abstraction shared by PMEvo and all baselines.

use crate::{Experiment, ThreeLevelMapping, ThroughputSolver, TwoLevelMapping};
use std::cell::RefCell;

/// A model that predicts the steady-state throughput of an experiment.
///
/// Implementors include mappings inferred by PMEvo, ground-truth mappings
/// (the "uops.info" baseline), and the IACA-, llvm-mca- and Ithemal-like
/// baselines in `pmevo-baselines`. Predictions are in cycles per
/// experiment instance, the unit of paper Definition 1.
pub trait ThroughputPredictor {
    /// Predicts the throughput of `e` in cycles.
    fn predict(&self, e: &Experiment) -> f64;

    /// A short human-readable name for result tables.
    fn name(&self) -> &str;
}

/// Predicts throughput from a port mapping with the bottleneck simulation
/// algorithm, i.e. under the paper's optimal-scheduler model.
///
/// This is how an inferred PMEvo mapping and the uops.info-style ground
/// truth mapping are evaluated in paper §5.3.
///
/// # Example
///
/// ```
/// use pmevo_core::{
///     Experiment, InstId, MappingPredictor, PortSet, ThroughputPredictor,
///     ThreeLevelMapping, UopEntry,
/// };
///
/// let m = ThreeLevelMapping::new(2, vec![
///     vec![UopEntry::new(1, PortSet::from_ports(&[0, 1]))],
/// ]);
/// let p = MappingPredictor::new("demo", m);
/// let e = Experiment::from_counts(&[(InstId(0), 4)]);
/// assert_eq!(p.predict(&e), 2.0);
/// assert_eq!(p.name(), "demo");
/// ```
#[derive(Debug, Clone)]
pub struct MappingPredictor {
    name: String,
    mapping: ThreeLevelMapping,
    /// Reused bottleneck scratch: predictors are queried thousands of
    /// times over benchmark sets, and the solver makes each query
    /// allocation-free after warm-up. Predictors are used from one thread
    /// at a time (a `RefCell`, not a lock).
    solver: RefCell<ThroughputSolver>,
}

impl MappingPredictor {
    /// Wraps a three-level mapping as a predictor.
    pub fn new(name: impl Into<String>, mapping: ThreeLevelMapping) -> Self {
        MappingPredictor {
            name: name.into(),
            mapping,
            solver: RefCell::new(ThroughputSolver::new()),
        }
    }

    /// Wraps a two-level mapping by lifting every instruction to a single
    /// µop executable on its port set.
    pub fn from_two_level(name: impl Into<String>, mapping: &TwoLevelMapping) -> Self {
        let decomp = mapping
            .all_ports()
            .iter()
            .map(|&ps| vec![crate::UopEntry::new(1, ps)])
            .collect();
        MappingPredictor::new(name, ThreeLevelMapping::new(mapping.num_ports(), decomp))
    }

    /// The underlying mapping.
    pub fn mapping(&self) -> &ThreeLevelMapping {
        &self.mapping
    }
}

impl ThroughputPredictor for MappingPredictor {
    fn predict(&self, e: &Experiment) -> f64 {
        self.solver.borrow_mut().mapping_throughput(&self.mapping, e)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Mean relative disagreement between two predictors over a probe set:
/// `mean(|a(e) − b(e)| / max(a(e), b(e)))`, in `[0, 1)`.
///
/// Port mappings are not uniquely determined by throughputs (paper
/// §4.4), so inferred and ground-truth mappings are compared by
/// *behavioural* agreement rather than structural equality. A value of
/// 0 means the mappings are throughput-equivalent on the probe set.
///
/// # Panics
///
/// Panics if `experiments` is empty or a prediction is not positive.
pub fn prediction_agreement(
    a: &dyn ThroughputPredictor,
    b: &dyn ThroughputPredictor,
    experiments: &[Experiment],
) -> f64 {
    assert!(!experiments.is_empty(), "empty probe set");
    let sum: f64 = experiments
        .iter()
        .map(|e| {
            let ta = a.predict(e);
            let tb = b.predict(e);
            assert!(ta > 0.0 && tb > 0.0, "non-positive prediction");
            (ta - tb).abs() / ta.max(tb)
        })
        .sum();
    sum / experiments.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstId, PortSet, UopEntry};

    #[test]
    fn two_level_lift_matches_two_level_throughput() {
        let two = TwoLevelMapping::new(
            3,
            vec![
                PortSet::from_ports(&[0]),
                PortSet::from_ports(&[0, 1]),
                PortSet::from_ports(&[2]),
            ],
        );
        let p = MappingPredictor::from_two_level("lifted", &two);
        for e in [
            Experiment::singleton(InstId(0)),
            Experiment::pair(InstId(0), 1, InstId(1), 2),
            Experiment::from_counts(&[(InstId(0), 1), (InstId(1), 1), (InstId(2), 3)]),
        ] {
            assert!((p.predict(&e) - two.throughput(&e)).abs() < 1e-12);
        }
    }

    #[test]
    fn agreement_is_zero_for_equivalent_mappings() {
        // Structurally different but throughput-equivalent: {0,1} as one
        // µop vs the congruent twin instruction.
        let m1 = ThreeLevelMapping::new(
            2,
            vec![vec![UopEntry::new(1, PortSet::from_ports(&[0, 1]))]],
        );
        let a = MappingPredictor::new("a", m1.clone());
        let b = MappingPredictor::new("b", m1);
        let probes = vec![
            Experiment::singleton(InstId(0)),
            Experiment::from_counts(&[(InstId(0), 5)]),
        ];
        assert_eq!(prediction_agreement(&a, &b, &probes), 0.0);
    }

    #[test]
    fn agreement_is_symmetric_and_bounded() {
        let m1 = ThreeLevelMapping::new(
            2,
            vec![vec![UopEntry::new(1, PortSet::from_ports(&[0]))]],
        );
        let m2 = ThreeLevelMapping::new(
            2,
            vec![vec![UopEntry::new(3, PortSet::from_ports(&[0]))]],
        );
        let a = MappingPredictor::new("a", m1);
        let b = MappingPredictor::new("b", m2);
        let probes = vec![Experiment::singleton(InstId(0))];
        let d1 = prediction_agreement(&a, &b, &probes);
        let d2 = prediction_agreement(&b, &a, &probes);
        assert_eq!(d1, d2);
        assert!((0.0..1.0).contains(&d1));
        // 1 vs 3 cycles: |1-3|/3 = 2/3.
        assert!((d1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty probe set")]
    fn agreement_rejects_empty_probes() {
        let m = ThreeLevelMapping::new(
            1,
            vec![vec![UopEntry::new(1, PortSet::from_ports(&[0]))]],
        );
        let a = MappingPredictor::new("a", m.clone());
        let b = MappingPredictor::new("b", m);
        prediction_agreement(&a, &b, &[]);
    }

    #[test]
    fn predictor_is_usable_as_trait_object() {
        let m = ThreeLevelMapping::new(
            1,
            vec![vec![UopEntry::new(2, PortSet::from_ports(&[0]))]],
        );
        let p: Box<dyn ThroughputPredictor> = Box::new(MappingPredictor::new("obj", m));
        assert_eq!(p.predict(&Experiment::singleton(InstId(0))), 2.0);
        assert_eq!(p.name(), "obj");
    }
}
