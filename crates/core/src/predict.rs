//! The throughput-predictor abstraction shared by PMEvo and all baselines,
//! plus the instruction-sequence grammar and wire records of the serving
//! layer.

use crate::json::{self, Value};
use crate::{Experiment, InstId, ThreeLevelMapping, ThroughputSolver, TwoLevelMapping};
use std::cell::RefCell;
use std::fmt;

/// A model that predicts the steady-state throughput of an experiment.
///
/// Implementors include mappings inferred by PMEvo, ground-truth mappings
/// (the "uops.info" baseline), and the IACA-, llvm-mca- and Ithemal-like
/// baselines in `pmevo-baselines`. Predictions are in cycles per
/// experiment instance, the unit of paper Definition 1.
pub trait ThroughputPredictor {
    /// Predicts the throughput of `e` in cycles.
    fn predict(&self, e: &Experiment) -> f64;

    /// A short human-readable name for result tables.
    fn name(&self) -> &str;
}

/// Predicts throughput from a port mapping with the bottleneck simulation
/// algorithm, i.e. under the paper's optimal-scheduler model.
///
/// This is how an inferred PMEvo mapping and the uops.info-style ground
/// truth mapping are evaluated in paper §5.3.
///
/// # Example
///
/// ```
/// use pmevo_core::{
///     Experiment, InstId, MappingPredictor, PortSet, ThroughputPredictor,
///     ThreeLevelMapping, UopEntry,
/// };
///
/// let m = ThreeLevelMapping::new(2, vec![
///     vec![UopEntry::new(1, PortSet::from_ports(&[0, 1]))],
/// ]);
/// let p = MappingPredictor::new("demo", m);
/// let e = Experiment::from_counts(&[(InstId(0), 4)]);
/// assert_eq!(p.predict(&e), 2.0);
/// assert_eq!(p.name(), "demo");
/// ```
#[derive(Debug, Clone)]
pub struct MappingPredictor {
    name: String,
    mapping: ThreeLevelMapping,
    /// Reused bottleneck scratch: predictors are queried thousands of
    /// times over benchmark sets, and the solver makes each query
    /// allocation-free after warm-up. Predictors are used from one thread
    /// at a time (a `RefCell`, not a lock).
    solver: RefCell<ThroughputSolver>,
}

impl MappingPredictor {
    /// Wraps a three-level mapping as a predictor.
    pub fn new(name: impl Into<String>, mapping: ThreeLevelMapping) -> Self {
        MappingPredictor {
            name: name.into(),
            mapping,
            solver: RefCell::new(ThroughputSolver::new()),
        }
    }

    /// Wraps a two-level mapping by lifting every instruction to a single
    /// µop executable on its port set.
    pub fn from_two_level(name: impl Into<String>, mapping: &TwoLevelMapping) -> Self {
        let decomp = mapping
            .all_ports()
            .iter()
            .map(|&ps| vec![crate::UopEntry::new(1, ps)])
            .collect();
        MappingPredictor::new(name, ThreeLevelMapping::new(mapping.num_ports(), decomp))
    }

    /// The underlying mapping.
    pub fn mapping(&self) -> &ThreeLevelMapping {
        &self.mapping
    }
}

impl ThroughputPredictor for MappingPredictor {
    fn predict(&self, e: &Experiment) -> f64 {
        self.solver.borrow_mut().mapping_throughput(&self.mapping, e)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Mean relative disagreement between two predictors over a probe set:
/// `mean(|a(e) − b(e)| / max(a(e), b(e)))`, in `[0, 1)`.
///
/// Port mappings are not uniquely determined by throughputs (paper
/// §4.4), so inferred and ground-truth mappings are compared by
/// *behavioural* agreement rather than structural equality. A value of
/// 0 means the mappings are throughput-equivalent on the probe set.
///
/// # Panics
///
/// Panics if `experiments` is empty or a prediction is not positive.
pub fn prediction_agreement(
    a: &dyn ThroughputPredictor,
    b: &dyn ThroughputPredictor,
    experiments: &[Experiment],
) -> f64 {
    assert!(!experiments.is_empty(), "empty probe set");
    let sum: f64 = experiments
        .iter()
        .map(|e| {
            let ta = a.predict(e);
            let tb = b.predict(e);
            assert!(ta > 0.0 && tb > 0.0, "non-positive prediction");
            (ta - tb).abs() / ta.max(tb)
        })
        .sum();
    sum / experiments.len() as f64
}

/// Why a line of the sequence grammar could not be parsed — see
/// [`parse_sequence`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SequenceParseError {
    /// The line contained no instruction terms (empty, whitespace, or a
    /// `#` comment).
    Empty,
    /// A term named an instruction the resolver does not know.
    UnknownInstruction {
        /// The unresolved instruction name, verbatim.
        name: String,
        /// The nearest known instruction name, when one is plausibly
        /// what the user meant. [`parse_sequence`] itself leaves this
        /// `None` (it only sees a resolver closure); name-table owners
        /// like `pmevo-predict`'s `StoredMapping::parse` fill it in via
        /// [`crate::suggest::nearest`].
        suggestion: Option<String>,
    },
    /// A term's repeat count was not a positive integer.
    BadCount {
        /// The offending term, verbatim.
        term: String,
    },
}

impl fmt::Display for SequenceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceParseError::Empty => write!(f, "empty instruction sequence"),
            SequenceParseError::UnknownInstruction { name, suggestion } => {
                write!(f, "unknown instruction form {name:?}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                Ok(())
            }
            SequenceParseError::BadCount { term } => {
                write!(f, "bad repeat count in term {term:?} (expected a positive integer)")
            }
        }
    }
}

impl std::error::Error for SequenceParseError {}

/// Parses one line of the asm-like sequence grammar used by the
/// prediction-serving layer (`pmevo-predict`, `pmevo-cli predict`) into
/// an [`Experiment`].
///
/// The grammar is deliberately order-free, matching the model (paper
/// §3.1 experiments are multisets):
///
/// * terms are separated by `;`, `,` or newlines-within-the-line
///   (whitespace around terms is ignored);
/// * a term is an instruction-form name, optionally followed by a repeat
///   count: `add_r64_r64 * 3`, `add_r64_r64 x3` or `add_r64_r64:3`;
/// * text after `#` is a comment;
/// * names are resolved through `resolve`, so the same parser serves any
///   instruction universe (a platform ISA, a store shard, dense
///   `i<N>` ids, ...).
///
/// Repeated mentions of the same form accumulate, exactly like
/// [`Experiment::from_counts`].
///
/// # Errors
///
/// Returns [`SequenceParseError::Empty`] for a blank or comment-only
/// line, and the other variants for malformed terms.
///
/// # Example
///
/// ```
/// use pmevo_core::{parse_sequence, Experiment, InstId};
///
/// let names = ["add", "mul", "store"];
/// let resolve = |name: &str| {
///     names.iter().position(|n| *n == name).map(|i| InstId(i as u32))
/// };
/// let e = parse_sequence("add; mul x2; add # a comment", resolve).unwrap();
/// assert_eq!(e, Experiment::from_counts(&[(InstId(0), 2), (InstId(1), 2)]));
/// ```
pub fn parse_sequence(
    line: &str,
    mut resolve: impl FnMut(&str) -> Option<InstId>,
) -> Result<Experiment, SequenceParseError> {
    let line = line.split('#').next().unwrap_or("");
    let mut counts: Vec<(InstId, u32)> = Vec::new();
    for term in line.split([';', ',']) {
        let term = term.trim();
        if term.is_empty() {
            continue;
        }
        // `name * n`, `name xN` and `name:n` all mean "n copies of name";
        // a bare name means one copy.
        let (name, count) = if let Some((name, n)) = term.rsplit_once(['*', ':']) {
            (name.trim_end(), parse_count(n, term)?)
        } else if let Some((name, x)) = term.rsplit_once(char::is_whitespace) {
            let x = x.trim();
            match x.strip_prefix(['x', 'X']) {
                Some(n) if !n.is_empty() => (name.trim_end(), parse_count(n, term)?),
                _ => return Err(SequenceParseError::BadCount { term: term.to_owned() }),
            }
        } else {
            (term, 1)
        };
        let id = resolve(name).ok_or_else(|| SequenceParseError::UnknownInstruction {
            name: name.to_owned(),
            suggestion: None,
        })?;
        counts.push((id, count));
    }
    if counts.is_empty() {
        return Err(SequenceParseError::Empty);
    }
    Ok(Experiment::from_counts(&counts))
}

fn parse_count(text: &str, term: &str) -> Result<u32, SequenceParseError> {
    match text.trim().parse::<u32>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(SequenceParseError::BadCount { term: term.to_owned() }),
    }
}

/// One response record of the line-oriented serving protocol.
///
/// Every front end that answers sequence lines — `pmevo-cli predict`
/// offline, the `pmevo-serve` daemon over a socket — emits exactly these
/// records, one compact JSON object per line, so a daemon's per-client
/// response stream is **byte-identical** to the offline run of the same
/// input lines. `line` is the client's 1-based input line number.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRecord {
    /// A successfully predicted sequence:
    /// `{"line":N,"mapping":"NAME@V","cycles":T}`.
    Cycles {
        /// 1-based input line number.
        line: u64,
        /// `name@version` label of the mapping that answered.
        mapping: String,
        /// Predicted steady-state throughput in cycles per iteration.
        cycles: f64,
    },
    /// A line that could not be answered:
    /// `{"line":N,"error":"..."}`.
    Error {
        /// 1-based input line number.
        line: u64,
        /// Human-readable failure description.
        message: String,
    },
}

impl ServeRecord {
    /// The record as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let value = match self {
            ServeRecord::Cycles { line, mapping, cycles } => Value::Obj(vec![
                ("line".into(), Value::UInt(*line)),
                ("mapping".into(), Value::Str(mapping.clone())),
                ("cycles".into(), Value::Num(*cycles)),
            ]),
            ServeRecord::Error { line, message } => Value::Obj(vec![
                ("line".into(), Value::UInt(*line)),
                ("error".into(), Value::Str(message.clone())),
            ]),
        };
        json::write_compact(&value)
    }
}

/// A control verb of the serving protocol — see [`parse_control`].
///
/// Deliberately *not* `#[non_exhaustive]`: adding a verb must break every
/// consumer's `match` so no front end silently ignores it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlVerb {
    /// `!stats` — report serving counters (QPS, cache hit rate,
    /// per-mapping query counts, live connections).
    Stats,
    /// `!mappings` — list every loaded mapping as a `name@version` label
    /// with its per-mapping query count, in store order (load order).
    Mappings,
    /// `!reload NAME=file.json` — load a new version of `NAME`'s mapping
    /// into the store and atomically swap it in; in-flight batches drain
    /// against the old version.
    Reload {
        /// Platform / mapping name to register the new version under.
        name: String,
        /// Path (on the daemon's filesystem) of the mapping artifact.
        path: String,
    },
    /// `!shutdown` — flush pending work and stop the daemon.
    Shutdown,
}

/// Parses a control line of the serving protocol.
///
/// Control lines start with `!` (after optional leading whitespace); the
/// prefix cannot collide with the sequence grammar, whose terms are
/// instruction-form names. Returns:
///
/// * `None` — not a control line (feed it to the sequence path);
/// * `Some(Ok(verb))` — a recognized [`ControlVerb`];
/// * `Some(Err(message))` — started with `!` but is not a valid verb.
///
/// # Example
///
/// ```
/// use pmevo_core::{parse_control, ControlVerb};
///
/// assert_eq!(parse_control("add x2"), None);
/// assert_eq!(parse_control("!stats"), Some(Ok(ControlVerb::Stats)));
/// assert_eq!(parse_control("!mappings"), Some(Ok(ControlVerb::Mappings)));
/// assert_eq!(
///     parse_control("!reload SKL=skl_v2.json"),
///     Some(Ok(ControlVerb::Reload { name: "SKL".into(), path: "skl_v2.json".into() }))
/// );
/// assert!(parse_control("!frobnicate").unwrap().is_err());
/// ```
pub fn parse_control(line: &str) -> Option<Result<ControlVerb, String>> {
    let rest = line.trim_start().strip_prefix('!')?;
    let rest = rest.trim();
    let (verb, arg) = match rest.split_once(char::is_whitespace) {
        Some((v, a)) => (v, a.trim()),
        None => (rest, ""),
    };
    Some(match verb {
        "stats" if arg.is_empty() => Ok(ControlVerb::Stats),
        "mappings" if arg.is_empty() => Ok(ControlVerb::Mappings),
        "shutdown" if arg.is_empty() => Ok(ControlVerb::Shutdown),
        "reload" => match arg.split_once('=') {
            Some((name, path)) if !name.trim().is_empty() && !path.trim().is_empty() => {
                Ok(ControlVerb::Reload {
                    name: name.trim().to_owned(),
                    path: path.trim().to_owned(),
                })
            }
            _ => Err("reload expects NAME=file.json".to_owned()),
        },
        "stats" | "mappings" | "shutdown" => Err(format!("{verb} takes no argument")),
        other => Err(format!(
            "unknown control verb {other:?} (expected stats, mappings, reload or shutdown)"
        )),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstId, PortSet, UopEntry};

    #[test]
    fn two_level_lift_matches_two_level_throughput() {
        let two = TwoLevelMapping::new(
            3,
            vec![
                PortSet::from_ports(&[0]),
                PortSet::from_ports(&[0, 1]),
                PortSet::from_ports(&[2]),
            ],
        );
        let p = MappingPredictor::from_two_level("lifted", &two);
        for e in [
            Experiment::singleton(InstId(0)),
            Experiment::pair(InstId(0), 1, InstId(1), 2),
            Experiment::from_counts(&[(InstId(0), 1), (InstId(1), 1), (InstId(2), 3)]),
        ] {
            assert!((p.predict(&e) - two.throughput(&e)).abs() < 1e-12);
        }
    }

    #[test]
    fn agreement_is_zero_for_equivalent_mappings() {
        // Structurally different but throughput-equivalent: {0,1} as one
        // µop vs the congruent twin instruction.
        let m1 = ThreeLevelMapping::new(
            2,
            vec![vec![UopEntry::new(1, PortSet::from_ports(&[0, 1]))]],
        );
        let a = MappingPredictor::new("a", m1.clone());
        let b = MappingPredictor::new("b", m1);
        let probes = vec![
            Experiment::singleton(InstId(0)),
            Experiment::from_counts(&[(InstId(0), 5)]),
        ];
        assert_eq!(prediction_agreement(&a, &b, &probes), 0.0);
    }

    #[test]
    fn agreement_is_symmetric_and_bounded() {
        let m1 = ThreeLevelMapping::new(
            2,
            vec![vec![UopEntry::new(1, PortSet::from_ports(&[0]))]],
        );
        let m2 = ThreeLevelMapping::new(
            2,
            vec![vec![UopEntry::new(3, PortSet::from_ports(&[0]))]],
        );
        let a = MappingPredictor::new("a", m1);
        let b = MappingPredictor::new("b", m2);
        let probes = vec![Experiment::singleton(InstId(0))];
        let d1 = prediction_agreement(&a, &b, &probes);
        let d2 = prediction_agreement(&b, &a, &probes);
        assert_eq!(d1, d2);
        assert!((0.0..1.0).contains(&d1));
        // 1 vs 3 cycles: |1-3|/3 = 2/3.
        assert!((d1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty probe set")]
    fn agreement_rejects_empty_probes() {
        let m = ThreeLevelMapping::new(
            1,
            vec![vec![UopEntry::new(1, PortSet::from_ports(&[0]))]],
        );
        let a = MappingPredictor::new("a", m.clone());
        let b = MappingPredictor::new("b", m);
        prediction_agreement(&a, &b, &[]);
    }

    fn resolve_dense(name: &str) -> Option<InstId> {
        name.strip_prefix('i')?.parse::<u32>().ok().map(InstId)
    }

    #[test]
    fn sequence_grammar_accepts_all_count_spellings() {
        for line in ["i0; i1*2; i1", "i0, i1 x3", "i1:2 , i1;i0", "  i0 ;i1 * 2 ; i1  "] {
            let e = parse_sequence(line, resolve_dense).unwrap();
            assert_eq!(e, Experiment::from_counts(&[(InstId(0), 1), (InstId(1), 3)]), "{line:?}");
        }
    }

    #[test]
    fn sequence_grammar_strips_comments_and_merges_duplicates() {
        let e = parse_sequence("i4; i4; i4 # three of the same", resolve_dense).unwrap();
        assert_eq!(e, Experiment::from_counts(&[(InstId(4), 3)]));
    }

    #[test]
    fn sequence_grammar_rejects_bad_lines() {
        for line in ["", "   ", "# only a comment", "; ; ;"] {
            assert_eq!(parse_sequence(line, resolve_dense), Err(SequenceParseError::Empty), "{line:?}");
        }
        assert_eq!(
            parse_sequence("i0; nope", resolve_dense),
            Err(SequenceParseError::UnknownInstruction { name: "nope".into(), suggestion: None })
        );
        for line in ["i0 * 0", "i0:x", "i0 y3", "i0 x", "i0 *"] {
            assert!(
                matches!(parse_sequence(line, resolve_dense), Err(SequenceParseError::BadCount { .. })),
                "{line:?}"
            );
        }
    }

    #[test]
    fn serve_records_serialize_to_the_wire_format() {
        let ok = ServeRecord::Cycles { line: 3, mapping: "SKL@2".into(), cycles: 1.5 };
        assert_eq!(ok.to_json_line(), r#"{"line":3,"mapping":"SKL@2","cycles":1.5}"#);
        let err = ServeRecord::Error { line: 9, message: "unknown instruction form \"nope\"".into() };
        assert_eq!(err.to_json_line(), r#"{"line":9,"error":"unknown instruction form \"nope\""}"#);
    }

    #[test]
    fn control_grammar_accepts_verbs_and_rejects_noise() {
        assert_eq!(parse_control("  !stats  "), Some(Ok(ControlVerb::Stats)));
        assert_eq!(parse_control("!mappings"), Some(Ok(ControlVerb::Mappings)));
        assert_eq!(parse_control("!shutdown"), Some(Ok(ControlVerb::Shutdown)));
        assert_eq!(
            parse_control("!reload TINY = /tmp/v2.json"),
            Some(Ok(ControlVerb::Reload { name: "TINY".into(), path: "/tmp/v2.json".into() }))
        );
        assert_eq!(parse_control("add x2"), None);
        assert_eq!(parse_control(""), None);
        for bad in
            ["!reload", "!reload TINY", "!reload =x.json", "!stats now", "!mappings all", "!zap"]
        {
            assert!(matches!(parse_control(bad), Some(Err(_))), "{bad:?}");
        }
    }

    #[test]
    fn predictor_is_usable_as_trait_object() {
        let m = ThreeLevelMapping::new(
            1,
            vec![vec![UopEntry::new(2, PortSet::from_ports(&[0]))]],
        );
        let p: Box<dyn ThroughputPredictor> = Box::new(MappingPredictor::new("obj", m));
        assert_eq!(p.predict(&Experiment::singleton(InstId(0))), 2.0);
        assert_eq!(p.name(), "obj");
    }
}
