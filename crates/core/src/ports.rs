//! Execution ports and sets of ports.

use std::fmt;

/// Maximum number of execution ports supported by the bitmask
/// representation of [`PortSet`].
///
/// Real machines have 7–10 ports (paper Table 1); 64 leaves ample headroom
/// for the synthetic sweeps of Figure 8.
pub const MAX_PORTS: usize = 64;

/// Identifier of a single execution port.
///
/// Ports are numbered densely from zero within one machine description.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
)]
pub struct PortId(pub u8);

impl PortId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A set of execution ports, stored as a 64-bit mask.
///
/// A `PortSet` doubles as the identity of a µop: the paper identifies each
/// µop with the set of ports able to execute it (§4.4), so two µops with
/// equal port sets are the same µop.
///
/// # Example
///
/// ```
/// use pmevo_core::PortSet;
///
/// let a = PortSet::from_ports(&[0, 1]);
/// let b = PortSet::from_ports(&[1, 5]);
/// assert_eq!(a.len(), 2);
/// assert!(a.contains(1));
/// assert!(a.intersects(b));
/// assert!(!a.is_subset_of(b));
/// assert_eq!(a.union(b), PortSet::from_ports(&[0, 1, 5]));
/// ```
#[derive(
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
)]
pub struct PortSet(u64);

impl PortSet {
    /// The empty port set.
    pub const EMPTY: PortSet = PortSet(0);

    /// Creates a set from a raw bitmask (bit `k` ⇔ port `k`).
    pub fn from_mask(mask: u64) -> Self {
        PortSet(mask)
    }

    /// Creates a set containing exactly the given ports.
    ///
    /// # Panics
    ///
    /// Panics if any port index is `>= MAX_PORTS`.
    pub fn from_ports(ports: &[usize]) -> Self {
        let mut mask = 0u64;
        for &p in ports {
            assert!(p < MAX_PORTS, "port {p} out of range");
            mask |= 1 << p;
        }
        PortSet(mask)
    }

    /// The set `{0, 1, ..., n-1}` of the first `n` ports.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PORTS`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_PORTS, "{n} ports out of range");
        if n == MAX_PORTS {
            PortSet(u64::MAX)
        } else {
            PortSet((1u64 << n) - 1)
        }
    }

    /// The singleton set `{p}`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= MAX_PORTS`.
    pub fn singleton(p: usize) -> Self {
        assert!(p < MAX_PORTS, "port {p} out of range");
        PortSet(1 << p)
    }

    /// The raw bitmask.
    pub fn mask(self) -> u64 {
        self.0
    }

    /// Number of ports in the set (the paper's µop *width* `|u|`).
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether port `p` is in the set.
    pub fn contains(self, p: usize) -> bool {
        p < MAX_PORTS && (self.0 >> p) & 1 == 1
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: PortSet) -> PortSet {
        PortSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: PortSet) -> PortSet {
        PortSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: PortSet) -> PortSet {
        PortSet(self.0 & !other.0)
    }

    /// Returns the set with port `p` inserted.
    ///
    /// # Panics
    ///
    /// Panics if `p >= MAX_PORTS`.
    #[must_use]
    pub fn with(self, p: usize) -> PortSet {
        assert!(p < MAX_PORTS, "port {p} out of range");
        PortSet(self.0 | (1 << p))
    }

    /// Whether the sets share at least one port.
    pub fn intersects(self, other: PortSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(self, other: PortSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over the port indices in ascending order.
    pub fn iter(self) -> PortSetIter {
        PortSetIter(self.0)
    }
}

impl fmt::Debug for PortSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PortSet{self}")
    }
}

impl fmt::Display for PortSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, p) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for PortSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut mask = 0u64;
        for p in iter {
            assert!(p < MAX_PORTS, "port {p} out of range");
            mask |= 1 << p;
        }
        PortSet(mask)
    }
}

/// Iterator over the ports of a [`PortSet`], produced by [`PortSet::iter`].
#[derive(Debug, Clone)]
pub struct PortSetIter(u64);

impl Iterator for PortSetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let p = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(p)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for PortSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = PortSet::from_ports(&[0, 3, 7]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(0));
        assert!(s.contains(3));
        assert!(!s.contains(1));
        assert!(!s.contains(200));
        assert!(!s.is_empty());
        assert!(PortSet::EMPTY.is_empty());
    }

    #[test]
    fn first_n_and_singleton() {
        assert_eq!(PortSet::first_n(3), PortSet::from_ports(&[0, 1, 2]));
        assert_eq!(PortSet::first_n(0), PortSet::EMPTY);
        assert_eq!(PortSet::first_n(64).len(), 64);
        assert_eq!(PortSet::singleton(5), PortSet::from_ports(&[5]));
    }

    #[test]
    fn set_algebra() {
        let a = PortSet::from_ports(&[0, 1, 2]);
        let b = PortSet::from_ports(&[2, 3]);
        assert_eq!(a.union(b), PortSet::from_ports(&[0, 1, 2, 3]));
        assert_eq!(a.intersection(b), PortSet::from_ports(&[2]));
        assert_eq!(a.difference(b), PortSet::from_ports(&[0, 1]));
        assert!(a.intersects(b));
        assert!(!a.is_subset_of(b));
        assert!(PortSet::from_ports(&[2]).is_subset_of(b));
        assert!(PortSet::EMPTY.is_subset_of(a));
        assert_eq!(a.with(5), PortSet::from_ports(&[0, 1, 2, 5]));
    }

    #[test]
    fn iteration_order_is_ascending() {
        let s = PortSet::from_ports(&[9, 1, 4]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 4, 9]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn display_formatting() {
        assert_eq!(PortSet::from_ports(&[0, 2]).to_string(), "{0,2}");
        assert_eq!(PortSet::EMPTY.to_string(), "{}");
        assert_eq!(PortId(3).to_string(), "P3");
    }

    #[test]
    fn from_iterator_collects() {
        let s: PortSet = [1usize, 3, 5].into_iter().collect();
        assert_eq!(s, PortSet::from_ports(&[1, 3, 5]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_port_panics() {
        PortSet::from_ports(&[64]);
    }
}
