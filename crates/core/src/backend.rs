//! Batch-first measurement backends — the measurement half of the
//! inference-session API.
//!
//! The paper's Figure-5 pipeline treats measurement as an opaque stage:
//! experiments go in, steady-state throughputs come out. This module
//! types that stage as the [`MeasurementBackend`] trait so the inference
//! layers ([`InferenceAlgorithm`](crate::InferenceAlgorithm), the
//! `pmevo` session facade) can run unchanged against a cycle-level
//! simulator, a recorded artifact, or real hardware:
//!
//! * [`ModelBackend`] — "measures" with the analytical bottleneck model
//!   of a known mapping (the noise-free oracle used throughout the test
//!   pyramid).
//! * [`ReplayBackend`] — replays a recorded measurement artifact
//!   (serialized through [`measurements_to_json`] /
//!   [`measurements_from_json`] with the [`crate::json`] codec).
//! * [`CachingBackend`] — a decorator that deduplicates repeated
//!   experiments, forwarding only cache misses to the wrapped backend
//!   and counting how many real measurements were performed.
//! * [`NoisyBackend`] — a decorator that injects seeded, per-experiment
//!   multiplicative Gaussian noise for robustness scenarios. The noise
//!   stream is derived from the experiment itself, so results do not
//!   depend on measurement order or batch splits.
//!
//! The simulator-backed [`SimBackend`](../../pmevo_machine/struct.SimBackend.html)
//! lives in `pmevo-machine` (this crate does not know about platforms).
//!
//! Every backend keeps [`BackendStats`]: how many measurements were
//! *requested*, how many were actually *performed* by the leaf backend,
//! and the wall-clock time spent performing them. The pipeline derives
//! its Table-2 `benchmarking_time` from the stats delta, so deduped
//! experiments are not double-counted.

use crate::json::{self, Value};
use crate::{Experiment, MeasuredExperiment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Measurement bookkeeping maintained by every [`MeasurementBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Number of experiment measurements requested from this backend.
    pub measurements_requested: u64,
    /// Number of measurements actually performed by the leaf backend
    /// (cache hits are requested but not performed).
    pub measurements_performed: u64,
    /// Wall-clock time the leaf backend spent performing measurements.
    pub measurement_time: Duration,
}

impl BackendStats {
    /// The stats accumulated since an earlier `snapshot` of the same
    /// backend (all three counters are monotone).
    #[must_use]
    pub fn since(&self, snapshot: &BackendStats) -> BackendStats {
        BackendStats {
            measurements_requested: self.measurements_requested - snapshot.measurements_requested,
            measurements_performed: self.measurements_performed - snapshot.measurements_performed,
            measurement_time: self.measurement_time - snapshot.measurement_time,
        }
    }

    /// The component-wise sum of two deltas — how a resumed session
    /// combines the accounting a checkpoint carried over from the
    /// original process with the stats accumulated since the resume.
    #[must_use]
    pub fn plus(&self, other: &BackendStats) -> BackendStats {
        BackendStats {
            measurements_requested: self.measurements_requested + other.measurements_requested,
            measurements_performed: self.measurements_performed + other.measurements_performed,
            measurement_time: self.measurement_time + other.measurement_time,
        }
    }
}

/// A batch-first source of steady-state throughput measurements.
///
/// Implementations must return exactly one finite, positive throughput
/// (cycles per experiment instance) per experiment, in input order.
/// Batches are the unit of work so that backends can measure in
/// parallel, deduplicate, or amortize fixed costs; callers should prefer
/// one large batch over many small ones.
///
/// # Example
///
/// A custom backend is a dozen lines — answer batches from whatever
/// machine or model you have, and keep the three [`BackendStats`]
/// counters honest (here: a "machine" that executes strictly serially,
/// one instruction per cycle):
///
/// ```
/// use pmevo_core::{BackendStats, Experiment, InstId, MeasurementBackend};
///
/// #[derive(Default)]
/// struct SerialMachine {
///     stats: BackendStats,
/// }
///
/// impl MeasurementBackend for SerialMachine {
///     fn measure_batch(&mut self, experiments: &[Experiment]) -> Vec<f64> {
///         self.stats.measurements_requested += experiments.len() as u64;
///         self.stats.measurements_performed += experiments.len() as u64;
///         experiments.iter().map(|e| f64::from(e.total_insts())).collect()
///     }
///     fn name(&self) -> &str {
///         "serial"
///     }
///     fn stats(&self) -> BackendStats {
///         self.stats
///     }
/// }
///
/// let mut backend = SerialMachine::default();
/// let e = Experiment::from_counts(&[(InstId(0), 2), (InstId(1), 1)]);
/// // Measure through the checked entry point, like the algorithms do.
/// assert_eq!(backend.measure_batch_checked(&[e]), vec![3.0]);
/// assert_eq!(backend.stats().measurements_performed, 1);
/// ```
pub trait MeasurementBackend {
    /// Measures a batch of experiments, one throughput per experiment,
    /// in input order.
    ///
    /// # Panics
    ///
    /// Implementations panic on experiments they cannot measure (unknown
    /// instructions, missing recordings).
    fn measure_batch(&mut self, experiments: &[Experiment]) -> Vec<f64>;

    /// [`measure_batch`](Self::measure_batch) plus contract validation:
    /// exactly one finite, positive throughput per experiment. Inference
    /// algorithms should measure through this so a misbehaving backend
    /// fails loudly instead of corrupting the fit.
    ///
    /// # Panics
    ///
    /// Panics if the batch sizes disagree or any measurement is not
    /// positive and finite.
    fn measure_batch_checked(&mut self, experiments: &[Experiment]) -> Vec<f64> {
        let out = self.measure_batch(experiments);
        assert_eq!(out.len(), experiments.len(), "measurement batch size mismatch");
        for (e, &t) in experiments.iter().zip(&out) {
            assert!(t.is_finite() && t > 0.0, "bad measurement {t} for {e}");
        }
        out
    }

    /// A human-readable backend name for reports and logs.
    fn name(&self) -> &str;

    /// The backend's measurement bookkeeping so far.
    fn stats(&self) -> BackendStats;
}

impl<B: MeasurementBackend + ?Sized> MeasurementBackend for &mut B {
    fn measure_batch(&mut self, experiments: &[Experiment]) -> Vec<f64> {
        (**self).measure_batch(experiments)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn stats(&self) -> BackendStats {
        (**self).stats()
    }
}

impl<B: MeasurementBackend + ?Sized> MeasurementBackend for Box<B> {
    fn measure_batch(&mut self, experiments: &[Experiment]) -> Vec<f64> {
        (**self).measure_batch(experiments)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn stats(&self) -> BackendStats {
        (**self).stats()
    }
}

/// An order-independent per-experiment hash: the same experiment always
/// draws the same noise stream, regardless of batch order or splits.
pub(crate) fn experiment_hash(seed: u64, e: &Experiment) -> u64 {
    let mut hash = seed;
    for (i, n) in e.iter() {
        hash = hash
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(i.0) << 32 | u64::from(n));
    }
    hash
}

/// Samples a standard normal deviate via Box–Muller.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// "Measures" with the analytical bottleneck model of a known mapping —
/// the noise-free oracle backend used by tests, examples and the
/// congruence/robustness scenarios where a hidden ground truth exists.
///
/// # Example
///
/// ```
/// use pmevo_core::{Experiment, InstId, MeasurementBackend, ModelBackend};
/// use pmevo_core::{PortSet, ThreeLevelMapping, UopEntry};
///
/// let gt = ThreeLevelMapping::new(2, vec![vec![UopEntry::new(1, PortSet::from_ports(&[0]))]]);
/// let mut backend = ModelBackend::new(gt);
/// let tp = backend.measure_batch(&[Experiment::singleton(InstId(0))]);
/// assert_eq!(tp, vec![1.0]);
/// assert_eq!(backend.stats().measurements_performed, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ModelBackend {
    mapping: crate::ThreeLevelMapping,
    stats: BackendStats,
}

impl ModelBackend {
    /// Creates a backend that answers with `mapping`'s optimal-scheduler
    /// throughput.
    pub fn new(mapping: crate::ThreeLevelMapping) -> Self {
        ModelBackend {
            mapping,
            stats: BackendStats::default(),
        }
    }

    /// The mapping the backend evaluates.
    pub fn mapping(&self) -> &crate::ThreeLevelMapping {
        &self.mapping
    }
}

impl MeasurementBackend for ModelBackend {
    fn measure_batch(&mut self, experiments: &[Experiment]) -> Vec<f64> {
        let start = Instant::now();
        let out: Vec<f64> = experiments.iter().map(|e| self.mapping.throughput(e)).collect();
        self.stats.measurements_requested += experiments.len() as u64;
        self.stats.measurements_performed += experiments.len() as u64;
        self.stats.measurement_time += start.elapsed();
        out
    }

    fn name(&self) -> &str {
        "model"
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

/// Failure to read a measurement artifact from JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasurementJsonError {
    /// The input was not valid JSON.
    Parse(json::ParseError),
    /// The JSON was valid but not a measurement artifact of the expected
    /// shape.
    Shape(String),
}

impl fmt::Display for MeasurementJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasurementJsonError::Parse(e) => write!(f, "{e}"),
            MeasurementJsonError::Shape(msg) => write!(f, "invalid measurement JSON: {msg}"),
        }
    }
}

impl std::error::Error for MeasurementJsonError {}

fn measurements_to_json_value(measurements: &[MeasuredExperiment]) -> Value {
    let rows = measurements
        .iter()
        .map(|me| {
            let counts = me
                .experiment
                .iter()
                .map(|(i, n)| {
                    Value::Arr(vec![Value::UInt(u64::from(i.0)), Value::UInt(u64::from(n))])
                })
                .collect();
            Value::Obj(vec![
                ("experiment".into(), Value::Arr(counts)),
                ("throughput".into(), Value::Num(me.throughput)),
            ])
        })
        .collect();
    Value::Obj(vec![("measurements".into(), Value::Arr(rows))])
}

/// Serializes a measurement artifact as compact JSON
/// (`{"measurements":[{"experiment":[[id,count],…],"throughput":…},…]}`).
pub fn measurements_to_json(measurements: &[MeasuredExperiment]) -> String {
    json::write_compact(&measurements_to_json_value(measurements))
}

/// Serializes a measurement artifact as 2-space-indented JSON.
pub fn measurements_to_json_pretty(measurements: &[MeasuredExperiment]) -> String {
    json::write_pretty(&measurements_to_json_value(measurements))
}

/// Parses a measurement artifact produced by [`measurements_to_json`] /
/// [`measurements_to_json_pretty`].
pub fn measurements_from_json(input: &str) -> Result<Vec<MeasuredExperiment>, MeasurementJsonError> {
    let doc = json::parse(input).map_err(MeasurementJsonError::Parse)?;
    let shape = |what: &str| MeasurementJsonError::Shape(what.to_owned());
    let rows = doc
        .get("measurements")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| shape("missing array field `measurements`"))?;
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let counts = row
            .get("experiment")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| shape(&format!("measurements[{i}]: bad `experiment`")))?;
        let mut pairs = Vec::with_capacity(counts.len());
        for pair in counts {
            let [id, n] = pair.as_arr().unwrap_or(&[]) else {
                return Err(shape(&format!("measurements[{i}]: experiment entries are [id, count] pairs")));
            };
            let id = id
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| shape(&format!("measurements[{i}]: bad instruction id")))?;
            let n = n
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| shape(&format!("measurements[{i}]: bad count")))?;
            pairs.push((crate::InstId(id), n));
        }
        let throughput = match row.get("throughput") {
            Some(&Value::Num(t)) => t,
            Some(&Value::UInt(t)) => t as f64,
            _ => return Err(shape(&format!("measurements[{i}]: bad `throughput`"))),
        };
        if !(throughput.is_finite() && throughput > 0.0) {
            return Err(shape(&format!(
                "measurements[{i}]: throughput {throughput} is not positive and finite"
            )));
        }
        out.push(MeasuredExperiment::new(Experiment::from_counts(&pairs), throughput));
    }
    Ok(out)
}

/// Replays a recorded measurement artifact: every experiment must have
/// been recorded (structural multiset equality), or measurement panics.
///
/// Recordings typically come out of a [`CachingBackend`]
/// ([`CachingBackend::measurements`]) serialized with
/// [`measurements_to_json`], making inference runs reproducible without
/// the machine that produced them.
///
/// # Example
///
/// ```
/// use pmevo_core::{measurements_to_json, Experiment, InstId};
/// use pmevo_core::{MeasuredExperiment, MeasurementBackend, ReplayBackend};
///
/// let e = Experiment::singleton(InstId(0));
/// let json = measurements_to_json(&[MeasuredExperiment::new(e.clone(), 2.5)]);
/// let mut backend = ReplayBackend::from_json(&json).unwrap();
/// assert_eq!(backend.measure_batch(&[e]), vec![2.5]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplayBackend {
    records: BTreeMap<Experiment, f64>,
    stats: BackendStats,
}

impl ReplayBackend {
    /// Builds a replay backend from recorded measurements. Duplicate
    /// experiments keep the last recording.
    pub fn from_measurements(measurements: &[MeasuredExperiment]) -> Self {
        ReplayBackend {
            records: measurements
                .iter()
                .map(|me| (me.experiment.clone(), me.throughput))
                .collect(),
            stats: BackendStats::default(),
        }
    }

    /// Parses a measurement artifact (see [`measurements_from_json`])
    /// into a replay backend.
    pub fn from_json(input: &str) -> Result<Self, MeasurementJsonError> {
        Ok(Self::from_measurements(&measurements_from_json(input)?))
    }

    /// Number of recorded experiments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no experiments are recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The recording of one experiment, if present.
    pub fn recorded(&self, e: &Experiment) -> Option<f64> {
        self.records.get(e).copied()
    }
}

impl MeasurementBackend for ReplayBackend {
    /// # Panics
    ///
    /// Panics if an experiment was never recorded.
    fn measure_batch(&mut self, experiments: &[Experiment]) -> Vec<f64> {
        let start = Instant::now();
        let out: Vec<f64> = experiments
            .iter()
            .map(|e| {
                *self
                    .records
                    .get(e)
                    .unwrap_or_else(|| panic!("no recorded measurement for experiment {e}"))
            })
            .collect();
        self.stats.measurements_requested += experiments.len() as u64;
        self.stats.measurements_performed += experiments.len() as u64;
        self.stats.measurement_time += start.elapsed();
        out
    }

    fn name(&self) -> &str {
        "replay"
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

/// A decorator that deduplicates repeated experiments: only cache misses
/// reach the wrapped backend (one deduplicated sub-batch per call), and
/// [`BackendStats::measurements_performed`] counts real measurements
/// only, so pipelines re-measuring overlapping experiment sets are
/// billed once per distinct experiment.
///
/// # Example
///
/// ```
/// use pmevo_core::{CachingBackend, Experiment, InstId, MeasurementBackend, ModelBackend};
/// use pmevo_core::{PortSet, ThreeLevelMapping, UopEntry};
///
/// let gt = ThreeLevelMapping::new(2, vec![vec![UopEntry::new(1, PortSet::from_ports(&[0]))]]);
/// let mut backend = CachingBackend::new(ModelBackend::new(gt));
/// let e = Experiment::singleton(InstId(0));
/// backend.measure_batch(&[e.clone(), e.clone()]);
/// backend.measure_batch(&[e]);
/// let stats = backend.stats();
/// assert_eq!(stats.measurements_requested, 3);
/// assert_eq!(stats.measurements_performed, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CachingBackend<B> {
    inner: B,
    cache: BTreeMap<Experiment, f64>,
    requested: u64,
    name: String,
}

impl<B: MeasurementBackend> CachingBackend<B> {
    /// Wraps `inner` with an experiment-level measurement cache.
    pub fn new(inner: B) -> Self {
        let name = format!("cached({})", inner.name());
        CachingBackend {
            inner,
            cache: BTreeMap::new(),
            requested: 0,
            name,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps the decorator, discarding the cache.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Number of distinct experiments measured so far.
    pub fn cache_size(&self) -> usize {
        self.cache.len()
    }

    /// All distinct measurements performed so far, in experiment order —
    /// ready to serialize with
    /// [`measurements_to_json`] and replay with [`ReplayBackend`].
    pub fn measurements(&self) -> Vec<MeasuredExperiment> {
        self.cache
            .iter()
            .map(|(e, &t)| MeasuredExperiment::new(e.clone(), t))
            .collect()
    }
}

impl<B: MeasurementBackend> MeasurementBackend for CachingBackend<B> {
    fn measure_batch(&mut self, experiments: &[Experiment]) -> Vec<f64> {
        self.requested += experiments.len() as u64;
        // Deduplicated misses, in first-occurrence order.
        let mut misses: Vec<Experiment> = Vec::new();
        let mut seen: BTreeMap<&Experiment, ()> = BTreeMap::new();
        for e in experiments {
            if !self.cache.contains_key(e) && seen.insert(e, ()).is_none() {
                misses.push(e.clone());
            }
        }
        if !misses.is_empty() {
            let measured = self.inner.measure_batch(&misses);
            assert_eq!(measured.len(), misses.len(), "measurement batch size mismatch");
            for (e, t) in misses.into_iter().zip(measured) {
                self.cache.insert(e, t);
            }
        }
        experiments
            .iter()
            .map(|e| self.cache[e])
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn stats(&self) -> BackendStats {
        let inner = self.inner.stats();
        BackendStats {
            measurements_requested: self.requested,
            ..inner
        }
    }
}

/// A decorator that injects seeded multiplicative Gaussian noise
/// (`t · (1 + σ·z)`, clamped positive) on top of the wrapped backend —
/// the robustness scenario of paper §5.1 without touching the backend
/// under test.
///
/// The noise stream is a pure function of `(seed, experiment)`, so the
/// same experiment gets the same perturbation in any batch, in any
/// order — determinism survives caching, re-batching and parallel
/// measurement.
#[derive(Debug, Clone)]
pub struct NoisyBackend<B> {
    inner: B,
    sigma: f64,
    seed: u64,
    requested: u64,
    name: String,
}

impl<B: MeasurementBackend> NoisyBackend<B> {
    /// Wraps `inner`, perturbing every measurement with relative standard
    /// deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(inner: B, sigma: f64, seed: u64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "bad noise sigma {sigma}");
        let name = format!("noisy({})", inner.name());
        NoisyBackend {
            inner,
            sigma,
            seed,
            requested: 0,
            name,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: MeasurementBackend> MeasurementBackend for NoisyBackend<B> {
    fn measure_batch(&mut self, experiments: &[Experiment]) -> Vec<f64> {
        self.requested += experiments.len() as u64;
        let exact = self.inner.measure_batch(experiments);
        if self.sigma == 0.0 {
            return exact;
        }
        experiments
            .iter()
            .zip(exact)
            .map(|(e, t)| {
                let mut rng = StdRng::seed_from_u64(experiment_hash(self.seed, e));
                let z = standard_normal(&mut rng);
                (t * (1.0 + self.sigma * z)).max(1e-9)
            })
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn stats(&self) -> BackendStats {
        let inner = self.inner.stats();
        BackendStats {
            measurements_requested: self.requested,
            ..inner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstId, PortSet, ThreeLevelMapping, UopEntry};

    fn toy_mapping() -> ThreeLevelMapping {
        ThreeLevelMapping::new(
            2,
            vec![
                vec![UopEntry::new(1, PortSet::from_ports(&[0]))],
                vec![UopEntry::new(2, PortSet::from_ports(&[0, 1]))],
            ],
        )
    }

    #[test]
    fn model_backend_matches_mapping_model() {
        let gt = toy_mapping();
        let mut b = ModelBackend::new(gt.clone());
        let exps = vec![
            Experiment::singleton(InstId(0)),
            Experiment::pair(InstId(0), 1, InstId(1), 1),
        ];
        let got = b.measure_batch(&exps);
        assert_eq!(got, vec![gt.throughput(&exps[0]), gt.throughput(&exps[1])]);
        assert_eq!(b.stats().measurements_requested, 2);
        assert_eq!(b.stats().measurements_performed, 2);
    }

    #[test]
    fn caching_backend_dedupes_within_and_across_batches() {
        let mut b = CachingBackend::new(ModelBackend::new(toy_mapping()));
        let e0 = Experiment::singleton(InstId(0));
        let e1 = Experiment::singleton(InstId(1));
        let first = b.measure_batch(&[e0.clone(), e1.clone(), e0.clone()]);
        assert_eq!(first[0], first[2]);
        let second = b.measure_batch(&[e1.clone(), e0.clone()]);
        assert_eq!(second, vec![first[1], first[0]]);
        let stats = b.stats();
        assert_eq!(stats.measurements_requested, 5);
        assert_eq!(stats.measurements_performed, 2);
        assert_eq!(b.cache_size(), 2);
        assert_eq!(b.name(), "cached(model)");
        // The recorded artifact replays identically.
        let mut replay = ReplayBackend::from_measurements(&b.measurements());
        assert_eq!(replay.measure_batch(&[e0, e1]), vec![first[0], first[1]]);
    }

    #[test]
    fn measurement_artifact_roundtrips_through_json() {
        let mut b = CachingBackend::new(ModelBackend::new(toy_mapping()));
        let exps = vec![
            Experiment::singleton(InstId(0)),
            Experiment::singleton(InstId(1)),
            Experiment::pair(InstId(0), 2, InstId(1), 1),
        ];
        let want = b.measure_batch(&exps);
        for json in [
            measurements_to_json(&b.measurements()),
            measurements_to_json_pretty(&b.measurements()),
        ] {
            let mut replay = ReplayBackend::from_json(&json).expect("artifact parses");
            assert_eq!(replay.len(), 3);
            assert_eq!(replay.measure_batch(&exps), want);
        }
    }

    #[test]
    fn replay_rejects_malformed_artifacts() {
        for bad in [
            "{}",
            r#"{"measurements":[{"experiment":[[0]],"throughput":1.0}]}"#,
            r#"{"measurements":[{"experiment":[[0,1]],"throughput":-1.0}]}"#,
            r#"{"measurements":[{"experiment":[[0,1]]}]}"#,
        ] {
            assert!(ReplayBackend::from_json(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    #[should_panic(expected = "no recorded measurement")]
    fn replay_panics_on_unrecorded_experiment() {
        let mut b = ReplayBackend::from_measurements(&[]);
        b.measure_batch(&[Experiment::singleton(InstId(7))]);
    }

    #[test]
    fn noisy_backend_is_order_and_batch_independent() {
        let e0 = Experiment::singleton(InstId(0));
        let e1 = Experiment::singleton(InstId(1));
        let mut a = NoisyBackend::new(ModelBackend::new(toy_mapping()), 0.05, 42);
        let mut b = NoisyBackend::new(ModelBackend::new(toy_mapping()), 0.05, 42);
        let one = a.measure_batch(&[e0.clone(), e1.clone()]);
        let two = [
            b.measure_batch(std::slice::from_ref(&e1))[0],
            b.measure_batch(std::slice::from_ref(&e0))[0],
        ];
        assert_eq!(one, vec![two[1], two[0]]);
        // A different seed draws different noise.
        let mut c = NoisyBackend::new(ModelBackend::new(toy_mapping()), 0.05, 43);
        assert_ne!(c.measure_batch(std::slice::from_ref(&e0)), vec![one[0]]);
        // Sigma 0 is exact.
        let mut exact = NoisyBackend::new(ModelBackend::new(toy_mapping()), 0.0, 42);
        assert_eq!(exact.measure_batch(&[e0]), vec![1.0]);
        assert!(a.stats().measurements_performed >= 2);
    }

    #[test]
    fn stats_since_subtracts_snapshots() {
        let mut b = ModelBackend::new(toy_mapping());
        b.measure_batch(&[Experiment::singleton(InstId(0))]);
        let snap = b.stats();
        b.measure_batch(&[Experiment::singleton(InstId(1))]);
        let delta = b.stats().since(&snap);
        assert_eq!(delta.measurements_performed, 1);
    }
}
