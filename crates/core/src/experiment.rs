//! Experiments: multisets of instructions with measured throughputs.

use crate::InstId;
use std::fmt;

/// A multiset of instructions, the unit of measurement and prediction.
///
/// Following paper §3.1, an experiment abstracts from instruction order
/// because PMEvo only uses sequences the scheduler may reorder freely. The
/// representation is a sorted, duplicate-merged list of
/// `(instruction, count)` pairs, so structurally equal multisets compare
/// equal.
///
/// # Example
///
/// ```
/// use pmevo_core::{Experiment, InstId};
///
/// let e = Experiment::from_counts(&[(InstId(3), 1), (InstId(1), 2), (InstId(3), 1)]);
/// assert_eq!(e.count_of(InstId(3)), 2);
/// assert_eq!(e.total_insts(), 4);
/// assert_eq!(e.num_distinct(), 2);
/// ```
#[derive(
    Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct Experiment {
    counts: Vec<(InstId, u32)>,
}

impl Experiment {
    /// Creates an experiment from `(instruction, count)` pairs.
    ///
    /// Pairs are sorted and duplicates merged; zero counts are dropped.
    pub fn from_counts(counts: &[(InstId, u32)]) -> Self {
        let mut v: Vec<(InstId, u32)> = counts.iter().copied().filter(|&(_, n)| n > 0).collect();
        v.sort_unstable_by_key(|&(i, _)| i);
        v.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 += later.1;
                true
            } else {
                false
            }
        });
        Experiment { counts: v }
    }

    /// The singleton experiment `{inst ↦ 1}` used for individual
    /// throughput measurement (paper §4.1, experiment kind 1).
    pub fn singleton(inst: InstId) -> Self {
        Experiment {
            counts: vec![(inst, 1)],
        }
    }

    /// The pair experiment `{a ↦ m, b ↦ n}` (paper §4.1, kinds 2 and 3).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; use [`from_counts`](Self::from_counts) for
    /// self-pairs.
    pub fn pair(a: InstId, m: u32, b: InstId, n: u32) -> Self {
        assert_ne!(a, b, "pair experiment needs two distinct instructions");
        Experiment::from_counts(&[(a, m), (b, n)])
    }

    /// The sorted `(instruction, count)` pairs.
    pub fn counts(&self) -> &[(InstId, u32)] {
        &self.counts
    }

    /// Multiplicity of `inst` in the experiment (0 if absent).
    pub fn count_of(&self, inst: InstId) -> u32 {
        self.counts
            .binary_search_by_key(&inst, |&(i, _)| i)
            .map(|idx| self.counts[idx].1)
            .unwrap_or(0)
    }

    /// Total number of instruction instances, counting multiplicity.
    pub fn total_insts(&self) -> u32 {
        self.counts.iter().map(|&(_, n)| n).sum()
    }

    /// Number of distinct instruction forms.
    pub fn num_distinct(&self) -> usize {
        self.counts.len()
    }

    /// Whether the experiment contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(instruction, count)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (InstId, u32)> + '_ {
        self.counts.iter().copied()
    }

    /// Returns a copy with every instruction id replaced through `f`.
    ///
    /// Used by congruence filtering to rewrite experiments onto class
    /// representatives; counts of instructions mapped to the same id merge.
    #[must_use]
    pub fn map_insts(&self, mut f: impl FnMut(InstId) -> InstId) -> Experiment {
        let remapped: Vec<(InstId, u32)> = self.counts.iter().map(|&(i, n)| (f(i), n)).collect();
        Experiment::from_counts(&remapped)
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, (i, c)) in self.counts.iter().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}↦{c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(InstId, u32)> for Experiment {
    fn from_iter<I: IntoIterator<Item = (InstId, u32)>>(iter: I) -> Self {
        let v: Vec<(InstId, u32)> = iter.into_iter().collect();
        Experiment::from_counts(&v)
    }
}

/// An experiment together with its measured throughput in cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredExperiment {
    /// The instruction multiset that was measured.
    pub experiment: Experiment,
    /// Measured steady-state throughput in cycles per experiment instance
    /// (paper Definition 1).
    pub throughput: f64,
}

impl MeasuredExperiment {
    /// Pairs an experiment with its measured throughput.
    pub fn new(experiment: Experiment, throughput: f64) -> Self {
        MeasuredExperiment {
            experiment,
            throughput,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_sorts_merges_and_drops_zero() {
        let e = Experiment::from_counts(&[(InstId(5), 2), (InstId(1), 0), (InstId(5), 1), (InstId(2), 3)]);
        assert_eq!(e.counts(), &[(InstId(2), 3), (InstId(5), 3)]);
        assert_eq!(e.total_insts(), 6);
        assert_eq!(e.num_distinct(), 2);
    }

    #[test]
    fn structural_equality_is_multiset_equality() {
        let a = Experiment::from_counts(&[(InstId(1), 1), (InstId(2), 2)]);
        let b = Experiment::from_counts(&[(InstId(2), 2), (InstId(1), 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_and_pair() {
        let s = Experiment::singleton(InstId(7));
        assert_eq!(s.total_insts(), 1);
        assert_eq!(s.count_of(InstId(7)), 1);
        let p = Experiment::pair(InstId(1), 1, InstId(2), 3);
        assert_eq!(p.count_of(InstId(2)), 3);
        assert_eq!(p.num_distinct(), 2);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn pair_rejects_equal_instructions() {
        Experiment::pair(InstId(1), 1, InstId(1), 1);
    }

    #[test]
    fn count_of_absent_is_zero() {
        let e = Experiment::singleton(InstId(0));
        assert_eq!(e.count_of(InstId(9)), 0);
        assert!(!e.is_empty());
        assert!(Experiment::from_counts(&[]).is_empty());
    }

    #[test]
    fn map_insts_merges_collapsed_ids() {
        let e = Experiment::from_counts(&[(InstId(1), 1), (InstId(2), 2)]);
        let m = e.map_insts(|_| InstId(0));
        assert_eq!(m.counts(), &[(InstId(0), 3)]);
    }

    #[test]
    fn display_and_collect() {
        let e: Experiment = [(InstId(0), 1), (InstId(4), 2)].into_iter().collect();
        assert_eq!(e.to_string(), "{i0↦1, i4↦2}");
    }
}
