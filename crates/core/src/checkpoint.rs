//! Versioned checkpoints of long-running inference sessions.
//!
//! Adaptive measure→evolve sessions on real hardware run for hours
//! (paper Table 2); a process restart must not throw that work away.
//! This module defines the *artifact* side of checkpoint/resume: a
//! [`SessionCheckpoint`] captures everything the round-based pipeline
//! needs to continue bit-identically — per-island populations and RNG
//! states, generation counters, selection-round progress, the measured
//! corpus, the candidate-pool cursor, and the [`MeasurementBudget`]
//! accounting carried in [`BackendStats`] — serialized through the
//! [`crate::json`] codec.
//!
//! The evolution state is stored in primitive form ([`EvoCheckpoint`] /
//! [`IslandCheckpoint`]): this crate does not know the evolutionary
//! algorithm's types, so `pmevo-evo` converts its island state to and
//! from these rows.
//!
//! # Format and versioning
//!
//! A checkpoint is a single JSON object starting with
//! `"format": "pmevo-checkpoint"` and `"version": 1`
//! ([`CHECKPOINT_VERSION`]). Decoding rejects unknown versions with
//! [`CheckpointError::Version`] instead of guessing; a future format
//! bump must keep decoding version-1 artifacts or fail loudly (pinned
//! by the golden fixture under `tests/fixtures/`). Finite floats
//! round-trip bit-exactly through the codec; the two fields that can
//! legitimately hold `+inf` mid-run (a round's not-yet-filled training
//! error and the evolution `best_so_far` before the first generation)
//! are encoded as `null`.
//!
//! Writes are atomic: the artifact is written to a `.tmp` sibling and
//! renamed into place, so a crash mid-write leaves the previous
//! checkpoint intact.

use crate::backend::BackendStats;
use crate::json::{self, ParseError, Value};
use crate::selection::{MeasurementBudget, RoundStats, SelectionPolicy};
use crate::{Experiment, InstId, MeasuredExperiment, ThreeLevelMapping};
use std::fmt;
use std::path::Path;
use std::time::Duration;

/// The checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Where in the pipeline a checkpoint was taken — the resume entry
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPhase {
    /// Mid-evolution of a one-shot run (full corpus already measured).
    OneShot,
    /// Mid-evolution of adaptive measurement round `n` (0 = the segment
    /// after the seed corpus).
    Round(u32),
    /// All measurement rounds done, final polish not yet finished; the
    /// polish re-runs deterministically from the stored populations.
    PrePolish,
}

/// One island's serialized mid-run state: its population, the
/// objectives parallel to it (`(error, volume)` pairs), and the raw RNG
/// state of its generator stream.
#[derive(Debug, Clone, PartialEq)]
pub struct IslandCheckpoint {
    /// The island's population after its last pool selection.
    pub population: Vec<ThreeLevelMapping>,
    /// `(D_avg, volume)` objectives parallel to
    /// [`population`](Self::population).
    pub objectives: Vec<(f64, u64)>,
    /// The xoshiro256++ state of the island's RNG stream.
    pub rng: [u64; 4],
}

/// Serialized evolution-loop state between two generations.
#[derive(Debug, Clone, PartialEq)]
pub struct EvoCheckpoint {
    /// Every island, in ring order.
    pub islands: Vec<IslandCheckpoint>,
    /// Generations completed so far in the current segment.
    pub generations: u32,
    /// Best `D_avg` per completed generation.
    pub history: Vec<f64>,
    /// Best `D_avg` seen so far (`+inf` before the first generation;
    /// encoded as `null`).
    pub best_so_far: f64,
    /// Generations without convergence-tolerance improvement.
    pub stall: u32,
}

/// A complete, versioned snapshot of a running inference session —
/// everything needed to resume it bit-identically in a new process.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    /// The session's evolution seed (resume validates it against the
    /// resuming configuration).
    pub seed: u64,
    /// Full instruction-universe size.
    pub num_insts: usize,
    /// Number of execution ports.
    pub num_ports: usize,
    /// Configured island count.
    pub islands: u32,
    /// Configured population size per island.
    pub population_size: u64,
    /// The experiment-selection policy of the run.
    pub selection: SelectionPolicy,
    /// The measurement budget of the run.
    pub budget: MeasurementBudget,
    /// Backend accounting at checkpoint time (relative to run start) —
    /// the resumed process adds its own delta on top for budget checks.
    pub used: BackendStats,
    /// Measured singleton throughput per full-universe instruction.
    pub indiv_tp: Vec<f64>,
    /// Congruence-class representative per full-universe instruction
    /// (`rep_of[i]` is the representative id of instruction `i`).
    pub rep_of: Vec<u32>,
    /// Every measured experiment in original instruction ids, in
    /// measurement order (seed corpus first).
    pub measured: Vec<MeasuredExperiment>,
    /// Per-round accounting so far (an in-flight round's training error
    /// is still `+inf`, encoded as `null`).
    pub rounds: Vec<RoundStats>,
    /// Best dense (representative-universe) mapping at the end of each
    /// *completed* round.
    pub round_mappings: Vec<ThreeLevelMapping>,
    /// The adaptive candidate pool (unmeasured, in generator order).
    pub pool: Vec<Experiment>,
    /// How many candidates the streaming generator has yielded — the
    /// resume fast-forwards a fresh stream by this count.
    pub stream_taken: u64,
    /// Where the run was when the checkpoint was taken.
    pub phase: CheckpointPhase,
    /// Mid-segment evolution state (`None` only at phase boundaries
    /// that carry their state elsewhere — today every phase stores it).
    pub evo: Option<EvoCheckpoint>,
}

/// Why a checkpoint could not be written or read back.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Reading or writing the artifact file failed.
    Io {
        /// The file involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The artifact is not valid JSON; carries the byte offset.
    Parse(ParseError),
    /// The JSON is valid but not a checkpoint of the expected shape.
    Shape(String),
    /// The artifact was written by an incompatible format version.
    Version {
        /// The version the artifact declares.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint I/O error on {path}: {message}")
            }
            CheckpointError::Parse(e) => write!(f, "{e}"),
            CheckpointError::Shape(msg) => write!(f, "invalid checkpoint: {msg}"),
            CheckpointError::Version { found } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads version {CHECKPOINT_VERSION})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Encodes a float that may legitimately be `+inf` (`null` in JSON —
/// the codec's convention for non-finite values, made explicit here so
/// decoding can restore the infinity).
fn num_or_null(f: f64) -> Value {
    if f.is_finite() {
        Value::Num(f)
    } else {
        Value::Null
    }
}

fn experiment_to_json(e: &Experiment) -> Value {
    Value::Arr(
        e.iter()
            .map(|(i, n)| Value::Arr(vec![Value::UInt(u64::from(i.0)), Value::UInt(u64::from(n))]))
            .collect(),
    )
}

fn experiment_from_json(v: &Value, what: &str) -> Result<Experiment, String> {
    let rows = v
        .as_arr()
        .ok_or_else(|| format!("{what} must be an array of [inst, count] pairs"))?;
    let mut counts = Vec::with_capacity(rows.len());
    for (k, row) in rows.iter().enumerate() {
        let pair = row
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{what}[{k}] must be an [inst, count] pair"))?;
        let id = pair[0]
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| format!("{what}[{k}] instruction id must be a u32"))?;
        let count = pair[1]
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("{what}[{k}] count must be a positive u32"))?;
        counts.push((InstId(id), count));
    }
    if counts.is_empty() {
        return Err(format!("{what} must not be empty"));
    }
    Ok(Experiment::from_counts(&counts))
}

fn round_to_json(r: &RoundStats) -> Value {
    let mut v = r.to_json_value();
    if !r.training_error.is_finite() {
        if let Value::Obj(fields) = &mut v {
            for (key, val) in fields.iter_mut() {
                if key == "training_error" {
                    *val = Value::Null;
                }
            }
        }
    }
    v
}

fn round_from_json(v: &Value) -> Result<RoundStats, String> {
    match v.get("training_error") {
        Some(Value::Null) => {
            // An in-flight round: its training error is filled in by the
            // next evolve segment; `null` encodes the `+inf` placeholder.
            let Value::Obj(fields) = v else {
                return Err("round stats must be an object".into());
            };
            let patched = Value::Obj(
                fields
                    .iter()
                    .map(|(key, val)| {
                        if key == "training_error" {
                            (key.clone(), Value::Num(0.0))
                        } else {
                            (key.clone(), val.clone())
                        }
                    })
                    .collect(),
            );
            let mut round = RoundStats::from_json_value(&patched)?;
            round.training_error = f64::INFINITY;
            Ok(round)
        }
        _ => RoundStats::from_json_value(v),
    }
}

fn phase_to_json(p: CheckpointPhase) -> Value {
    match p {
        CheckpointPhase::OneShot => Value::Str("one-shot".into()),
        CheckpointPhase::PrePolish => Value::Str("pre-polish".into()),
        CheckpointPhase::Round(n) => {
            Value::Obj(vec![("round".into(), Value::UInt(u64::from(n)))])
        }
    }
}

fn phase_from_json(v: &Value) -> Result<CheckpointPhase, String> {
    match v {
        Value::Str(s) if s == "one-shot" => Ok(CheckpointPhase::OneShot),
        Value::Str(s) if s == "pre-polish" => Ok(CheckpointPhase::PrePolish),
        Value::Obj(_) => {
            let n = v
                .get("round")
                .and_then(Value::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("phase object needs an integer `round` field")?;
            Ok(CheckpointPhase::Round(n))
        }
        _ => Err("phase must be \"one-shot\", \"pre-polish\" or {\"round\": n}".into()),
    }
}

fn stats_to_json(s: &BackendStats) -> Value {
    Value::Obj(vec![
        ("measurements_requested".into(), Value::UInt(s.measurements_requested)),
        ("measurements_performed".into(), Value::UInt(s.measurements_performed)),
        (
            "measurement_time_ns".into(),
            Value::UInt(u64::try_from(s.measurement_time.as_nanos()).unwrap_or(u64::MAX)),
        ),
    ])
}

fn stats_from_json(v: &Value) -> Result<BackendStats, String> {
    let uint = |name: &str| {
        v.get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("`used` needs an integer field `{name}`"))
    };
    Ok(BackendStats {
        measurements_requested: uint("measurements_requested")?,
        measurements_performed: uint("measurements_performed")?,
        measurement_time: Duration::from_nanos(uint("measurement_time_ns")?),
    })
}

fn f64_from_json(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::Num(f) => Ok(*f),
        Value::UInt(n) => Ok(*n as f64),
        Value::Null => Ok(f64::INFINITY),
        _ => Err(format!("{what} must be a number or null")),
    }
}

impl EvoCheckpoint {
    fn to_json_value(&self) -> Value {
        let islands = self
            .islands
            .iter()
            .map(|isl| {
                Value::Obj(vec![
                    (
                        "population".into(),
                        Value::Arr(
                            isl.population
                                .iter()
                                .map(ThreeLevelMapping::to_json_value)
                                .collect(),
                        ),
                    ),
                    (
                        "objectives".into(),
                        Value::Arr(
                            isl.objectives
                                .iter()
                                .map(|&(e, vol)| {
                                    Value::Arr(vec![Value::Num(e), Value::UInt(vol)])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "rng".into(),
                        Value::Arr(isl.rng.iter().map(|&w| Value::UInt(w)).collect()),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("islands".into(), Value::Arr(islands)),
            ("generations".into(), Value::UInt(u64::from(self.generations))),
            (
                "history".into(),
                Value::Arr(self.history.iter().map(|&h| Value::Num(h)).collect()),
            ),
            ("best_so_far".into(), num_or_null(self.best_so_far)),
            ("stall".into(), Value::UInt(u64::from(self.stall))),
        ])
    }

    fn from_json_value(v: &Value) -> Result<Self, String> {
        let islands = v
            .get("islands")
            .and_then(Value::as_arr)
            .ok_or("evo state needs an array field `islands`")?
            .iter()
            .enumerate()
            .map(|(i, isl)| {
                let ctx = format!("evo.islands[{i}]");
                let population = isl
                    .get("population")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| format!("{ctx} needs an array field `population`"))?
                    .iter()
                    .map(|m| {
                        ThreeLevelMapping::from_json_value(m)
                            .map_err(|e| format!("{ctx}.population: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let objectives = isl
                    .get("objectives")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| format!("{ctx} needs an array field `objectives`"))?
                    .iter()
                    .enumerate()
                    .map(|(k, pair)| {
                        let row = pair
                            .as_arr()
                            .filter(|p| p.len() == 2)
                            .ok_or_else(|| format!("{ctx}.objectives[{k}] must be [error, volume]"))?;
                        let error = f64_from_json(&row[0], &format!("{ctx}.objectives[{k}].error"))?;
                        let volume = row[1]
                            .as_u64()
                            .ok_or_else(|| format!("{ctx}.objectives[{k}].volume must be a u64"))?;
                        Ok::<(f64, u64), String>((error, volume))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let rng_arr = isl
                    .get("rng")
                    .and_then(Value::as_arr)
                    .filter(|a| a.len() == 4)
                    .ok_or_else(|| format!("{ctx} needs a 4-element array field `rng`"))?;
                let mut rng = [0u64; 4];
                for (k, w) in rng_arr.iter().enumerate() {
                    rng[k] = w
                        .as_u64()
                        .ok_or_else(|| format!("{ctx}.rng[{k}] must be a u64"))?;
                }
                if population.len() != objectives.len() {
                    return Err(format!(
                        "{ctx}: population ({}) and objectives ({}) lengths differ",
                        population.len(),
                        objectives.len()
                    ));
                }
                Ok(IslandCheckpoint { population, objectives, rng })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let uint = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("evo state needs an integer field `{name}`"))
        };
        let history = v
            .get("history")
            .and_then(Value::as_arr)
            .ok_or("evo state needs an array field `history`")?
            .iter()
            .enumerate()
            .map(|(i, h)| f64_from_json(h, &format!("evo.history[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let best_so_far = f64_from_json(
            v.get("best_so_far").unwrap_or(&Value::Null),
            "evo.best_so_far",
        )?;
        Ok(EvoCheckpoint {
            islands,
            generations: u32::try_from(uint("generations")?)
                .map_err(|_| "evo.generations overflows u32".to_owned())?,
            history,
            best_so_far,
            stall: u32::try_from(uint("stall")?)
                .map_err(|_| "evo.stall overflows u32".to_owned())?,
        })
    }
}

impl SessionCheckpoint {
    /// The checkpoint as a [`Value`] tree (see the
    /// [module documentation](self) for the format).
    pub fn to_json_value(&self) -> Value {
        Value::Obj(vec![
            ("format".into(), Value::Str("pmevo-checkpoint".into())),
            ("version".into(), Value::UInt(CHECKPOINT_VERSION)),
            ("seed".into(), Value::UInt(self.seed)),
            ("num_insts".into(), Value::UInt(self.num_insts as u64)),
            ("num_ports".into(), Value::UInt(self.num_ports as u64)),
            ("islands".into(), Value::UInt(u64::from(self.islands))),
            ("population_size".into(), Value::UInt(self.population_size)),
            ("selection".into(), self.selection.to_json_value()),
            ("budget".into(), self.budget.to_json_value()),
            ("used".into(), stats_to_json(&self.used)),
            (
                "indiv_tp".into(),
                Value::Arr(self.indiv_tp.iter().map(|&t| Value::Num(t)).collect()),
            ),
            (
                "rep_of".into(),
                Value::Arr(self.rep_of.iter().map(|&r| Value::UInt(u64::from(r))).collect()),
            ),
            (
                "measured".into(),
                Value::Arr(
                    self.measured
                        .iter()
                        .map(|me| {
                            Value::Obj(vec![
                                ("experiment".into(), experiment_to_json(&me.experiment)),
                                ("throughput".into(), Value::Num(me.throughput)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "rounds".into(),
                Value::Arr(self.rounds.iter().map(round_to_json).collect()),
            ),
            (
                "round_mappings".into(),
                Value::Arr(
                    self.round_mappings
                        .iter()
                        .map(ThreeLevelMapping::to_json_value)
                        .collect(),
                ),
            ),
            (
                "pool".into(),
                Value::Arr(self.pool.iter().map(experiment_to_json).collect()),
            ),
            ("stream_taken".into(), Value::UInt(self.stream_taken)),
            ("phase".into(), phase_to_json(self.phase)),
            (
                "evo".into(),
                self.evo
                    .as_ref()
                    .map(EvoCheckpoint::to_json_value)
                    .unwrap_or(Value::Null),
            ),
        ])
    }

    /// Serializes the checkpoint as compact JSON.
    pub fn to_json(&self) -> String {
        json::write_compact(&self.to_json_value())
    }

    /// Reads a checkpoint from an already-parsed [`Value`] tree.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Version`] for artifacts of a different format
    /// version, [`CheckpointError::Shape`] for everything else malformed.
    pub fn from_json_value(doc: &Value) -> Result<Self, CheckpointError> {
        let shape = |msg: String| CheckpointError::Shape(msg);
        let version = doc
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| shape("missing integer field `version`".into()))?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version { found: version });
        }
        match doc.get("format") {
            Some(Value::Str(s)) if s == "pmevo-checkpoint" => {}
            _ => return Err(shape("missing `\"format\": \"pmevo-checkpoint\"`".into())),
        }
        let uint = |name: &str| {
            doc.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| shape(format!("missing integer field `{name}`")))
        };
        let as_usize = |n: u64, name: &str| {
            usize::try_from(n).map_err(|_| shape(format!("field `{name}` overflows usize")))
        };
        let selection = doc
            .get("selection")
            .ok_or_else(|| shape("missing field `selection`".into()))
            .and_then(|v| {
                SelectionPolicy::from_json_value(v).map_err(|e| shape(format!("field `selection`: {e}")))
            })?;
        let budget = doc
            .get("budget")
            .ok_or_else(|| shape("missing field `budget`".into()))
            .and_then(|v| {
                MeasurementBudget::from_json_value(v)
                    .map_err(|e| shape(format!("field `budget`: {e}")))
            })?;
        let used = doc
            .get("used")
            .ok_or_else(|| shape("missing field `used`".into()))
            .and_then(|v| stats_from_json(v).map_err(shape))?;
        let indiv_tp = doc
            .get("indiv_tp")
            .and_then(Value::as_arr)
            .ok_or_else(|| shape("missing array field `indiv_tp`".into()))?
            .iter()
            .enumerate()
            .map(|(i, t)| f64_from_json(t, &format!("indiv_tp[{i}]")).map_err(shape))
            .collect::<Result<Vec<_>, _>>()?;
        let rep_of = doc
            .get("rep_of")
            .and_then(Value::as_arr)
            .ok_or_else(|| shape("missing array field `rep_of`".into()))?
            .iter()
            .enumerate()
            .map(|(i, r)| {
                r.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| shape(format!("rep_of[{i}] must be a u32")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let measured = doc
            .get("measured")
            .and_then(Value::as_arr)
            .ok_or_else(|| shape("missing array field `measured`".into()))?
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let experiment = row
                    .get("experiment")
                    .ok_or_else(|| shape(format!("measured[{i}] needs a field `experiment`")))
                    .and_then(|e| {
                        experiment_from_json(e, &format!("measured[{i}].experiment")).map_err(shape)
                    })?;
                let throughput = row
                    .get("throughput")
                    .ok_or_else(|| shape(format!("measured[{i}] needs a field `throughput`")))
                    .and_then(|t| {
                        f64_from_json(t, &format!("measured[{i}].throughput")).map_err(shape)
                    })?;
                if !(throughput.is_finite() && throughput > 0.0) {
                    return Err(shape(format!(
                        "measured[{i}].throughput must be positive and finite"
                    )));
                }
                Ok(MeasuredExperiment::new(experiment, throughput))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let rounds = doc
            .get("rounds")
            .and_then(Value::as_arr)
            .ok_or_else(|| shape("missing array field `rounds`".into()))?
            .iter()
            .map(|v| round_from_json(v).map_err(|e| shape(format!("field `rounds`: {e}"))))
            .collect::<Result<Vec<_>, _>>()?;
        let round_mappings = doc
            .get("round_mappings")
            .and_then(Value::as_arr)
            .ok_or_else(|| shape("missing array field `round_mappings`".into()))?
            .iter()
            .map(|m| {
                ThreeLevelMapping::from_json_value(m)
                    .map_err(|e| shape(format!("field `round_mappings`: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let pool = doc
            .get("pool")
            .and_then(Value::as_arr)
            .ok_or_else(|| shape("missing array field `pool`".into()))?
            .iter()
            .enumerate()
            .map(|(i, e)| experiment_from_json(e, &format!("pool[{i}]")).map_err(shape))
            .collect::<Result<Vec<_>, _>>()?;
        let phase = doc
            .get("phase")
            .ok_or_else(|| shape("missing field `phase`".into()))
            .and_then(|v| phase_from_json(v).map_err(shape))?;
        let evo = match doc.get("evo") {
            None | Some(Value::Null) => None,
            Some(v) => Some(EvoCheckpoint::from_json_value(v).map_err(shape)?),
        };
        let num_insts = as_usize(uint("num_insts")?, "num_insts")?;
        if rep_of.len() != num_insts || indiv_tp.len() != num_insts {
            return Err(shape(format!(
                "`rep_of` ({}) and `indiv_tp` ({}) must both have `num_insts` ({num_insts}) entries",
                rep_of.len(),
                indiv_tp.len()
            )));
        }
        Ok(SessionCheckpoint {
            seed: uint("seed")?,
            num_insts,
            num_ports: as_usize(uint("num_ports")?, "num_ports")?,
            islands: u32::try_from(uint("islands")?)
                .map_err(|_| shape("field `islands` overflows u32".into()))?,
            population_size: uint("population_size")?,
            selection,
            budget,
            used,
            indiv_tp,
            rep_of,
            measured,
            rounds,
            round_mappings,
            pool,
            stream_taken: uint("stream_taken")?,
            phase,
            evo,
        })
    }

    /// Parses a checkpoint from JSON text.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Parse`] (with byte offset) for malformed JSON,
    /// else as [`Self::from_json_value`].
    pub fn from_json(input: &str) -> Result<Self, CheckpointError> {
        let doc = json::parse(input).map_err(CheckpointError::Parse)?;
        Self::from_json_value(&doc)
    }

    /// Writes the checkpoint atomically: the artifact goes to a `.tmp`
    /// sibling first and is renamed into place, so a crash mid-write
    /// never truncates an existing checkpoint.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] with the failing path.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io_err = |p: &Path, e: std::io::Error| CheckpointError::Io {
            path: p.display().to_string(),
            message: e.to_string(),
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json()).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
    }

    /// Reads and decodes a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read, else as
    /// [`Self::from_json`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PortSet, UopEntry};

    fn tiny_mapping() -> ThreeLevelMapping {
        ThreeLevelMapping::new(
            3,
            vec![
                vec![UopEntry::new(1, PortSet::from_ports(&[0]))],
                vec![UopEntry::new(2, PortSet::from_ports(&[1, 2]))],
            ],
        )
    }

    fn sample() -> SessionCheckpoint {
        SessionCheckpoint {
            seed: 0xA11CE,
            num_insts: 3,
            num_ports: 3,
            islands: 2,
            population_size: 24,
            selection: SelectionPolicy::Disagreement { top_k: 2 },
            budget: MeasurementBudget::measurements(40),
            used: BackendStats {
                measurements_requested: 9,
                measurements_performed: 7,
                measurement_time: Duration::from_nanos(1234),
            },
            indiv_tp: vec![1.0, 0.5, 2.0 / 3.0],
            rep_of: vec![0, 1, 1],
            measured: vec![
                MeasuredExperiment::new(Experiment::singleton(InstId(0)), 1.0),
                MeasuredExperiment::new(Experiment::pair(InstId(0), 1, InstId(2), 2), 2.25),
            ],
            rounds: vec![
                RoundStats {
                    round: 0,
                    experiments_submitted: 3,
                    measurements_performed: 3,
                    measurement_time: Duration::from_nanos(77),
                    cumulative_measurements: 3,
                    training_error: 0.125,
                },
                RoundStats {
                    round: 1,
                    experiments_submitted: 2,
                    measurements_performed: 2,
                    measurement_time: Duration::ZERO,
                    cumulative_measurements: 5,
                    training_error: f64::INFINITY, // in-flight round
                },
            ],
            round_mappings: vec![tiny_mapping()],
            pool: vec![Experiment::pair(InstId(0), 2, InstId(1), 1)],
            stream_taken: 6,
            phase: CheckpointPhase::Round(1),
            evo: Some(EvoCheckpoint {
                islands: vec![IslandCheckpoint {
                    population: vec![tiny_mapping()],
                    objectives: vec![(0.037_251, 4)],
                    rng: [1, u64::MAX, 3, 0x9E37_79B9_7F4A_7C15],
                }],
                generations: 5,
                history: vec![0.5, 0.25, 0.125, 0.125, 0.125],
                best_so_far: 0.125,
                stall: 2,
            }),
        }
    }

    #[test]
    fn checkpoint_roundtrips_bit_exactly() {
        let cp = sample();
        let text = cp.to_json();
        let back = SessionCheckpoint::from_json(&text).expect("checkpoint parses");
        assert_eq!(back, cp);
        // Including the +inf placeholder of the in-flight round.
        assert!(back.rounds[1].training_error.is_infinite());
        // And through a second trip (text is canonical).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn infinity_free_state_roundtrips_too() {
        let mut cp = sample();
        cp.phase = CheckpointPhase::PrePolish;
        cp.evo.as_mut().unwrap().best_so_far = f64::INFINITY;
        let back = SessionCheckpoint::from_json(&cp.to_json()).expect("parses");
        assert!(back.evo.as_ref().unwrap().best_so_far.is_infinite());
        assert_eq!(back, cp);
    }

    #[test]
    fn truncated_text_reports_a_positioned_parse_error() {
        let text = sample().to_json();
        let truncated = &text[..text.len() / 2];
        match SessionCheckpoint::from_json(truncated) {
            Err(CheckpointError::Parse(e)) => {
                assert!(e.to_string().contains("at byte"), "{e}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn foreign_versions_are_rejected_loudly() {
        let text = sample().to_json().replace("\"version\":1", "\"version\":99");
        match SessionCheckpoint::from_json(&text) {
            Err(CheckpointError::Version { found: 99 }) => {}
            other => panic!("expected a version error, got {other:?}"),
        }
        // A non-checkpoint JSON document is a shape error, not a panic.
        match SessionCheckpoint::from_json("{\"hello\": 1}") {
            Err(CheckpointError::Shape(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected a shape error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_fields_name_their_path() {
        let text = sample().to_json().replace("\"stream_taken\":6", "\"stream_taken\":\"six\"");
        match SessionCheckpoint::from_json(&text) {
            Err(CheckpointError::Shape(msg)) => assert!(msg.contains("stream_taken"), "{msg}"),
            other => panic!("expected a shape error, got {other:?}"),
        }
    }
}
