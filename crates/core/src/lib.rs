//! Core model of the PMEvo framework (Ritter & Hack, PLDI 2020).
//!
//! This crate defines the vocabulary shared by the whole workspace:
//!
//! * [`PortSet`] — a set of execution ports, the identity of a µop
//!   (paper §4.4: "We identify each µop with the set of ports that can
//!   execute it").
//! * [`TwoLevelMapping`] / [`ThreeLevelMapping`] — port mappings in the
//!   two-level (instructions → ports) and three-level (instructions →
//!   µops → ports) models of paper §3.
//! * [`Experiment`] — a multiset of instructions whose steady-state
//!   throughput is measured or predicted (paper Definition 1).
//! * [`bottleneck`] — the bottleneck simulation algorithm (paper §4.5,
//!   Equation 1), an exact `Θ(2^|P|)` solver for the throughput linear
//!   program, plus an LP-based reference implementation used for
//!   cross-checking and for reproducing Figure 8.
//! * [`CompiledExperiments`] / [`ThroughputSolver`] — the
//!   compile-then-evaluate engine behind the evolutionary hot loop:
//!   experiments compiled once into dense flat form, throughputs computed
//!   with reusable scratch state and zero per-evaluation allocations.
//!
//! # Example
//!
//! Reproduce the paper's running example (Figure 2 / Example 1): four
//! instructions on three ports, throughput of `{2×add, 1×mul, 1×store}`
//! is 1.5 cycles.
//!
//! ```
//! use pmevo_core::{Experiment, InstId, PortSet, TwoLevelMapping};
//!
//! let mul = PortSet::from_ports(&[0]);
//! let arith = PortSet::from_ports(&[0, 1]);
//! let store = PortSet::from_ports(&[2]);
//! let m = TwoLevelMapping::new(3, vec![mul, arith, arith, store]);
//! let e = Experiment::from_counts(&[(InstId(1), 2), (InstId(0), 1), (InstId(3), 1)]);
//! let tp = m.throughput(&e);
//! assert!((tp - 1.5).abs() < 1e-9);
//! ```

#![deny(missing_docs)]

pub mod allocation;
pub mod backend;
pub mod binfmt;
pub mod checkpoint;
mod bottleneck_impl;
mod eval;
mod experiment;
mod infer;
pub mod json;
mod mapping;
mod ports;
mod predict;
pub mod render;
pub mod selection;
pub mod suggest;

pub use binfmt::{BinDecodeError, MappingArtifact, BIN_MAGIC, BIN_VERSION};

pub use checkpoint::{
    CheckpointError, CheckpointPhase, EvoCheckpoint, IslandCheckpoint, SessionCheckpoint,
    CHECKPOINT_VERSION,
};

pub use backend::{
    measurements_from_json, measurements_to_json, measurements_to_json_pretty, BackendStats,
    CachingBackend, MeasurementBackend, MeasurementJsonError, ModelBackend, NoisyBackend,
    ReplayBackend,
};
pub use eval::{CompiledExperiments, ThroughputSolver};
pub use experiment::{Experiment, MeasuredExperiment};
pub use infer::{InferenceAlgorithm, InferredMapping};
pub use mapping::{MappingJsonError, ThreeLevelMapping, TwoLevelMapping, UopEntry};
pub use ports::{PortId, PortSet, PortSetIter, MAX_PORTS};
pub use predict::{
    parse_control, parse_sequence, prediction_agreement, ControlVerb, MappingPredictor,
    SequenceParseError, ServeRecord, ThroughputPredictor,
};
pub use selection::{MeasurementBudget, RoundStats, SelectionPolicy};

/// The bottleneck simulation algorithm and its LP reference implementation.
pub mod bottleneck {
    pub use crate::bottleneck_impl::{
        lp_throughput, throughput_fast, throughput_naive, MassVector, MAX_ENUMERABLE_PORTS,
    };
}

use std::error::Error;
use std::fmt;

/// A dense instruction identifier.
///
/// Instructions in the core model carry no semantics beyond their identity;
/// the `pmevo-isa` crate attaches mnemonics, operands and latencies. Ids
/// index into the per-instruction tables of a mapping, so an `InstId` is
/// only meaningful relative to one instruction universe.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
)]
pub struct InstId(pub u32);

impl InstId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Errors produced by core model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// More ports requested than [`MAX_PORTS`].
    TooManyPorts {
        /// The requested number of ports.
        requested: usize,
    },
    /// An experiment references an instruction the mapping does not cover.
    UnknownInstruction {
        /// The offending instruction.
        inst: InstId,
        /// Number of instructions known to the mapping.
        num_insts: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::TooManyPorts { requested } => {
                write!(
                    f,
                    "{requested} ports requested, at most {MAX_PORTS} supported"
                )
            }
            ModelError::UnknownInstruction { inst, num_insts } => {
                write!(
                    f,
                    "instruction {inst} unknown to mapping with {num_insts} instructions"
                )
            }
        }
    }
}

impl Error for ModelError {}
