//! Budget-aware experiment selection: the vocabulary shared between the
//! adaptive scheduler (`pmevo_evo::selection`), the session facade and
//! the reproduction binaries.
//!
//! The paper measures its full experiment corpus up front; on real
//! machines that corpus is the dominant cost (paper Table 2 reports tens
//! of hours of benchmarking time). This module types the alternative —
//! *round-based* measurement under an explicit [`MeasurementBudget`]:
//!
//! * [`SelectionPolicy`] — how the next round's experiments are chosen
//!   (one-shot, population-disagreement, or uniform control).
//! * [`MeasurementBudget`] — when to stop measuring (a cap on real
//!   measurements and/or on measurement wall time), checked against the
//!   [`BackendStats`] delta of the run so cache hits are free.
//! * [`RoundStats`] — the per-round accounting that ends up in
//!   `SessionReport::rounds`, serializable through the [`crate::json`]
//!   codec with bit-exact round trips.

use crate::backend::BackendStats;
use crate::json::Value;
use std::fmt;
use std::time::Duration;

/// How an inference run picks the experiments it measures.
///
/// The round-based policies start from a seed corpus (the singleton
/// sweep plus a few pairs), then submit `top_k` unmeasured candidates
/// per round until the [`MeasurementBudget`] is exhausted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Measure the full experiment corpus up front (paper §4.1, the
    /// default).
    #[default]
    OneShot,
    /// Disagreement-driven adaptive selection: each round, candidates
    /// are scored by the variance of their predicted throughput across
    /// the current evolutionary population, and the `top_k` most
    /// contested ones are measured.
    Disagreement {
        /// Number of experiments submitted per round.
        top_k: usize,
    },
    /// Round-based control policy: `top_k` candidates are drawn
    /// uniformly (seeded) from the unmeasured pool each round. Same
    /// budget mechanics as [`Disagreement`](Self::Disagreement), no
    /// model guidance — the ablation floor for `fig_budget`.
    Uniform {
        /// Number of experiments submitted per round.
        top_k: usize,
    },
}

impl SelectionPolicy {
    /// Whether the policy measures in rounds instead of up front.
    pub fn is_adaptive(&self) -> bool {
        !matches!(self, SelectionPolicy::OneShot)
    }

    /// The per-round submission count of a round-based policy.
    pub fn top_k(&self) -> Option<usize> {
        match *self {
            SelectionPolicy::OneShot => None,
            SelectionPolicy::Disagreement { top_k } | SelectionPolicy::Uniform { top_k } => {
                Some(top_k)
            }
        }
    }

    /// A filesystem-safe slug, used to key measurement artifacts so
    /// adaptive and one-shot runs cannot poison each other's caches.
    pub fn slug(&self) -> String {
        match *self {
            SelectionPolicy::OneShot => "one-shot".to_owned(),
            SelectionPolicy::Disagreement { top_k } => format!("disagreement-k{top_k}"),
            SelectionPolicy::Uniform { top_k } => format!("uniform-k{top_k}"),
        }
    }

    /// The policy as a [`Value`] tree
    /// (`{"policy": "disagreement", "top_k": 16}`).
    pub fn to_json_value(&self) -> Value {
        match *self {
            SelectionPolicy::OneShot => {
                Value::Obj(vec![("policy".into(), Value::Str("one-shot".into()))])
            }
            SelectionPolicy::Disagreement { top_k } => Value::Obj(vec![
                ("policy".into(), Value::Str("disagreement".into())),
                ("top_k".into(), Value::UInt(top_k as u64)),
            ]),
            SelectionPolicy::Uniform { top_k } => Value::Obj(vec![
                ("policy".into(), Value::Str("uniform".into())),
                ("top_k".into(), Value::UInt(top_k as u64)),
            ]),
        }
    }

    /// Reads a policy back from its [`Self::to_json_value`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        let kind = match v.get("policy") {
            Some(Value::Str(s)) => s.as_str(),
            _ => return Err("selection policy needs a string field `policy`".into()),
        };
        let top_k = || {
            v.get("top_k")
                .and_then(Value::as_u64)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| format!("selection policy `{kind}` needs an integer `top_k`"))
        };
        match kind {
            "one-shot" => Ok(SelectionPolicy::OneShot),
            "disagreement" => Ok(SelectionPolicy::Disagreement { top_k: top_k()? }),
            "uniform" => Ok(SelectionPolicy::Uniform { top_k: top_k()? }),
            other => Err(format!("unknown selection policy {other:?}")),
        }
    }
}

impl fmt::Display for SelectionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.slug())
    }
}

/// A cap on how much a run may measure: a maximum number of real
/// measurements, a maximum measurement wall time, both, or neither.
///
/// The budget is always checked against a [`BackendStats`] *delta*
/// ([`BackendStats::since`] a snapshot taken at run start), so cache
/// hits of a [`crate::CachingBackend`] never consume budget.
///
/// The cap is enforced *between* submissions, not within one: a
/// consumer checks [`is_exhausted`](Self::is_exhausted) before each
/// batch, and a mandatory batch (the adaptive pipeline's singleton
/// sweep, without which inference is undefined) is measured even when
/// it alone exceeds the budget.
///
/// # Example
///
/// ```
/// use pmevo_core::{BackendStats, MeasurementBudget};
///
/// let budget = MeasurementBudget::measurements(100);
/// let mut used = BackendStats::default();
/// assert!(!budget.is_exhausted(&used));
/// used.measurements_performed = 100;
/// assert!(budget.is_exhausted(&used));
/// assert_eq!(MeasurementBudget::UNLIMITED.remaining_measurements(&used), None);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeasurementBudget {
    /// Cap on real measurements performed (`None` = unlimited).
    pub max_measurements: Option<u64>,
    /// Cap on measurement wall time (`None` = unlimited). Wall time is
    /// inherently nondeterministic; budgets meant for reproducible runs
    /// should cap measurements instead.
    pub max_measurement_time: Option<Duration>,
}

impl MeasurementBudget {
    /// No cap at all — one-shot behaviour.
    pub const UNLIMITED: MeasurementBudget = MeasurementBudget {
        max_measurements: None,
        max_measurement_time: None,
    };

    /// A budget of `n` real measurements.
    pub fn measurements(n: u64) -> Self {
        MeasurementBudget {
            max_measurements: Some(n),
            max_measurement_time: None,
        }
    }

    /// A budget of `t` measurement wall time.
    pub fn measurement_time(t: Duration) -> Self {
        MeasurementBudget {
            max_measurements: None,
            max_measurement_time: Some(t),
        }
    }

    /// Whether neither cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_measurements.is_none() && self.max_measurement_time.is_none()
    }

    /// Whether the run has spent its budget, given the stats accumulated
    /// since its start.
    pub fn is_exhausted(&self, used: &BackendStats) -> bool {
        if let Some(max) = self.max_measurements {
            if used.measurements_performed >= max {
                return true;
            }
        }
        if let Some(max) = self.max_measurement_time {
            if used.measurement_time >= max {
                return true;
            }
        }
        false
    }

    /// How many more real measurements the budget allows (`None` when
    /// the measurement count is uncapped).
    pub fn remaining_measurements(&self, used: &BackendStats) -> Option<u64> {
        self.max_measurements
            .map(|max| max.saturating_sub(used.measurements_performed))
    }

    /// The budget as a [`Value`] tree (durations in integer
    /// nanoseconds, unset caps as `null`).
    pub fn to_json_value(&self) -> Value {
        let opt_u64 = |v: Option<u64>| v.map(Value::UInt).unwrap_or(Value::Null);
        Value::Obj(vec![
            ("max_measurements".into(), opt_u64(self.max_measurements)),
            (
                "max_measurement_time_ns".into(),
                opt_u64(
                    self.max_measurement_time
                        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
                ),
            ),
        ])
    }

    /// Reads a budget back from its [`Self::to_json_value`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        if !matches!(v, Value::Obj(_)) {
            return Err("budget must be a JSON object".into());
        }
        let opt_u64 = |name: &str| -> Result<Option<u64>, String> {
            match v.get(name) {
                None | Some(Value::Null) => Ok(None),
                Some(f) => f
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("budget field `{name}` must be an integer or null")),
            }
        };
        Ok(MeasurementBudget {
            max_measurements: opt_u64("max_measurements")?,
            max_measurement_time: opt_u64("max_measurement_time_ns")?.map(Duration::from_nanos),
        })
    }
}

impl fmt::Display for MeasurementBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.max_measurements, self.max_measurement_time) {
            (None, None) => write!(f, "unlimited"),
            (Some(n), None) => write!(f, "{n} measurements"),
            (None, Some(t)) => write!(f, "{t:.1?} of measurement"),
            (Some(n), Some(t)) => write!(f, "{n} measurements / {t:.1?}"),
        }
    }
}

/// Per-round measurement accounting of a round-based run, derived from
/// the backend's [`BackendStats`] deltas. Round 0 is the seed corpus;
/// every later round is one top-k submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Round index (0 = seed corpus).
    pub round: u32,
    /// Experiments submitted to the backend this round (requested;
    /// includes cache hits).
    pub experiments_submitted: u64,
    /// Real measurements the leaf backend performed this round.
    pub measurements_performed: u64,
    /// Wall time the leaf backend spent measuring this round.
    pub measurement_time: Duration,
    /// Real measurements performed by the whole run up to and including
    /// this round.
    pub cumulative_measurements: u64,
    /// Training `D_avg` of the best mapping after evolving on everything
    /// measured up to and including this round.
    pub training_error: f64,
}

impl RoundStats {
    /// Builds one round's accounting from the [`BackendStats`] delta of
    /// its submission — the single place the delta-to-round field
    /// wiring lives.
    pub fn from_delta(
        round: u32,
        delta: &BackendStats,
        cumulative_measurements: u64,
        training_error: f64,
    ) -> RoundStats {
        RoundStats {
            round,
            experiments_submitted: delta.measurements_requested,
            measurements_performed: delta.measurements_performed,
            measurement_time: delta.measurement_time,
            cumulative_measurements,
            training_error,
        }
    }

    /// A copy with the wall-clock field zeroed, for bit-exact
    /// comparisons across thread counts and machines.
    #[must_use]
    pub fn without_timing(mut self) -> RoundStats {
        self.measurement_time = Duration::ZERO;
        self
    }

    /// The round as a [`Value`] tree (durations in integer nanoseconds).
    pub fn to_json_value(&self) -> Value {
        Value::Obj(vec![
            ("round".into(), Value::UInt(u64::from(self.round))),
            (
                "experiments_submitted".into(),
                Value::UInt(self.experiments_submitted),
            ),
            (
                "measurements_performed".into(),
                Value::UInt(self.measurements_performed),
            ),
            (
                "measurement_time_ns".into(),
                Value::UInt(u64::try_from(self.measurement_time.as_nanos()).unwrap_or(u64::MAX)),
            ),
            (
                "cumulative_measurements".into(),
                Value::UInt(self.cumulative_measurements),
            ),
            ("training_error".into(), Value::Num(self.training_error)),
        ])
    }

    /// Reads a round back from its [`Self::to_json_value`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        let uint = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("round stats need an integer field `{name}`"))
        };
        let training_error = match v.get("training_error") {
            Some(&Value::Num(f)) => f,
            Some(&Value::UInt(n)) => n as f64,
            _ => return Err("round stats need a number field `training_error`".into()),
        };
        Ok(RoundStats {
            round: u32::try_from(uint("round")?)
                .map_err(|_| "round index overflows u32".to_owned())?,
            experiments_submitted: uint("experiments_submitted")?,
            measurements_performed: uint("measurements_performed")?,
            measurement_time: Duration::from_nanos(uint("measurement_time_ns")?),
            cumulative_measurements: uint("cumulative_measurements")?,
            training_error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn policy_accessors_and_slugs() {
        assert!(!SelectionPolicy::OneShot.is_adaptive());
        assert_eq!(SelectionPolicy::OneShot.top_k(), None);
        let d = SelectionPolicy::Disagreement { top_k: 8 };
        assert!(d.is_adaptive());
        assert_eq!(d.top_k(), Some(8));
        assert_eq!(d.slug(), "disagreement-k8");
        assert_eq!(SelectionPolicy::Uniform { top_k: 3 }.to_string(), "uniform-k3");
        assert_eq!(SelectionPolicy::default(), SelectionPolicy::OneShot);
    }

    #[test]
    fn policy_roundtrips_through_json() {
        for policy in [
            SelectionPolicy::OneShot,
            SelectionPolicy::Disagreement { top_k: 16 },
            SelectionPolicy::Uniform { top_k: 4 },
        ] {
            let v = policy.to_json_value();
            let back = SelectionPolicy::from_json_value(&v).expect("policy parses");
            assert_eq!(back, policy);
            // And through actual text.
            let text = json::write_compact(&v);
            let parsed = json::parse(&text).expect("text parses");
            assert_eq!(SelectionPolicy::from_json_value(&parsed), Ok(policy));
        }
        assert!(SelectionPolicy::from_json_value(&Value::Null).is_err());
        assert!(SelectionPolicy::from_json_value(&Value::Obj(vec![(
            "policy".into(),
            Value::Str("disagreement".into())
        )]))
        .is_err());
    }

    #[test]
    fn budget_exhaustion_checks_both_caps() {
        let used = |n: u64, secs: u64| BackendStats {
            measurements_requested: n,
            measurements_performed: n,
            measurement_time: Duration::from_secs(secs),
        };
        assert!(MeasurementBudget::UNLIMITED.is_unlimited());
        assert!(!MeasurementBudget::UNLIMITED.is_exhausted(&used(u64::MAX, 1_000_000)));
        let by_count = MeasurementBudget::measurements(10);
        assert!(!by_count.is_exhausted(&used(9, 0)));
        assert!(by_count.is_exhausted(&used(10, 0)));
        assert_eq!(by_count.remaining_measurements(&used(4, 0)), Some(6));
        assert_eq!(by_count.remaining_measurements(&used(40, 0)), Some(0));
        let by_time = MeasurementBudget::measurement_time(Duration::from_secs(5));
        assert!(!by_time.is_exhausted(&used(1000, 4)));
        assert!(by_time.is_exhausted(&used(0, 5)));
        assert_eq!(by_time.remaining_measurements(&used(0, 5)), None);
    }

    #[test]
    fn budget_roundtrips_through_json() {
        for budget in [
            MeasurementBudget::UNLIMITED,
            MeasurementBudget::measurements(123),
            MeasurementBudget::measurement_time(Duration::from_nanos(987_654_321)),
            MeasurementBudget {
                max_measurements: Some(7),
                max_measurement_time: Some(Duration::from_millis(250)),
            },
        ] {
            let text = json::write_compact(&budget.to_json_value());
            let parsed = json::parse(&text).expect("budget text parses");
            assert_eq!(MeasurementBudget::from_json_value(&parsed), Ok(budget));
        }
        // Missing fields read as unlimited; wrong types are rejected.
        assert_eq!(
            MeasurementBudget::from_json_value(&Value::Obj(vec![])),
            Ok(MeasurementBudget::UNLIMITED)
        );
        assert!(MeasurementBudget::from_json_value(&Value::Obj(vec![(
            "max_measurements".into(),
            Value::Str("lots".into())
        )]))
        .is_err());
        // A bare number is not a budget — it must not silently decode
        // as UNLIMITED.
        assert!(MeasurementBudget::from_json_value(&Value::UInt(200)).is_err());
        assert!(MeasurementBudget::from_json_value(&Value::Null).is_err());
    }

    #[test]
    fn round_stats_roundtrip_through_json() {
        let round = RoundStats {
            round: 3,
            experiments_submitted: 16,
            measurements_performed: 12,
            measurement_time: Duration::from_nanos(123_456_789),
            cumulative_measurements: 90,
            training_error: 0.037_251,
        };
        let text = json::write_compact(&round.to_json_value());
        let parsed = json::parse(&text).expect("round text parses");
        assert_eq!(RoundStats::from_json_value(&parsed), Ok(round));
        assert_eq!(round.without_timing().measurement_time, Duration::ZERO);
        assert!(RoundStats::from_json_value(&Value::Obj(vec![])).is_err());
    }
}
