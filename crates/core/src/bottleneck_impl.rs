//! The bottleneck simulation algorithm (paper §4.5) and an LP reference.
//!
//! Both compute the throughput `t*_m(e)` of paper Definition 3 for a
//! two-level problem instance given as a [`MassVector`]: the multiset of
//! µops (identified by port sets) with real-valued masses. Three-level
//! problems reduce to this form via
//! [`ThreeLevelMapping::uop_masses`](crate::ThreeLevelMapping::uop_masses)
//! (paper §3.2).
//!
//! The bottleneck algorithm implements Equation 1 of the paper:
//!
//! ```text
//! t*_m(e) = max over non-empty Q ⊆ P of
//!           (Σ { e(u) | Ports(u) ⊆ Q }) / |Q|
//! ```
//!
//! [`throughput_fast`] aggregates masses per port-subset and then either
//! enumerates only the *unions* of µop port sets (`Θ(d · 2^d)` for `d`
//! distinct µops — the optimal bottleneck set is always such a union) or
//! falls back to a subset-sum (zeta) transform over the live ports
//! (`Θ(|P| · 2^|P|)` independent of the number of µops);
//! [`throughput_naive`] re-scans all µops for every
//! subset (`Θ(2^|P|) · |µops|`) and exists as the ablation baseline;
//! [`lp_throughput`] solves the linear program with the simplex solver and
//! is the reference for correctness tests and the Figure 8 comparison.

use crate::{PortSet, MAX_PORTS};
use pmevo_lp::{Problem, Relation};

/// Largest number of *live* ports (ports actually usable by some µop of
/// the experiment) for which subset enumeration is permitted.
///
/// `2^26` doubles are 512 MiB of scratch; beyond that the enumeration is
/// clearly the wrong tool and the LP solver should be used instead.
pub const MAX_ENUMERABLE_PORTS: usize = 26;

/// A multiset of µops with fractional masses, the input of the two-level
/// throughput computation.
///
/// µops are identified by their [`PortSet`]; adding mass for an existing
/// port set merges with the previous entry. This merging is one of the
/// "aggressive performance optimizations" the paper alludes to: the
/// throughput LP only depends on total mass per distinct port set.
///
/// # Example
///
/// ```
/// use pmevo_core::bottleneck::{throughput_fast, MassVector};
/// use pmevo_core::PortSet;
///
/// let mut mv = MassVector::new();
/// mv.add(PortSet::from_ports(&[0, 1]), 2.0);
/// mv.add(PortSet::from_ports(&[0]), 1.0);
/// mv.add(PortSet::from_ports(&[0, 1]), 1.0); // merges with the first add
/// assert_eq!(mv.len(), 2);
/// assert_eq!(throughput_fast(&mv), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MassVector {
    items: Vec<(PortSet, f64)>,
}

impl MassVector {
    /// Creates an empty mass vector.
    pub fn new() -> Self {
        MassVector { items: Vec::new() }
    }

    /// Adds `mass` units of the µop executable on `ports`.
    ///
    /// Zero-mass additions and empty port sets with zero mass are ignored.
    ///
    /// # Complexity
    ///
    /// Entries are kept sorted by [`PortSet`], so merging with an existing
    /// µop costs `O(log n)` (binary search) and inserting a new one costs
    /// `O(n)` (shift), where `n` is the number of *distinct* port sets —
    /// in practice a handful, bounded by the experiment's µop diversity,
    /// not by its total mass. The sorted order is also what makes
    /// structural equality semantic equality and keeps downstream
    /// iteration deterministic. (The batched evaluation path in
    /// [`crate::ThroughputSolver`] skips this merge entirely and
    /// bucketizes masses straight into the zeta-transform array.)
    ///
    /// # Panics
    ///
    /// Panics if `mass` is negative or if `ports` is empty while `mass` is
    /// positive (such an experiment has no feasible schedule).
    pub fn add(&mut self, ports: PortSet, mass: f64) {
        assert!(mass >= 0.0, "negative µop mass {mass}");
        if mass == 0.0 {
            return;
        }
        assert!(
            !ports.is_empty(),
            "µop with positive mass but no ports has no feasible schedule"
        );
        match self.items.binary_search_by_key(&ports, |&(p, _)| p) {
            Ok(idx) => self.items[idx].1 += mass,
            Err(idx) => self.items.insert(idx, (ports, mass)),
        }
    }

    /// Removes every entry while keeping the allocation, so the vector
    /// can be refilled without touching the heap (the reuse pattern of
    /// [`crate::ThroughputSolver`]).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Number of distinct µops (distinct port sets).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the vector holds no mass.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over `(port set, mass)` entries in port-set order.
    pub fn iter(&self) -> impl Iterator<Item = (PortSet, f64)> + '_ {
        self.items.iter().copied()
    }

    /// Total mass across all µops.
    pub fn total_mass(&self) -> f64 {
        self.items.iter().map(|&(_, m)| m).sum()
    }

    /// Union of all port sets with positive mass.
    pub fn live_ports(&self) -> PortSet {
        self.items
            .iter()
            .fold(PortSet::EMPTY, |acc, &(p, _)| acc.union(p))
    }
}

impl FromIterator<(PortSet, f64)> for MassVector {
    fn from_iter<I: IntoIterator<Item = (PortSet, f64)>>(iter: I) -> Self {
        let mut mv = MassVector::new();
        for (p, m) in iter {
            mv.add(p, m);
        }
        mv
    }
}

/// Like [`compact`], but also returns the dense-index → global-port
/// table, for callers that must translate results back (the bottleneck
/// set extraction in [`crate::allocation`]).
pub(crate) fn compact_for_allocation(
    masses: &MassVector,
    live: PortSet,
) -> (Vec<(u32, f64)>, Vec<usize>) {
    let dense_to_global: Vec<usize> = live.iter().collect();
    (compact(masses, live), dense_to_global)
}

/// Compacts the ports of `live` to dense indices and returns, for each
/// µop, its compacted mask alongside its mass.
fn compact(masses: &MassVector, live: PortSet) -> Vec<(u32, f64)> {
    // position[p] = dense index of global port p
    let mut position = [0u8; MAX_PORTS];
    for (dense, p) in live.iter().enumerate() {
        position[p] = dense as u8;
    }
    masses
        .iter()
        .map(|(ports, mass)| {
            let mut mask = 0u32;
            for p in ports.iter() {
                mask |= 1 << position[p];
            }
            (mask, mass)
        })
        .collect()
}

/// The exact scalar strategies of the bottleneck kernel. The batch path
/// ([`crate::ThroughputSolver::predict_batch`]) adds a fourth,
/// lane-parallel variant of [`Strategy::Zeta`] ([`zeta_and_max_lanes`])
/// that is bit-identical to the scalar zeta transform per lane, so the
/// strategy *selection* stays a pure function of `(entries, k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Strategy {
    /// Union-closure enumeration, `Θ(d · 2^d)` for `d` distinct µops.
    UnionClosure,
    /// Superset scatter, `Θ(Σ_i 2^(k − |mask_i|) + 2^k)`.
    Scatter,
    /// Subset-sum (zeta) transform, `Θ(k · 2^k)` independent of `d`.
    Zeta,
}

/// Picks the cheapest exact strategy for compacted, distinct, ascending
/// `(mask, mass)` entries over `k` live ports, by predicted operation
/// count:
///
/// * **Union-closure enumeration** (`Θ(d · 2^d)` for `d` distinct µops):
///   the optimal bottleneck set `Q*` can always be taken as the union of
///   the µop port sets it contains (shrinking `Q*` to that union keeps
///   the numerator and can only shrink `|Q|`), so enumerating the `2^d`
///   unions suffices. For the singleton and pair experiments of the
///   paper's experiment scheme `d` is 1–6 while machines have 8–10
///   ports, making this the evolutionary hot path.
/// * **Superset scatter** (`Θ(Σ_i 2^(k − |mask_i|) + 2^k)`): add each
///   mass directly to every superset of its mask, then scan. Wins when
///   µops are moderately many but wide, so the subset lattice stays
///   sparse.
/// * **Zeta transform** (`Θ(k · 2^k)`, independent of `d`) as the dense
///   fallback — and the only strategy with a lane-parallel batch variant
///   ([`zeta_and_max_lanes`]).
///
/// The choice is a pure function of `(entries, k)`, so every caller —
/// scalar or batched — gets the same strategy, and the same bits, for
/// the same input.
pub(crate) fn choose_strategy(entries: &[(u32, f64)], k: usize) -> Strategy {
    let d = entries.len();
    let size = 1usize << k;
    let zeta_cost = (k as u64 + 1) << k;
    let scatter_cost = (size as u64)
        + entries
            .iter()
            .map(|&(mask, _)| 1u64 << (k - mask.count_ones() as usize))
            .sum::<u64>();
    if d < 16 && (d as u64) << d < zeta_cost.min(scatter_cost) {
        Strategy::UnionClosure
    } else if scatter_cost < zeta_cost {
        Strategy::Scatter
    } else {
        Strategy::Zeta
    }
}

/// Runs one scalar strategy over compacted entries. `sum` and `unions`
/// are caller-owned scratch so the hot path can reuse them
/// ([`crate::ThroughputSolver`]); they are grown on demand.
pub(crate) fn kernel_with_strategy(
    strategy: Strategy,
    entries: &[(u32, f64)],
    k: usize,
    sum: &mut Vec<f64>,
    unions: &mut Vec<u32>,
) -> f64 {
    if strategy == Strategy::UnionClosure {
        return union_closure_max(entries, k, unions);
    }
    let size = 1usize << k;
    if sum.len() < size {
        sum.resize(size, 0.0);
    }
    let sum = &mut sum[..size];
    sum.fill(0.0);
    if strategy == Strategy::Scatter {
        let full = (size - 1) as u32;
        for &(mask, mass) in entries {
            let complement = full & !mask;
            let mut extra = complement;
            loop {
                sum[(mask | extra) as usize] += mass;
                if extra == 0 {
                    break;
                }
                extra = (extra - 1) & complement;
            }
        }
        return max_quotient(sum, k);
    }
    for &(mask, mass) in entries {
        sum[mask as usize] += mass;
    }
    zeta_and_max(sum, k)
}

/// Computes Equation 1 from compacted, distinct, ascending
/// `(mask, mass)` entries over `k` live ports, with the cheapest exact
/// strategy per [`choose_strategy`].
pub(crate) fn kernel_from_compacted(
    entries: &[(u32, f64)],
    k: usize,
    sum: &mut Vec<f64>,
    unions: &mut Vec<u32>,
) -> f64 {
    kernel_with_strategy(choose_strategy(entries, k), entries, k, sum, unions)
}

/// The union-closure strategy of [`kernel_from_compacted`]: for every
/// subset `S` of the distinct µops, form `U = ⋃_{i ∈ S} mask_i`
/// (incrementally, via the subset's lowest member) and score the mass
/// contained in `U`. Division is deferred to one per subset *size* as in
/// [`zeta_and_max`], which is exact because division by a positive
/// constant is monotone.
fn union_closure_max(entries: &[(u32, f64)], k: usize, unions: &mut Vec<u32>) -> f64 {
    let d = entries.len();
    let size = 1usize << d;
    if unions.len() < size {
        unions.resize(size, 0);
    }
    let unions = &mut unions[..size];
    unions[0] = 0;
    let mut best_by_size = [0.0f64; MAX_ENUMERABLE_PORTS + 1];
    for s in 1..size {
        let low = s.trailing_zeros() as usize;
        let u = unions[s & (s - 1)] | entries[low].0;
        unions[s] = u;
        let mut contained = 0.0f64;
        for &(mask, mass) in entries {
            if mask & !u == 0 {
                contained += mass;
            }
        }
        let c = u.count_ones() as usize;
        if contained > best_by_size[c] {
            best_by_size[c] = contained;
        }
    }
    best_quotient(&best_by_size, k)
}

/// The dense strategy's tail: runs the zeta (subset-sum) transform in
/// place over `sum` — afterwards `sum[Q] = Σ { mass(u) | ports(u) ⊆ Q }`
/// — and returns the best quotient via [`max_quotient`].
///
/// The transform walks each bit's set-half in contiguous blocks
/// (`sum[q..q + b] += sum[q - b..q]` element-wise), which performs the
/// same additions in the same ascending-`q` order as the textbook masked
/// loop but without a data-dependent branch per element.
pub(crate) fn zeta_and_max(sum: &mut [f64], k: usize) -> f64 {
    let size = 1usize << k;
    debug_assert_eq!(sum.len(), size);
    for bit in 0..k {
        let b = 1usize << bit;
        let mut q = b;
        while q < size {
            let (lo, hi) = sum.split_at_mut(q);
            for (dst, src) in hi[..b].iter_mut().zip(&lo[q - b..]) {
                *dst += *src;
            }
            q += b << 1;
        }
    }
    max_quotient(sum, k)
}

/// Lane width of the batched zeta kernel: how many same-`k` experiments
/// solve in lockstep through one structure-of-arrays `sum` plane. Eight
/// `f64` columns fill one 64-byte cache line and give the autovectorizer
/// fixed-width inner loops (2×AVX2 / 4×SSE2 per step).
pub(crate) const LANES: usize = 8;

/// Ceiling on `k` for the lane-parallel zeta path: a plane is
/// `2^k × LANES × 8` bytes, so `k = 16` caps it at 4 MiB. Larger-`k`
/// experiments (never seen from the paper's 8–10-port machines) fall
/// back to the scalar zeta kernel.
pub(crate) const MAX_LANE_PORTS: usize = 16;

/// The fourth kernel strategy: the zeta (subset-sum) transform of
/// [`zeta_and_max`] run across [`LANES`] experiments in lockstep over a
/// structure-of-arrays plane — `sum[q][l]` is subset `q` of lane `l`.
///
/// Per lane this performs *exactly* the additions of the scalar
/// transform, in the same ascending-`q` order, and funnels each lane's
/// per-size maxima through the same [`best_quotient`] — so each lane's
/// result is bit-identical to a scalar [`Strategy::Zeta`] solve of the
/// same entries. Callers must therefore only route experiments here
/// whose [`choose_strategy`] is `Zeta`; substituting it for the other
/// strategies would change floating-point association order.
pub(crate) fn zeta_and_max_lanes(sum: &mut [[f64; LANES]], k: usize) -> [f64; LANES] {
    let size = 1usize << k;
    debug_assert_eq!(sum.len(), size);
    for bit in 0..k {
        let b = 1usize << bit;
        let mut q = b;
        while q < size {
            let (lo, hi) = sum.split_at_mut(q);
            for (dst, src) in hi[..b].iter_mut().zip(&lo[q - b..]) {
                for l in 0..LANES {
                    dst[l] += src[l];
                }
            }
            q += b << 1;
        }
    }
    let mut best_by_size = [[0.0f64; LANES]; MAX_ENUMERABLE_PORTS + 1];
    for (q, s) in sum.iter().enumerate().skip(1) {
        let c = q.count_ones() as usize;
        let best = &mut best_by_size[c];
        for l in 0..LANES {
            if s[l] > best[l] {
                best[l] = s[l];
            }
        }
    }
    let mut out = [0.0f64; LANES];
    let mut column = [0.0f64; MAX_ENUMERABLE_PORTS + 1];
    for (l, slot) in out.iter_mut().enumerate() {
        for (c, row) in best_by_size.iter().enumerate() {
            column[c] = row[l];
        }
        *slot = best_quotient(&column, k);
    }
    out
}

/// The best `sum[Q] / |Q|` over non-empty `Q`, with one division per
/// subset *size* instead of per subset: division by a positive constant
/// is monotone, so reducing to a per-size maximum first is exact.
fn max_quotient(sum: &[f64], k: usize) -> f64 {
    let mut best_by_size = [0.0f64; MAX_ENUMERABLE_PORTS + 1];
    for (q, &s) in sum.iter().enumerate().skip(1) {
        let c = q.count_ones() as usize;
        if s > best_by_size[c] {
            best_by_size[c] = s;
        }
    }
    best_quotient(&best_by_size, k)
}

/// Shared tail of the per-size reduction: `max_c best_by_size[c] / c`
/// over sizes `1..=k`. Every strategy funnels through this one function
/// so the division/rounding behavior cannot drift between them.
fn best_quotient(best_by_size: &[f64], k: usize) -> f64 {
    let mut best = 0.0f64;
    for (c, &s) in best_by_size.iter().enumerate().take(k + 1).skip(1) {
        let t = s / (c as f64);
        if t > best {
            best = t;
        }
    }
    best
}

/// Computes `t*_m(e)` with the bottleneck simulation algorithm: mass
/// aggregation followed by either union-closure enumeration or the
/// subset-sum transform (see `kernel_from_compacted` for the strategy
/// choice — both are exact).
///
/// Only the *live* ports (those usable by at least one µop with positive
/// mass) are enumerated; dead ports can never belong to a bottleneck set
/// `Q*` because removing them from `Q` only increases the quotient of
/// Equation 1.
///
/// Allocates fresh scratch per call; the evolutionary hot loop uses
/// [`crate::ThroughputSolver`], which reuses its buffers across calls and
/// returns bit-identical results (same kernel, same compacted input).
///
/// Returns `0.0` for an empty experiment.
///
/// # Panics
///
/// Panics if more than [`MAX_ENUMERABLE_PORTS`] ports are live.
pub fn throughput_fast(masses: &MassVector) -> f64 {
    let mut entries = Vec::new();
    let mut sum = Vec::new();
    let mut unions = Vec::new();
    masses_kernel(masses, &mut entries, &mut sum, &mut unions)
}

/// Compacts a (sorted, duplicate-free) [`MassVector`] over its live ports
/// and runs [`kernel_from_compacted`] — the single compaction shared by
/// [`throughput_fast`] (fresh scratch) and the ad-hoc paths of
/// [`crate::ThroughputSolver`] (reused scratch), so their bit-identity
/// cannot drift.
///
/// # Panics
///
/// Panics if more than [`MAX_ENUMERABLE_PORTS`] ports are live.
pub(crate) fn masses_kernel(
    masses: &MassVector,
    entries: &mut Vec<(u32, f64)>,
    sum: &mut Vec<f64>,
    unions: &mut Vec<u32>,
) -> f64 {
    let live = masses.live_ports();
    let k = live.len();
    if k == 0 {
        return 0.0;
    }
    assert!(
        k <= MAX_ENUMERABLE_PORTS,
        "{k} live ports exceed the subset-enumeration limit ({MAX_ENUMERABLE_PORTS}); \
         use lp_throughput instead"
    );
    let mut position = [0u8; MAX_PORTS];
    for (dense, p) in live.iter().enumerate() {
        position[p] = dense as u8;
    }
    entries.clear();
    for (ports, mass) in masses.iter() {
        let mut mask = 0u32;
        for p in ports.iter() {
            mask |= 1 << position[p];
        }
        entries.push((mask, mass));
    }
    kernel_from_compacted(entries, k, sum, unions)
}

/// Computes `t*_m(e)` by direct enumeration: for every non-empty subset of
/// live ports, all µops are scanned to accumulate the contained mass.
///
/// This is the textbook reading of Equation 1 and serves as the ablation
/// baseline for [`throughput_fast`]; both return identical values.
///
/// # Panics
///
/// Panics if more than [`MAX_ENUMERABLE_PORTS`] ports are live.
pub fn throughput_naive(masses: &MassVector) -> f64 {
    let live = masses.live_ports();
    let k = live.len();
    if k == 0 {
        return 0.0;
    }
    assert!(
        k <= MAX_ENUMERABLE_PORTS,
        "{k} live ports exceed the subset-enumeration limit ({MAX_ENUMERABLE_PORTS})"
    );
    let compacted = compact(masses, live);
    let mut best = 0.0f64;
    for q in 1u32..(1u32 << k) {
        let mut s = 0.0;
        for &(mask, mass) in &compacted {
            if mask & !q == 0 {
                s += mass;
            }
        }
        let t = s / f64::from(q.count_ones());
        if t > best {
            best = t;
        }
    }
    best
}

/// Computes `t*_m(e)` by solving the linear program of paper Definition 3
/// with the [`pmevo_lp`] simplex solver.
///
/// Variables are created only for edges `(u, k) ∈ M`, so constraint (D)
/// (`x_uk = 0` for non-edges) is implicit. Used for cross-checking the
/// bottleneck algorithm (paper Appendix A) and for the running-time
/// comparison of Figure 8.
///
/// Returns `0.0` for an empty experiment.
///
/// # Panics
///
/// Panics if the LP solver fails, which cannot happen for well-formed
/// inputs: the program is always feasible (every µop has a port) and
/// bounded (t ≥ 0).
pub fn lp_throughput(masses: &MassVector) -> f64 {
    if masses.is_empty() {
        return 0.0;
    }
    let live = masses.live_ports();
    let ports: Vec<usize> = live.iter().collect();
    let num_uops = masses.len();

    // Variable layout: x_{u,k} for each edge, then t last.
    let mut edge_vars: Vec<Vec<(usize, usize)>> = Vec::with_capacity(num_uops); // (port, var)
    let mut next_var = 0usize;
    for (uop_ports, _) in masses.iter() {
        let vars = uop_ports
            .iter()
            .map(|p| {
                let v = next_var;
                next_var += 1;
                (p, v)
            })
            .collect();
        edge_vars.push(vars);
    }
    let t_var = next_var;
    let mut problem = Problem::minimize(t_var + 1);
    problem.set_objective_coeff(t_var, 1.0);

    // (A): Σ_k x_uk = mass(u)
    for (u, (_, mass)) in masses.iter().enumerate() {
        let terms: Vec<(usize, f64)> = edge_vars[u].iter().map(|&(_, v)| (v, 1.0)).collect();
        problem.add_constraint(&terms, Relation::Eq, mass);
    }
    // (B): Σ_u x_uk − t ≤ 0 for each live port k
    for &port in &ports {
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for vars in &edge_vars {
            for &(p, v) in vars {
                if p == port {
                    terms.push((v, 1.0));
                }
            }
        }
        terms.push((t_var, -1.0));
        problem.add_constraint(&terms, Relation::Le, 0.0);
    }

    problem
        .solve()
        .expect("throughput LP is feasible and bounded by construction")
        .objective()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(ports: &[usize]) -> PortSet {
        PortSet::from_ports(ports)
    }

    fn example1() -> MassVector {
        // Figure 2 / Example 1: {add↦2, mul↦1, store↦1}
        let mut mv = MassVector::new();
        mv.add(ps(&[0, 1]), 2.0); // add ×2
        mv.add(ps(&[0]), 1.0); // mul
        mv.add(ps(&[2]), 1.0); // store
        mv
    }

    /// The crafted shapes of `tests/proptest_batch.rs` really do force
    /// the strategies they claim to — pinned here against the cost
    /// model so a model change cannot silently hollow out that suite.
    #[test]
    fn cost_model_picks_the_expected_strategy_per_shape() {
        // 6 narrow µops over 8 live ports: union-closure enumeration.
        let uc: Vec<(u32, f64)> =
            vec![(0b1, 1.0), (0b10, 1.0), (0b100, 2.0), (0b1000, 1.0), (0b10000, 1.0), (0b11100000, 1.0)];
        assert_eq!(choose_strategy(&uc, 8), Strategy::UnionClosure);
        // 16 wide (|mask| ≥ 4) µops over 6 ports: sparse superset
        // lattice, so scatter wins and d = 16 rules out union-closure.
        let wide: Vec<(u32, f64)> = (0u32..64)
            .filter(|m| m.count_ones() >= 4)
            .take(16)
            .map(|m| (m, 1.0))
            .collect();
        assert_eq!(choose_strategy(&wide, 6), Strategy::Scatter);
        // All 21 singleton + pair masks over 6 ports: dense and narrow,
        // the zeta transform's home turf.
        let mut narrow: Vec<(u32, f64)> =
            (0u32..64).filter(|m| (1..=2).contains(&m.count_ones())).map(|m| (m, 1.0)).collect();
        narrow.sort_unstable_by_key(|&(m, _)| m);
        assert_eq!(narrow.len(), 21);
        assert_eq!(choose_strategy(&narrow, 6), Strategy::Zeta);
    }

    /// Per lane, the lockstep zeta kernel reproduces the scalar zeta
    /// kernel's bits exactly — on lanes with *different* contents.
    #[test]
    fn lane_zeta_matches_scalar_zeta_bitwise() {
        for k in 1..=6usize {
            let size = 1usize << k;
            let mut plane = vec![[0.0f64; LANES]; size];
            let mut scalar_results = [0.0f64; LANES];
            for (l, slot) in scalar_results.iter_mut().enumerate() {
                let mut sum = vec![0.0f64; size];
                // Deterministic, lane-distinct, irrational-ish masses.
                for (q, s) in sum.iter_mut().enumerate() {
                    if (q + l) % 3 != 0 {
                        *s = ((q * 7 + l * 13 + 1) as f64) * 0.318_412_471_8;
                        plane[q][l] = *s;
                    }
                }
                *slot = zeta_and_max(&mut sum, k);
            }
            let lane_results = zeta_and_max_lanes(&mut plane, k);
            for l in 0..LANES {
                assert_eq!(
                    lane_results[l].to_bits(),
                    scalar_results[l].to_bits(),
                    "lane {l} drifted from scalar zeta at k = {k}"
                );
            }
        }
    }

    #[test]
    fn example1_throughput_is_1_5_in_all_engines() {
        let mv = example1();
        assert!((throughput_fast(&mv) - 1.5).abs() < 1e-12);
        assert!((throughput_naive(&mv) - 1.5).abs() < 1e-12);
        assert!((lp_throughput(&mv) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_experiment_has_zero_throughput() {
        let mv = MassVector::new();
        assert_eq!(throughput_fast(&mv), 0.0);
        assert_eq!(throughput_naive(&mv), 0.0);
        assert_eq!(lp_throughput(&mv), 0.0);
    }

    #[test]
    fn single_uop_single_port() {
        let mut mv = MassVector::new();
        mv.add(ps(&[3]), 4.0);
        assert_eq!(throughput_fast(&mv), 4.0);
        assert_eq!(throughput_naive(&mv), 4.0);
        assert!((lp_throughput(&mv) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mass_spreads_over_wide_uop() {
        let mut mv = MassVector::new();
        mv.add(ps(&[0, 1, 2, 3]), 4.0);
        assert_eq!(throughput_fast(&mv), 1.0);
    }

    #[test]
    fn disjoint_uops_do_not_interfere() {
        let mut mv = MassVector::new();
        mv.add(ps(&[0]), 2.0);
        mv.add(ps(&[1]), 3.0);
        assert_eq!(throughput_fast(&mv), 3.0);
    }

    #[test]
    fn partial_overlap_bottleneck() {
        // u1 on {0}, u2 on {0,1}: Q={0,1} gives (2+2)/2 = 2; Q={0} gives 2.
        let mut mv = MassVector::new();
        mv.add(ps(&[0]), 2.0);
        mv.add(ps(&[0, 1]), 2.0);
        assert_eq!(throughput_fast(&mv), 2.0);
        // Make the narrow µop the constraint: Q={0} -> 3.
        let mut mv2 = MassVector::new();
        mv2.add(ps(&[0]), 3.0);
        mv2.add(ps(&[0, 1]), 1.0);
        assert_eq!(throughput_fast(&mv2), 3.0);
    }

    #[test]
    fn dead_ports_are_ignored() {
        // µops live on high port numbers only; enumeration must compact.
        let mut mv = MassVector::new();
        mv.add(ps(&[40, 63]), 2.0);
        mv.add(ps(&[40]), 1.0);
        assert_eq!(throughput_fast(&mv), 1.5);
        assert_eq!(throughput_naive(&mv), 1.5);
        assert!((lp_throughput(&mv) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn fractional_masses() {
        let mut mv = MassVector::new();
        mv.add(ps(&[0, 1]), 0.5);
        mv.add(ps(&[1]), 0.25);
        assert!((throughput_fast(&mv) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn merging_is_equivalent_to_separate_adds() {
        let mut a = MassVector::new();
        a.add(ps(&[0, 2]), 1.0);
        a.add(ps(&[0, 2]), 2.0);
        let mut b = MassVector::new();
        b.add(ps(&[0, 2]), 3.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.total_mass(), 3.0);
        assert_eq!(a.live_ports(), ps(&[0, 2]));
    }

    #[test]
    #[should_panic(expected = "no feasible schedule")]
    fn positive_mass_on_empty_ports_panics() {
        let mut mv = MassVector::new();
        mv.add(PortSet::EMPTY, 1.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_mass_panics() {
        let mut mv = MassVector::new();
        mv.add(ps(&[0]), -1.0);
    }

    #[test]
    fn from_iterator_collects_and_merges() {
        let mv: MassVector = [(ps(&[0]), 1.0), (ps(&[0]), 2.0), (ps(&[1]), 1.0)]
            .into_iter()
            .collect();
        assert_eq!(mv.len(), 2);
        assert_eq!(mv.total_mass(), 4.0);
    }

    #[test]
    fn all_three_engines_agree_on_stress_cases() {
        // Hand-picked awkward shapes: chains, stars, near-uniform overlap.
        let cases: Vec<MassVector> = vec![
            [(ps(&[0, 1]), 1.0), (ps(&[1, 2]), 1.0), (ps(&[2, 3]), 1.0)]
                .into_iter()
                .collect(),
            [
                (ps(&[0]), 1.0),
                (ps(&[0, 1]), 1.0),
                (ps(&[0, 1, 2]), 1.0),
                (ps(&[0, 1, 2, 3]), 1.0),
            ]
            .into_iter()
            .collect(),
            [(ps(&[0, 3]), 2.5), (ps(&[1, 3]), 0.5), (ps(&[0, 1]), 1.5)]
                .into_iter()
                .collect(),
        ];
        for mv in cases {
            let f = throughput_fast(&mv);
            let n = throughput_naive(&mv);
            let l = lp_throughput(&mv);
            assert!((f - n).abs() < 1e-12, "fast {f} != naive {n} for {mv:?}");
            assert!((f - l).abs() < 1e-7, "fast {f} != lp {l} for {mv:?}");
        }
    }

    #[test]
    fn bottleneck_equals_lp_on_hand_written_mappings() {
        // Fast, deterministic companion to the randomized
        // `tests/bottleneck_equals_lp.rs` suite: the bottleneck algebra
        // must agree with the simplex solver on hand-written mappings
        // exercised across every instruction pair.
        use crate::{Experiment, InstId, ThreeLevelMapping, UopEntry};

        let uop = |count, ports: &[usize]| UopEntry::new(count, ps(ports));

        // (a) The paper's Figure 4 mapping (store splits into two µops).
        let figure4 = ThreeLevelMapping::new(
            3,
            vec![
                vec![uop(2, &[0])],
                vec![uop(1, &[0, 1])],
                vec![uop(1, &[0, 1])],
                vec![uop(1, &[0, 1]), uop(1, &[2])],
            ],
        );
        // (b) A Skylake-flavoured 6-port sketch: ALU / MUL / load / store
        // with asymmetric port overlap and a 3-µop instruction.
        let skl_like = ThreeLevelMapping::new(
            6,
            vec![
                vec![uop(1, &[0, 1, 5])],
                vec![uop(1, &[1])],
                vec![uop(1, &[2, 3])],
                vec![uop(1, &[2, 3]), uop(1, &[4])],
                vec![uop(2, &[0, 5]), uop(1, &[4])],
            ],
        );
        // (c) A heavy-multiplicity mapping where one instruction floods a
        // narrow port and another spreads thin across all four.
        let lopsided = ThreeLevelMapping::new(
            4,
            vec![
                vec![uop(4, &[0])],
                vec![uop(1, &[0, 1, 2, 3])],
                vec![uop(2, &[1, 2]), uop(2, &[2, 3])],
            ],
        );

        for (name, m) in [
            ("figure4", &figure4),
            ("skl_like", &skl_like),
            ("lopsided", &lopsided),
        ] {
            let n = m.num_insts() as u32;
            let mut experiments = Vec::new();
            for i in 0..n {
                experiments.push(Experiment::singleton(InstId(i)));
                for j in (i + 1)..n {
                    experiments.push(Experiment::pair(InstId(i), 2, InstId(j), 1));
                }
            }
            for e in &experiments {
                let masses = m.uop_masses(e);
                let fast = throughput_fast(&masses);
                let lp = lp_throughput(&masses);
                assert!(
                    (fast - lp).abs() < 1e-7,
                    "{name}: bottleneck {fast} != LP {lp} for {e}"
                );
            }
        }
    }
}
