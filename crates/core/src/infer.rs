//! The inference half of the session API: [`InferenceAlgorithm`]
//! unifies every way of producing a port mapping from measurements.
//!
//! PMEvo's evolutionary pipeline (`pmevo-evo`), the LP-regression
//! baseline and the counting/random baselines (`pmevo-baselines`) all
//! implement this trait, so the session facade and the comparison
//! binaries can treat "run inference" as one typed operation:
//! `algorithm.infer(num_insts, num_ports, backend)` returns an
//! [`InferredMapping`] carrying the mapping plus uniform bookkeeping
//! (benchmarking/inference time, measurement counts, congruence stats).

use crate::backend::MeasurementBackend;
use crate::selection::RoundStats;
use crate::ThreeLevelMapping;
use std::time::Duration;

/// A port-mapping inference algorithm, driven entirely through a
/// [`MeasurementBackend`].
///
/// Implementations decide which experiments to measure; the universe is
/// given as dense instruction ids `0..num_insts` over `num_ports`
/// execution ports (the backend must understand the same universe).
///
/// # Example
///
/// A minimal algorithm: measure each instruction alone and map it to
/// ⌈throughput⌉ µops executable on every port (a crude stand-in for the
/// `pmevo-baselines` counting algorithm), driven here through the
/// noise-free [`crate::ModelBackend`] oracle of a known mapping:
///
/// ```
/// use pmevo_core::{
///     Experiment, InferenceAlgorithm, InferredMapping, InstId, MeasurementBackend,
///     ModelBackend, PortSet, ThreeLevelMapping, UopEntry,
/// };
/// use std::time::Duration;
///
/// struct NaiveCounting;
///
/// impl InferenceAlgorithm for NaiveCounting {
///     fn name(&self) -> &str {
///         "naive-counting"
///     }
///     fn infer(
///         &self,
///         num_insts: usize,
///         num_ports: usize,
///         backend: &mut dyn MeasurementBackend,
///     ) -> InferredMapping {
///         let singletons: Vec<Experiment> = (0..num_insts)
///             .map(|i| Experiment::singleton(InstId(i as u32)))
///             .collect();
///         let throughputs = backend.measure_batch_checked(&singletons);
///         let everywhere = PortSet::first_n(num_ports);
///         let decomp = throughputs
///             .iter()
///             .map(|t| vec![UopEntry::new(t.ceil() as u32, everywhere)])
///             .collect();
///         InferredMapping {
///             algorithm: self.name().to_owned(),
///             mapping: ThreeLevelMapping::new(num_ports, decomp),
///             num_experiments: num_insts,
///             measurements_performed: backend.stats().measurements_performed,
///             benchmarking_time: backend.stats().measurement_time,
///             inference_time: Duration::ZERO,
///             congruent_fraction: 0.0,
///             num_classes: num_insts,
///             training_error: None,
///             rounds: Vec::new(),
///             round_mappings: Vec::new(),
///         }
///     }
/// }
///
/// // Hidden truth: one instruction issuing 2 µops on port 0.
/// let truth = ThreeLevelMapping::new(2, vec![vec![UopEntry::new(2, PortSet::from_ports(&[0]))]]);
/// let mut backend = ModelBackend::new(truth);
/// let inferred = NaiveCounting.infer(1, 2, &mut backend);
/// assert_eq!(inferred.mapping.num_uops_of(InstId(0)), 2);
/// assert_eq!(inferred.measurements_performed, 1);
/// ```
pub trait InferenceAlgorithm {
    /// A human-readable algorithm name for reports and logs.
    fn name(&self) -> &str;

    /// Infers a mapping for the instruction universe `0..num_insts` on a
    /// `num_ports`-port machine, measuring through `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `num_insts == 0` or the backend misbehaves (wrong batch
    /// sizes, non-positive measurements).
    fn infer(
        &self,
        num_insts: usize,
        num_ports: usize,
        backend: &mut dyn MeasurementBackend,
    ) -> InferredMapping;

    /// Caps the worker threads the algorithm may use for internal
    /// parallelism (fitness evaluation). The default implementation is a
    /// no-op for algorithms without internal parallelism.
    ///
    /// Results must not depend on the value — parallel inference has to
    /// stay bit-identical to single-threaded inference.
    fn set_worker_threads(&mut self, _threads: usize) {}
}

impl<A: InferenceAlgorithm + ?Sized> InferenceAlgorithm for Box<A> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn infer(
        &self,
        num_insts: usize,
        num_ports: usize,
        backend: &mut dyn MeasurementBackend,
    ) -> InferredMapping {
        (**self).infer(num_insts, num_ports, backend)
    }
    fn set_worker_threads(&mut self, threads: usize) {
        (**self).set_worker_threads(threads)
    }
}

/// The uniform result of one [`InferenceAlgorithm::infer`] run: the
/// mapping plus the bookkeeping of paper Table 2, comparable across
/// algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredMapping {
    /// Name of the algorithm that produced the mapping.
    pub algorithm: String,
    /// The inferred mapping over the full instruction universe.
    pub mapping: ThreeLevelMapping,
    /// Number of distinct experiments in the training set.
    pub num_experiments: usize,
    /// Real measurements performed by the backend during inference
    /// (deduplicated measurements are counted once; see
    /// [`crate::CachingBackend`]).
    pub measurements_performed: u64,
    /// Wall-clock time the backend spent measuring during inference.
    pub benchmarking_time: Duration,
    /// Wall-clock time spent inferring (everything but measurement).
    pub inference_time: Duration,
    /// Fraction of instructions merged into another instruction's
    /// congruence class (0 for algorithms without congruence filtering).
    pub congruent_fraction: f64,
    /// Number of congruence classes the algorithm worked on
    /// (`num_insts` when no filtering happened).
    pub num_classes: usize,
    /// Average relative error `D_avg` of the mapping on the algorithm's
    /// training experiments, when the algorithm evaluates it.
    pub training_error: Option<f64>,
    /// Per-round measurement accounting when the algorithm ran a
    /// round-based experiment-selection loop (see
    /// [`crate::SelectionPolicy`]); a single round for one-shot
    /// algorithms that track it, empty otherwise.
    pub rounds: Vec<RoundStats>,
    /// The best full-universe mapping at the end of each round, parallel
    /// to [`rounds`](Self::rounds) — what accuracy trajectories are
    /// computed from. May be empty for algorithms that do not track it.
    pub round_mappings: Vec<ThreeLevelMapping>,
}

impl InferredMapping {
    /// Number of distinct µops of the inferred mapping (paper Table 2).
    pub fn num_distinct_uops(&self) -> usize {
        self.mapping.num_distinct_uops()
    }
}
