//! Port mappings in the two-level and three-level models (paper §3).

use crate::bottleneck_impl::{throughput_fast, MassVector};
use crate::{Experiment, InstId, PortSet, MAX_PORTS};
use rand::Rng;

/// One edge bundle of the three-level mapping: `count` instances of the
/// µop executable on `ports` (a labeled edge `(i, n, u)` of paper
/// Definition 4, with the instruction implicit in the containing table).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash,
)]
pub struct UopEntry {
    /// Multiplicity `n` of the µop in the instruction's decomposition.
    pub count: u32,
    /// The port set identifying the µop.
    pub ports: PortSet,
}

impl UopEntry {
    /// Creates an entry of `count` µops executable on `ports`.
    pub fn new(count: u32, ports: PortSet) -> Self {
        UopEntry { count, ports }
    }
}

/// A port mapping in the two-level model: each instruction maps directly
/// to the set of ports able to execute it (paper Definition 2).
///
/// # Example
///
/// ```
/// use pmevo_core::{Experiment, InstId, PortSet, TwoLevelMapping};
///
/// // Two instructions: i0 on port 0 only, i1 on ports {0, 1}.
/// let m = TwoLevelMapping::new(2, vec![
///     PortSet::from_ports(&[0]),
///     PortSet::from_ports(&[0, 1]),
/// ]);
/// let e = Experiment::from_counts(&[(InstId(0), 1), (InstId(1), 1)]);
/// assert_eq!(m.throughput(&e), 1.0); // i1 moves to port 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoLevelMapping {
    num_ports: usize,
    ports_of: Vec<PortSet>,
}

impl TwoLevelMapping {
    /// Creates a mapping over `num_ports` ports with the given
    /// per-instruction port sets.
    ///
    /// # Panics
    ///
    /// Panics if `num_ports > MAX_PORTS` or any port set mentions a port
    /// `>= num_ports`.
    pub fn new(num_ports: usize, ports_of: Vec<PortSet>) -> Self {
        assert!(num_ports <= MAX_PORTS, "{num_ports} ports out of range");
        let valid = PortSet::first_n(num_ports);
        for (i, ps) in ports_of.iter().enumerate() {
            assert!(
                ps.is_subset_of(valid),
                "instruction {i} uses ports {ps} outside the {num_ports}-port machine"
            );
        }
        TwoLevelMapping { num_ports, ports_of }
    }

    /// Number of ports of the machine.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Number of instructions covered by the mapping.
    pub fn num_insts(&self) -> usize {
        self.ports_of.len()
    }

    /// The ports able to execute `inst` (paper's `Ports(m, i)`).
    ///
    /// # Panics
    ///
    /// Panics if `inst` is out of range.
    pub fn ports_of(&self, inst: InstId) -> PortSet {
        self.ports_of[inst.index()]
    }

    /// The per-instruction port sets, indexed by instruction id.
    pub fn all_ports(&self) -> &[PortSet] {
        &self.ports_of
    }

    /// The optimal-scheduler throughput `t*_m(e)` of `e` under this
    /// mapping, computed with the bottleneck simulation algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `e` references an instruction outside the mapping.
    pub fn throughput(&self, e: &Experiment) -> f64 {
        let mut masses = MassVector::new();
        for (inst, n) in e.iter() {
            masses.add(self.ports_of(inst), f64::from(n));
        }
        throughput_fast(&masses)
    }
}

/// A port mapping in the three-level model: instructions decompose into
/// µops, which map to ports (paper Definition 4).
///
/// The decomposition table stores, for each instruction, the list of
/// `(count, port set)` bundles. µops are identified by their port set, and
/// the table keeps entries of one instruction sorted by port set with
/// duplicates merged, so structural equality is semantic equality.
///
/// # Example
///
/// The paper's Figure 4 mapping, where `store` decomposes into two
/// different µops:
///
/// ```
/// use pmevo_core::{Experiment, InstId, PortSet, ThreeLevelMapping, UopEntry};
///
/// let u1 = PortSet::from_ports(&[0]);      // U1 -> P1
/// let u2 = PortSet::from_ports(&[0, 1]);   // U2 -> P1, P2
/// let u3 = PortSet::from_ports(&[2]);      // U3 -> P3
/// let m = ThreeLevelMapping::new(3, vec![
///     vec![UopEntry::new(2, u1)],                        // mul = 2×U1
///     vec![UopEntry::new(1, u2)],                        // add = U2
///     vec![UopEntry::new(1, u2)],                        // sub = U2
///     vec![UopEntry::new(1, u2), UopEntry::new(1, u3)],  // store = U2 + U3
/// ]);
/// let e = Experiment::from_counts(&[(InstId(0), 1), (InstId(3), 1)]);
/// assert_eq!(m.throughput(&e), 2.0); // both mul µops pile on P1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreeLevelMapping {
    num_ports: usize,
    decomp: Vec<Vec<UopEntry>>,
}

impl ThreeLevelMapping {
    /// Creates a three-level mapping over `num_ports` ports.
    ///
    /// Each inner vector is the µop decomposition of one instruction.
    /// Entries are normalized (sorted by port set, duplicates merged,
    /// zero counts and empty port sets dropped).
    ///
    /// # Panics
    ///
    /// Panics if `num_ports > MAX_PORTS` or an entry mentions a port
    /// `>= num_ports`.
    pub fn new(num_ports: usize, decomp: Vec<Vec<UopEntry>>) -> Self {
        assert!(num_ports <= MAX_PORTS, "{num_ports} ports out of range");
        let valid = PortSet::first_n(num_ports);
        let decomp = decomp
            .into_iter()
            .map(|entries| Self::normalize_entries(entries, valid))
            .collect();
        ThreeLevelMapping { num_ports, decomp }
    }

    fn normalize_entries(mut entries: Vec<UopEntry>, valid: PortSet) -> Vec<UopEntry> {
        for e in &entries {
            assert!(
                e.ports.is_subset_of(valid),
                "µop ports {} outside the machine's port set {valid}",
                e.ports
            );
        }
        entries.retain(|e| e.count > 0 && !e.ports.is_empty());
        entries.sort_unstable_by_key(|e| e.ports);
        entries.dedup_by(|later, earlier| {
            if later.ports == earlier.ports {
                earlier.count += later.count;
                true
            } else {
                false
            }
        });
        entries
    }

    /// Number of ports of the machine.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Number of instructions covered by the mapping.
    pub fn num_insts(&self) -> usize {
        self.decomp.len()
    }

    /// The µop decomposition of `inst`.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is out of range.
    pub fn decomposition(&self, inst: InstId) -> &[UopEntry] {
        &self.decomp[inst.index()]
    }

    /// All decompositions, indexed by instruction id.
    pub fn decompositions(&self) -> &[Vec<UopEntry>] {
        &self.decomp
    }

    /// Replaces the decomposition of `inst` (re-normalizing it).
    ///
    /// # Panics
    ///
    /// Panics if `inst` is out of range or entries mention invalid ports.
    pub fn set_decomposition(&mut self, inst: InstId, entries: Vec<UopEntry>) {
        let valid = PortSet::first_n(self.num_ports);
        self.decomp[inst.index()] = Self::normalize_entries(entries, valid);
    }

    /// The µop volume `V(m) = Σ n · |u|` (paper §4.4), the compactness
    /// objective of the evolutionary algorithm.
    pub fn volume(&self) -> u64 {
        self.decomp
            .iter()
            .flatten()
            .map(|e| u64::from(e.count) * e.ports.len() as u64)
            .sum()
    }

    /// Number of *distinct* µops (distinct port sets) used anywhere in the
    /// mapping — the "number of µops" column of paper Table 2.
    pub fn num_distinct_uops(&self) -> usize {
        let mut sets: Vec<PortSet> = self.decomp.iter().flatten().map(|e| e.ports).collect();
        sets.sort_unstable();
        sets.dedup();
        sets.len()
    }

    /// Total number of µop instances of one `inst` instance.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is out of range.
    pub fn num_uops_of(&self, inst: InstId) -> u32 {
        self.decomp[inst.index()].iter().map(|e| e.count).sum()
    }

    /// Reduces `e` to the µop multiset of the two-level model: the
    /// experiment `e' = {u ↦ Σ_(i,n,u)∈N e(i)·n}` of paper §3.2.
    ///
    /// # Panics
    ///
    /// Panics if `e` references an instruction outside the mapping.
    pub fn uop_masses(&self, e: &Experiment) -> MassVector {
        let mut masses = MassVector::new();
        for (inst, n) in e.iter() {
            for entry in self.decomposition(inst) {
                masses.add(entry.ports, f64::from(n) * f64::from(entry.count));
            }
        }
        masses
    }

    /// The optimal-scheduler throughput `t*_m(e)` under this mapping,
    /// computed by reduction to the two-level model and the bottleneck
    /// simulation algorithm (paper §3.2 + §4.5).
    ///
    /// # Panics
    ///
    /// Panics if `e` references an instruction outside the mapping.
    pub fn throughput(&self, e: &Experiment) -> f64 {
        throughput_fast(&self.uop_masses(e))
    }

    /// Serializes the mapping as compact JSON (`{"num_ports":…,"decomp":…}`,
    /// port sets as raw masks — the shape a serde derive would emit).
    pub fn to_json(&self) -> String {
        crate::json::write_compact(&self.to_json_value())
    }

    /// Serializes the mapping as 2-space-indented JSON.
    pub fn to_json_pretty(&self) -> String {
        crate::json::write_pretty(&self.to_json_value())
    }

    /// The mapping as a [`crate::json::Value`] tree, for embedding into
    /// larger documents (session reports, artifact bundles).
    pub fn to_json_value(&self) -> crate::json::Value {
        use crate::json::Value;
        let decomp = self
            .decomp
            .iter()
            .map(|entries| {
                Value::Arr(
                    entries
                        .iter()
                        .map(|e| {
                            Value::Obj(vec![
                                ("count".into(), Value::UInt(u64::from(e.count))),
                                ("ports".into(), Value::UInt(e.ports.mask())),
                            ])
                        })
                        .collect(),
                )
            })
            .collect();
        Value::Obj(vec![
            ("num_ports".into(), Value::UInt(self.num_ports as u64)),
            ("decomp".into(), Value::Arr(decomp)),
        ])
    }

    /// Parses a mapping from the JSON produced by [`Self::to_json`] /
    /// [`Self::to_json_pretty`], re-validating and re-normalizing it.
    pub fn from_json(input: &str) -> Result<Self, MappingJsonError> {
        let doc = crate::json::parse(input).map_err(MappingJsonError::Parse)?;
        Self::from_json_value(&doc)
    }

    /// Reads a mapping from an already-parsed [`crate::json::Value`]
    /// tree (the inverse of [`Self::to_json_value`]).
    pub fn from_json_value(doc: &crate::json::Value) -> Result<Self, MappingJsonError> {
        let shape = |what: &str| MappingJsonError::Shape(what.to_owned());
        let num_ports = doc
            .get("num_ports")
            .and_then(|v| v.as_u64())
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| shape("missing integer field `num_ports`"))?;
        if num_ports > MAX_PORTS {
            return Err(shape(&format!("num_ports {num_ports} exceeds {MAX_PORTS}")));
        }
        let valid = PortSet::first_n(num_ports);
        let rows = doc
            .get("decomp")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| shape("missing array field `decomp`"))?;
        let mut decomp = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let entries = row
                .as_arr()
                .ok_or_else(|| shape(&format!("decomp[{i}] is not an array")))?;
            let mut parsed = Vec::with_capacity(entries.len());
            for entry in entries {
                let count = entry
                    .get("count")
                    .and_then(|v| v.as_u64())
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| shape(&format!("decomp[{i}]: bad `count`")))?;
                let mask = entry
                    .get("ports")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| shape(&format!("decomp[{i}]: bad `ports`")))?;
                let ports = PortSet::from_mask(mask);
                if !ports.is_subset_of(valid) {
                    return Err(shape(&format!(
                        "decomp[{i}]: ports {ports} outside the {num_ports}-port machine"
                    )));
                }
                parsed.push(UopEntry::new(count, ports));
            }
            decomp.push(parsed);
        }
        Ok(ThreeLevelMapping::new(num_ports, decomp))
    }

    /// Samples a random mapping as in the paper's population
    /// initialization (§4.4): for each instruction, 1 to `|P|` distinct
    /// random µops, each with multiplicity in `[1, ⌈t*(i) · |u|⌉]` where
    /// `t*(i)` is the measured individual throughput of the instruction.
    ///
    /// # Panics
    ///
    /// Panics if `indiv_throughput.len()` disagrees with `num_insts`, if
    /// `num_ports` is 0 or `> MAX_PORTS`.
    pub fn sample_random<R: Rng + ?Sized>(
        rng: &mut R,
        num_insts: usize,
        num_ports: usize,
        indiv_throughput: &[f64],
    ) -> Self {
        assert!(num_ports > 0 && num_ports <= MAX_PORTS);
        assert_eq!(indiv_throughput.len(), num_insts);
        let full = PortSet::first_n(num_ports).mask();
        let decomp = (0..num_insts)
            .map(|i| {
                let num_uops = rng.gen_range(1..=num_ports);
                let mut entries = Vec::with_capacity(num_uops);
                for _ in 0..num_uops {
                    // Random non-empty subset of the machine's ports.
                    let ports = loop {
                        let mask = rng.gen::<u64>() & full;
                        if mask != 0 {
                            break PortSet::from_mask(mask);
                        }
                    };
                    let width = ports.len() as f64;
                    let hi = (indiv_throughput[i] * width).ceil().max(1.0) as u32;
                    entries.push(UopEntry::new(rng.gen_range(1..=hi), ports));
                }
                entries
            })
            .collect();
        ThreeLevelMapping::new(num_ports, decomp)
    }
}

/// Failure to read a [`ThreeLevelMapping`] from JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingJsonError {
    /// The input was not valid JSON.
    Parse(crate::json::ParseError),
    /// The JSON was valid but not a mapping of the expected shape.
    Shape(String),
}

impl std::fmt::Display for MappingJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingJsonError::Parse(e) => write!(f, "{e}"),
            MappingJsonError::Shape(msg) => write!(f, "invalid mapping JSON: {msg}"),
        }
    }
}

impl std::error::Error for MappingJsonError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn figure4_mapping() -> ThreeLevelMapping {
        let u1 = PortSet::from_ports(&[0]);
        let u2 = PortSet::from_ports(&[0, 1]);
        let u3 = PortSet::from_ports(&[2]);
        ThreeLevelMapping::new(
            3,
            vec![
                vec![UopEntry::new(2, u1)],
                vec![UopEntry::new(1, u2)],
                vec![UopEntry::new(1, u2)],
                vec![UopEntry::new(1, u2), UopEntry::new(1, u3)],
            ],
        )
    }

    #[test]
    fn two_level_example1_throughput() {
        // Figure 2 / Example 1 of the paper.
        let m = TwoLevelMapping::new(
            3,
            vec![
                PortSet::from_ports(&[0]),
                PortSet::from_ports(&[0, 1]),
                PortSet::from_ports(&[0, 1]),
                PortSet::from_ports(&[2]),
            ],
        );
        let e = Experiment::from_counts(&[(InstId(1), 2), (InstId(0), 1), (InstId(3), 1)]);
        assert!((m.throughput(&e) - 1.5).abs() < 1e-12);
        assert_eq!(m.num_ports(), 3);
        assert_eq!(m.num_insts(), 4);
        assert_eq!(m.ports_of(InstId(0)), PortSet::from_ports(&[0]));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn two_level_rejects_out_of_range_ports() {
        TwoLevelMapping::new(2, vec![PortSet::from_ports(&[5])]);
    }

    #[test]
    fn three_level_volume_and_uops() {
        let m = figure4_mapping();
        // V = 2*1 (mul) + 1*2 (add) + 1*2 (sub) + 1*2 + 1*1 (store) = 9
        assert_eq!(m.volume(), 9);
        assert_eq!(m.num_distinct_uops(), 3);
        assert_eq!(m.num_uops_of(InstId(0)), 2);
        assert_eq!(m.num_uops_of(InstId(3)), 2);
    }

    #[test]
    fn three_level_throughputs_match_paper_intuition() {
        let m = figure4_mapping();
        // A single mul has 2 µops on one port: throughput 2.
        assert_eq!(m.throughput(&Experiment::singleton(InstId(0))), 2.0);
        // add+sub share two ports: 1 cycle.
        assert_eq!(
            m.throughput(&Experiment::pair(InstId(1), 1, InstId(2), 1)),
            1.0
        );
        // store alone: its two µops go to different ports.
        assert_eq!(m.throughput(&Experiment::singleton(InstId(3))), 1.0);
    }

    #[test]
    fn normalization_merges_duplicate_uops() {
        let u = PortSet::from_ports(&[0, 1]);
        let m = ThreeLevelMapping::new(
            2,
            vec![vec![
                UopEntry::new(1, u),
                UopEntry::new(2, u),
                UopEntry::new(0, PortSet::from_ports(&[0])),
                UopEntry::new(3, PortSet::EMPTY),
            ]],
        );
        assert_eq!(m.decomposition(InstId(0)), &[UopEntry::new(3, u)]);
    }

    #[test]
    fn set_decomposition_renormalizes() {
        let mut m = figure4_mapping();
        let u = PortSet::from_ports(&[1]);
        m.set_decomposition(InstId(0), vec![UopEntry::new(1, u), UopEntry::new(1, u)]);
        assert_eq!(m.decomposition(InstId(0)), &[UopEntry::new(2, u)]);
    }

    #[test]
    fn uop_mass_reduction_matches_section_3_2() {
        let m = figure4_mapping();
        let e = Experiment::from_counts(&[(InstId(0), 2), (InstId(3), 1)]);
        let masses = m.uop_masses(&e);
        // 2 muls contribute 4×U1; the store contributes 1×U2, 1×U3.
        let items: Vec<(PortSet, f64)> = masses.iter().collect();
        assert!(items.contains(&(PortSet::from_ports(&[0]), 4.0)));
        assert!(items.contains(&(PortSet::from_ports(&[0, 1]), 1.0)));
        assert!(items.contains(&(PortSet::from_ports(&[2]), 1.0)));
    }

    #[test]
    fn sample_random_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let tps = vec![1.0, 2.5, 0.5];
        let m = ThreeLevelMapping::sample_random(&mut rng, 3, 4, &tps);
        assert_eq!(m.num_insts(), 3);
        assert_eq!(m.num_ports(), 4);
        for i in 0..3 {
            let entries = m.decomposition(InstId(i as u32));
            assert!(!entries.is_empty());
            for e in entries {
                assert!(e.count >= 1);
                let hi = (tps[i] * e.ports.len() as f64).ceil().max(1.0) as u32;
                assert!(e.count <= hi, "count {} > bound {hi}", e.count);
                assert!(!e.ports.is_empty());
                assert!(e.ports.is_subset_of(PortSet::first_n(4)));
            }
        }
    }

    #[test]
    fn json_roundtrip() {
        let m = figure4_mapping();
        for json in [m.to_json(), m.to_json_pretty()] {
            let back = ThreeLevelMapping::from_json(&json).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn json_rejects_garbage_and_bad_shapes() {
        assert!(matches!(
            ThreeLevelMapping::from_json("not json"),
            Err(MappingJsonError::Parse(_))
        ));
        assert!(matches!(
            ThreeLevelMapping::from_json("{\"decomp\":[]}"),
            Err(MappingJsonError::Shape(_))
        ));
        // Ports outside the declared machine must not pass validation.
        assert!(matches!(
            ThreeLevelMapping::from_json(
                "{\"num_ports\":2,\"decomp\":[[{\"count\":1,\"ports\":8}]]}"
            ),
            Err(MappingJsonError::Shape(_))
        ));
    }
}
