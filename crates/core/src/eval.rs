//! The compile-then-evaluate half of the fitness engine (paper §4.4–4.5).
//!
//! PMEvo's wall-clock budget is dominated by the inner loop
//! `candidate mapping × experiment → t*_m(e)`. The ad-hoc path
//! ([`ThreeLevelMapping::throughput`]) rebuilds a [`MassVector`] and
//! allocates a fresh `2^|P|` zeta-transform buffer for every single
//! evaluation. This module separates *compilation* from *execution* so
//! that all of that state is built once and reused:
//!
//! * [`CompiledExperiments`] interns the instruction ids of a measured
//!   experiment set into dense indices and stores the per-experiment
//!   `(instruction, count)` rows in flat arrays — plus the inverse index
//!   (instruction → experiments containing it) that enables delta
//!   re-evaluation after a single-instruction mutation.
//! * [`ThroughputSolver`] owns the mass-aggregation scratch and the
//!   zeta-transform buffer, so `t*_m(e)` becomes allocation-free once the
//!   buffers have grown to their steady-state sizes.
//!
//! Both halves return **bit-identical** results to the naive reference
//! path (`uop_masses` + `throughput_fast`): masses are accumulated in the
//! same order with the same arithmetic, and the enumeration is literally
//! the same function ([`kernel_from_compacted`]). The equivalence is
//! enforced by unit tests here and a property test in `pmevo-evo`.

use crate::bottleneck_impl::{
    choose_strategy, kernel_from_compacted, kernel_with_strategy, masses_kernel,
    zeta_and_max_lanes, MassVector, Strategy, LANES, MAX_ENUMERABLE_PORTS, MAX_LANE_PORTS,
};
use crate::{Experiment, InstId, MeasuredExperiment, PortSet, ThreeLevelMapping, MAX_PORTS};

/// A measured experiment set compiled into dense, flat index form.
///
/// Instruction ids are interned in first-occurrence order; every
/// experiment becomes a row of `(dense instruction, count)` terms in two
/// parallel flat arrays, with the measured throughput alongside. The
/// inverse index maps each dense instruction to the (ascending) list of
/// experiments containing it, which is what makes single-instruction
/// delta re-evaluation possible: a mutation of instruction `i` can only
/// change the predictions of `experiments_containing(i)`.
///
/// # Example
///
/// ```
/// use pmevo_core::{CompiledExperiments, Experiment, InstId, MeasuredExperiment};
///
/// let data = vec![
///     MeasuredExperiment::new(Experiment::singleton(InstId(3)), 1.0),
///     MeasuredExperiment::new(Experiment::pair(InstId(3), 2, InstId(5), 1), 2.0),
/// ];
/// let compiled = CompiledExperiments::compile(&data);
/// assert_eq!(compiled.num_experiments(), 2);
/// assert_eq!(compiled.num_insts(), 2); // ids 3 and 5, interned densely
/// assert_eq!(compiled.experiments_containing(InstId(5)), &[1]);
/// assert_eq!(compiled.experiments_containing(InstId(3)), &[0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledExperiments {
    /// Dense index → original instruction id.
    inst_ids: Vec<InstId>,
    /// Original `InstId::index()` → dense index (`u32::MAX` if absent).
    dense_of: Vec<u32>,
    /// Row boundaries: experiment `e` owns terms
    /// `row_offsets[e]..row_offsets[e + 1]`.
    row_offsets: Vec<u32>,
    /// Dense instruction index per term.
    row_insts: Vec<u32>,
    /// Instruction multiplicity per term, pre-widened to `f64`.
    row_counts: Vec<f64>,
    /// Measured throughput per experiment.
    measured: Vec<f64>,
    /// Inverse-index boundaries: dense instruction `d` appears in
    /// experiments `inst_exps[inst_offsets[d]..inst_offsets[d + 1]]`.
    inst_offsets: Vec<u32>,
    /// Experiment indices per dense instruction, ascending.
    inst_exps: Vec<u32>,
}

impl CompiledExperiments {
    /// Compiles a measured experiment set into dense flat form.
    ///
    /// # Panics
    ///
    /// Panics if a measured throughput is not positive and finite (such a
    /// measurement would make the relative error undefined).
    pub fn compile(experiments: &[MeasuredExperiment]) -> Self {
        let mut inst_ids: Vec<InstId> = Vec::new();
        let mut dense_of: Vec<u32> = Vec::new();
        let mut row_offsets: Vec<u32> = Vec::with_capacity(experiments.len() + 1);
        let mut row_insts: Vec<u32> = Vec::new();
        let mut row_counts: Vec<f64> = Vec::new();
        let mut measured: Vec<f64> = Vec::with_capacity(experiments.len());
        row_offsets.push(0);
        for me in experiments {
            assert!(
                me.throughput.is_finite() && me.throughput > 0.0,
                "non-positive measured throughput {} for {}",
                me.throughput,
                me.experiment
            );
            for (inst, n) in me.experiment.iter() {
                let slot = inst.index();
                if slot >= dense_of.len() {
                    dense_of.resize(slot + 1, u32::MAX);
                }
                let dense = if dense_of[slot] == u32::MAX {
                    let d = inst_ids.len() as u32;
                    dense_of[slot] = d;
                    inst_ids.push(inst);
                    d
                } else {
                    dense_of[slot]
                };
                row_insts.push(dense);
                row_counts.push(f64::from(n));
            }
            row_offsets.push(row_insts.len() as u32);
            measured.push(me.throughput);
        }

        // Inverse index by counting sort, which leaves each instruction's
        // experiment list in ascending order.
        let num_insts = inst_ids.len();
        let mut inst_offsets = vec![0u32; num_insts + 1];
        for &d in &row_insts {
            inst_offsets[d as usize + 1] += 1;
        }
        for i in 0..num_insts {
            inst_offsets[i + 1] += inst_offsets[i];
        }
        let mut cursor = inst_offsets.clone();
        let mut inst_exps = vec![0u32; row_insts.len()];
        for e in 0..measured.len() {
            let (lo, hi) = (row_offsets[e] as usize, row_offsets[e + 1] as usize);
            for &d in &row_insts[lo..hi] {
                let c = &mut cursor[d as usize];
                inst_exps[*c as usize] = e as u32;
                *c += 1;
            }
        }

        CompiledExperiments {
            inst_ids,
            dense_of,
            row_offsets,
            row_insts,
            row_counts,
            measured,
            inst_offsets,
            inst_exps,
        }
    }

    /// Number of compiled experiments.
    pub fn num_experiments(&self) -> usize {
        self.measured.len()
    }

    /// Number of *distinct* instructions appearing in any experiment.
    pub fn num_insts(&self) -> usize {
        self.inst_ids.len()
    }

    /// The interned instruction ids, indexed by dense index.
    pub fn inst_ids(&self) -> &[InstId] {
        &self.inst_ids
    }

    /// The dense index of `inst`, if it appears in any experiment.
    pub fn dense_of(&self, inst: InstId) -> Option<usize> {
        match self.dense_of.get(inst.index()) {
            Some(&d) if d != u32::MAX => Some(d as usize),
            _ => None,
        }
    }

    /// The measured throughput of experiment `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn measured(&self, e: usize) -> f64 {
        self.measured[e]
    }

    /// All measured throughputs, indexed by experiment.
    pub fn measured_all(&self) -> &[f64] {
        &self.measured
    }

    /// The `(instruction, count)` terms of experiment `e`, in the
    /// (ascending-id) order of the source [`Experiment`].
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn row(&self, e: usize) -> impl Iterator<Item = (InstId, f64)> + '_ {
        let (lo, hi) = self.row_bounds(e);
        self.row_insts[lo..hi]
            .iter()
            .zip(&self.row_counts[lo..hi])
            .map(|(&d, &n)| (self.inst_ids[d as usize], n))
    }

    /// The experiments containing `inst`, ascending. Empty when `inst`
    /// appears in no experiment (then a mutation of `inst` cannot change
    /// any prediction).
    pub fn experiments_containing(&self, inst: InstId) -> &[u32] {
        match self.dense_of(inst) {
            Some(d) => {
                let (lo, hi) = (
                    self.inst_offsets[d] as usize,
                    self.inst_offsets[d + 1] as usize,
                );
                &self.inst_exps[lo..hi]
            }
            None => &[],
        }
    }

    fn row_bounds(&self, e: usize) -> (usize, usize) {
        (
            self.row_offsets[e] as usize,
            self.row_offsets[e + 1] as usize,
        )
    }
}

/// Reusable execution state of the bottleneck algorithm: after warm-up,
/// every throughput computation and every fitness evaluation through this
/// solver is free of heap allocations.
///
/// The solver owns four kinds of scratch:
///
/// * the kernel buffers (zeta-transform window and union table, grown to
///   the largest sizes seen),
/// * the compacted `(mask, mass)` aggregation table,
/// * a [`MassVector`] for the ad-hoc [`mapping_throughput`] path,
/// * the *loaded mapping*: the candidate's µop decompositions flattened
///   into dense arrays, indexed by [`CompiledExperiments`] dense
///   instruction indices (see [`load_mapping`]).
///
/// Mass aggregation in the compiled path does not build a
/// [`MassVector`] of port sets — masses are compacted to dense masks on
/// the fly and merged in the reused aggregation table, which is exactly
/// equivalent (compaction is injective and monotone on subsets of the
/// live ports, so per-µop addition order is preserved).
///
/// One solver per thread: the evolutionary engine gives each of its
/// workers its own solver and reuses them across all generations.
///
/// [`mapping_throughput`]: Self::mapping_throughput
/// [`load_mapping`]: Self::load_mapping
///
/// # Example
///
/// ```
/// use pmevo_core::bottleneck::{throughput_fast, MassVector};
/// use pmevo_core::{PortSet, ThroughputSolver};
///
/// let mut mv = MassVector::new();
/// mv.add(PortSet::from_ports(&[0, 1]), 2.0);
/// mv.add(PortSet::from_ports(&[0]), 1.0);
/// let mut solver = ThroughputSolver::new();
/// assert_eq!(solver.throughput(&mv), throughput_fast(&mv));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThroughputSolver {
    /// Zeta-transform buffer; only `sum[..1 << k]` is used per call.
    sum: Vec<f64>,
    /// Union table of the union-closure strategy; `unions[..1 << d]`.
    unions: Vec<u32>,
    /// Compacted `(mask, mass)` aggregation table, ascending by mask.
    entries: Vec<(u32, f64)>,
    /// Mass aggregation scratch for the ad-hoc (non-compiled) path.
    masses: MassVector,
    /// Loaded mapping: µop bundle boundaries per dense instruction.
    dec_offsets: Vec<u32>,
    /// Loaded mapping: port set per µop bundle.
    dec_ports: Vec<PortSet>,
    /// Loaded mapping: bundle multiplicity, pre-widened to `f64`.
    dec_counts: Vec<f64>,
    /// Loaded mapping: union of port sets per dense instruction.
    dec_unions: Vec<PortSet>,
    /// Tagged `(mask‖sequence, contribution)` pairs of the sort-merge
    /// aggregation path (see [`aggregate_row`](Self::aggregate_row)).
    agg_raw: Vec<(u64, f64)>,
    /// Batch arena: the compacted entry lists of every slot in the
    /// current [`predict_batch`](Self::predict_batch), concatenated.
    batch_entries: Vec<(u32, f64)>,
    /// Batch arena boundaries: slot `s` owns
    /// `batch_entries[batch_offsets[s]..batch_offsets[s + 1]]`.
    batch_offsets: Vec<u32>,
    /// Live-port count per batch slot.
    batch_k: Vec<u8>,
    /// Scalar strategy chosen per batch slot (pure in `(entries, k)`).
    batch_strategy: Vec<Strategy>,
    /// Slots routed to the lane-parallel zeta kernel this batch.
    batch_zeta: Vec<u32>,
    /// Index scratch of [`predict_all`](Self::predict_all).
    batch_indices: Vec<u32>,
    /// Prediction scratch of [`average_error`](Self::average_error).
    batch_out: Vec<f64>,
    /// Structure-of-arrays zeta plane: `lane_sum[q][l]` is subset `q`
    /// of the `l`-th experiment solving in lockstep.
    lane_sum: Vec<[f64; LANES]>,
}

/// Above this many µop contributions per experiment, [`ThroughputSolver`]
/// aggregates by push-then-sort-then-merge instead of binary-search
/// insertion — `Vec::insert` shifts the tail on every distinct mask,
/// which is quadratic for mask-diverse sequences.
const AGG_SORT_THRESHOLD: usize = 16;

impl ThroughputSolver {
    /// Creates a solver with empty scratch buffers.
    pub fn new() -> Self {
        ThroughputSolver::default()
    }

    /// Computes `t*_m(e)` of a prepared mass vector; bit-identical to
    /// [`throughput_fast`](crate::bottleneck::throughput_fast) but reuses
    /// the solver's scratch buffers.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_ENUMERABLE_PORTS`] ports are live.
    pub fn throughput(&mut self, masses: &MassVector) -> f64 {
        masses_kernel(masses, &mut self.entries, &mut self.sum, &mut self.unions)
    }

    /// Computes `t*_m(e)` of `e` under `mapping` — the reusable-state
    /// equivalent of [`ThreeLevelMapping::throughput`].
    ///
    /// # Panics
    ///
    /// Panics if `e` references an instruction outside the mapping or
    /// more than [`MAX_ENUMERABLE_PORTS`] ports are live.
    pub fn mapping_throughput(&mut self, mapping: &ThreeLevelMapping, e: &Experiment) -> f64 {
        self.masses.clear();
        for (inst, n) in e.iter() {
            for entry in mapping.decomposition(inst) {
                self.masses
                    .add(entry.ports, f64::from(n) * f64::from(entry.count));
            }
        }
        masses_kernel(&self.masses, &mut self.entries, &mut self.sum, &mut self.unions)
    }

    /// Flattens `mapping`'s µop decompositions into the solver's dense
    /// tables, keyed by `compiled`'s dense instruction indices.
    ///
    /// Subsequent [`predict`](Self::predict) /
    /// [`relative_error`](Self::relative_error) calls evaluate against the
    /// loaded mapping; loading again replaces it. The flattening is
    /// amortized over the experiments evaluated per candidate and reuses
    /// the table allocations across candidates.
    ///
    /// # Panics
    ///
    /// Panics if an experiment instruction is outside the mapping.
    pub fn load_mapping(&mut self, compiled: &CompiledExperiments, mapping: &ThreeLevelMapping) {
        self.dec_offsets.clear();
        self.dec_ports.clear();
        self.dec_counts.clear();
        self.dec_unions.clear();
        self.dec_offsets.push(0);
        for &id in compiled.inst_ids() {
            let mut union = PortSet::EMPTY;
            for entry in mapping.decomposition(id) {
                self.dec_ports.push(entry.ports);
                self.dec_counts.push(f64::from(entry.count));
                union = union.union(entry.ports);
            }
            self.dec_offsets.push(self.dec_ports.len() as u32);
            self.dec_unions.push(union);
        }
    }

    /// Re-synchronizes only `changed`'s slice of the loaded-mapping
    /// tables with `mapping`, assuming every *other* instruction's slice
    /// is already in sync — the `O(|decomposition|)` companion of
    /// [`load_mapping`](Self::load_mapping) for single-instruction
    /// mutations (the hill climber's move).
    ///
    /// Falls back to a full reload when the bundle count changed (the
    /// flat tables cannot absorb a length change in place) and is a no-op
    /// for instructions absent from the experiment set (their slices are
    /// never read).
    ///
    /// # Panics
    ///
    /// Panics if no mapping has been loaded for `compiled`.
    pub fn patch_instruction(
        &mut self,
        compiled: &CompiledExperiments,
        mapping: &ThreeLevelMapping,
        changed: InstId,
    ) {
        assert_eq!(
            self.dec_unions.len(),
            compiled.num_insts(),
            "load_mapping must precede patch_instruction"
        );
        let Some(d) = compiled.dense_of(changed) else {
            return;
        };
        let decomp = mapping.decomposition(changed);
        let (lo, hi) = (self.dec_offsets[d] as usize, self.dec_offsets[d + 1] as usize);
        if hi - lo != decomp.len() {
            self.load_mapping(compiled, mapping);
            return;
        }
        let mut union = PortSet::EMPTY;
        for (slot, entry) in decomp.iter().enumerate() {
            self.dec_ports[lo + slot] = entry.ports;
            self.dec_counts[lo + slot] = f64::from(entry.count);
            union = union.union(entry.ports);
        }
        self.dec_unions[d] = union;
    }

    /// Predicts the throughput of compiled experiment `e` under the
    /// mapping loaded by [`load_mapping`](Self::load_mapping).
    ///
    /// Bit-identical to
    /// `mapping.throughput(&experiments[e].experiment)`, without any heap
    /// allocation after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or more than
    /// [`MAX_ENUMERABLE_PORTS`] ports are live. Calling this without a
    /// loaded mapping for `compiled` is a logic error (debug-asserted).
    pub fn predict(&mut self, compiled: &CompiledExperiments, e: usize) -> f64 {
        let k = self.aggregate_row(compiled, e);
        if k == 0 {
            return 0.0;
        }
        kernel_from_compacted(&self.entries, k, &mut self.sum, &mut self.unions)
    }

    /// Aggregates experiment `e`'s µop masses into `self.entries`
    /// (compacted, distinct, ascending) and returns the live-port count
    /// `k` — `0` means an all-dead experiment with `entries` left empty.
    ///
    /// Two merge paths produce the identical entry list:
    ///
    /// * **Binary-search insertion** for small contribution counts: keeps
    ///   `entries` sorted, adds repeats in encounter order.
    /// * **Push-sort-merge** above [`AGG_SORT_THRESHOLD`]: every
    ///   contribution is tagged with its encounter sequence number and
    ///   pushed, then sorted unstably by the composite key
    ///   `mask · 2³² + seq` — all keys distinct, so the order is total
    ///   and deterministic: ascending mask, encounter order within a
    ///   mask. The adjacent-merge then performs the same additions in
    ///   the same order as the insertion path, without its `O(d²)`
    ///   tail-shifting.
    fn aggregate_row(&mut self, compiled: &CompiledExperiments, e: usize) -> usize {
        debug_assert_eq!(
            self.dec_unions.len(),
            compiled.num_insts(),
            "load_mapping must precede predict"
        );
        self.entries.clear();
        let (lo, hi) = compiled.row_bounds(e);
        // Pass 1: the live ports of this experiment under the mapping,
        // and the total µop contribution count (for the path choice).
        let mut live = PortSet::EMPTY;
        let mut contributions = 0usize;
        for t in lo..hi {
            let d = compiled.row_insts[t] as usize;
            live = live.union(self.dec_unions[d]);
            contributions +=
                (self.dec_offsets[d + 1] - self.dec_offsets[d]) as usize;
        }
        let k = live.len();
        if k == 0 {
            return 0;
        }
        assert!(
            k <= MAX_ENUMERABLE_PORTS,
            "{k} live ports exceed the subset-enumeration limit ({MAX_ENUMERABLE_PORTS})"
        );
        // When the live ports are exactly {0, …, k−1} (the common case on
        // a fully used machine), compaction is the identity and the
        // per-bit translation can be skipped. Same masks either way.
        let identity = live == PortSet::first_n(k);
        let mut position = [0u8; MAX_PORTS];
        if !identity {
            for (dense, p) in live.iter().enumerate() {
                position[p] = dense as u8;
            }
        }
        // Pass 2: aggregate masses per compacted mask. Compaction is
        // injective and monotone on subsets of the live ports, so both
        // merge paths combine the same µops in the same order as the
        // reference path's `MassVector` and yield the same ascending
        // entry list.
        let sort_path = contributions > AGG_SORT_THRESHOLD;
        if sort_path {
            self.agg_raw.clear();
        }
        let mut seq = 0u64;
        for t in lo..hi {
            let d = compiled.row_insts[t] as usize;
            let n = compiled.row_counts[t];
            let (dlo, dhi) = (self.dec_offsets[d] as usize, self.dec_offsets[d + 1] as usize);
            for u in dlo..dhi {
                let mask = if identity {
                    self.dec_ports[u].mask() as u32
                } else {
                    let mut mask = 0u32;
                    for p in self.dec_ports[u].iter() {
                        mask |= 1 << position[p];
                    }
                    mask
                };
                let contribution = n * self.dec_counts[u];
                if sort_path {
                    self.agg_raw.push(((u64::from(mask) << 32) | seq, contribution));
                    seq += 1;
                } else {
                    match self.entries.binary_search_by_key(&mask, |&(m, _)| m) {
                        Ok(idx) => self.entries[idx].1 += contribution,
                        Err(idx) => self.entries.insert(idx, (mask, contribution)),
                    }
                }
            }
        }
        if sort_path {
            // In-place pattern-defeating quicksort: no allocation, and
            // deterministic despite instability because the keys are
            // pairwise distinct (each carries a unique sequence number).
            self.agg_raw.sort_unstable_by_key(|&(key, _)| key);
            for &(key, contribution) in &self.agg_raw {
                let mask = (key >> 32) as u32;
                match self.entries.last_mut() {
                    Some(last) if last.0 == mask => last.1 += contribution,
                    _ => self.entries.push((mask, contribution)),
                }
            }
        }
        k
    }

    /// Predicts the throughput of every compiled experiment in `indices`
    /// under the loaded mapping, into `out` (cleared first, parallel to
    /// `indices`).
    ///
    /// Bit-identical to calling [`predict`](Self::predict) per index,
    /// but batched: each experiment's compacted entries are aggregated
    /// into an arena, and every experiment whose cost model picks the
    /// zeta strategy (with `k` within the lane ceiling) is solved
    /// `LANES` (8) at a time through the structure-of-arrays lane kernel —
    /// same additions per lane, same order, same `best_quotient` funnel,
    /// so the lockstep path cannot drift from the scalar one.
    /// Union-closure and scatter selections, plus ragged zeta tails, run
    /// the scalar kernels unchanged. Allocation-free after warm-up.
    ///
    /// # Panics
    ///
    /// As for [`predict`](Self::predict), for any index in the batch.
    pub fn predict_batch(
        &mut self,
        compiled: &CompiledExperiments,
        indices: &[u32],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(indices.len(), 0.0);
        // Phase 1: aggregate every experiment into the batch arena and
        // pin its (k, strategy) — strategy choice stays the pure
        // function of `(entries, k)` that the scalar path uses.
        self.batch_entries.clear();
        self.batch_offsets.clear();
        self.batch_k.clear();
        self.batch_strategy.clear();
        self.batch_offsets.push(0);
        for &e in indices {
            let k = self.aggregate_row(compiled, e as usize);
            self.batch_entries.extend_from_slice(&self.entries);
            self.batch_offsets.push(self.batch_entries.len() as u32);
            self.batch_k.push(k as u8);
            self.batch_strategy.push(choose_strategy(&self.entries, k));
        }
        // Phase 2: solve scalar-strategy slots immediately; collect the
        // zeta slots that can coalesce into lanes.
        self.batch_zeta.clear();
        for slot in 0..indices.len() {
            let k = self.batch_k[slot] as usize;
            if k == 0 {
                continue; // out[slot] is already 0.0
            }
            let strategy = self.batch_strategy[slot];
            if strategy == Strategy::Zeta && k <= MAX_LANE_PORTS {
                self.batch_zeta.push(slot as u32);
                continue;
            }
            let (lo, hi) = (
                self.batch_offsets[slot] as usize,
                self.batch_offsets[slot + 1] as usize,
            );
            out[slot] = kernel_with_strategy(
                strategy,
                &self.batch_entries[lo..hi],
                k,
                &mut self.sum,
                &mut self.unions,
            );
        }
        // Phase 3: bucket the zeta slots by k (stable within a bucket:
        // the composite key carries the slot) and run full LANES-wide
        // chunks through the lockstep kernel, scalar zeta for the tail.
        let mut zeta = std::mem::take(&mut self.batch_zeta);
        zeta.sort_unstable_by_key(|&s| {
            (u64::from(self.batch_k[s as usize]) << 32) | u64::from(s)
        });
        let mut i = 0;
        while i < zeta.len() {
            let k = self.batch_k[zeta[i] as usize] as usize;
            let mut j = i + 1;
            while j < zeta.len() && self.batch_k[zeta[j] as usize] as usize == k {
                j += 1;
            }
            let run = &zeta[i..j];
            let size = 1usize << k;
            let mut c = 0;
            while c + LANES <= run.len() {
                let lanes = &run[c..c + LANES];
                if self.lane_sum.len() < size {
                    self.lane_sum.resize(size, [0.0; LANES]);
                }
                let plane = &mut self.lane_sum[..size];
                plane.fill([0.0; LANES]);
                for (l, &slot) in lanes.iter().enumerate() {
                    let (lo, hi) = (
                        self.batch_offsets[slot as usize] as usize,
                        self.batch_offsets[slot as usize + 1] as usize,
                    );
                    for &(mask, mass) in &self.batch_entries[lo..hi] {
                        plane[mask as usize][l] += mass;
                    }
                }
                let results = zeta_and_max_lanes(plane, k);
                for (l, &slot) in lanes.iter().enumerate() {
                    out[slot as usize] = results[l];
                }
                c += LANES;
            }
            for &slot in &run[c..] {
                let (lo, hi) = (
                    self.batch_offsets[slot as usize] as usize,
                    self.batch_offsets[slot as usize + 1] as usize,
                );
                out[slot as usize] = kernel_with_strategy(
                    Strategy::Zeta,
                    &self.batch_entries[lo..hi],
                    k,
                    &mut self.sum,
                    &mut self.unions,
                );
            }
            i = j;
        }
        self.batch_zeta = zeta;
    }

    /// Predicts every compiled experiment under the loaded mapping, into
    /// `out` (cleared first, indexed by experiment) — the batched
    /// equivalent of looping [`predict`](Self::predict) over
    /// `0..num_experiments()`, bit-identical per slot.
    ///
    /// # Panics
    ///
    /// As for [`predict`](Self::predict).
    pub fn predict_all(&mut self, compiled: &CompiledExperiments, out: &mut Vec<f64>) {
        let mut indices = std::mem::take(&mut self.batch_indices);
        indices.clear();
        indices.extend(0..compiled.num_experiments() as u32);
        self.predict_batch(compiled, &indices, out);
        self.batch_indices = indices;
    }

    /// The relative prediction error `|t*_m(e) − t| / t` of compiled
    /// experiment `e` under the loaded mapping.
    ///
    /// # Panics
    ///
    /// As for [`predict`](Self::predict).
    pub fn relative_error(&mut self, compiled: &CompiledExperiments, e: usize) -> f64 {
        let predicted = self.predict(compiled, e);
        let t = compiled.measured(e);
        (predicted - t).abs() / t
    }

    /// Computes `D_avg(m)` over the compiled set: loads `mapping` and
    /// averages the relative errors in experiment order — bit-identical
    /// to the naive reference (`average_relative_error` in `pmevo-evo`).
    ///
    /// # Panics
    ///
    /// Panics if `compiled` is empty or an experiment references an
    /// instruction outside the mapping.
    pub fn average_error(
        &mut self,
        compiled: &CompiledExperiments,
        mapping: &ThreeLevelMapping,
    ) -> f64 {
        let n = compiled.num_experiments();
        assert!(n > 0, "no experiments to evaluate");
        self.load_mapping(compiled, mapping);
        let mut preds = std::mem::take(&mut self.batch_out);
        self.predict_all(compiled, &mut preds);
        let mut sum = 0.0f64;
        for (e, &p) in preds.iter().enumerate() {
            let t = compiled.measured(e);
            sum += (p - t).abs() / t;
        }
        self.batch_out = preds;
        sum / n as f64
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottleneck_impl::throughput_fast;
    use crate::UopEntry;

    fn ps(ports: &[usize]) -> PortSet {
        PortSet::from_ports(ports)
    }

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, ps(ports))
    }

    fn figure4_mapping() -> ThreeLevelMapping {
        ThreeLevelMapping::new(
            3,
            vec![
                vec![uop(2, &[0])],
                vec![uop(1, &[0, 1])],
                vec![uop(1, &[0, 1])],
                vec![uop(1, &[0, 1]), uop(1, &[2])],
            ],
        )
    }

    fn figure4_experiments() -> Vec<MeasuredExperiment> {
        let m = figure4_mapping();
        let mut exps = Vec::new();
        for i in 0..4u32 {
            exps.push(Experiment::singleton(InstId(i)));
            for j in (i + 1)..4 {
                exps.push(Experiment::pair(InstId(i), 2, InstId(j), 1));
            }
        }
        exps.into_iter()
            .map(|e| {
                let t = m.throughput(&e);
                MeasuredExperiment::new(e, t)
            })
            .collect()
    }

    #[test]
    fn compile_interns_and_indexes_both_ways() {
        let data = vec![
            MeasuredExperiment::new(Experiment::pair(InstId(7), 1, InstId(2), 3), 2.0),
            MeasuredExperiment::new(Experiment::singleton(InstId(7)), 1.0),
            MeasuredExperiment::new(Experiment::singleton(InstId(4)), 1.5),
        ];
        let c = CompiledExperiments::compile(&data);
        assert_eq!(c.num_experiments(), 3);
        assert_eq!(c.num_insts(), 3);
        // Interning is first-occurrence order over sorted experiment rows.
        assert_eq!(c.inst_ids(), &[InstId(2), InstId(7), InstId(4)]);
        assert_eq!(c.dense_of(InstId(7)), Some(1));
        assert_eq!(c.dense_of(InstId(0)), None);
        assert_eq!(c.measured(2), 1.5);
        // Rows reproduce the source experiments.
        let row0: Vec<(InstId, f64)> = c.row(0).collect();
        assert_eq!(row0, vec![(InstId(2), 3.0), (InstId(7), 1.0)]);
        // Inverse index is ascending per instruction.
        assert_eq!(c.experiments_containing(InstId(7)), &[0, 1]);
        assert_eq!(c.experiments_containing(InstId(2)), &[0]);
        assert_eq!(c.experiments_containing(InstId(4)), &[2]);
        assert_eq!(c.experiments_containing(InstId(63)), &[0u32; 0]);
    }

    #[test]
    #[should_panic(expected = "non-positive measured throughput")]
    fn compile_rejects_bad_measurements() {
        CompiledExperiments::compile(&[MeasuredExperiment::new(
            Experiment::singleton(InstId(0)),
            0.0,
        )]);
    }

    #[test]
    fn solver_throughput_matches_throughput_fast_bitwise() {
        let cases: Vec<MassVector> = vec![
            [(ps(&[0, 1]), 2.0), (ps(&[0]), 1.0), (ps(&[2]), 1.0)]
                .into_iter()
                .collect(),
            [(ps(&[40, 63]), 2.0), (ps(&[40]), 1.0)].into_iter().collect(),
            [(ps(&[0, 3]), 2.5), (ps(&[1, 3]), 0.5), (ps(&[0, 1]), 1.5)]
                .into_iter()
                .collect(),
            MassVector::new(),
        ];
        let mut solver = ThroughputSolver::new();
        for mv in &cases {
            // Twice through the same solver: buffer reuse must not change
            // anything.
            assert_eq!(solver.throughput(mv).to_bits(), throughput_fast(mv).to_bits());
            assert_eq!(solver.throughput(mv).to_bits(), throughput_fast(mv).to_bits());
        }
    }

    #[test]
    fn solver_mapping_throughput_matches_ad_hoc_path() {
        let m = figure4_mapping();
        let mut solver = ThroughputSolver::new();
        for me in figure4_experiments() {
            let a = solver.mapping_throughput(&m, &me.experiment);
            let b = m.throughput(&me.experiment);
            assert_eq!(a.to_bits(), b.to_bits(), "mismatch on {}", me.experiment);
        }
    }

    #[test]
    fn compiled_predictions_match_naive_reference_bitwise() {
        let m = figure4_mapping();
        let data = figure4_experiments();
        let compiled = CompiledExperiments::compile(&data);
        let mut solver = ThroughputSolver::new();
        solver.load_mapping(&compiled, &m);
        for (e, me) in data.iter().enumerate() {
            let fast = solver.predict(&compiled, e);
            let naive = m.throughput(&me.experiment);
            assert_eq!(fast.to_bits(), naive.to_bits(), "mismatch on {}", me.experiment);
            assert_eq!(
                solver.relative_error(&compiled, e).to_bits(),
                ((naive - me.throughput).abs() / me.throughput).to_bits()
            );
        }
    }

    #[test]
    fn average_error_is_exact_and_reusable_across_mappings() {
        let data = figure4_experiments();
        let compiled = CompiledExperiments::compile(&data);
        let mut solver = ThroughputSolver::new();

        let reference = |m: &ThreeLevelMapping| -> f64 {
            let sum: f64 = data
                .iter()
                .map(|me| (m.throughput(&me.experiment) - me.throughput).abs() / me.throughput)
                .sum();
            sum / data.len() as f64
        };

        let exact = figure4_mapping();
        assert_eq!(solver.average_error(&compiled, &exact), 0.0);

        // A wrong mapping through the *same* solver (scratch reuse).
        let mut wrong = exact.clone();
        wrong.set_decomposition(InstId(0), vec![uop(4, &[0])]);
        let got = solver.average_error(&compiled, &wrong);
        assert_eq!(got.to_bits(), reference(&wrong).to_bits());
        assert!(got > 0.0);

        // And back to the exact mapping: no stale loaded state.
        assert_eq!(solver.average_error(&compiled, &exact), 0.0);
    }

    #[test]
    fn empty_decomposition_and_unused_instructions_are_handled() {
        // Instruction 1 never appears in the experiments; instruction 0's
        // mapping may legally decompose to nothing after normalization.
        let data = vec![MeasuredExperiment::new(
            Experiment::singleton(InstId(0)),
            2.0,
        )];
        let compiled = CompiledExperiments::compile(&data);
        let m = ThreeLevelMapping::new(2, vec![vec![], vec![uop(1, &[0])]]);
        let mut solver = ThroughputSolver::new();
        // Predicted 0 against measured 2 → relative error 1.
        assert_eq!(solver.average_error(&compiled, &m), 1.0);
        assert_eq!(compiled.experiments_containing(InstId(1)), &[0u32; 0]);
    }
}
