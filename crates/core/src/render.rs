//! Human-readable rendering of port mappings.
//!
//! Inferred port mappings are the user-facing product of PMEvo — the
//! paper stresses that, unlike a neural model, "a compact port mapping is
//! more easily interpreted". This module renders mappings in the
//! uops.info-style `n*pXY` notation (e.g. `1*p0156+1*p23` for a
//! load-ALU instruction on Skylake) and as a per-port usage table.

use crate::{InstId, ThreeLevelMapping, UopEntry};
use std::fmt;
use std::fmt::Write as _;

/// Renders one µop decomposition in `n*pXY` notation.
///
/// # Example
///
/// ```
/// use pmevo_core::{PortSet, UopEntry, render};
///
/// let entries = [
///     UopEntry::new(1, PortSet::from_ports(&[0, 1, 5, 6])),
///     UopEntry::new(2, PortSet::from_ports(&[2, 3])),
/// ];
/// assert_eq!(render::decomposition(&entries), "1*p0156+2*p23");
/// ```
pub fn decomposition(entries: &[UopEntry]) -> String {
    if entries.is_empty() {
        return "-".to_string();
    }
    let mut out = String::new();
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push('+');
        }
        write!(out, "{}*p", e.count).expect("writing to String cannot fail");
        for p in e.ports.iter() {
            if p < 10 {
                write!(out, "{p}").expect("writing to String cannot fail");
            } else {
                write!(out, "[{p}]").expect("writing to String cannot fail");
            }
        }
    }
    out
}

/// A displayable summary of a three-level mapping: one `n*pXY` line per
/// instruction plus a per-port pressure profile.
///
/// Created by [`summary`]; instruction names are supplied by the caller
/// (the core crate knows only ids).
#[derive(Debug, Clone)]
pub struct MappingSummary {
    lines: Vec<(String, String)>,
    port_usage: Vec<f64>,
}

impl MappingSummary {
    /// The `(instruction name, decomposition)` lines.
    pub fn lines(&self) -> &[(String, String)] {
        &self.lines
    }

    /// Expected µop mass per port if every instruction executed once and
    /// each µop spread evenly over its ports — a quick port-pressure
    /// profile of the instruction set.
    pub fn port_usage(&self) -> &[f64] {
        &self.port_usage
    }
}

impl fmt::Display for MappingSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .lines
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(4);
        for (name, decomp) in &self.lines {
            writeln!(f, "{name:width$}  {decomp}")?;
        }
        writeln!(f)?;
        write!(f, "port pressure:")?;
        for (p, mass) in self.port_usage.iter().enumerate() {
            write!(f, "  p{p}={mass:.1}")?;
        }
        Ok(())
    }
}

/// Builds a [`MappingSummary`] for `mapping`, naming instruction `i`
/// with `name(i)`.
pub fn summary(
    mapping: &ThreeLevelMapping,
    mut name: impl FnMut(InstId) -> String,
) -> MappingSummary {
    let mut port_usage = vec![0.0; mapping.num_ports()];
    let mut lines = Vec::with_capacity(mapping.num_insts());
    for i in 0..mapping.num_insts() {
        let id = InstId(i as u32);
        let entries = mapping.decomposition(id);
        lines.push((name(id), decomposition(entries)));
        for e in entries {
            let share = f64::from(e.count) / e.ports.len() as f64;
            for p in e.ports.iter() {
                port_usage[p] += share;
            }
        }
    }
    MappingSummary { lines, port_usage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortSet;

    fn fig4() -> ThreeLevelMapping {
        let u1 = PortSet::from_ports(&[0]);
        let u2 = PortSet::from_ports(&[0, 1]);
        let u3 = PortSet::from_ports(&[2]);
        ThreeLevelMapping::new(
            3,
            vec![
                vec![UopEntry::new(2, u1)],
                vec![UopEntry::new(1, u2)],
                vec![UopEntry::new(1, u2)],
                vec![UopEntry::new(1, u2), UopEntry::new(1, u3)],
            ],
        )
    }

    #[test]
    fn notation_matches_uops_info_style() {
        assert_eq!(
            decomposition(&[UopEntry::new(1, PortSet::from_ports(&[0, 1, 5, 6]))]),
            "1*p0156"
        );
        assert_eq!(
            decomposition(&[
                UopEntry::new(1, PortSet::from_ports(&[4])),
                UopEntry::new(1, PortSet::from_ports(&[2, 3, 7])),
            ]),
            "1*p4+1*p237"
        );
        assert_eq!(decomposition(&[]), "-");
    }

    #[test]
    fn ports_beyond_nine_are_bracketed() {
        assert_eq!(
            decomposition(&[UopEntry::new(1, PortSet::from_ports(&[9, 10]))]),
            "1*p9[10]"
        );
    }

    #[test]
    fn summary_names_and_pressure() {
        let m = fig4();
        let names = ["mul", "add", "sub", "store"];
        let s = summary(&m, |i| names[i.index()].to_string());
        assert_eq!(s.lines().len(), 4);
        assert_eq!(s.lines()[0], ("mul".to_string(), "2*p0".to_string()));
        assert_eq!(
            s.lines()[3],
            ("store".to_string(), "1*p01+1*p2".to_string())
        );
        // Pressure: p0 gets 2 (mul) + 3×0.5 (three U2) = 3.5.
        assert!((s.port_usage()[0] - 3.5).abs() < 1e-12);
        assert!((s.port_usage()[2] - 1.0).abs() < 1e-12);
        let rendered = s.to_string();
        assert!(rendered.contains("2*p0"));
        assert!(rendered.contains("port pressure:"));
    }
}
