//! "Did you mean ...?" candidate suggestion for user-facing parse and
//! resolution errors.
//!
//! Every serving front end that resolves names typed by a human — the
//! sequence grammar's instruction forms, the x86 ingestion layer's
//! mnemonics — answers an unknown name with the nearest known one, so a
//! typo costs one glance instead of a trip to the docs.

/// The nearest candidate to `target` by Levenshtein edit distance, if
/// one is plausibly a typo of it.
///
/// A candidate qualifies when its distance is at most
/// `max(2, target.len() / 3)` — close enough that the suggestion is
/// likelier right than noise. Ties resolve to the earliest candidate in
/// iteration order, so callers with a deterministic candidate order
/// (sorted name tables, `BTreeMap` registries) get deterministic
/// suggestions.
///
/// # Example
///
/// ```
/// use pmevo_core::suggest::nearest;
///
/// let known = ["add", "sub", "imul"];
/// assert_eq!(nearest("add", known.iter().copied()), Some("add"));
/// assert_eq!(nearest("addd", known.iter().copied()), Some("add"));
/// assert_eq!(nearest("zzzzzzzz", known.iter().copied()), None);
/// ```
pub fn nearest<'a>(target: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    let budget = (target.len() / 3).max(2);
    let mut best: Option<(usize, &'a str)> = None;
    for candidate in candidates {
        let cap = best.map_or(budget, |(d, _)| d.saturating_sub(1).min(budget));
        if let Some(d) = bounded_distance(target, candidate, cap) {
            if best.is_none_or(|(bd, _)| d < bd) {
                if d == 0 {
                    return Some(candidate);
                }
                best = Some((d, candidate));
            }
        }
    }
    best.map(|(_, c)| c)
}

/// Levenshtein distance between `a` and `b`, or `None` if it exceeds
/// `cap` (with an early length-difference cutoff so scanning a large
/// name table stays cheap).
fn bounded_distance(a: &str, b: &str, cap: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > cap {
        return None;
    }
    // One rolling row of the standard DP table.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        let mut row_min = row[0];
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
            row_min = row_min.min(next);
        }
        if row_min > cap {
            return None;
        }
    }
    (row[b.len()] <= cap).then_some(row[b.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_wins_immediately() {
        assert_eq!(nearest("mov", ["add", "mov", "movq"].into_iter()), Some("mov"));
    }

    #[test]
    fn close_typos_are_suggested() {
        let names = ["add_r64_r64", "mul_r64_r64", "div_r64_r64"];
        assert_eq!(nearest("add_r64_r6", names.into_iter()), Some("add_r64_r64"));
        assert_eq!(nearest("adD_r64_r64", names.into_iter()), Some("add_r64_r64"));
        assert_eq!(nearest("mul_r64r64", names.into_iter()), Some("mul_r64_r64"));
    }

    #[test]
    fn distant_names_yield_no_suggestion() {
        let names = ["add", "sub"];
        assert_eq!(nearest("completely_else", names.into_iter()), None);
        assert_eq!(nearest("", [].into_iter()), None);
    }

    #[test]
    fn ties_resolve_to_the_first_candidate() {
        // "ad" is distance 1 from both; the first wins deterministically.
        assert_eq!(nearest("ad", ["add", "and"].into_iter()), Some("add"));
        assert_eq!(nearest("ad", ["and", "add"].into_iter()), Some("and"));
    }

    #[test]
    fn distance_budget_scales_with_length() {
        // Short targets get a budget of 2.
        assert_eq!(nearest("xy", ["ab"].into_iter()), Some("ab"));
        assert_eq!(nearest("xyz", ["abc"].into_iter()), None);
        // Long targets get len/3.
        let long = "abcdefghijkl";
        assert_eq!(nearest("abcdefgh_jkl", [long].into_iter()), Some(long));
    }
}
