//! The versioned mapping store behind the serving layer.
//!
//! A serving process holds the inferred port mappings of every machine
//! it answers for — typically one mapping per platform, re-inferred and
//! re-deployed as measurement campaigns improve them. [`MappingStore`]
//! models exactly that: mappings are registered under a *name* (the
//! platform), every registration gets a monotonically increasing
//! *version*, and queries address either an exact
//! [`MappingId`] or the latest version of a name. Nothing is ever
//! mutated in place, so an id handed to a client stays valid (and keeps
//! answering with the same mapping bits) across deployments of newer
//! versions.
//!
//! Each stored mapping carries its instruction-name table **sharded by
//! instruction**: names are distributed over [`NUM_SHARDS`] sorted runs
//! by a deterministic FNV-1a hash, so resolving a mnemonic against a
//! several-hundred-form ISA binary-searches a run of a few dozen entries
//! instead of one big table — the lookup path that every parsed
//! sequence term takes stays within a couple of cache lines.

use pmevo_core::json::{self, Value};
use pmevo_core::{
    parse_sequence, Experiment, InstId, MappingJsonError, SequenceParseError, ThreeLevelMapping,
};
use std::fmt;
use std::sync::Arc;

/// Number of instruction-name shards per stored mapping.
pub const NUM_SHARDS: usize = 16;

/// FNV-1a, the shard hash: stable across runs, platforms and Rust
/// versions (unlike `std`'s `RandomState`), so shard layout — and with
/// it any layout-dependent iteration — is deterministic.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % NUM_SHARDS as u64) as usize
}

/// A handle to one immutable entry of a [`MappingStore`].
///
/// Ids are dense indices in registration order; they never dangle and
/// never change meaning for the lifetime of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MappingId(pub u32);

impl MappingId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MappingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One immutable mapping registered in a [`MappingStore`]: the mapping
/// itself, its name/version identity, and the sharded instruction-name
/// index used to resolve sequence terms.
#[derive(Debug)]
pub struct StoredMapping {
    name: String,
    version: u32,
    mapping: Arc<ThreeLevelMapping>,
    /// Instruction names, indexed by `InstId`.
    inst_names: Vec<String>,
    /// Sharded name → id index: `shards[shard_of(name)]` is sorted by
    /// name for binary search.
    shards: [Vec<(String, InstId)>; NUM_SHARDS],
}

impl StoredMapping {
    fn build(name: String, version: u32, inst_names: Vec<String>, mapping: ThreeLevelMapping) -> Self {
        assert_eq!(
            inst_names.len(),
            mapping.num_insts(),
            "instruction-name table ({} names) does not match the mapping ({} instructions)",
            inst_names.len(),
            mapping.num_insts()
        );
        let mut shards: [Vec<(String, InstId)>; NUM_SHARDS] = Default::default();
        for (i, n) in inst_names.iter().enumerate() {
            shards[shard_of(n)].push((n.clone(), InstId(i as u32)));
        }
        for shard in &mut shards {
            shard.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        }
        StoredMapping { name, version, mapping: Arc::new(mapping), inst_names, shards }
    }

    /// The name the mapping was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The 1-based version among same-name registrations.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The `name@version` label used in serving output.
    pub fn label(&self) -> String {
        format!("{}@{}", self.name, self.version)
    }

    /// The stored mapping (shared, so worker pools can borrow it without
    /// copying the decomposition tables).
    pub fn mapping(&self) -> &Arc<ThreeLevelMapping> {
        &self.mapping
    }

    /// Number of instructions the mapping covers.
    pub fn num_insts(&self) -> usize {
        self.mapping.num_insts()
    }

    /// Number of execution ports of the mapped machine.
    pub fn num_ports(&self) -> usize {
        self.mapping.num_ports()
    }

    /// The instruction names, indexed by [`InstId`].
    pub fn inst_names(&self) -> &[String] {
        &self.inst_names
    }

    /// Resolves an instruction name through the sharded index.
    pub fn resolve(&self, inst_name: &str) -> Option<InstId> {
        let shard = &self.shards[shard_of(inst_name)];
        shard
            .binary_search_by(|(n, _)| n.as_str().cmp(inst_name))
            .ok()
            .map(|idx| shard[idx].1)
    }

    /// Parses one line of the sequence grammar
    /// ([`pmevo_core::parse_sequence`]) against this mapping's
    /// instruction names. An unknown-instruction error carries the
    /// nearest known name as a suggestion, so every serving front end —
    /// the offline pipe and the daemon both parse through here — reports
    /// typos identically.
    ///
    /// # Errors
    ///
    /// See [`SequenceParseError`].
    pub fn parse(&self, line: &str) -> Result<Experiment, SequenceParseError> {
        parse_sequence(line, |name| self.resolve(name)).map_err(|e| match e {
            SequenceParseError::UnknownInstruction { name, suggestion: None } => {
                let suggestion = pmevo_core::suggest::nearest(
                    &name,
                    self.inst_names.iter().map(String::as_str),
                )
                .map(str::to_owned);
                SequenceParseError::UnknownInstruction { name, suggestion }
            }
            other => other,
        })
    }
}

/// The versioned, shard-by-instruction store of inferred mappings a
/// prediction service answers from.
///
/// Entries are stored behind [`Arc`]s, so cloning a store is a handful of
/// reference-count bumps — that is what makes the [`Predictor`]'s hot
/// mapping reload an atomic *snapshot swap*: the new store is an
/// Arc-clone of the old plus one entry, and readers holding the old
/// snapshot keep answering from it until they drop it.
///
/// [`Predictor`]: crate::Predictor
///
/// # Example
///
/// Register two versions of a platform's mapping and resolve sequence
/// terms against the newest one:
///
/// ```
/// use pmevo_core::{PortSet, ThreeLevelMapping, UopEntry};
/// use pmevo_predict::MappingStore;
///
/// let uop = |ports: &[usize]| vec![UopEntry::new(1, PortSet::from_ports(ports))];
/// let names = || vec!["add".to_string(), "mul".to_string()];
///
/// let mut store = MappingStore::new();
/// let v1 = store.insert("SKL", names(), ThreeLevelMapping::new(2, vec![uop(&[0]), uop(&[1])]));
/// let v2 = store.insert("SKL", names(), ThreeLevelMapping::new(2, vec![uop(&[0, 1]), uop(&[1])]));
/// assert_eq!(store.latest("SKL"), Some(v2));
/// assert_ne!(v1, v2);
///
/// let skl = store.get(v2);
/// assert_eq!(skl.label(), "SKL@2");
/// let seq = skl.parse("add; mul x2").unwrap();
/// assert_eq!(seq.total_insts(), 3);
/// // The superseded version stays addressable — ids never dangle.
/// assert_eq!(store.get(v1).label(), "SKL@1");
/// ```
#[derive(Debug, Default, Clone)]
pub struct MappingStore {
    entries: Vec<Arc<StoredMapping>>,
}

impl MappingStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MappingStore::default()
    }

    /// Registers a mapping under `name` with its instruction-name table,
    /// returning the id of the new entry. The entry's version is one
    /// more than the newest same-name entry (starting at 1).
    ///
    /// # Panics
    ///
    /// Panics if `inst_names` does not have exactly one name per mapping
    /// instruction.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        inst_names: Vec<String>,
        mapping: ThreeLevelMapping,
    ) -> MappingId {
        let name = name.into();
        let version = self
            .entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.version)
            .max()
            .unwrap_or(0)
            + 1;
        self.entries.push(Arc::new(StoredMapping::build(name, version, inst_names, mapping)));
        MappingId((self.entries.len() - 1) as u32)
    }

    /// Registers a mapping from its JSON artifact (the format written by
    /// `pmevo-cli infer` and the bench harness cache).
    ///
    /// # Errors
    ///
    /// Returns the artifact's parse failure; see [`MappingJsonError`].
    ///
    /// # Panics
    ///
    /// As for [`insert`](Self::insert).
    pub fn load_artifact(
        &mut self,
        name: impl Into<String>,
        inst_names: Vec<String>,
        artifact_json: &str,
    ) -> Result<MappingId, MappingJsonError> {
        let mapping = ThreeLevelMapping::from_json(artifact_json)?;
        Ok(self.insert(name, inst_names, mapping))
    }

    /// The entry behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this store.
    pub fn get(&self, id: MappingId) -> &StoredMapping {
        &self.entries[id.index()]
    }

    /// The entry behind `id`, shared — for holding a mapping across a
    /// store snapshot swap (in-flight batches drain against it).
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this store.
    pub fn get_arc(&self, id: MappingId) -> Arc<StoredMapping> {
        Arc::clone(&self.entries[id.index()])
    }

    /// The id of the newest entry registered under `name`.
    pub fn latest(&self, name: &str) -> Option<MappingId> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.name == name)
            .max_by_key(|(_, e)| e.version)
            .map(|(i, _)| MappingId(i as u32))
    }

    /// The id of the entry registered under `name` with exactly
    /// `version`.
    pub fn lookup(&self, name: &str, version: u32) -> Option<MappingId> {
        self.entries
            .iter()
            .position(|e| e.name == name && e.version == version)
            .map(|i| MappingId(i as u32))
    }

    /// All entry ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = MappingId> {
        (0..self.entries.len() as u32).map(MappingId)
    }

    /// Number of stored entries (all versions counted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A JSON inventory of the store (labels, shapes — no decomposition
    /// payload), for a serving process's introspection endpoint.
    pub fn inventory_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Value::Obj(vec![
                    ("name".into(), Value::Str(e.name.clone())),
                    ("version".into(), Value::UInt(u64::from(e.version))),
                    ("num_insts".into(), Value::UInt(e.num_insts() as u64)),
                    ("num_ports".into(), Value::UInt(e.num_ports() as u64)),
                ])
            })
            .collect();
        json::write_compact(&Value::Obj(vec![("mappings".into(), Value::Arr(entries))]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{PortSet, UopEntry};

    fn mapping(num_ports: usize, ports: &[&[usize]]) -> ThreeLevelMapping {
        ThreeLevelMapping::new(
            num_ports,
            ports
                .iter()
                .map(|ps| vec![UopEntry::new(1, PortSet::from_ports(ps))])
                .collect(),
        )
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("inst_{i}")).collect()
    }

    #[test]
    fn versions_increase_per_name_and_ids_stay_valid() {
        let mut store = MappingStore::new();
        let a1 = store.insert("A", names(1), mapping(1, &[&[0]]));
        let b1 = store.insert("B", names(1), mapping(2, &[&[1]]));
        let a2 = store.insert("A", names(1), mapping(1, &[&[0]]));
        assert_eq!(store.get(a1).label(), "A@1");
        assert_eq!(store.get(b1).label(), "B@1");
        assert_eq!(store.get(a2).label(), "A@2");
        assert_eq!(store.latest("A"), Some(a2));
        assert_eq!(store.latest("B"), Some(b1));
        assert_eq!(store.latest("C"), None);
        assert_eq!(store.lookup("A", 1), Some(a1));
        assert_eq!(store.lookup("A", 3), None);
        assert_eq!(store.len(), 3);
        assert_eq!(store.ids().count(), 3);
    }

    #[test]
    fn sharded_resolution_finds_every_name_and_only_those() {
        let n = 100;
        let mut store = MappingStore::new();
        let ports: Vec<&[usize]> = (0..n).map(|_| &[0usize][..]).collect();
        let id = store.insert("big", names(n), mapping(1, &ports));
        let stored = store.get(id);
        for i in 0..n {
            assert_eq!(stored.resolve(&format!("inst_{i}")), Some(InstId(i as u32)));
        }
        assert_eq!(stored.resolve("inst_100"), None);
        assert_eq!(stored.resolve(""), None);
        // Every name landed in exactly one shard.
        let total: usize = stored.shards.iter().map(Vec::len).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn parse_resolves_through_the_store_entry() {
        let mut store = MappingStore::new();
        let id = store.insert("P", names(3), mapping(2, &[&[0], &[1], &[0, 1]]));
        let e = store.get(id).parse("inst_2 x2; inst_0").unwrap();
        assert_eq!(e.count_of(InstId(2)), 2);
        assert_eq!(e.count_of(InstId(0)), 1);
        assert!(matches!(
            store.get(id).parse("inst_9"),
            Err(SequenceParseError::UnknownInstruction { .. })
        ));
    }

    #[test]
    fn artifact_roundtrip_loads() {
        let m = mapping(3, &[&[0, 2], &[1]]);
        let mut store = MappingStore::new();
        let id = store.load_artifact("rt", names(2), &m.to_json()).unwrap();
        assert_eq!(*store.get(id).mapping().as_ref(), m);
        assert!(store.load_artifact("rt", names(2), "{not json").is_err());
    }

    #[test]
    #[should_panic(expected = "does not match the mapping")]
    fn name_table_shape_is_enforced() {
        MappingStore::new().insert("bad", names(1), mapping(1, &[&[0], &[0]]));
    }

    #[test]
    fn clones_share_entries_and_diverge_on_insert() {
        let mut a = MappingStore::new();
        let v1 = a.insert("A", names(1), mapping(1, &[&[0]]));
        let snapshot = a.clone();
        let v2 = a.insert("A", names(1), mapping(1, &[&[0]]));
        // The clone is an O(entries) Arc bump: same entry objects ...
        assert!(Arc::ptr_eq(&a.get_arc(v1), &snapshot.get_arc(v1)));
        // ... but inserts after the snapshot do not leak into it.
        assert_eq!(a.len(), 2);
        assert_eq!(snapshot.len(), 1);
        assert_eq!(a.latest("A"), Some(v2));
        assert_eq!(snapshot.latest("A"), Some(v1));
    }

    #[test]
    fn inventory_lists_every_entry() {
        let mut store = MappingStore::new();
        store.insert("A", names(1), mapping(2, &[&[0]]));
        store.insert("A", names(1), mapping(2, &[&[1]]));
        let inv = store.inventory_json();
        let doc = json::parse(&inv).unwrap();
        let arr = doc.get("mappings").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].get("version").and_then(Value::as_u64), Some(2));
    }
}
