//! The versioned, memory-budgeted mapping store behind the serving layer.
//!
//! A serving process holds the inferred port mappings of every machine
//! it answers for — in the fleet-scale regime one mapping per
//! user/platform pair, thousands of `name@version` entries per process.
//! [`MappingStore`] models exactly that: mappings are registered under a
//! *name*, every registration gets a monotonically increasing *version*,
//! and queries address either an exact [`MappingId`] or the latest
//! version of a name (both through a name→versions index, so routing is
//! O(1)/O(log v) no matter how many entries are stored). Nothing is ever
//! mutated in place, so an id handed to a client stays valid (and keeps
//! answering with the same mapping bits) across deployments of newer
//! versions.
//!
//! # Residency and the byte budget
//!
//! A store created with [`MappingStore::with_budget`] keeps its
//! decomposition payloads *resident-or-evicted*: every entry's metadata
//! (name, version, shapes) and its instruction-name table stay resident
//! forever — they are what sequence parsing and routing touch — while
//! the `ThreeLevelMapping` payload of entries registered from an
//! artifact file ([`MappingStore::insert_from_file`]) may be evicted
//! when the estimated resident bytes exceed the budget, least recently
//! used first. An evicted payload lazily reloads from its artifact on
//! the next query. Because artifacts are immutable while registered and
//! both codecs re-normalize deterministically, a reload yields the same
//! bits the entry was registered with — predictions are byte-identical
//! under any budget (the *lazy-reload determinism contract*, enforced by
//! `tests/store_budget.rs`).
//!
//! Name tables are **interned**: registering a new version of a name
//! whose instruction names are unchanged shares the previous version's
//! table (`Arc`), so a thousand versions of one platform pay for one
//! name table — the binary artifact format makes the same move on disk.
//!
//! Each name table is **sharded by instruction**: names are distributed
//! over [`NUM_SHARDS`] sorted runs by a deterministic FNV-1a hash, so
//! resolving a mnemonic against a several-hundred-form ISA
//! binary-searches a run of a few dozen entries instead of one big table.

use crate::lru::LruCache;
use pmevo_core::json::{self, Value};
use pmevo_core::{
    parse_sequence, Experiment, InstId, MappingArtifact, MappingJsonError, SequenceParseError,
    ThreeLevelMapping,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Number of instruction-name shards per stored mapping.
pub const NUM_SHARDS: usize = 16;

/// FNV-1a, the shard hash: stable across runs, platforms and Rust
/// versions (unlike `std`'s `RandomState`), so shard layout — and with
/// it any layout-dependent iteration — is deterministic.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % NUM_SHARDS as u64) as usize
}

/// A handle to one immutable entry of a [`MappingStore`].
///
/// Ids are dense indices in registration order; they never dangle and
/// never change meaning for the lifetime of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MappingId(pub u32);

impl MappingId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MappingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Why a store operation failed — reading, decoding or re-validating a
/// mapping artifact. Every variant names the offending path, so a
/// failure among thousands of fleet artifacts is diagnosable from the
/// message alone. `Clone`, so a lazy-reload failure can be fanned out to
/// every query of a routed batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The artifact file could not be read.
    Io {
        /// Path of the unreadable file.
        path: String,
        /// The I/O failure.
        what: String,
    },
    /// The artifact's bytes do not decode (bad JSON, corrupt binary).
    Decode {
        /// Path of the undecodable file.
        path: String,
        /// The decode failure (with a byte offset for binary artifacts).
        what: String,
    },
    /// The artifact decodes but its shape disagrees with what the entry
    /// was registered with (instruction or port counts changed).
    ShapeMismatch {
        /// Path of the mismatched artifact.
        path: String,
        /// The disagreement.
        what: String,
    },
    /// A binary artifact's embedded name table disagrees with the
    /// resident one — the artifact belongs to a different instruction
    /// universe than the entry it should back.
    NameTableMismatch {
        /// Path of the mismatched artifact.
        path: String,
        /// The first disagreement.
        what: String,
    },
    /// A JSON artifact was offered without an instruction-name table
    /// (JSON mapping artifacts carry only the decomposition).
    MissingNames {
        /// Path of the artifact.
        path: String,
    },
    /// The mapping name is not registrable (it would collide with the
    /// `name@version` / `NAME=file` grammars).
    BadName {
        /// The rejected name.
        name: String,
        /// Why it is rejected.
        why: String,
    },
}

impl StoreError {
    fn io(path: &str, e: &std::io::Error) -> Self {
        StoreError::Io { path: path.to_owned(), what: e.to_string() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, what } => write!(f, "cannot read {path}: {what}"),
            StoreError::Decode { path, what } => {
                write!(f, "invalid mapping artifact {path}: {what}")
            }
            StoreError::ShapeMismatch { path, what } => {
                write!(f, "mapping artifact {path} does not fit its entry: {what}")
            }
            StoreError::NameTableMismatch { path, what } => {
                write!(f, "instruction names in {path} do not match: {what}")
            }
            StoreError::MissingNames { path } => write!(
                f,
                "JSON artifact {path} carries no instruction names; register it \
                 via a platform or convert it to the binary format"
            ),
            StoreError::BadName { name, why } => {
                write!(f, "invalid mapping name {name:?}: {why}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Checks that `name` is registrable: printable, non-empty, and free of
/// the characters the serving grammars reserve (`@` separates
/// `name@version` labels, `=` separates `NAME=file` specs, whitespace
/// delimits protocol tokens).
pub fn validate_mapping_name(name: &str) -> Result<(), StoreError> {
    let bad = |why: &str| {
        Err(StoreError::BadName { name: name.to_owned(), why: why.to_owned() })
    };
    if name.is_empty() {
        return bad("must not be empty");
    }
    if let Some(c) = name.chars().find(|c| matches!(c, '@' | '=')) {
        return bad(&format!(
            "must not contain {c:?} (reserved by the name@version / NAME=file grammars)"
        ));
    }
    if name.chars().any(|c| c.is_whitespace() || c.is_control()) {
        return bad("must not contain whitespace or control characters");
    }
    Ok(())
}

/// On-disk encoding of one mapping artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactFormat {
    /// The hand-rolled JSON codec (`ThreeLevelMapping::to_json`).
    Json,
    /// The packed binary codec ([`MappingArtifact`]).
    Bin,
}

impl ArtifactFormat {
    /// The format's conventional name (`"json"` / `"bin"`).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactFormat::Json => "json",
            ArtifactFormat::Bin => "bin",
        }
    }
}

/// A mapping artifact read from disk: the decomposition, the name table
/// it is indexed by, and where it came from (so the store can go back).
#[derive(Debug, Clone)]
pub struct LoadedArtifact {
    /// Instruction names, indexed by [`InstId`].
    pub inst_names: Vec<String>,
    /// The decomposition tables.
    pub mapping: ThreeLevelMapping,
    /// How the file was encoded (detected by content, not extension).
    pub format: ArtifactFormat,
    /// The path the artifact was read from.
    pub path: String,
}

/// Reads a mapping artifact from `path`, sniffing the format by content:
/// files starting with the `PMEVOBIN` magic decode through the binary
/// codec (which embeds the name table), everything else parses as JSON
/// (which does not — `json_names` must supply the table then).
///
/// When `json_names` is provided for a binary artifact it is checked
/// against the embedded table, so callers that *know* the instruction
/// universe (platform registries, reload paths) catch a swapped file at
/// load time instead of at first mis-resolved query.
///
/// # Errors
///
/// See [`StoreError`]; every variant names `path`.
pub fn load_artifact_file(
    path: &str,
    json_names: Option<&[String]>,
) -> Result<LoadedArtifact, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, &e))?;
    if MappingArtifact::sniff(&bytes) {
        let artifact = MappingArtifact::from_bytes(&bytes)
            .map_err(|e| StoreError::Decode { path: path.to_owned(), what: e.to_string() })?;
        let (inst_names, mapping) = artifact.into_parts();
        if let Some(expected) = json_names {
            if expected != inst_names.as_slice() {
                let what = diff_names(expected, &inst_names);
                return Err(StoreError::NameTableMismatch { path: path.to_owned(), what });
            }
        }
        Ok(LoadedArtifact { inst_names, mapping, format: ArtifactFormat::Bin, path: path.into() })
    } else {
        let text = std::str::from_utf8(&bytes).map_err(|_| StoreError::Decode {
            path: path.to_owned(),
            what: "not a binary artifact and not UTF-8 JSON".to_owned(),
        })?;
        let mapping = ThreeLevelMapping::from_json(text)
            .map_err(|e| StoreError::Decode { path: path.to_owned(), what: e.to_string() })?;
        let inst_names = json_names
            .ok_or(StoreError::MissingNames { path: path.to_owned() })?
            .to_vec();
        if inst_names.len() != mapping.num_insts() {
            return Err(StoreError::ShapeMismatch {
                path: path.to_owned(),
                what: format!(
                    "{} instruction names for a {}-instruction mapping",
                    inst_names.len(),
                    mapping.num_insts()
                ),
            });
        }
        Ok(LoadedArtifact { inst_names, mapping, format: ArtifactFormat::Json, path: path.into() })
    }
}

/// First point of disagreement between two name tables, for error text.
fn diff_names(expected: &[String], got: &[String]) -> String {
    if expected.len() != got.len() {
        return format!("{} names expected, artifact has {}", expected.len(), got.len());
    }
    match expected.iter().zip(got).position(|(a, b)| a != b) {
        Some(i) => format!("name {i} is {:?}, expected {:?}", got[i], expected[i]),
        None => "tables are equal".to_owned(), // unreachable from the caller
    }
}

/// The interned instruction-name table of one platform: the flat table
/// plus the sharded resolution index. Shared (`Arc`) across every
/// version of a name whose instruction universe is unchanged.
#[derive(Debug)]
struct NameTable {
    /// Instruction names, indexed by `InstId`.
    inst_names: Vec<String>,
    /// Sharded name → id index: `shards[shard_of(name)]` is sorted by
    /// name for binary search.
    shards: [Vec<(String, InstId)>; NUM_SHARDS],
}

impl NameTable {
    fn build(inst_names: Vec<String>) -> Self {
        let mut shards: [Vec<(String, InstId)>; NUM_SHARDS] = Default::default();
        for (i, n) in inst_names.iter().enumerate() {
            shards[shard_of(n)].push((n.clone(), InstId(i as u32)));
        }
        for shard in &mut shards {
            shard.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        }
        NameTable { inst_names, shards }
    }

    /// Deterministic estimate of the table's resident bytes (names are
    /// held twice: flat table + shard index).
    fn cost(&self) -> u64 {
        64 + self
            .inst_names
            .iter()
            .map(|n| 2 * n.len() as u64 + 96)
            .sum::<u64>()
    }
}

/// Deterministic estimate of a decomposition payload's resident bytes:
/// the outer `Vec` spine plus per-instruction `Vec` headers plus 16
/// aligned bytes per `UopEntry`. An estimate by design — it is the unit
/// of the budget accounting, not an allocator measurement — but it is a
/// pure function of the mapping, so budget behavior is reproducible.
fn payload_cost(mapping: &ThreeLevelMapping) -> u64 {
    let entries: usize = mapping.decompositions().iter().map(Vec::len).sum();
    48 + 24 * mapping.num_insts() as u64 + 16 * entries as u64
}

/// Where an evictable entry's payload can be reloaded from.
#[derive(Debug, Clone)]
struct ArtifactSource {
    path: String,
    format: ArtifactFormat,
}

/// One immutable mapping registered in a [`MappingStore`]: its
/// name/version identity and shape metadata (always resident), the
/// interned instruction-name table (always resident), and the
/// decomposition payload (resident or evicted under a budget).
#[derive(Debug)]
pub struct StoredMapping {
    name: String,
    version: u32,
    /// Process-unique residency key (ids are per-store, uids are
    /// per-`Residency`, which snapshots share).
    uid: u64,
    num_insts: usize,
    num_ports: usize,
    payload_cost: u64,
    names: Arc<NameTable>,
    /// `None` for pinned entries (registered from memory — nothing to
    /// reload from, so they are never evicted).
    source: Option<ArtifactSource>,
    /// The decomposition payload; `None` while evicted.
    payload: Mutex<Option<Arc<ThreeLevelMapping>>>,
    residency: Arc<Residency>,
}

impl StoredMapping {
    /// The name the mapping was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The 1-based version among same-name registrations.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The `name@version` label used in serving output.
    pub fn label(&self) -> String {
        format!("{}@{}", self.name, self.version)
    }

    /// The decomposition payload, shared — the handle a batch holds
    /// across its whole solve, so a concurrent eviction (or snapshot
    /// swap) never changes the bits in flight.
    ///
    /// Resident payloads are returned directly (and marked
    /// recently-used); evicted payloads are reloaded from the entry's
    /// artifact and re-validated against the resident metadata first.
    ///
    /// # Errors
    ///
    /// A lazy reload can fail — unreadable file, corrupt artifact, or an
    /// artifact that no longer matches the entry's shape or name table.
    /// See [`StoreError`].
    pub fn mapping(&self) -> Result<Arc<ThreeLevelMapping>, StoreError> {
        // Fast path: clone the Arc under the payload lock, then touch
        // the recency list *after* dropping it — no thread ever waits on
        // the residency lock while holding a payload lock, which is what
        // lets the evictor (residency → payload order) lock freely.
        if let Some(m) = self.payload.lock().expect("payload lock poisoned").clone() {
            self.residency.touch(self.uid);
            return Ok(m);
        }
        // Slow path: reload from the artifact with no locks held; the
        // losing thread of a concurrent race adopts the winner's Arc.
        let loaded = self.reload()?;
        let mut slot = self.payload.lock().expect("payload lock poisoned");
        let (mapping, installed) = match &*slot {
            Some(winner) => (Arc::clone(winner), false),
            None => {
                let m = Arc::new(loaded);
                *slot = Some(Arc::clone(&m));
                (m, true)
            }
        };
        drop(slot);
        if installed {
            self.residency.charge_reload(self.uid, self.payload_cost);
        } else {
            self.residency.touch(self.uid);
        }
        Ok(mapping)
    }

    /// Reads and re-validates this entry's artifact.
    fn reload(&self) -> Result<ThreeLevelMapping, StoreError> {
        let source = self.source.as_ref().unwrap_or_else(|| {
            // Pinned entries are never evicted, so their payload is
            // always resident and the slow path is unreachable.
            unreachable!("pinned entry {} lost its payload", self.label())
        });
        let loaded = load_artifact_file(&source.path, Some(&self.names.inst_names))?;
        if loaded.mapping.num_insts() != self.num_insts
            || loaded.mapping.num_ports() != self.num_ports
        {
            return Err(StoreError::ShapeMismatch {
                path: source.path.clone(),
                what: format!(
                    "artifact is {}×{} (insts×ports), entry was registered as {}×{}",
                    loaded.mapping.num_insts(),
                    loaded.mapping.num_ports(),
                    self.num_insts,
                    self.num_ports
                ),
            });
        }
        Ok(loaded.mapping)
    }

    /// Whether the decomposition payload is currently resident.
    pub fn is_resident(&self) -> bool {
        self.payload.lock().expect("payload lock poisoned").is_some()
    }

    /// The payload's estimated resident size in bytes (the unit the
    /// budget accounting is kept in).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_cost
    }

    /// The artifact path this entry (re)loads from, if it was registered
    /// from a file.
    pub fn source_path(&self) -> Option<&str> {
        self.source.as_ref().map(|s| s.path.as_str())
    }

    /// The on-disk encoding of the source artifact, if any.
    pub fn source_format(&self) -> Option<ArtifactFormat> {
        self.source.as_ref().map(|s| s.format)
    }

    /// Number of instructions the mapping covers.
    pub fn num_insts(&self) -> usize {
        self.num_insts
    }

    /// Number of execution ports of the mapped machine.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// The instruction names, indexed by [`InstId`].
    pub fn inst_names(&self) -> &[String] {
        &self.names.inst_names
    }

    /// Resolves an instruction name through the sharded index.
    pub fn resolve(&self, inst_name: &str) -> Option<InstId> {
        let shard = &self.names.shards[shard_of(inst_name)];
        shard
            .binary_search_by(|(n, _)| n.as_str().cmp(inst_name))
            .ok()
            .map(|idx| shard[idx].1)
    }

    /// Parses one line of the sequence grammar
    /// ([`pmevo_core::parse_sequence`]) against this mapping's
    /// instruction names. An unknown-instruction error carries the
    /// nearest known name as a suggestion, so every serving front end —
    /// the offline pipe and the daemon both parse through here — reports
    /// typos identically.
    ///
    /// # Errors
    ///
    /// See [`SequenceParseError`].
    pub fn parse(&self, line: &str) -> Result<Experiment, SequenceParseError> {
        parse_sequence(line, |name| self.resolve(name)).map_err(|e| match e {
            SequenceParseError::UnknownInstruction { name, suggestion: None } => {
                let suggestion = pmevo_core::suggest::nearest(
                    &name,
                    self.names.inst_names.iter().map(String::as_str),
                )
                .map(str::to_owned);
                SequenceParseError::UnknownInstruction { name, suggestion }
            }
            other => other,
        })
    }
}

/// Residency counters of a store, as reported by
/// [`MappingStore::residency_stats`] (and the daemon's `!stats` verb).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyStats {
    /// The byte budget, if the store has one.
    pub budget: Option<u64>,
    /// Estimated bytes of resident decomposition payloads.
    pub resident_bytes: u64,
    /// Estimated bytes of interned name tables (always resident; counted
    /// once per distinct table, however many versions share it).
    pub name_bytes: u64,
    /// Payload evictions since the store was created.
    pub evictions: u64,
    /// Lazy payload reloads since the store was created.
    pub reloads: u64,
}

/// The budget bookkeeping shared by every snapshot of one store: clones
/// (the [`Predictor`](crate::Predictor)'s atomic snapshot swaps) share
/// the same `Residency`, so one process keeps one byte budget however
/// many snapshots are in flight.
#[derive(Debug)]
struct Residency {
    budget: Option<u64>,
    uid_counter: AtomicU64,
    inner: Mutex<ResidencyInner>,
}

#[derive(Debug)]
struct ResidencyInner {
    resident_bytes: u64,
    name_bytes: u64,
    evictions: u64,
    reloads: u64,
    /// Recency of *evictable resident* payloads: uid → payload cost,
    /// MRU-ordered by the cache's own list. The budget is bytes rather
    /// than entries, so eviction pops from this LRU until the byte
    /// account fits instead of relying on its capacity.
    recency: LruCache<u64, u64>,
    /// Every evictable entry, so the evictor can reach a victim's
    /// payload slot. `Weak`: the registry must not keep dropped
    /// snapshots' entries alive.
    entries: HashMap<u64, Weak<StoredMapping>>,
}

impl Residency {
    fn new(budget: Option<u64>) -> Arc<Self> {
        Arc::new(Residency {
            budget,
            uid_counter: AtomicU64::new(0),
            inner: Mutex::new(ResidencyInner {
                resident_bytes: 0,
                name_bytes: 0,
                evictions: 0,
                reloads: 0,
                recency: LruCache::new(usize::MAX),
                entries: HashMap::new(),
            }),
        })
    }

    fn next_uid(&self) -> u64 {
        self.uid_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Accounts a freshly inserted entry (payload resident), interned
    /// name-table bytes included only when the table is new.
    fn admit(&self, entry: &Arc<StoredMapping>, fresh_table: bool) {
        let mut inner = self.inner.lock().expect("residency lock poisoned");
        if fresh_table {
            inner.name_bytes += entry.names.cost();
        }
        inner.resident_bytes += entry.payload_cost;
        if entry.source.is_some() {
            inner.recency.insert(entry.uid, entry.payload_cost);
            inner.entries.insert(entry.uid, Arc::downgrade(entry));
        }
        self.evict_to_budget(&mut inner, entry.uid);
    }

    /// Marks `uid` most recently used.
    fn touch(&self, uid: u64) {
        let mut inner = self.inner.lock().expect("residency lock poisoned");
        inner.recency.get(&uid);
    }

    /// Accounts a lazy reload of `uid` and evicts colder entries if the
    /// budget is now exceeded.
    fn charge_reload(&self, uid: u64, cost: u64) {
        let mut inner = self.inner.lock().expect("residency lock poisoned");
        inner.reloads += 1;
        inner.resident_bytes += cost;
        inner.recency.insert(uid, cost);
        self.evict_to_budget(&mut inner, uid);
    }

    /// Evicts least-recently-used payloads until `resident_bytes` fits
    /// the budget. `current` (the entry being admitted or reloaded) is
    /// never evicted — evicting what a caller is about to use would
    /// thrash by construction.
    fn evict_to_budget(&self, inner: &mut ResidencyInner, current: u64) {
        let Some(budget) = self.budget else { return };
        while inner.resident_bytes > budget {
            let Some((uid, cost)) = inner.recency.pop_lru() else { break };
            if uid == current {
                // Only the current entry is left; it stays resident even
                // if it alone exceeds the budget (a budget must degrade
                // throughput, never availability).
                inner.recency.insert(uid, cost);
                break;
            }
            let entry = inner.entries.get(&uid).and_then(Weak::upgrade);
            match entry {
                Some(entry) => {
                    // Lock order residency → payload is safe: readers
                    // never wait on residency while holding a payload
                    // lock (see `StoredMapping::mapping`).
                    *entry.payload.lock().expect("payload lock poisoned") = None;
                    inner.evictions += 1;
                }
                None => {
                    // Every snapshot holding the entry is gone; its
                    // bytes went with it.
                    inner.entries.remove(&uid);
                }
            }
            inner.resident_bytes -= cost;
        }
    }

    fn stats(&self) -> ResidencyStats {
        let inner = self.inner.lock().expect("residency lock poisoned");
        ResidencyStats {
            budget: self.budget,
            resident_bytes: inner.resident_bytes,
            name_bytes: inner.name_bytes,
            evictions: inner.evictions,
            reloads: inner.reloads,
        }
    }
}

/// The versioned, memory-budgeted store of inferred mappings a
/// prediction service answers from.
///
/// Entries are stored behind [`Arc`]s, so cloning a store is a handful of
/// reference-count bumps — that is what makes the [`Predictor`]'s hot
/// mapping reload an atomic *snapshot swap*: the new store is an
/// Arc-clone of the old plus one entry, and readers holding the old
/// snapshot keep answering from it until they drop it. Clones share one
/// [`ResidencyStats`] account (see [`Self::with_budget`]).
///
/// [`Predictor`]: crate::Predictor
///
/// # Example
///
/// Register two versions of a platform's mapping and resolve sequence
/// terms against the newest one:
///
/// ```
/// use pmevo_core::{PortSet, ThreeLevelMapping, UopEntry};
/// use pmevo_predict::MappingStore;
///
/// let uop = |ports: &[usize]| vec![UopEntry::new(1, PortSet::from_ports(ports))];
/// let names = || vec!["add".to_string(), "mul".to_string()];
///
/// let mut store = MappingStore::new();
/// let v1 = store.insert("SKL", names(), ThreeLevelMapping::new(2, vec![uop(&[0]), uop(&[1])]));
/// let v2 = store.insert("SKL", names(), ThreeLevelMapping::new(2, vec![uop(&[0, 1]), uop(&[1])]));
/// assert_eq!(store.latest("SKL"), Some(v2));
/// assert_ne!(v1, v2);
///
/// let skl = store.get(v2);
/// assert_eq!(skl.label(), "SKL@2");
/// let seq = skl.parse("add; mul x2").unwrap();
/// assert_eq!(seq.total_insts(), 3);
/// // The superseded version stays addressable — ids never dangle.
/// assert_eq!(store.get(v1).label(), "SKL@1");
/// ```
#[derive(Debug, Clone)]
pub struct MappingStore {
    entries: Vec<Arc<StoredMapping>>,
    /// name → ids of that name's versions, ascending by version (and by
    /// id — versions are assigned in registration order), so `latest` is
    /// a `last()` and `lookup` a binary search.
    index: HashMap<String, Vec<MappingId>>,
    residency: Arc<Residency>,
}

impl Default for MappingStore {
    fn default() -> Self {
        MappingStore::new()
    }
}

impl MappingStore {
    /// Creates an empty, unbudgeted store: every payload stays resident.
    pub fn new() -> Self {
        MappingStore::with_budget(None)
    }

    /// Creates an empty store whose resident decomposition payloads are
    /// bounded by `budget` estimated bytes (`None` = unbounded).
    ///
    /// Only entries registered from an artifact file
    /// ([`Self::insert_from_file`]) are evictable; in-memory
    /// registrations are pinned (there is nothing to reload them from)
    /// but still count toward the resident total. Snapshots share the
    /// account: however many clones a [`Predictor`](crate::Predictor)
    /// has in flight, the process keeps one budget.
    pub fn with_budget(budget: Option<u64>) -> Self {
        MappingStore {
            entries: Vec::new(),
            index: HashMap::new(),
            residency: Residency::new(budget),
        }
    }

    /// The byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.residency.budget
    }

    /// Registers a mapping under `name` with its instruction-name table,
    /// returning the id of the new entry. The entry's version is one
    /// more than the newest same-name entry (starting at 1). Entries
    /// registered this way are pinned — never evicted — because there is
    /// no artifact to reload them from; use
    /// [`Self::insert_from_file`] for evictable registrations.
    ///
    /// # Panics
    ///
    /// Panics if `inst_names` does not have exactly one name per mapping
    /// instruction, or if `name` is not registrable (contains `@`, `=`,
    /// whitespace or control characters — see [`validate_mapping_name`];
    /// serving front ends validate specs before reaching this point).
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        inst_names: Vec<String>,
        mapping: ThreeLevelMapping,
    ) -> MappingId {
        let name = name.into();
        if let Err(e) = validate_mapping_name(&name) {
            panic!("{e}");
        }
        self.insert_inner(name, inst_names, mapping, None)
    }

    /// Registers a mapping from its JSON artifact *content* (the format
    /// written by `pmevo-cli infer` and the bench harness cache). The
    /// entry is pinned, like [`Self::insert`].
    ///
    /// # Errors
    ///
    /// Returns the artifact's parse failure; see [`MappingJsonError`].
    ///
    /// # Panics
    ///
    /// As for [`insert`](Self::insert).
    pub fn load_artifact(
        &mut self,
        name: impl Into<String>,
        inst_names: Vec<String>,
        artifact_json: &str,
    ) -> Result<MappingId, MappingJsonError> {
        let mapping = ThreeLevelMapping::from_json(artifact_json)?;
        Ok(self.insert(name, inst_names, mapping))
    }

    /// Registers a mapping from an artifact *file*, remembering the path
    /// so the payload can be evicted under a byte budget and lazily
    /// reloaded on the next query. Binary artifacts bring their own name
    /// table; JSON artifacts need one via `json_names` (when provided
    /// for a binary artifact, it is verified against the embedded
    /// table).
    ///
    /// The registration is atomic: any failure — unreadable file, bad
    /// name, corrupt artifact, name-table mismatch — leaves the store
    /// exactly as it was, with no entry inserted and no version burned.
    ///
    /// # Errors
    ///
    /// See [`StoreError`].
    pub fn insert_from_file(
        &mut self,
        name: impl Into<String>,
        path: &str,
        json_names: Option<&[String]>,
    ) -> Result<MappingId, StoreError> {
        let name = name.into();
        validate_mapping_name(&name)?;
        let loaded = load_artifact_file(path, json_names)?;
        self.insert_loaded(name, loaded)
    }

    /// Registers an already-loaded artifact ([`load_artifact_file`]),
    /// remembering its path like [`Self::insert_from_file`] — for
    /// callers that run extra validation (platform shape checks) between
    /// loading and registering without paying a second disk read.
    ///
    /// Atomic like [`Self::insert_from_file`]: every error leaves the
    /// store exactly as it was.
    ///
    /// # Errors
    ///
    /// See [`StoreError`].
    pub fn insert_loaded(
        &mut self,
        name: impl Into<String>,
        loaded: LoadedArtifact,
    ) -> Result<MappingId, StoreError> {
        let name = name.into();
        validate_mapping_name(&name)?;
        // If this is version ≥ 2 of `name`, its instruction universe and
        // port count must match the prior version — same check a lazy
        // reload runs, moved to registration time where the error is
        // actionable.
        if let Some(&prev) = self.index.get(&name).and_then(|v| v.last()) {
            let prev = &self.entries[prev.index()];
            if prev.names.inst_names != loaded.inst_names {
                return Err(StoreError::NameTableMismatch {
                    path: loaded.path.clone(),
                    what: diff_names(&prev.names.inst_names, &loaded.inst_names),
                });
            }
            if prev.num_ports != loaded.mapping.num_ports() {
                return Err(StoreError::ShapeMismatch {
                    path: loaded.path.clone(),
                    what: format!(
                        "{} ports, prior version {}@{} has {}",
                        loaded.mapping.num_ports(),
                        prev.name,
                        prev.version,
                        prev.num_ports
                    ),
                });
            }
        }
        let source = ArtifactSource { path: loaded.path, format: loaded.format };
        Ok(self.insert_inner(name, loaded.inst_names, loaded.mapping, Some(source)))
    }

    fn insert_inner(
        &mut self,
        name: String,
        inst_names: Vec<String>,
        mapping: ThreeLevelMapping,
        source: Option<ArtifactSource>,
    ) -> MappingId {
        assert_eq!(
            inst_names.len(),
            mapping.num_insts(),
            "instruction-name table ({} names) does not match the mapping ({} instructions)",
            inst_names.len(),
            mapping.num_insts()
        );
        let versions = self.index.entry(name.clone()).or_default();
        let prev = versions.last().map(|&id| &self.entries[id.index()]);
        let version = prev.map_or(0, |e| e.version) + 1;
        // Intern: a new version of an unchanged instruction universe
        // shares its predecessor's table.
        let (names, fresh_table) = match prev {
            Some(p) if p.names.inst_names == inst_names => (Arc::clone(&p.names), false),
            _ => (Arc::new(NameTable::build(inst_names)), true),
        };
        let entry = Arc::new(StoredMapping {
            name,
            version,
            uid: self.residency.next_uid(),
            num_insts: mapping.num_insts(),
            num_ports: mapping.num_ports(),
            payload_cost: payload_cost(&mapping),
            names,
            source,
            payload: Mutex::new(Some(Arc::new(mapping))),
            residency: Arc::clone(&self.residency),
        });
        self.residency.admit(&entry, fresh_table);
        let id = MappingId(self.entries.len() as u32);
        self.entries.push(entry);
        versions.push(id);
        id
    }

    /// The entry behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this store.
    pub fn get(&self, id: MappingId) -> &StoredMapping {
        &self.entries[id.index()]
    }

    /// The entry behind `id`, shared — for holding a mapping across a
    /// store snapshot swap (in-flight batches drain against it).
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this store.
    pub fn get_arc(&self, id: MappingId) -> Arc<StoredMapping> {
        Arc::clone(&self.entries[id.index()])
    }

    /// The id of the newest entry registered under `name`.
    pub fn latest(&self, name: &str) -> Option<MappingId> {
        self.index.get(name).and_then(|v| v.last()).copied()
    }

    /// The id of the entry registered under `name` with exactly
    /// `version`.
    pub fn lookup(&self, name: &str, version: u32) -> Option<MappingId> {
        let versions = self.index.get(name)?;
        versions
            .binary_search_by_key(&version, |&id| self.entries[id.index()].version)
            .ok()
            .map(|i| versions[i])
    }

    /// All entry ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = MappingId> {
        (0..self.entries.len() as u32).map(MappingId)
    }

    /// Number of stored entries (all versions counted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The store's residency counters (shared across snapshots).
    pub fn residency_stats(&self) -> ResidencyStats {
        self.residency.stats()
    }

    /// Number of entries whose payload is currently resident.
    pub fn resident_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_resident()).count()
    }

    /// A JSON inventory of the store (labels, shapes, residency — no
    /// decomposition payload), for a serving process's introspection
    /// endpoint.
    pub fn inventory_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Value::Obj(vec![
                    ("name".into(), Value::Str(e.name.clone())),
                    ("version".into(), Value::UInt(u64::from(e.version))),
                    ("num_insts".into(), Value::UInt(e.num_insts() as u64)),
                    ("num_ports".into(), Value::UInt(e.num_ports() as u64)),
                    ("resident".into(), Value::Bool(e.is_resident())),
                    ("bytes".into(), Value::UInt(e.payload_bytes())),
                ])
            })
            .collect();
        json::write_compact(&Value::Obj(vec![("mappings".into(), Value::Arr(entries))]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{PortSet, UopEntry};

    fn mapping(num_ports: usize, ports: &[&[usize]]) -> ThreeLevelMapping {
        ThreeLevelMapping::new(
            num_ports,
            ports
                .iter()
                .map(|ps| vec![UopEntry::new(1, PortSet::from_ports(ps))])
                .collect(),
        )
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("inst_{i}")).collect()
    }

    /// Writes a binary artifact into the test scratch dir.
    fn scratch_bin(file: &str, names: &[String], m: &ThreeLevelMapping) -> String {
        let dir = std::env::temp_dir().join("pmevo_store_tests");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join(file);
        let artifact = MappingArtifact::new(names.to_vec(), m.clone());
        std::fs::write(&path, artifact.to_bytes()).expect("write artifact");
        path.to_str().unwrap().to_owned()
    }

    #[test]
    fn versions_increase_per_name_and_ids_stay_valid() {
        let mut store = MappingStore::new();
        let a1 = store.insert("A", names(1), mapping(1, &[&[0]]));
        let b1 = store.insert("B", names(1), mapping(2, &[&[1]]));
        let a2 = store.insert("A", names(1), mapping(1, &[&[0]]));
        assert_eq!(store.get(a1).label(), "A@1");
        assert_eq!(store.get(b1).label(), "B@1");
        assert_eq!(store.get(a2).label(), "A@2");
        assert_eq!(store.latest("A"), Some(a2));
        assert_eq!(store.latest("B"), Some(b1));
        assert_eq!(store.latest("C"), None);
        assert_eq!(store.lookup("A", 1), Some(a1));
        assert_eq!(store.lookup("A", 3), None);
        assert_eq!(store.len(), 3);
        assert_eq!(store.ids().count(), 3);
    }

    #[test]
    fn indexed_routing_scales_to_thousands_of_entries() {
        // Regression for the O(n)-scan latest/lookup/insert paths: with
        // 3000 entries over 30 names every operation still answers
        // correctly (and the index keeps them O(log) — a linear rescan
        // here made reload storms quadratic).
        let mut store = MappingStore::new();
        let mut ids = Vec::new();
        for _round in 0..100 {
            for n in 0..30 {
                ids.push(store.insert(format!("plat_{n}"), names(1), mapping(1, &[&[0]])));
            }
        }
        assert_eq!(store.len(), 3000);
        for n in 0..30 {
            let name = format!("plat_{n}");
            let latest = store.latest(&name).unwrap();
            assert_eq!(store.get(latest).version(), 100);
            assert_eq!(store.get(latest).name(), name);
            for v in [1u32, 37, 100] {
                let id = store.lookup(&name, v).unwrap();
                assert_eq!(store.get(id).version(), v);
                assert_eq!(store.get(id).name(), name);
            }
            assert_eq!(store.lookup(&name, 0), None);
            assert_eq!(store.lookup(&name, 101), None);
        }
        // Ids are registration-ordered and dense.
        assert_eq!(ids.len(), 3000);
        assert!(ids.iter().enumerate().all(|(i, id)| id.index() == i));
    }

    #[test]
    fn name_tables_are_interned_across_versions() {
        let mut store = MappingStore::new();
        let v1 = store.insert("A", names(2), mapping(1, &[&[0], &[0]]));
        let v2 = store.insert("A", names(2), mapping(1, &[&[0], &[0]]));
        let renamed: Vec<String> = vec!["x".into(), "y".into()];
        let v3 = store.insert("A", renamed, mapping(1, &[&[0], &[0]]));
        assert!(Arc::ptr_eq(&store.get(v1).names, &store.get(v2).names));
        assert!(!Arc::ptr_eq(&store.get(v2).names, &store.get(v3).names));
        // Interned tables are counted once.
        let stats = store.residency_stats();
        let one_table = NameTable::build(names(2)).cost();
        let other = NameTable::build(vec!["x".into(), "y".into()]).cost();
        assert_eq!(stats.name_bytes, one_table + other);
    }

    #[test]
    fn names_with_reserved_characters_are_rejected() {
        for bad in ["a@b", "a=b", "", "a b", "a\tb", "@", "v@1"] {
            assert!(
                validate_mapping_name(bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
        for good in ["SKL", "user-42/skl", "a.b.c", "πλάτφορμα"] {
            assert!(validate_mapping_name(good).is_ok(), "{good:?} must pass");
        }
        let err = validate_mapping_name("SKL@2").unwrap_err();
        assert!(err.to_string().contains("name@version"), "{err}");
    }

    #[test]
    #[should_panic(expected = "invalid mapping name")]
    fn insert_panics_on_reserved_names() {
        MappingStore::new().insert("A@1", names(1), mapping(1, &[&[0]]));
    }

    #[test]
    fn sharded_resolution_finds_every_name_and_only_those() {
        let n = 100;
        let mut store = MappingStore::new();
        let ports: Vec<&[usize]> = (0..n).map(|_| &[0usize][..]).collect();
        let id = store.insert("big", names(n), mapping(1, &ports));
        let stored = store.get(id);
        for i in 0..n {
            assert_eq!(stored.resolve(&format!("inst_{i}")), Some(InstId(i as u32)));
        }
        assert_eq!(stored.resolve("inst_100"), None);
        assert_eq!(stored.resolve(""), None);
        // Every name landed in exactly one shard.
        let total: usize = stored.names.shards.iter().map(Vec::len).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn parse_resolves_through_the_store_entry() {
        let mut store = MappingStore::new();
        let id = store.insert("P", names(3), mapping(2, &[&[0], &[1], &[0, 1]]));
        let e = store.get(id).parse("inst_2 x2; inst_0").unwrap();
        assert_eq!(e.count_of(InstId(2)), 2);
        assert_eq!(e.count_of(InstId(0)), 1);
        assert!(matches!(
            store.get(id).parse("inst_9"),
            Err(SequenceParseError::UnknownInstruction { .. })
        ));
    }

    #[test]
    fn artifact_roundtrip_loads() {
        let m = mapping(3, &[&[0, 2], &[1]]);
        let mut store = MappingStore::new();
        let id = store.load_artifact("rt", names(2), &m.to_json()).unwrap();
        assert_eq!(*store.get(id).mapping().unwrap(), m);
        assert!(store.load_artifact("rt", names(2), "{not json").is_err());
    }

    #[test]
    fn file_registration_sniffs_both_formats() {
        let m = mapping(2, &[&[0], &[1]]);
        let dir = std::env::temp_dir().join("pmevo_store_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("fmt.json");
        std::fs::write(&json_path, m.to_json_pretty()).unwrap();
        let bin_path = scratch_bin("fmt.bin", &names(2), &m);

        let mut store = MappingStore::new();
        let jn = names(2);
        let j = store
            .insert_from_file("J", json_path.to_str().unwrap(), Some(&jn))
            .unwrap();
        let b = store.insert_from_file("B", &bin_path, None).unwrap();
        assert_eq!(*store.get(j).mapping().unwrap(), m);
        assert_eq!(*store.get(b).mapping().unwrap(), m);
        assert_eq!(store.get(b).inst_names(), &names(2)[..]);
        assert_eq!(store.get(b).source_path(), Some(bin_path.as_str()));

        // JSON without names is rejected; bin with wrong names too.
        let err = store
            .insert_from_file("J2", json_path.to_str().unwrap(), None)
            .unwrap_err();
        assert!(matches!(err, StoreError::MissingNames { .. }), "{err}");
        let wrong: Vec<String> = vec!["q".into(), "r".into()];
        let err = store.insert_from_file("B2", &bin_path, Some(&wrong)).unwrap_err();
        assert!(matches!(err, StoreError::NameTableMismatch { .. }), "{err}");
        assert!(err.to_string().contains(&bin_path), "{err}");
    }

    #[test]
    fn failed_file_registration_leaves_the_store_untouched() {
        let m = mapping(1, &[&[0]]);
        let bin = scratch_bin("atomic_v1.bin", &names(1), &m);
        let mut store = MappingStore::new();
        store.insert_from_file("A", &bin, None).unwrap();
        let len = store.len();
        let stats = store.residency_stats();

        // Unreadable path, bad name, corrupt artifact, name mismatch:
        // none of them may insert an entry or burn a version.
        let other: Vec<String> = vec!["different".into()];
        let wrong_names = scratch_bin("atomic_other.bin", &other, &m);
        let corrupt = {
            let dir = std::env::temp_dir().join("pmevo_store_tests");
            let p = dir.join("atomic_corrupt.bin");
            let mut bytes = MappingArtifact::new(names(1), m.clone()).to_bytes();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xff;
            std::fs::write(&p, bytes).unwrap();
            p.to_str().unwrap().to_owned()
        };
        let attempts = [
            store.insert_from_file("A", "/no/such/file.bin", None).unwrap_err(),
            store.insert_from_file("A@2", &bin, None).unwrap_err(),
            store.insert_from_file("A", &corrupt, None).unwrap_err(),
            store.insert_from_file("A", &wrong_names, None).unwrap_err(),
        ];
        assert!(matches!(attempts[0], StoreError::Io { .. }));
        assert!(matches!(attempts[1], StoreError::BadName { .. }));
        assert!(matches!(attempts[2], StoreError::Decode { .. }));
        assert!(matches!(attempts[3], StoreError::NameTableMismatch { .. }));
        assert_eq!(store.len(), len);
        assert_eq!(store.residency_stats().resident_bytes, stats.resident_bytes);
        assert_eq!(store.residency_stats().name_bytes, stats.name_bytes);
        // The next successful registration gets version 2, not 3+.
        let v2 = store.insert_from_file("A", &bin, None).unwrap();
        assert_eq!(store.get(v2).version(), 2);
    }

    #[test]
    fn budgeted_store_evicts_lru_and_reloads_lazily() {
        let m = mapping(2, &[&[0], &[1], &[0, 1]]);
        let n = names(3);
        let paths: Vec<String> =
            (0..4).map(|i| scratch_bin(&format!("evict_{i}.bin"), &n, &m)).collect();
        let cost = payload_cost(&m);
        // Room for two payloads.
        let mut store = MappingStore::with_budget(Some(2 * cost));
        let ids: Vec<MappingId> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| store.insert_from_file(format!("p{i}"), p, None).unwrap())
            .collect();
        // Inserting 4 entries under a 2-payload budget evicted the two
        // oldest.
        assert!(!store.get(ids[0]).is_resident());
        assert!(!store.get(ids[1]).is_resident());
        assert!(store.get(ids[2]).is_resident());
        assert!(store.get(ids[3]).is_resident());
        let stats = store.residency_stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.reloads, 0);
        assert_eq!(stats.resident_bytes, 2 * cost);

        // Querying an evicted entry reloads it (and evicts the coldest
        // resident one).
        let reloaded = store.get(ids[0]).mapping().unwrap();
        assert_eq!(*reloaded, m);
        let stats = store.residency_stats();
        assert_eq!(stats.reloads, 1);
        assert_eq!(stats.evictions, 3);
        assert!(store.get(ids[0]).is_resident());
        assert!(!store.get(ids[2]).is_resident(), "LRU resident entry was evicted");
        assert!(store.get(ids[3]).is_resident());
        assert_eq!(store.resident_count(), 2);
    }

    #[test]
    fn reload_failures_name_the_path_and_heal_on_retry() {
        let m = mapping(1, &[&[0]]);
        let path = scratch_bin("heal.bin", &names(1), &m);
        let mut store = MappingStore::with_budget(Some(0));
        let id = store.insert_from_file("H", &path, None).unwrap();
        // Budget 0: nothing stays resident except while in use — the
        // admit-time eviction pass spares only the current entry when it
        // is the sole one... which it is, so evict by inserting another.
        let other = scratch_bin("heal_other.bin", &names(1), &m);
        store.insert_from_file("H2", &other, None).unwrap();
        assert!(!store.get(id).is_resident());

        // Break the artifact; the lazy reload must fail with the path.
        std::fs::write(&path, b"garbage").unwrap();
        let err = store.get(id).mapping().unwrap_err();
        assert!(err.to_string().contains(&path), "{err}");
        // Restore it; the next query heals.
        std::fs::write(&path, MappingArtifact::new(names(1), m.clone()).to_bytes()).unwrap();
        assert_eq!(*store.get(id).mapping().unwrap(), m);
    }

    #[test]
    fn pinned_entries_are_never_evicted() {
        let m = mapping(1, &[&[0]]);
        let mut store = MappingStore::with_budget(Some(1)); // absurdly small
        let pinned = store.insert("mem", names(1), m.clone());
        let path = scratch_bin("pin_other.bin", &names(1), &m);
        let filed = store.insert_from_file("file", &path, None).unwrap();
        let _ = store.get(filed).mapping().unwrap();
        // The in-memory entry survives any budget pressure.
        assert!(store.get(pinned).is_resident());
        assert_eq!(*store.get(pinned).mapping().unwrap(), m);
    }

    #[test]
    #[should_panic(expected = "does not match the mapping")]
    fn name_table_shape_is_enforced() {
        MappingStore::new().insert("bad", names(1), mapping(1, &[&[0], &[0]]));
    }

    #[test]
    fn clones_share_entries_and_diverge_on_insert() {
        let mut a = MappingStore::new();
        let v1 = a.insert("A", names(1), mapping(1, &[&[0]]));
        let snapshot = a.clone();
        let v2 = a.insert("A", names(1), mapping(1, &[&[0]]));
        // The clone is an O(entries) Arc bump: same entry objects ...
        assert!(Arc::ptr_eq(&a.get_arc(v1), &snapshot.get_arc(v1)));
        // ... but inserts after the snapshot do not leak into it.
        assert_eq!(a.len(), 2);
        assert_eq!(snapshot.len(), 1);
        assert_eq!(a.latest("A"), Some(v2));
        assert_eq!(snapshot.latest("A"), Some(v1));
    }

    #[test]
    fn inventory_lists_every_entry() {
        let mut store = MappingStore::new();
        store.insert("A", names(1), mapping(2, &[&[0]]));
        store.insert("A", names(1), mapping(2, &[&[1]]));
        let inv = store.inventory_json();
        let doc = json::parse(&inv).unwrap();
        let arr = doc.get("mappings").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].get("version").and_then(Value::as_u64), Some(2));
        assert!(matches!(arr[0].get("resident"), Some(Value::Bool(true))));
    }
}
