//! # pmevo-predict — the throughput-prediction serving layer
//!
//! PMEvo's end product is a port mapping; the natural high-QPS workload
//! against that product is llvm-mca-style basic-block throughput
//! prediction (the paper only does this once, in its §6 evaluation).
//! This crate turns the workspace's inference output into a serving
//! subsystem:
//!
//! * [`MappingStore`] — a versioned, shard-by-instruction,
//!   **memory-budgeted** store of inferred mapping artifacts
//!   (`name@version` addressing, immutable `Arc`-shared entries,
//!   deterministic sharded mnemonic resolution, interned name tables,
//!   LRU payload eviction + lazy artifact reload under a byte budget);
//!   stores clone in O(entries) Arc bumps, which is what makes the
//!   [`Predictor`]'s hot reload an atomic snapshot swap
//!   ([`Predictor::insert_mapping`]);
//! * [`Predictor`] — batched throughput queries through the
//!   allocation-free [`pmevo_core::ThroughputSolver`] path: sequences
//!   are compiled once ([`pmevo_core::CompiledExperiments`] interning),
//!   fanned out over a persistent worker pool, and memoized in a
//!   per-mapping [`LruCache`];
//! * the sequence grammar itself lives in `pmevo-core`
//!   ([`pmevo_core::parse_sequence`]) so every front end — this crate,
//!   `pmevo-cli predict`, the `fig_predict` sweep — parses identically.
//!
//! Results are **bit-identical** across worker counts and cache
//! configurations (property-tested), so the serving layer inherits the
//! reproducibility contract of the inference layers beneath it.
//!
//! ```
//! use pmevo_core::{PortSet, ThreeLevelMapping, UopEntry};
//! use pmevo_predict::{MappingStore, Predictor, PredictorConfig};
//!
//! let mut store = MappingStore::new();
//! let id = store.insert(
//!     "SKL",
//!     vec!["add".into(), "mul".into()],
//!     ThreeLevelMapping::new(2, vec![
//!         vec![UopEntry::new(1, PortSet::from_ports(&[0, 1]))],
//!         vec![UopEntry::new(1, PortSet::from_ports(&[1]))],
//!     ]),
//! );
//! let service = Predictor::new(store, PredictorConfig { workers: 2, cache_capacity: 1024 });
//! let block = service.snapshot().get(id).parse("add x2; mul").unwrap();
//! // Three µops over two ports, optimally scheduled: 1.5 cycles.
//! assert_eq!(service.predict(id, &block), 1.5);
//! ```

#![deny(missing_docs)]

mod lru;
mod predictor;
mod store;

pub use lru::LruCache;
pub use predictor::{PredictStats, Predictor, PredictorConfig};
pub use store::{
    load_artifact_file, validate_mapping_name, ArtifactFormat, LoadedArtifact, MappingId,
    MappingStore, ResidencyStats, StoreError, StoredMapping, NUM_SHARDS,
};
