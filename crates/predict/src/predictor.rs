//! The batched prediction engine: persistent workers, compile-once
//! batches, LRU-cached results.
//!
//! A [`Predictor`] answers throughput queries against the mappings of a
//! [`MappingStore`]. Its execution path is the workspace's
//! allocation-free solver pipeline (PR 2): a batch of sequences is
//! compiled **once** into a [`CompiledExperiments`] (dense interning,
//! flat rows), then evaluated by a pool of worker threads that each own
//! a long-lived [`ThroughputSolver`] — after warm-up, serving a batch
//! performs no per-query heap allocation inside the solver. Results are
//! memoized in a per-mapping [`LruCache`], so the skewed query streams
//! of real clients (compilers re-asking about hot basic blocks) short-
//! circuit to a hash lookup.
//!
//! Like every parallel layer of this workspace ([`Service::run_many`],
//! the fitness engine), the pool is **thread-count independent**: a
//! prediction is a pure function of the sequence and the mapping bits,
//! so results are bit-identical for every worker count and for cache
//! hits vs misses. A property test in `tests/proptest_predict.rs`
//! enforces this across 1/2/8 workers × cache on/off.
//!
//! [`Service::run_many`]: ../pmevo/struct.Service.html#method.run_many

use crate::lru::LruCache;
use crate::store::{LoadedArtifact, MappingId, MappingStore, StoreError};
use pmevo_core::{
    CompiledExperiments, Experiment, MappingJsonError, MeasuredExperiment, ThreeLevelMapping,
    ThroughputSolver,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Configuration of a [`Predictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Worker threads in the persistent pool (at least 1; results do not
    /// depend on the count).
    pub workers: usize,
    /// LRU result-cache capacity *per stored mapping* (0 disables
    /// caching).
    pub cache_capacity: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            cache_capacity: 1 << 16,
        }
    }
}

/// Cumulative serving counters of a [`Predictor`], for load reports and
/// the `fig_predict` sweep. All counts are exact and deterministic; the
/// solve-time accumulator is wall-clock and therefore not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictStats {
    /// Sequences answered (hits and misses).
    pub queries: u64,
    /// Sequences answered from the LRU cache.
    pub cache_hits: u64,
    /// Batches submitted.
    pub batches: u64,
    /// Wall-clock nanoseconds spent solving cache misses (compile +
    /// kernel + reassembly), cumulative across batches.
    pub miss_solve_ns: u64,
}

impl PredictStats {
    /// Fraction of queries answered from the cache, in `[0, 1]` (0 when
    /// nothing was queried).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Sequences that had to be solved (queries not answered from the
    /// cache).
    pub fn misses(&self) -> u64 {
        self.queries - self.cache_hits
    }
}

/// One unit of pool work: predict a contiguous slice of a compiled
/// batch under a mapping.
struct Job {
    compiled: Arc<CompiledExperiments>,
    mapping: Arc<ThreeLevelMapping>,
    start: usize,
    end: usize,
    out: Sender<(usize, Vec<f64>)>,
}

fn worker_loop(jobs: Arc<Mutex<Receiver<Job>>>) {
    // One solver per worker for the life of the pool: its scratch and
    // loaded-mapping tables are reused across every batch it serves.
    let mut solver = ThroughputSolver::new();
    let mut indices: Vec<u32> = Vec::new();
    loop {
        let job = jobs.lock().expect("job queue poisoned").recv();
        let Ok(job) = job else { break };
        solver.load_mapping(&job.compiled, &job.mapping);
        indices.clear();
        indices.extend(job.start as u32..job.end as u32);
        // The batched solve coalesces same-k zeta experiments into the
        // lane-parallel kernel; bit-identical to per-index `predict`.
        let mut out = Vec::with_capacity(job.end - job.start);
        solver.predict_batch(&job.compiled, &indices, &mut out);
        if job.out.send((job.start, out)).is_err() {
            // The requester vanished; keep serving other batches.
            continue;
        }
    }
}

/// Calling-thread solver state for the inline miss path (see
/// [`Predictor::predict_batch`]).
struct InlineSolver {
    solver: ThroughputSolver,
    indices: Vec<u32>,
    out: Vec<f64>,
}

/// Largest miss count a multi-worker predictor will solve inline (when
/// the inline solver is free) instead of fanning out over the pool. A
/// pool round-trip costs a channel send + condvar wake on both ends —
/// microseconds — so small batches are faster on the calling thread
/// even with zero contention.
const INLINE_MISS_MAX: usize = 128;

/// A throughput-prediction service over a [`MappingStore`]: batched,
/// cached, thread-pooled — the paper's §6 evaluation loop turned into a
/// serving path measured in sequences per second.
///
/// # Example
///
/// ```
/// use pmevo_core::{Experiment, InstId, PortSet, ThreeLevelMapping, UopEntry};
/// use pmevo_predict::{MappingStore, Predictor, PredictorConfig};
///
/// let mut store = MappingStore::new();
/// let id = store.insert(
///     "demo",
///     vec!["add".into(), "mul".into()],
///     ThreeLevelMapping::new(2, vec![
///         vec![UopEntry::new(1, PortSet::from_ports(&[0, 1]))],
///         vec![UopEntry::new(1, PortSet::from_ports(&[0]))],
///     ]),
/// );
/// let predictor = Predictor::new(store, PredictorConfig { workers: 2, cache_capacity: 64 });
///
/// let snapshot = predictor.snapshot();
/// let seqs = vec![
///     snapshot.get(id).parse("mul x4").unwrap(),
///     snapshot.get(id).parse("add; add").unwrap(),
/// ];
/// let cycles = predictor.predict_batch(id, &seqs);
/// assert_eq!(cycles, vec![4.0, 1.0]);
/// // The repeat is served from the cache.
/// assert_eq!(predictor.predict_batch(id, &seqs[..1]), vec![4.0]);
/// assert_eq!(predictor.stats().cache_hits, 1);
/// ```
pub struct Predictor {
    /// The serving snapshot. Readers clone the `Arc` (one refcount bump
    /// under a read lock) and answer whole batches from that immutable
    /// snapshot; [`insert_mapping`](Self::insert_mapping) swaps in a new
    /// `Arc` under the write lock, so in-flight batches drain against the
    /// store they started with.
    store: RwLock<Arc<MappingStore>>,
    /// Per-mapping LRU result caches, keyed by [`MappingId`] index.
    /// Ids are append-only across reloads, so cache entries survive a
    /// snapshot swap (a new version gets a new id and a cold cache).
    caches: Mutex<HashMap<u32, LruCache<Experiment, f64>>>,
    cache_capacity: usize,
    queries: AtomicU64,
    cache_hits: AtomicU64,
    batches: AtomicU64,
    /// Wall-clock nanoseconds spent on the miss path, cumulative.
    miss_solve_ns: AtomicU64,
    /// Queries answered per mapping id, for the stats surface.
    per_mapping: Mutex<HashMap<u32, u64>>,
    /// Calling-thread solver for small miss batches: skips the pool's
    /// channel/condvar round-trip, which dominates per-sequence latency
    /// at low hit rates.
    inline: Mutex<InlineSolver>,
    jobs: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Predictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Predictor")
            .field("mappings", &self.snapshot().len())
            .field("workers", &self.workers.len())
            .field("cache_capacity", &self.cache_capacity)
            .finish()
    }
}

impl Predictor {
    /// Spawns the worker pool and wraps `store` as a prediction service.
    pub fn new(store: MappingStore, config: PredictorConfig) -> Self {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(rx))
            })
            .collect();
        Predictor {
            store: RwLock::new(Arc::new(store)),
            caches: Mutex::new(HashMap::new()),
            cache_capacity: config.cache_capacity,
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            miss_solve_ns: AtomicU64::new(0),
            per_mapping: Mutex::new(HashMap::new()),
            inline: Mutex::new(InlineSolver {
                solver: ThroughputSolver::new(),
                indices: Vec::new(),
                out: Vec::new(),
            }),
            jobs: Some(tx),
            workers,
        }
    }

    /// The current store snapshot.
    ///
    /// The snapshot is immutable: resolve names, parse sequences and
    /// inspect entries against it without holding any lock. A
    /// concurrently-arriving [`insert_mapping`](Self::insert_mapping)
    /// does not change it — re-take a snapshot to observe new versions.
    pub fn snapshot(&self) -> Arc<MappingStore> {
        Arc::clone(&self.store.read().expect("store lock poisoned"))
    }

    /// Registers a new mapping version into the live service, atomically
    /// swapping the store snapshot. Existing [`MappingId`]s keep
    /// answering with the same mapping bits (ids are append-only), and
    /// batches in flight against the previous snapshot drain unchanged;
    /// only *new* snapshots observe the new version as `latest(name)`.
    ///
    /// # Panics
    ///
    /// As for [`MappingStore::insert`].
    pub fn insert_mapping(
        &self,
        name: impl Into<String>,
        inst_names: Vec<String>,
        mapping: ThreeLevelMapping,
    ) -> MappingId {
        let mut guard = self.store.write().expect("store lock poisoned");
        // Clone-on-write: a handful of Arc bumps (entries are shared),
        // then one atomic pointer swap.
        let mut next = MappingStore::clone(&guard);
        let id = next.insert(name, inst_names, mapping);
        *guard = Arc::new(next);
        id
    }

    /// [`insert_mapping`](Self::insert_mapping) from a JSON mapping
    /// artifact — a pinned (never-evicted) registration.
    ///
    /// # Errors
    ///
    /// Returns the artifact's parse failure without touching the store.
    pub fn load_artifact(
        &self,
        name: impl Into<String>,
        inst_names: Vec<String>,
        artifact_json: &str,
    ) -> Result<MappingId, MappingJsonError> {
        let mapping = ThreeLevelMapping::from_json(artifact_json)?;
        Ok(self.insert_mapping(name, inst_names, mapping))
    }

    /// Registers a mapping from an artifact *file* into the live service
    /// — the daemon's hot-reload entry point. The entry remembers its
    /// path, so under a store budget it is evictable and lazily
    /// reloadable; see [`MappingStore::insert_from_file`].
    ///
    /// The swap is atomic either way: on success new snapshots observe
    /// the new version, and on failure the serving snapshot is exactly
    /// what it was — no partially-inserted entry, no burned version.
    ///
    /// # Errors
    ///
    /// See [`StoreError`]; the store is untouched on every error.
    pub fn insert_from_file(
        &self,
        name: impl Into<String>,
        path: &str,
        json_names: Option<&[String]>,
    ) -> Result<MappingId, StoreError> {
        let mut guard = self.store.write().expect("store lock poisoned");
        let mut next = MappingStore::clone(&guard);
        let id = next.insert_from_file(name, path, json_names)?;
        *guard = Arc::new(next);
        Ok(id)
    }

    /// [`insert_from_file`](Self::insert_from_file) for an artifact the
    /// caller has already loaded and validated — see
    /// [`MappingStore::insert_loaded`]. Same atomic-swap contract.
    ///
    /// # Errors
    ///
    /// See [`StoreError`]; the store is untouched on every error.
    pub fn insert_loaded(
        &self,
        name: impl Into<String>,
        loaded: LoadedArtifact,
    ) -> Result<MappingId, StoreError> {
        let mut guard = self.store.write().expect("store lock poisoned");
        let mut next = MappingStore::clone(&guard);
        let id = next.insert_loaded(name, loaded)?;
        *guard = Arc::new(next);
        Ok(id)
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> PredictStats {
        PredictStats {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            miss_solve_ns: self.miss_solve_ns.load(Ordering::Relaxed),
        }
    }

    /// Queries answered per stored mapping, as `(label, count)` in id
    /// order — the per-mapping load breakdown of the `stats` verb.
    /// Mappings that were never queried report 0.
    pub fn per_mapping_queries(&self) -> Vec<(String, u64)> {
        let store = self.snapshot();
        let counts = self.per_mapping.lock().expect("counter lock poisoned");
        store
            .ids()
            .map(|id| (store.get(id).label(), counts.get(&id.0).copied().unwrap_or(0)))
            .collect()
    }

    /// Predicts the throughput (cycles per iteration, paper Definition 1)
    /// of every sequence under the stored mapping `id`, in input order.
    ///
    /// Cache hits are answered inline; misses are compiled once and
    /// solved either on the calling thread (single-worker pools always;
    /// multi-worker pools for small batches when the inline solver is
    /// free — the pool round-trip costs more than the solve) or fanned
    /// out over the pool. Both paths run the same batched solver, so the
    /// result is bit-identical for every worker count, cache
    /// configuration and inline/pool routing.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this store, a sequence references an
    /// instruction outside the mapping's universe, or an evicted
    /// payload's lazy reload fails (serving front ends route through
    /// [`try_predict_batch`](Self::try_predict_batch) to report that
    /// per query instead).
    pub fn predict_batch(&self, id: MappingId, sequences: &[Experiment]) -> Vec<f64> {
        self.try_predict_batch(id, sequences)
            .unwrap_or_else(|e| panic!("mapping unavailable: {e}"))
    }

    /// [`predict_batch`](Self::predict_batch) that surfaces lazy-reload
    /// failures instead of panicking — the serving daemon's entry point,
    /// where a corrupt artifact on disk must degrade one mapping's
    /// queries, not the process.
    ///
    /// # Errors
    ///
    /// The [`StoreError`] of the failed payload (re)load; no counters
    /// are advanced and the cache is untouched then.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this store or a sequence references an
    /// instruction outside the mapping's universe.
    pub fn try_predict_batch(
        &self,
        id: MappingId,
        sequences: &[Experiment],
    ) -> Result<Vec<f64>, StoreError> {
        // Pin the batch to one snapshot: a concurrent reload swaps the
        // store pointer but cannot touch this entry.
        let store = self.snapshot();
        let stored = store.get_arc(id);
        // Resolve the payload once, up front: the whole batch — cache
        // writes included — solves against this one `Arc`, so a
        // concurrent eviction cannot change the bits mid-batch.
        let mapping = stored.mapping()?;
        let num_insts = stored.num_insts();
        for e in sequences {
            if let Some((inst, _)) = e.iter().last() {
                assert!(
                    inst.index() < num_insts,
                    "sequence instruction {inst} outside mapping {} ({num_insts} instructions)",
                    stored.label()
                );
            }
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(sequences.len() as u64, Ordering::Relaxed);
        *self
            .per_mapping
            .lock()
            .expect("counter lock poisoned")
            .entry(id.0)
            .or_insert(0) += sequences.len() as u64;

        let mut results = vec![0.0f64; sequences.len()];
        let mut miss_idx: Vec<usize> = Vec::new();
        if self.cache_capacity == 0 {
            // Caching is off: everything is a miss, and the cache lock
            // never needs to be touched on this path.
            miss_idx.extend(0..sequences.len());
        } else {
            {
                let mut caches = self.caches.lock().expect("cache poisoned");
                let cache = caches
                    .entry(id.0)
                    .or_insert_with(|| LruCache::new(self.cache_capacity));
                for (i, e) in sequences.iter().enumerate() {
                    match cache.get(e) {
                        Some(&t) => results[i] = t,
                        None => miss_idx.push(i),
                    }
                }
            }
            self.cache_hits
                .fetch_add((sequences.len() - miss_idx.len()) as u64, Ordering::Relaxed);
        }
        if miss_idx.is_empty() {
            return Ok(results);
        }

        let solve_start = std::time::Instant::now();
        // Compile the misses once: dense interning + flat rows. The
        // measured field is a placeholder (the compiler demands positive
        // throughputs); prediction never reads it.
        let compiled = CompiledExperiments::compile(
            &miss_idx
                .iter()
                .map(|&i| MeasuredExperiment::new(sequences[i].clone(), 1.0))
                .collect::<Vec<_>>(),
        );
        let n = miss_idx.len();

        // Inline policy: a single-worker pool gains nothing from the
        // hand-off, so always solve on the calling thread (blocking on
        // the inline solver serializes exactly like the 1-worker queue
        // would). Multi-worker pools solve small batches inline only
        // when the solver is free, falling back to the pool under
        // contention.
        let inline_guard = if self.workers.len() == 1 {
            Some(self.inline.lock().expect("inline solver poisoned"))
        } else if n <= INLINE_MISS_MAX {
            self.inline.try_lock().ok()
        } else {
            None
        };
        if let Some(mut guard) = inline_guard {
            let g = &mut *guard;
            g.solver.load_mapping(&compiled, &mapping);
            g.indices.clear();
            g.indices.extend(0..n as u32);
            g.solver.predict_batch(&compiled, &g.indices, &mut g.out);
            for (k, &i) in miss_idx.iter().enumerate() {
                results[i] = g.out[k];
            }
        } else {
            let compiled = Arc::new(compiled);
            let mapping = Arc::clone(&mapping);
            let chunks = self.workers.len().min(n).max(1);
            let chunk_size = n.div_ceil(chunks);
            let (tx, rx) = channel();
            let jobs = self.jobs.as_ref().expect("pool alive while predictor exists");
            for c in 0..chunks {
                let start = c * chunk_size;
                // With `chunk_size = ceil(n / chunks)` the tail chunks
                // can be empty (e.g. n = 5 over 4 workers): stop
                // dispatching then.
                if start >= n {
                    break;
                }
                let end = ((c + 1) * chunk_size).min(n);
                jobs.send(Job {
                    compiled: Arc::clone(&compiled),
                    mapping: Arc::clone(&mapping),
                    start,
                    end,
                    out: tx.clone(),
                })
                .expect("worker pool alive");
            }
            drop(tx);

            let mut received = 0usize;
            for (start, values) in rx {
                received += values.len();
                for (k, t) in values.into_iter().enumerate() {
                    results[miss_idx[start + k]] = t;
                }
            }
            assert_eq!(received, n, "a prediction worker died mid-batch");
        }
        self.miss_solve_ns
            .fetch_add(solve_start.elapsed().as_nanos() as u64, Ordering::Relaxed);

        if self.cache_capacity > 0 {
            let mut caches = self.caches.lock().expect("cache poisoned");
            let cache = caches
                .entry(id.0)
                .or_insert_with(|| LruCache::new(self.cache_capacity));
            for &i in &miss_idx {
                cache.insert(sequences[i].clone(), results[i]);
            }
        }
        Ok(results)
    }

    /// Predicts a single sequence — [`predict_batch`](Self::predict_batch)
    /// with a batch of one.
    pub fn predict(&self, id: MappingId, sequence: &Experiment) -> f64 {
        self.predict_batch(id, std::slice::from_ref(sequence))[0]
    }

    /// Answers a mixed batch in which every query names its mapping,
    /// returning throughputs in input order — the entry point for front
    /// ends whose streams interleave platforms (the CLI's serving mode,
    /// the `fig_predict` sweep). Queries are grouped per mapping and
    /// each group goes through [`predict_batch`](Self::predict_batch).
    ///
    /// # Panics
    ///
    /// As for [`predict_batch`](Self::predict_batch).
    pub fn predict_routed(&self, queries: &[(MappingId, Experiment)]) -> Vec<f64> {
        self.try_predict_routed(queries)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("mapping unavailable: {e}")))
            .collect()
    }

    /// [`predict_routed`](Self::predict_routed) that surfaces
    /// lazy-reload failures per query: when one mapping's payload cannot
    /// be (re)loaded, every query routed to it gets that `Err` while the
    /// other mappings' queries answer normally — one rotten artifact on
    /// disk must not take down the window it was coalesced into.
    pub fn try_predict_routed(
        &self,
        queries: &[(MappingId, Experiment)],
    ) -> Vec<Result<f64, StoreError>> {
        let mut out: Vec<Result<f64, StoreError>> = vec![Ok(0.0); queries.len()];
        let mut ids: Vec<MappingId> = queries.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            let (slots, seqs): (Vec<usize>, Vec<Experiment>) = queries
                .iter()
                .enumerate()
                .filter(|(_, (gid, _))| *gid == id)
                .map(|(slot, (_, e))| (slot, e.clone()))
                .unzip();
            match self.try_predict_batch(id, &seqs) {
                Ok(values) => {
                    for (slot, t) in slots.into_iter().zip(values) {
                        out[slot] = Ok(t);
                    }
                }
                Err(e) => {
                    for slot in slots {
                        out[slot] = Err(e.clone());
                    }
                }
            }
        }
        out
    }
}

impl Drop for Predictor {
    fn drop(&mut self) {
        // Closing the channel ends every worker loop; join so no thread
        // outlives the service.
        drop(self.jobs.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{InstId, PortSet, UopEntry};

    fn demo_store() -> (MappingStore, MappingId) {
        let mut store = MappingStore::new();
        let id = store.insert(
            "demo",
            vec!["add".into(), "mul".into(), "store".into()],
            ThreeLevelMapping::new(
                3,
                vec![
                    vec![UopEntry::new(1, PortSet::from_ports(&[0, 1]))],
                    vec![UopEntry::new(1, PortSet::from_ports(&[0]))],
                    vec![UopEntry::new(1, PortSet::from_ports(&[2]))],
                ],
            ),
        );
        (store, id)
    }

    fn demo_sequences() -> Vec<Experiment> {
        vec![
            Experiment::from_counts(&[(InstId(0), 2), (InstId(1), 1)]),
            Experiment::singleton(InstId(1)),
            Experiment::from_counts(&[(InstId(0), 2), (InstId(1), 1)]), // duplicate of [0]
            Experiment::from_counts(&[(InstId(2), 5)]),
        ]
    }

    #[test]
    fn batch_matches_reference_throughput_bitwise() {
        let (store, id) = demo_store();
        let mapping = store.get(id).mapping().unwrap();
        let predictor = Predictor::new(store, PredictorConfig { workers: 3, cache_capacity: 8 });
        let seqs = demo_sequences();
        let got = predictor.predict_batch(id, &seqs);
        for (e, t) in seqs.iter().zip(&got) {
            assert_eq!(t.to_bits(), mapping.throughput(e).to_bits(), "mismatch on {e}");
        }
    }

    #[test]
    fn cache_hits_are_counted_and_bit_identical() {
        let (store, id) = demo_store();
        let predictor = Predictor::new(store, PredictorConfig { workers: 2, cache_capacity: 8 });
        let seqs = demo_sequences();
        let first = predictor.predict_batch(id, &seqs);
        // In-batch duplicates are both misses (4 queries, 0 hits).
        assert_eq!(predictor.stats().queries, 4);
        assert_eq!(predictor.stats().cache_hits, 0);
        let second = predictor.predict_batch(id, &seqs);
        assert_eq!(predictor.stats().cache_hits, 4);
        assert_eq!(predictor.stats().batches, 2);
        let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&first), bits(&second));
        assert!((predictor.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_off_still_answers_identically() {
        let (store, id) = demo_store();
        let cached = Predictor::new(store, PredictorConfig { workers: 1, cache_capacity: 8 });
        let (store2, id2) = demo_store();
        let uncached = Predictor::new(store2, PredictorConfig { workers: 1, cache_capacity: 0 });
        let seqs = demo_sequences();
        let a = cached.predict_batch(id, &seqs);
        let b = uncached.predict_batch(id2, &seqs);
        assert_eq!(
            a.iter().map(|t| t.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|t| t.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(uncached.stats().cache_hits, 0);
        let again = uncached.predict_batch(id2, &seqs);
        assert_eq!(uncached.stats().cache_hits, 0);
        assert_eq!(again[0].to_bits(), a[0].to_bits());
    }

    #[test]
    fn routed_batches_interleave_mappings_in_input_order() {
        let (mut store, a) = demo_store();
        let b = store.insert(
            "other",
            vec!["x".into()],
            ThreeLevelMapping::new(1, vec![vec![UopEntry::new(3, PortSet::from_ports(&[0]))]]),
        );
        let predictor = Predictor::new(store, PredictorConfig { workers: 2, cache_capacity: 8 });
        let queries = vec![
            (a, Experiment::singleton(InstId(1))),           // mul on port 0 → 1.0
            (b, Experiment::singleton(InstId(0))),           // 3 µops on 1 port → 3.0
            (a, Experiment::from_counts(&[(InstId(2), 4)])), // 4 stores on port 2 → 4.0
        ];
        assert_eq!(predictor.predict_routed(&queries), vec![1.0, 3.0, 4.0]);
        assert_eq!(predictor.predict_routed(&[]), Vec::<f64>::new());
    }

    #[test]
    fn single_query_and_empty_batch() {
        let (store, id) = demo_store();
        let predictor = Predictor::new(store, PredictorConfig::default());
        assert_eq!(predictor.predict(id, &Experiment::singleton(InstId(1))), 1.0);
        assert_eq!(predictor.predict_batch(id, &[]), Vec::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "outside mapping")]
    fn out_of_universe_sequences_are_rejected_up_front() {
        let (store, id) = demo_store();
        let predictor = Predictor::new(store, PredictorConfig { workers: 1, cache_capacity: 0 });
        predictor.predict(id, &Experiment::singleton(InstId(40)));
    }

    #[test]
    fn hot_reload_swaps_snapshots_and_keeps_old_ids_answering() {
        let (store, v1) = demo_store();
        let predictor = Predictor::new(store, PredictorConfig { workers: 2, cache_capacity: 8 });
        let before = predictor.snapshot();
        let add = Experiment::singleton(InstId(0));
        let old_answer = predictor.predict(v1, &add); // add on {0,1} → 0.5

        // Deploy a new version of "demo" where add is single-ported.
        let v2 = predictor.insert_mapping(
            "demo",
            vec!["add".into(), "mul".into(), "store".into()],
            ThreeLevelMapping::new(
                3,
                vec![
                    vec![UopEntry::new(1, PortSet::from_ports(&[0]))],
                    vec![UopEntry::new(1, PortSet::from_ports(&[0]))],
                    vec![UopEntry::new(1, PortSet::from_ports(&[2]))],
                ],
            ),
        );
        // The pre-reload snapshot still routes latest → v1 (drain
        // semantics); a fresh snapshot sees v2.
        assert_eq!(before.latest("demo"), Some(v1));
        let after = predictor.snapshot();
        assert_eq!(after.latest("demo"), Some(v2));
        assert_eq!(after.get(v2).label(), "demo@2");
        // Both versions answer with their own bits.
        assert_eq!(predictor.predict(v1, &add).to_bits(), old_answer.to_bits());
        assert_eq!(predictor.predict(v2, &add), 1.0);
    }

    #[test]
    fn load_artifact_rejects_garbage_without_touching_the_store() {
        let (store, _) = demo_store();
        let predictor = Predictor::new(store, PredictorConfig { workers: 1, cache_capacity: 0 });
        let before = predictor.snapshot().len();
        assert!(predictor.load_artifact("demo", vec!["x".into()], "{nope").is_err());
        assert_eq!(predictor.snapshot().len(), before);
    }

    #[test]
    fn per_mapping_counters_break_down_the_query_load() {
        let (mut store, a) = demo_store();
        let b = store.insert(
            "other",
            vec!["x".into()],
            ThreeLevelMapping::new(1, vec![vec![UopEntry::new(1, PortSet::from_ports(&[0]))]]),
        );
        let predictor = Predictor::new(store, PredictorConfig { workers: 1, cache_capacity: 8 });
        predictor.predict_batch(a, &demo_sequences());
        predictor.predict(b, &Experiment::singleton(InstId(0)));
        predictor.predict(b, &Experiment::singleton(InstId(0)));
        assert_eq!(
            predictor.per_mapping_queries(),
            vec![("demo@1".to_string(), 4), ("other@1".to_string(), 2)]
        );
    }

    #[test]
    fn batches_slightly_larger_than_the_pool_complete() {
        // Regression: with ceil-sized chunks a 5-miss batch over 4
        // workers produces an empty tail chunk, which must not be
        // dispatched (it used to underflow `end - start`).
        let (store, id) = demo_store();
        let predictor = Predictor::new(store, PredictorConfig { workers: 4, cache_capacity: 0 });
        for n in 1..=9u32 {
            let seqs: Vec<Experiment> = (0..n)
                .map(|k| Experiment::from_counts(&[(InstId(k % 3), k + 1)]))
                .collect();
            assert_eq!(predictor.predict_batch(id, &seqs).len(), seqs.len());
        }
    }

    #[test]
    fn batches_larger_than_the_pool_complete() {
        let (store, id) = demo_store();
        let predictor = Predictor::new(store, PredictorConfig { workers: 2, cache_capacity: 0 });
        let seqs: Vec<Experiment> = (0..257u32)
            .map(|k| Experiment::from_counts(&[(InstId(k % 3), 1 + k % 5)]))
            .collect();
        let got = predictor.predict_batch(id, &seqs);
        assert_eq!(got.len(), 257);
        assert!(got.iter().all(|t| *t > 0.0));
    }
}
