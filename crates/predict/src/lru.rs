//! A fixed-capacity LRU map for prediction results.
//!
//! The serving layer's query stream is heavily skewed — compilers and
//! superoptimizers ask about the same handful of basic blocks over and
//! over — so a bounded least-recently-used cache in front of the solver
//! turns the common case into a hash lookup. This implementation is the
//! textbook intrusive design: entries live in a slab (`Vec`) threaded
//! into a doubly-linked recency list by index, with a `HashMap` from key
//! to slab slot, so `get`/`insert` are O(1) and eviction reuses the
//! evicted slot instead of allocating.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used map with a fixed capacity.
///
/// A capacity of 0 disables the cache: every lookup misses and inserts
/// are dropped.
///
/// # Example
///
/// ```
/// use pmevo_predict::LruCache;
///
/// let mut cache: LruCache<u32, &str> = LruCache::new(2);
/// cache.insert(1, "one");
/// cache.insert(2, "two");
/// assert_eq!(cache.get(&1), Some(&"one")); // promotes 1
/// cache.insert(3, "three");                // evicts 2, the LRU entry
/// assert_eq!(cache.get(&2), None);
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// The maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.promote(slot);
        Some(&self.slab[slot].value)
    }

    /// Inserts or updates `key`, marking it most recently used; the
    /// least-recently-used entry is evicted when the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            self.promote(slot);
            return;
        }
        let slot = if self.map.len() == self.capacity {
            // Reuse the LRU slot for the new entry.
            let slot = self.tail;
            self.unlink(slot);
            self.map.remove(&self.slab[slot].key);
            self.slab[slot].key = key.clone();
            self.slab[slot].value = value;
            slot
        } else {
            self.slab.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
            self.slab.len() - 1
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    fn promote(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_lru_order() {
        let mut c = LruCache::new(3);
        for k in 0..3 {
            c.insert(k, k * 10);
        }
        assert_eq!(c.get(&0), Some(&0)); // order now 0, 2, 1
        c.insert(3, 30); // evicts 1
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&0), Some(&0));
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn update_promotes_and_replaces() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 3); // update, promotes a
        c.insert("c", 4); // evicts b
        assert_eq!(c.get(&"a"), Some(&3));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), Some(&4));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut c = LruCache::new(0);
        c.insert(1, 1);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let mut c = LruCache::new(1);
        for k in 0..100 {
            c.insert(k, k);
            assert_eq!(c.get(&k), Some(&k));
            assert_eq!(c.len(), 1);
            if k > 0 {
                assert_eq!(c.get(&(k - 1)), None);
            }
        }
    }

    #[test]
    fn slab_never_exceeds_capacity() {
        let mut c = LruCache::new(4);
        for k in 0..1000 {
            c.insert(k % 7, k);
        }
        assert!(c.len() <= 4);
        assert!(c.slab.len() <= 4);
    }
}
