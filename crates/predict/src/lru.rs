//! A fixed-capacity LRU map for prediction results.
//!
//! The serving layer's query stream is heavily skewed — compilers and
//! superoptimizers ask about the same handful of basic blocks over and
//! over — so a bounded least-recently-used cache in front of the solver
//! turns the common case into a hash lookup. This implementation is the
//! textbook intrusive design: entries live in a slab (`Vec`) threaded
//! into a doubly-linked recency list by index, with a `HashMap` from key
//! to slab slot, so `get`/`insert` are O(1) and eviction reuses the
//! evicted slot instead of allocating.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used map with a fixed capacity.
///
/// A capacity of 0 disables the cache: every lookup misses and inserts
/// are dropped.
///
/// # Example
///
/// ```
/// use pmevo_predict::LruCache;
///
/// let mut cache: LruCache<u32, &str> = LruCache::new(2);
/// cache.insert(1, "one");
/// cache.insert(2, "two");
/// assert_eq!(cache.get(&1), Some(&"one")); // promotes 1
/// cache.insert(3, "three");                // evicts 2, the LRU entry
/// assert_eq!(cache.get(&2), None);
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        // Preallocation is a hint; huge capacities (the store's residency
        // tracker is effectively unbounded) must not reserve up front.
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 10)),
            slab: Vec::with_capacity(capacity.min(1 << 10)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// The maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.promote(slot);
        Some(&self.slab[slot].value)
    }

    /// Inserts or updates `key`, marking it most recently used; the
    /// least-recently-used entry is evicted when the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            self.promote(slot);
            return;
        }
        let slot = if self.map.len() == self.capacity {
            // Reuse the LRU slot for the new entry.
            let slot = self.tail;
            self.unlink(slot);
            self.map.remove(&self.slab[slot].key);
            self.slab[slot].key = key.clone();
            self.slab[slot].value = value;
            slot
        } else {
            self.slab.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
            self.slab.len() - 1
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Removes `key`, returning its value if present. Recency of the
    /// remaining entries is unchanged.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let slot = self.map.remove(key)?;
        self.unlink(slot);
        Some(self.remove_slot(slot))
    }

    /// Removes and returns the least-recently-used entry — the eviction
    /// primitive behind the store's byte-budgeted residency accounting,
    /// where "full" is a byte count the caller owns rather than an entry
    /// count this cache could enforce.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let key = self.slab[slot].key.clone();
        self.map.remove(&key);
        self.unlink(slot);
        Some((key, self.remove_slot(slot)))
    }

    /// Frees an already-unlinked `slot` by swap-removing it from the
    /// slab, re-threading the node that moved into its place.
    fn remove_slot(&mut self, slot: usize) -> V {
        let last = self.slab.len() - 1;
        self.slab.swap(slot, last);
        let node = self.slab.pop().expect("slot exists");
        if slot != last {
            // The node formerly at `last` now lives at `slot`: its list
            // neighbors (and the map) still point at `last`.
            let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
            if prev != NIL {
                self.slab[prev].next = slot;
            } else if self.head == last {
                self.head = slot;
            }
            if next != NIL {
                self.slab[next].prev = slot;
            } else if self.tail == last {
                self.tail = slot;
            }
            let moved_key = self.slab[slot].key.clone();
            *self.map.get_mut(&moved_key).expect("moved node is mapped") = slot;
        }
        node.value
    }

    fn promote(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_lru_order() {
        let mut c = LruCache::new(3);
        for k in 0..3 {
            c.insert(k, k * 10);
        }
        assert_eq!(c.get(&0), Some(&0)); // order now 0, 2, 1
        c.insert(3, 30); // evicts 1
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&0), Some(&0));
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn update_promotes_and_replaces() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 3); // update, promotes a
        c.insert("c", 4); // evicts b
        assert_eq!(c.get(&"a"), Some(&3));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), Some(&4));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut c = LruCache::new(0);
        c.insert(1, 1);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let mut c = LruCache::new(1);
        for k in 0..100 {
            c.insert(k, k);
            assert_eq!(c.get(&k), Some(&k));
            assert_eq!(c.len(), 1);
            if k > 0 {
                assert_eq!(c.get(&(k - 1)), None);
            }
        }
    }

    #[test]
    fn remove_and_pop_lru_keep_the_list_consistent() {
        let mut c = LruCache::new(4);
        for k in 0..4 {
            c.insert(k, k * 10);
        }
        // Recency (MRU→LRU): 3 2 1 0.
        assert_eq!(c.remove(&2), Some(20)); // middle of the list
        assert_eq!(c.remove(&2), None);
        assert_eq!(c.pop_lru(), Some((0, 0)));
        assert_eq!(c.pop_lru(), Some((1, 10)));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.pop_lru(), Some((3, 30)));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
        // The cache still works after draining.
        c.insert(9, 90);
        assert_eq!(c.get(&9), Some(&90));
    }

    #[test]
    fn removing_head_and_tail_rethreads_correctly() {
        let mut c = LruCache::new(8);
        for k in 0..5 {
            c.insert(k, k);
        }
        assert_eq!(c.remove(&4), Some(4)); // head (MRU)
        assert_eq!(c.remove(&0), Some(0)); // tail (LRU)
        c.insert(7, 7);
        assert_eq!(c.pop_lru(), Some((1, 1)));
        assert_eq!(c.len(), 3);
        for k in [2, 3, 7] {
            assert!(c.get(&k).is_some(), "{k} survived");
        }
    }

    #[test]
    fn slab_never_exceeds_capacity() {
        let mut c = LruCache::new(4);
        for k in 0..1000 {
            c.insert(k % 7, k);
        }
        assert!(c.len() <= 4);
        assert!(c.slab.len() <= 4);
    }
}
