//! Model-based check of [`LruCache`] against a deliberately naive
//! reference: a `Vec` ordered most-recent-first with linear scans.
//! Random op streams (insert/get/remove/pop_lru) over a small key range
//! must produce identical observable behaviour — including the full
//! recency order, which the final drain-by-`pop_lru` comparison pins
//! down exactly.

use pmevo_predict::LruCache;
use proptest::collection::vec;
use proptest::prelude::*;

/// The naive reference: entries most-recent-first, every operation a
/// linear scan. Too slow to ship, trivially correct to review.
struct ModelLru {
    capacity: usize,
    /// `entries[0]` is the most recently used.
    entries: Vec<(u64, u64)>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru { capacity, entries: Vec::new() }
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(entry.1)
    }

    fn insert(&mut self, key: u64, value: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (key, value));
    }

    fn remove(&mut self, key: u64) -> Option<u64> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        Some(self.entries.remove(pos).1)
    }

    fn pop_lru(&mut self) -> Option<(u64, u64)> {
        self.entries.pop()
    }
}

/// One operation: (opcode, key, value). Keys are drawn from a tiny
/// range so streams collide constantly — the interesting regime for
/// recency bookkeeping.
type Op = (u8, u64, u64);

fn apply(cache: &mut LruCache<u64, u64>, model: &mut ModelLru, op: Op) {
    let (code, key, value) = op;
    match code % 4 {
        0 => cache.insert(key, value),
        1 => assert_eq!(cache.get(&key).copied(), model.get(key), "get({key})"),
        2 => assert_eq!(cache.remove(&key), model.remove(key), "remove({key})"),
        _ => assert_eq!(cache.pop_lru(), model.pop_lru(), "pop_lru"),
    }
    if code % 4 == 0 {
        model.insert(key, value);
    }
    assert_eq!(cache.len(), model.entries.len(), "len after {op:?}");
    assert_eq!(cache.is_empty(), model.entries.is_empty());
}

proptest! {
    #[test]
    fn lru_matches_naive_model(
        capacity in 0usize..=4,
        ops in vec((0u8..4, 0u64..8, 0u64..100), 0..64),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut model = ModelLru::new(capacity);
        prop_assert_eq!(cache.capacity(), capacity);
        for op in ops {
            apply(&mut cache, &mut model, op);
        }
        // Drain both by recency: this compares not just the surviving
        // key/value pairs but their exact least-recently-used order.
        loop {
            let (got, want) = (cache.pop_lru(), model.pop_lru());
            prop_assert_eq!(got, want, "drain order diverged");
            if got.is_none() {
                break;
            }
        }
    }
}
