//! Fleet-scale acceptance for the memory-budgeted [`MappingStore`]
//! (ISSUE 9 tentpole): a store holding 1000 `name@version` binary
//! artifacts under a byte budget far below their total size must answer
//! every query **byte-identically** to an unbudgeted store, at every
//! worker count — the budget buys memory with reload latency, never
//! with answers.

use pmevo_core::{Experiment, InstId, MappingArtifact, PortSet, ThreeLevelMapping, UopEntry};
use pmevo_predict::{MappingId, MappingStore, Predictor, PredictorConfig};
use std::path::PathBuf;

const NAMES: usize = 40;
const VERSIONS: usize = 25;

/// Deterministic xorshift64* stream — no external RNG needed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Shape of one fleet name: all its versions share the instruction
/// universe (so their name tables intern) and the port count.
fn fleet_shape(name_idx: usize) -> (usize, usize) {
    let num_ports = 2 + name_idx % 4;
    let num_insts = 4 + name_idx % 7;
    (num_ports, num_insts)
}

fn fleet_names(name_idx: usize) -> Vec<String> {
    let (_, num_insts) = fleet_shape(name_idx);
    (0..num_insts).map(|i| format!("n{name_idx}_op{i}")).collect()
}

/// One version's mapping: same shape as every other version of the
/// name, different decomposition content.
fn fleet_mapping(name_idx: usize, version: usize) -> ThreeLevelMapping {
    let (num_ports, num_insts) = fleet_shape(name_idx);
    let mut rng = Rng(0x9e37_79b9 + (name_idx as u64) * 1009 + version as u64);
    let decomp = (0..num_insts)
        .map(|_| {
            (0..1 + rng.below(3))
                .map(|_| {
                    let mask = 1 + rng.below((1 << num_ports) - 1);
                    UopEntry::new(1 + rng.below(2) as u32, PortSet::from_mask(mask))
                })
                .collect()
        })
        .collect();
    ThreeLevelMapping::new(num_ports, decomp)
}

/// Writes the full 1000-artifact fleet to disk, returning
/// `paths[name_idx][version_idx]`.
fn write_fleet() -> Vec<Vec<PathBuf>> {
    let dir = std::env::temp_dir().join("pmevo_store_budget_test");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    (0..NAMES)
        .map(|n| {
            (0..VERSIONS)
                .map(|v| {
                    let path = dir.join(format!("n{n}_v{v}.bin"));
                    let artifact =
                        MappingArtifact::new(fleet_names(n), fleet_mapping(n, v));
                    std::fs::write(&path, artifact.to_bytes()).expect("write artifact");
                    path
                })
                .collect()
        })
        .collect()
}

fn build_store(paths: &[Vec<PathBuf>], budget: Option<u64>) -> MappingStore {
    let mut store = MappingStore::with_budget(budget);
    for (n, versions) in paths.iter().enumerate() {
        for path in versions {
            store
                .insert_from_file(format!("N{n}"), path.to_str().unwrap(), None)
                .expect("fleet artifact registers");
        }
    }
    store
}

/// A seeded query stream across the whole fleet (every version is
/// addressable and queried, not just `latest`).
fn workload(store: &MappingStore, total: usize) -> Vec<(MappingId, Experiment)> {
    let ids: Vec<MappingId> = store.ids().collect();
    let mut rng = Rng(0xf1ee_7000_abcd_ef01);
    (0..total)
        .map(|_| {
            let id = ids[rng.below(ids.len() as u64) as usize];
            let num_insts = store.get(id).num_insts() as u64;
            let counts: Vec<(InstId, u32)> = (0..1 + rng.below(3))
                .map(|_| (InstId(rng.below(num_insts) as u32), 1 + rng.below(3) as u32))
                .collect();
            (id, Experiment::from_counts(&counts))
        })
        .collect()
}

fn answer(store: MappingStore, workers: usize, queries: &[(MappingId, Experiment)]) -> Vec<u64> {
    let predictor =
        Predictor::new(store, PredictorConfig { workers, cache_capacity: 0 });
    let mut bits = Vec::with_capacity(queries.len());
    for chunk in queries.chunks(64) {
        for result in predictor.try_predict_routed(chunk) {
            bits.push(result.expect("fleet artifacts stay readable").to_bits());
        }
    }
    bits
}

#[test]
fn thousand_mapping_store_under_budget_answers_bit_identically() {
    let paths = write_fleet();

    let reference_store = build_store(&paths, None);
    assert_eq!(reference_store.len(), NAMES * VERSIONS);
    // `name@version` addressing reaches every entry, and versions of a
    // name share one interned name table (same allocation).
    let id13 = reference_store.lookup("N7", 13).expect("N7@13 exists");
    assert_eq!(reference_store.get(id13).label(), "N7@13");
    let id14 = reference_store.lookup("N7", 14).expect("N7@14 exists");
    assert!(
        std::ptr::eq(
            reference_store.get(id13).inst_names().as_ptr(),
            reference_store.get(id14).inst_names().as_ptr()
        ),
        "versions of one name intern one table"
    );

    let total_payload: u64 =
        reference_store.ids().map(|id| reference_store.get(id).payload_bytes()).sum();
    let budget = total_payload / 4;
    let queries = workload(&reference_store, 4000);
    let reference = answer(reference_store, 1, &queries);

    for workers in [1usize, 2, 8] {
        let store = build_store(&paths, Some(budget));
        let bits = answer(store, workers, &queries);
        assert_eq!(
            bits, reference,
            "budgeted store ({workers} workers) must answer bit-identically"
        );
    }

    // The budget machinery must actually have been exercised — and the
    // byte account must respect the cap once the stream has drained.
    let store = build_store(&paths, Some(budget));
    let predictor = Predictor::new(store, PredictorConfig { workers: 2, cache_capacity: 0 });
    for chunk in queries.chunks(64) {
        for result in predictor.try_predict_routed(chunk) {
            result.expect("fleet artifacts stay readable");
        }
    }
    let stats = predictor.snapshot().residency_stats();
    assert_eq!(stats.budget, Some(budget));
    assert!(stats.evictions > 0, "a quarter budget must evict: {stats:?}");
    assert!(stats.reloads > 0, "evicted payloads must have reloaded: {stats:?}");
    assert!(
        stats.resident_bytes <= budget,
        "the byte account respects the cap: {stats:?}"
    );
    let resident = predictor.snapshot().resident_count();
    assert!(
        resident < NAMES * VERSIONS,
        "not everything can be resident under a quarter budget"
    );
}
