//! Property tests: a [`Predictor`]'s batch predictions are **bit
//! identical** across 1/2/8 workers and across cache-on/cache-off, and
//! they agree bit-for-bit with the naive per-sequence reference path
//! (`ThreeLevelMapping::throughput`) — on random mappings and random
//! query streams (ISSUE 5 satellite).

use pmevo_core::{Experiment, InstId, PortSet, ThreeLevelMapping, UopEntry};
use pmevo_predict::{MappingStore, Predictor, PredictorConfig};
use proptest::prelude::*;

const NUM_INSTS: usize = 6;
const NUM_PORTS: usize = 4;

fn mapping_strategy() -> impl Strategy<Value = ThreeLevelMapping> {
    proptest::collection::vec(
        proptest::collection::vec((1u32..4, 1u64..(1 << NUM_PORTS)), 1..4),
        NUM_INSTS,
    )
    .prop_map(|decomp| {
        ThreeLevelMapping::new(
            NUM_PORTS,
            decomp
                .into_iter()
                .map(|entries| {
                    entries
                        .into_iter()
                        .map(|(n, mask)| UopEntry::new(n, PortSet::from_mask(mask)))
                        .collect()
                })
                .collect(),
        )
    })
}

/// Random query streams with duplicates (indices into a small pool of
/// random sequences), so the cache actually serves hits mid-stream.
fn stream_strategy() -> impl Strategy<Value = Vec<Experiment>> {
    let pool = proptest::collection::vec(
        proptest::collection::vec((0u32..NUM_INSTS as u32, 1u32..5), 1..5),
        1..12,
    );
    (pool, proptest::collection::vec(0usize..1024, 1..40)).prop_map(
        |(pool, picks)| {
            let pool: Vec<Experiment> = pool
                .into_iter()
                .map(|counts| {
                    let pairs: Vec<(InstId, u32)> =
                        counts.into_iter().map(|(i, n)| (InstId(i), n)).collect();
                    Experiment::from_counts(&pairs)
                })
                .collect();
            picks.into_iter().map(|p| pool[p % pool.len()].clone()).collect()
        },
    )
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|t| t.to_bits()).collect()
}

/// Serves `stream` through a fresh predictor in `chunk`-sized batches —
/// later batches can hit cache entries written by earlier ones, and the
/// chunk size steers which miss path runs (inline single/small batches
/// vs pool fan-out vs lane-coalesced lockstep solves).
fn serve(
    mapping: &ThreeLevelMapping,
    stream: &[Experiment],
    workers: usize,
    cache: usize,
    chunk: usize,
) -> Vec<f64> {
    let mut store = MappingStore::new();
    let names = (0..NUM_INSTS).map(|i| format!("i{i}")).collect();
    let id = store.insert("P", names, mapping.clone());
    let predictor = Predictor::new(store, PredictorConfig { workers, cache_capacity: cache });
    let mut out = Vec::with_capacity(stream.len());
    for chunk in stream.chunks(chunk) {
        out.extend(predictor.predict_batch(id, chunk));
    }
    out
}

proptest! {
    // Each case serves 9 predictor configurations × 3 batch sizes; 48
    // cases keep the suite around a second (override downward with
    // PROPTEST_CASES).
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole serving contract: for random mappings and random
    /// skewed query streams, every (worker count × cache mode × batch
    /// size) serving configuration returns byte-for-byte the same
    /// answers as the naive reference path. Batch size 1 pins the
    /// inline miss path, 7 the small-batch hand-off, 64 the
    /// lane-coalesced lockstep solve.
    #[test]
    fn predictions_are_bit_identical_across_workers_and_cache_modes(
        mapping in mapping_strategy(),
        stream in stream_strategy(),
    ) {
        let reference: Vec<f64> = stream.iter().map(|e| mapping.throughput(e)).collect();
        let reference_bits = bits(&reference);
        for workers in [1usize, 2, 8] {
            for cache in [0usize, 4, 1 << 12] {
                for chunk in [1usize, 7, 64] {
                    let served = serve(&mapping, &stream, workers, cache, chunk);
                    prop_assert_eq!(
                        bits(&served),
                        reference_bits.clone(),
                        "{} workers, cache capacity {}, batch size {}",
                        workers,
                        cache,
                        chunk
                    );
                }
            }
        }
    }

    /// Store versioning never mixes answers: two versions of the same
    /// name answer with their own mapping's bits, and `latest` routes to
    /// the newest.
    #[test]
    fn versioned_entries_answer_independently(
        m1 in mapping_strategy(),
        m2 in mapping_strategy(),
        stream in stream_strategy(),
    ) {
        let names = |n: usize| (0..n).map(|i| format!("i{i}")).collect::<Vec<_>>();
        let mut store = MappingStore::new();
        let v1 = store.insert("P", names(NUM_INSTS), m1.clone());
        let v2 = store.insert("P", names(NUM_INSTS), m2.clone());
        prop_assert_eq!(store.latest("P"), Some(v2));
        let predictor = Predictor::new(store, PredictorConfig { workers: 2, cache_capacity: 64 });
        let got1 = predictor.predict_batch(v1, &stream);
        let got2 = predictor.predict_batch(v2, &stream);
        let want1: Vec<f64> = stream.iter().map(|e| m1.throughput(e)).collect();
        let want2: Vec<f64> = stream.iter().map(|e| m2.throughput(e)).collect();
        prop_assert_eq!(bits(&got1), bits(&want1));
        prop_assert_eq!(bits(&got2), bits(&want2));
    }
}
