//! Property tests for the simplex solver.
//!
//! Strategy: we cannot brute-force general LP optima, but we can check the
//! two halves of optimality separately:
//!
//! * every returned solution must be *feasible* (satisfy all constraints
//!   and non-negativity), and
//! * the returned objective must not be beaten by any feasible point we can
//!   construct independently (here: scaled unit vectors and the origin).

use proptest::prelude::*;
use pmevo_lp::{LpError, Problem, Relation};

const TOL: f64 = 1e-6;

fn relation_strategy() -> impl Strategy<Value = Relation> {
    prop_oneof![
        Just(Relation::Le),
        Just(Relation::Ge),
        Just(Relation::Eq),
    ]
}

/// A random problem together with its raw constraint data for re-checking.
fn problem_strategy() -> impl Strategy<Value = Problem> {
    let coeff = -5.0..5.0f64;
    let n_vars = 1..5usize;
    n_vars.prop_flat_map(move |n| {
        let cons = (
            proptest::collection::vec((0..n, -5.0..5.0f64), 1..=n),
            relation_strategy(),
            -4.0..4.0f64,
        );
        (
            proptest::collection::vec(coeff.clone(), n),
            proptest::collection::vec(cons, 1..6),
        )
            .prop_map(move |(obj, constraints)| {
                let mut p = Problem::minimize(n);
                for (i, c) in obj.iter().enumerate() {
                    p.set_objective_coeff(i, *c);
                }
                for (terms, rel, rhs) in constraints {
                    p.add_constraint(&terms, rel, rhs);
                }
                p
            })
    })
}

fn is_feasible(p: &Problem, x: &[f64]) -> bool {
    if x.iter().any(|&v| v < -TOL) {
        return false;
    }
    p.constraints().iter().all(|c| {
        let lhs: f64 = c.terms().iter().map(|&(v, co)| co * x[v]).sum();
        match c.relation() {
            Relation::Le => lhs <= c.rhs() + TOL,
            Relation::Ge => lhs >= c.rhs() - TOL,
            Relation::Eq => (lhs - c.rhs()).abs() <= TOL,
        }
    })
}

fn objective_of(p: &Problem, x: &[f64]) -> f64 {
    p.objective().iter().zip(x).map(|(c, v)| c * v).sum()
}

proptest! {
    // Case budget: capped so the whole workspace suite stays well under
    // a minute; override downward with PROPTEST_CASES=<n> (see vendored
    // proptest). Cases are drawn from a per-test deterministic seed.
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn solutions_are_feasible_and_not_dominated(p in problem_strategy()) {
        match p.solve() {
            Ok(sol) => {
                prop_assert!(is_feasible(&p, sol.values()),
                    "solver returned infeasible point {:?}", sol.values());
                prop_assert!((objective_of(&p, sol.values()) - sol.objective()).abs() < 1e-6);
                // Candidate feasible points must not beat the optimum.
                let n = p.num_vars();
                let mut candidates: Vec<Vec<f64>> = vec![vec![0.0; n]];
                for i in 0..n {
                    for scale in [0.5, 1.0, 2.0, 5.0] {
                        let mut v = vec![0.0; n];
                        v[i] = scale;
                        candidates.push(v);
                    }
                }
                for cand in candidates {
                    if is_feasible(&p, &cand) {
                        prop_assert!(objective_of(&p, &cand) >= sol.objective() - 1e-6,
                            "feasible point {cand:?} beats reported optimum");
                    }
                }
            }
            Err(LpError::Infeasible) => {
                // The origin must indeed be infeasible (it is feasible for
                // problems with only Le constraints with rhs >= 0, etc.).
                let origin = vec![0.0; p.num_vars()];
                prop_assert!(!is_feasible(&p, &origin),
                    "solver claimed infeasible but origin is feasible");
            }
            Err(LpError::Unbounded) => {
                // Nothing cheap to check; acceptable outcome.
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }
}
