//! Linear program construction.

use crate::simplex::{self, SimplexOptions, Solution};
use crate::LpError;

/// Relation of a linear constraint between its left-hand side and its
/// right-hand side constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Left-hand side is less than or equal to the right-hand side.
    Le,
    /// Left-hand side is greater than or equal to the right-hand side.
    Ge,
    /// Left-hand side equals the right-hand side.
    Eq,
}

/// A single linear constraint `Σ coeff_j · x_j  (≤ | ≥ | =)  rhs`.
///
/// Coefficients are stored sparsely as `(variable index, coefficient)`
/// pairs. Constraints are created through [`Problem::add_constraint`].
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

impl Constraint {
    /// The sparse `(variable, coefficient)` terms of the left-hand side.
    pub fn terms(&self) -> &[(usize, f64)] {
        &self.terms
    }

    /// The relation between left-hand side and right-hand side.
    pub fn relation(&self) -> Relation {
        self.relation
    }

    /// The right-hand side constant.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }
}

/// A linear program over non-negative variables, to be minimized.
///
/// Variables are addressed by dense indices `0..num_vars`. Every variable is
/// implicitly bounded below by zero; there are no upper bounds other than
/// those expressed by constraints. The objective is always *minimization*;
/// to maximize, negate the objective coefficients.
///
/// # Example
///
/// ```
/// use pmevo_lp::{Problem, Relation};
///
/// # fn main() -> Result<(), pmevo_lp::LpError> {
/// // minimize x0 + 2 x1  s.t.  x0 + x1 >= 3
/// let mut p = Problem::minimize(2);
/// p.set_objective_coeff(0, 1.0);
/// p.set_objective_coeff(1, 2.0);
/// p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 3.0);
/// let sol = p.solve()?;
/// assert!((sol.objective() - 3.0).abs() < 1e-9);
/// assert!((sol.value(0) - 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Problem {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates a minimization problem with `num_vars` non-negative
    /// variables and an all-zero objective.
    pub fn minimize(num_vars: usize) -> Self {
        Problem {
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// The number of variables of the problem.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// The number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: f64) {
        assert!(
            var < self.objective.len(),
            "objective variable {var} out of range ({} vars)",
            self.objective.len()
        );
        self.objective[var] = coeff;
    }

    /// The current objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds the constraint `Σ terms (relation) rhs`.
    ///
    /// Duplicate variable indices in `terms` are summed. Indices are
    /// validated lazily by [`solve`](Self::solve), so that building a
    /// problem never fails.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], relation: Relation, rhs: f64) {
        self.constraints.push(Constraint {
            terms: terms.to_vec(),
            relation,
            rhs,
        });
    }

    /// Builds the least-absolute-deviations regression LP: find
    /// non-negative weights `w` minimizing `Σ_r |rowsᵣ·w − targetsᵣ|`.
    ///
    /// Each residual is linearized with a split slack pair `(u_r, v_r)`:
    /// variables are `w_0..w_{num_weights}` followed by the slack pairs
    /// in row order, the objective is `Σ (u_r + v_r)`, and each row
    /// contributes `rowsᵣ·w + u_r − v_r = targetsᵣ`. The fitted weights
    /// are `solution.value(0..num_weights)`.
    ///
    /// Rows are sparse `(weight_index, coefficient)` lists; the problem
    /// is always feasible and bounded, so
    /// [`solve`](Self::solve) succeeds up to the iteration limit.
    ///
    /// # Example
    ///
    /// ```
    /// use pmevo_lp::Problem;
    ///
    /// // Fit y ≈ w·x to (x, y) = (1, 2), (2, 4), (3, 7): LAD picks a
    /// // weight with zero residual on two of the three points.
    /// let p = Problem::least_absolute_deviations(
    ///     2,
    ///     &[vec![(0, 1.0)], vec![(0, 2.0)], vec![(0, 3.0)]],
    ///     &[2.0, 4.0, 7.0],
    /// );
    /// let w = p.solve().unwrap().value(0);
    /// assert!((w - 2.0).abs() < 1e-9 || (w - 7.0 / 3.0).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `targets` have different lengths. `num_weights`
    /// must cover every index referenced by `rows` (checked by `solve`).
    pub fn least_absolute_deviations(
        num_weights: usize,
        rows: &[Vec<(usize, f64)>],
        targets: &[f64],
    ) -> Self {
        assert_eq!(rows.len(), targets.len(), "one target per regression row");
        let m = rows.len();
        let mut lp = Problem::minimize(num_weights + 2 * m);
        for r in 0..m {
            lp.set_objective_coeff(num_weights + 2 * r, 1.0);
            lp.set_objective_coeff(num_weights + 2 * r + 1, 1.0);
        }
        for (r, (row, &target)) in rows.iter().zip(targets).enumerate() {
            let mut terms = row.clone();
            terms.push((num_weights + 2 * r, 1.0));
            terms.push((num_weights + 2 * r + 1, -1.0));
            lp.add_constraint(&terms, Relation::Eq, target);
        }
        lp
    }

    /// Solves the problem with default [`SimplexOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`] or [`LpError::Unbounded`] for
    /// problems without finite optimum, [`LpError::InvalidVariable`] if a
    /// constraint references an out-of-range variable, and
    /// [`LpError::IterationLimit`] if the pivot budget is exhausted.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solves the problem with explicit solver options.
    ///
    /// # Errors
    ///
    /// See [`solve`](Self::solve).
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<Solution, LpError> {
        for c in &self.constraints {
            for &(var, _) in &c.terms {
                if var >= self.num_vars() {
                    return Err(LpError::InvalidVariable {
                        index: var,
                        num_vars: self.num_vars(),
                    });
                }
            }
        }
        simplex::solve(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut p = Problem::minimize(2);
        p.set_objective_coeff(1, 4.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 5.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.objective(), &[0.0, 4.0]);
        let c = &p.constraints()[0];
        assert_eq!(c.terms(), &[(0, 1.0)]);
        assert_eq!(c.relation(), Relation::Le);
        assert_eq!(c.rhs(), 5.0);
    }

    #[test]
    fn invalid_variable_is_reported() {
        let mut p = Problem::minimize(1);
        p.add_constraint(&[(3, 1.0)], Relation::Le, 1.0);
        assert_eq!(
            p.solve().unwrap_err(),
            LpError::InvalidVariable {
                index: 3,
                num_vars: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn objective_out_of_range_panics() {
        let mut p = Problem::minimize(1);
        p.set_objective_coeff(2, 1.0);
    }
}
