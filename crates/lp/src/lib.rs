//! A small, self-contained linear-programming solver.
//!
//! This crate is the substrate that stands in for the Gurobi LP solver used
//! in the PMEvo paper (Ritter & Hack, PLDI 2020, Section 5.4). It implements
//! a dense **two-phase primal simplex** method with Bland's anti-cycling
//! pivot rule, which is exact (up to floating-point tolerance) on the small
//! throughput linear programs that PMEvo produces: a handful of constraints
//! over `|µops| × |ports| + 1` variables.
//!
//! All variables are implicitly constrained to be non-negative, which
//! matches the throughput LP of the paper (Definition 3) where every
//! variable is a mass share `x_{ik} ≥ 0` or the throughput bound `t ≥ 0`.
//!
//! # Example
//!
//! Minimize `t` subject to `x1 + x2 = 2`, `x1 ≤ t`, `x2 ≤ t`:
//!
//! ```
//! use pmevo_lp::{Problem, Relation};
//!
//! # fn main() -> Result<(), pmevo_lp::LpError> {
//! let mut p = Problem::minimize(3); // variables: x1, x2, t
//! p.set_objective_coeff(2, 1.0); // minimize t
//! p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
//! p.add_constraint(&[(0, 1.0), (2, -1.0)], Relation::Le, 0.0);
//! p.add_constraint(&[(1, 1.0), (2, -1.0)], Relation::Le, 0.0);
//! let sol = p.solve()?;
//! assert!((sol.objective() - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

mod problem;
mod simplex;

pub use problem::{Constraint, Problem, Relation};
pub use simplex::{SimplexOptions, Solution};

use std::error::Error;
use std::fmt;

/// Errors reported by the simplex solver.
///
/// Returned by [`Problem::solve`] and [`Problem::solve_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// No assignment satisfies all constraints.
    Infeasible,
    /// The objective can be decreased without bound.
    Unbounded,
    /// The iteration limit was exceeded before reaching an optimum.
    IterationLimit,
    /// A constraint references a variable index outside the problem.
    InvalidVariable {
        /// The offending variable index.
        index: usize,
        /// The number of variables in the problem.
        num_vars: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::InvalidVariable { index, num_vars } => write!(
                f,
                "variable index {index} out of range for problem with {num_vars} variables"
            ),
        }
    }
}

impl Error for LpError {}
