//! Dense two-phase primal simplex with Bland's anti-cycling rule.
//!
//! The implementation follows the classical tableau method as described in
//! Bertsimas & Tsitsiklis, *Introduction to Linear Optimization* (the
//! textbook the PMEvo paper cites for its LP background):
//!
//! 1. Constraints are brought to standard form `A x = b, x ≥ 0, b ≥ 0` by
//!    adding slack/surplus variables and flipping rows with negative `b`.
//! 2. Phase 1 minimizes the sum of artificial variables to find a basic
//!    feasible solution (or prove infeasibility).
//! 3. Phase 2 minimizes the user objective starting from that basis.
//!
//! Bland's rule (choose the lowest-index eligible entering and leaving
//! variable) guarantees termination even on degenerate problems; the LPs in
//! this workspace are tiny, so its slower convergence is irrelevant.

use crate::problem::{Problem, Relation};
use crate::LpError;

/// Numerical tolerance used for pivot and optimality decisions.
const DEFAULT_TOL: f64 = 1e-9;

/// Tunable parameters of the simplex solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexOptions {
    /// Absolute tolerance for reduced-cost and ratio tests.
    pub tolerance: f64,
    /// Maximum number of pivots across both phases.
    pub max_pivots: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            tolerance: DEFAULT_TOL,
            max_pivots: 100_000,
        }
    }
}

/// An optimal solution of a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    objective: f64,
    values: Vec<f64>,
    pivots: usize,
}

impl Solution {
    /// The optimal objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The value of variable `var` in the optimal solution.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn value(&self, var: usize) -> f64 {
        self.values[var]
    }

    /// All variable values, indexed by variable.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of simplex pivots performed to reach the optimum.
    pub fn pivots(&self) -> usize {
        self.pivots
    }
}

/// Dense simplex tableau in standard form.
struct Tableau {
    /// Row-major constraint matrix, `rows × cols`.
    a: Vec<f64>,
    /// Right-hand sides, length `rows`.
    b: Vec<f64>,
    /// Objective row (reduced costs), length `cols`.
    c: Vec<f64>,
    /// Objective offset (negated running objective value).
    obj: f64,
    /// Basis: for each row, the index of its basic column.
    basis: Vec<usize>,
    rows: usize,
    cols: usize,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }

    /// Performs one pivot on (`row`, `col`), updating A, b, c and basis.
    fn pivot(&mut self, row: usize, col: usize) {
        let cols = self.cols;
        let pivot_val = self.at(row, col);
        debug_assert!(pivot_val.abs() > 0.0, "pivot on zero element");
        let inv = 1.0 / pivot_val;
        for j in 0..cols {
            self.a[row * cols + j] *= inv;
        }
        self.b[row] *= inv;
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor == 0.0 {
                continue;
            }
            for j in 0..cols {
                let upd = self.a[row * cols + j];
                self.a[r * cols + j] -= factor * upd;
            }
            self.b[r] -= factor * self.b[row];
        }
        let factor = self.c[col];
        if factor != 0.0 {
            for j in 0..cols {
                self.c[j] -= factor * self.a[row * cols + j];
            }
            self.obj -= factor * self.b[row];
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimality with Bland's rule.
    ///
    /// `allowed` limits which columns may enter the basis (used to keep
    /// artificial variables out during phase 2).
    fn optimize(
        &mut self,
        allowed: usize,
        tol: f64,
        pivot_budget: &mut usize,
    ) -> Result<(), LpError> {
        loop {
            // Bland: entering column = lowest index with negative reduced cost.
            let Some(col) = (0..allowed).find(|&j| self.c[j] < -tol) else {
                return Ok(());
            };
            // Ratio test; Bland tie-break on lowest basic variable index.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.rows {
                let a_rc = self.at(r, col);
                if a_rc > tol {
                    let ratio = self.b[r] / a_rc;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((best_r, best)) => {
                            if ratio < best - tol
                                || (ratio < best + tol && self.basis[r] < self.basis[best_r])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return Err(LpError::Unbounded);
            };
            if *pivot_budget == 0 {
                return Err(LpError::IterationLimit);
            }
            *pivot_budget -= 1;
            self.pivot(row, col);
        }
    }
}

/// Solves `problem` with the two-phase simplex method.
pub(crate) fn solve(problem: &Problem, options: &SimplexOptions) -> Result<Solution, LpError> {
    let tol = options.tolerance;
    let n = problem.num_vars();
    let m = problem.num_constraints();

    // Count extra columns: one slack/surplus per inequality, one artificial
    // per Ge/Eq row (and per Le row with negative rhs, which flips to Ge).
    let mut num_slack = 0;
    let mut num_artificial = 0;
    for c in problem.constraints() {
        let rhs_neg = c.rhs < 0.0;
        // Effective relation after making rhs non-negative.
        let rel = match (c.relation, rhs_neg) {
            (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
            (Relation::Ge, false) | (Relation::Le, true) => Relation::Ge,
            (Relation::Eq, _) => Relation::Eq,
        };
        match rel {
            Relation::Le => num_slack += 1,
            Relation::Ge => {
                num_slack += 1;
                num_artificial += 1;
            }
            Relation::Eq => num_artificial += 1,
        }
    }

    let cols = n + num_slack + num_artificial;
    let mut t = Tableau {
        a: vec![0.0; m * cols],
        b: vec![0.0; m],
        c: vec![0.0; cols],
        obj: 0.0,
        basis: vec![usize::MAX; m],
        rows: m,
        cols,
    };

    // Fill rows; track where slacks and artificials land.
    let mut next_slack = n;
    let mut next_artificial = n + num_slack;
    let mut artificial_cols = Vec::with_capacity(num_artificial);
    for (r, cons) in problem.constraints().iter().enumerate() {
        let sign = if cons.rhs < 0.0 { -1.0 } else { 1.0 };
        for &(var, coeff) in &cons.terms {
            t.a[r * cols + var] += sign * coeff;
        }
        t.b[r] = sign * cons.rhs;
        let rel = match (cons.relation, sign < 0.0) {
            (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
            (Relation::Ge, false) | (Relation::Le, true) => Relation::Ge,
            (Relation::Eq, _) => Relation::Eq,
        };
        match rel {
            Relation::Le => {
                t.a[r * cols + next_slack] = 1.0;
                t.basis[r] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                t.a[r * cols + next_slack] = -1.0;
                next_slack += 1;
                t.a[r * cols + next_artificial] = 1.0;
                t.basis[r] = next_artificial;
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
            Relation::Eq => {
                t.a[r * cols + next_artificial] = 1.0;
                t.basis[r] = next_artificial;
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
        }
    }

    let mut pivot_budget = options.max_pivots;
    let mut pivots_used = 0usize;

    // Phase 1: minimize the sum of artificial variables.
    if num_artificial > 0 {
        for &ac in &artificial_cols {
            t.c[ac] = 1.0;
        }
        // Price out the artificial basis so reduced costs are consistent.
        for r in 0..m {
            if t.basis[r] >= n + num_slack {
                for j in 0..cols {
                    t.c[j] -= t.a[r * cols + j];
                }
                t.obj -= t.b[r];
            }
        }
        let before = pivot_budget;
        t.optimize(cols, tol, &mut pivot_budget)?;
        pivots_used += before - pivot_budget;
        // Phase-1 objective value is -t.obj (obj accumulates the negation).
        if -t.obj > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial variables that linger in the basis at zero
        // level out of the basis where possible.
        for r in 0..m {
            if t.basis[r] >= n + num_slack {
                if let Some(col) = (0..n + num_slack).find(|&j| t.at(r, j).abs() > tol) {
                    t.pivot(r, col);
                }
                // If no real column has a nonzero entry the row is a
                // redundant constraint; the artificial stays basic at zero,
                // which is harmless as long as it never re-enters.
            }
        }
    }

    // Phase 2: install the real objective and price out the basis.
    t.c.iter_mut().for_each(|v| *v = 0.0);
    t.obj = 0.0;
    t.c[..n].copy_from_slice(problem.objective());
    for r in 0..m {
        let bv = t.basis[r];
        let factor = t.c[bv];
        if factor != 0.0 {
            for j in 0..cols {
                t.c[j] -= factor * t.a[r * cols + j];
            }
            t.obj -= factor * t.b[r];
        }
    }
    let before = pivot_budget;
    t.optimize(n + num_slack, tol, &mut pivot_budget)?;
    pivots_used += before - pivot_budget;

    let mut values = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            values[t.basis[r]] = t.b[r];
        }
    }
    let objective: f64 = values
        .iter()
        .zip(problem.objective())
        .map(|(x, c)| x * c)
        .sum();
    Ok(Solution {
        objective,
        values,
        pivots: pivots_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Problem;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn trivial_unconstrained_minimum_is_zero() {
        let mut p = Problem::minimize(2);
        p.set_objective_coeff(0, 1.0);
        p.set_objective_coeff(1, 1.0);
        let sol = p.solve().unwrap();
        assert_close(sol.objective(), 0.0);
        assert_close(sol.value(0), 0.0);
    }

    #[test]
    fn simple_le_maximization_via_negation() {
        // maximize x0 + x1 s.t. x0 + 2 x1 <= 4, 3 x0 + x1 <= 6
        let mut p = Problem::minimize(2);
        p.set_objective_coeff(0, -1.0);
        p.set_objective_coeff(1, -1.0);
        p.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Le, 4.0);
        p.add_constraint(&[(0, 3.0), (1, 1.0)], Relation::Le, 6.0);
        let sol = p.solve().unwrap();
        // Optimum at intersection: x0 = 8/5, x1 = 6/5, objective = -14/5.
        assert_close(sol.objective(), -14.0 / 5.0);
        assert_close(sol.value(0), 8.0 / 5.0);
        assert_close(sol.value(1), 6.0 / 5.0);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // minimize x0 + x1 s.t. x0 + x1 = 5, x0 - x1 = 1
        let mut p = Problem::minimize(2);
        p.set_objective_coeff(0, 1.0);
        p.set_objective_coeff(1, 1.0);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 5.0);
        p.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 1.0);
        let sol = p.solve().unwrap();
        assert_close(sol.objective(), 5.0);
        assert_close(sol.value(0), 3.0);
        assert_close(sol.value(1), 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize(1);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::minimize(1);
        p.set_objective_coeff(0, -1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x0 >= 2 written as -x0 <= -2.
        let mut p = Problem::minimize(1);
        p.set_objective_coeff(0, 1.0);
        p.add_constraint(&[(0, -1.0)], Relation::Le, -2.0);
        let sol = p.solve().unwrap();
        assert_close(sol.objective(), 2.0);
    }

    #[test]
    fn redundant_equality_rows_are_tolerated() {
        let mut p = Problem::minimize(2);
        p.set_objective_coeff(0, 1.0);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(&[(0, 2.0), (1, 2.0)], Relation::Eq, 4.0);
        let sol = p.solve().unwrap();
        assert_close(sol.objective(), 0.0);
        assert_close(sol.value(1), 2.0);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut p = Problem::minimize(1);
        p.set_objective_coeff(0, 1.0);
        // 0.5 x0 + 0.5 x0 >= 3  =>  x0 >= 3
        p.add_constraint(&[(0, 0.5), (0, 0.5)], Relation::Ge, 3.0);
        let sol = p.solve().unwrap();
        assert_close(sol.objective(), 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP (Beale-like): Bland's rule must not cycle.
        let mut p = Problem::minimize(4);
        p.set_objective_coeff(0, -0.75);
        p.set_objective_coeff(1, 150.0);
        p.set_objective_coeff(2, -0.02);
        p.set_objective_coeff(3, 6.0);
        p.add_constraint(
            &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(&[(2, 1.0)], Relation::Le, 1.0);
        let sol = p.solve().unwrap();
        assert_close(sol.objective(), -0.05);
    }

    #[test]
    fn throughput_lp_shape() {
        // The paper's Example 1: e = {add: 2, mul: 1, store: 1} on the
        // mapping of Figure 2. Variables: x_add_p1, x_add_p2, x_mul_p1,
        // x_store_p3, t (only edges that exist get variables).
        let mut p = Problem::minimize(5);
        let (xa1, xa2, xm1, xs3, tv) = (0, 1, 2, 3, 4);
        p.set_objective_coeff(tv, 1.0);
        p.add_constraint(&[(xa1, 1.0), (xa2, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(&[(xm1, 1.0)], Relation::Eq, 1.0);
        p.add_constraint(&[(xs3, 1.0)], Relation::Eq, 1.0);
        p.add_constraint(&[(xa1, 1.0), (xm1, 1.0), (tv, -1.0)], Relation::Le, 0.0);
        p.add_constraint(&[(xa2, 1.0), (tv, -1.0)], Relation::Le, 0.0);
        p.add_constraint(&[(xs3, 1.0), (tv, -1.0)], Relation::Le, 0.0);
        let sol = p.solve().unwrap();
        assert_close(sol.objective(), 1.5);
    }

    #[test]
    fn solution_accessors() {
        let mut p = Problem::minimize(1);
        p.set_objective_coeff(0, 1.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.values().len(), 1);
        assert!(sol.pivots() >= 1);
    }
}
