//! Per-microarchitecture mapping tables and form resolution.
//!
//! The front end knows one *registry* of canonical x86-64 mnemonics,
//! grouped by the ISA extension they belong to, and one *table* per
//! supported microarchitecture. Tables are built by feature accretion: a
//! base table covering the scalar core is extended per uarch with the
//! extensions that chip implements (`x86_base().with_cmov()...`), so the
//! difference between two uarchs is readable as the difference between
//! two builder chains. A mnemonic that is in the registry but not in a
//! uarch's table is *unavailable on that uarch* — reported as
//! [`Unmapped::MissingExtension`] rather than as a typo.
//!
//! Resolution turns a normalized instruction into an [`InstId`] of the
//! target platform's instruction set by generating candidate form keys
//! (`add` + `[R(64), R(64)]` → `add_r64_r64`) and looking them up in the
//! set's name table. The A72 table translates x86 mnemonics onto the
//! ARM-flavoured form names of the synthetic ARMv8 set (`paddd` →
//! `add_4s_v128_v128_v128`), making cross-ISA replay of an x86 corpus on
//! an ARM port mapping possible; x86 instructions with no single-ARM-
//! instruction equivalent surface in the unmapped accounting instead of
//! being silently dropped.

use crate::normalize::{NormInst, Shape};
use pmevo_core::suggest;
use pmevo_core::InstId;
use pmevo_isa::InstructionSet;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::OnceLock;

/// The ISA extension a registry mnemonic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Extension {
    /// The scalar integer core: ALU, shifts, multiplies, divides, moves.
    Base,
    /// Conditional moves (`cmovcc`).
    Cmov,
    /// Bit-count instructions (`popcnt`, `lzcnt`, `tzcnt`).
    Popcnt,
    /// 128-bit vector instructions (SSE family).
    Sse,
    /// 256-bit vector width (AVX family).
    Avx,
    /// Fused multiply-add (`fmadd213*`).
    Fma,
}

impl fmt::Display for Extension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Extension::Base => "base",
            Extension::Cmov => "cmov",
            Extension::Popcnt => "popcnt",
            Extension::Sse => "sse",
            Extension::Avx => "avx",
            Extension::Fma => "fma",
        };
        write!(f, "{s}")
    }
}

/// Canonical x86-64 mnemonic → owning [`Extension`], for every mnemonic
/// the front end understands. Anything outside this map is an unknown
/// mnemonic (a typo or an instruction outside the reproduction's form
/// universe) and gets a nearest-known suggestion.
pub fn registry() -> &'static BTreeMap<&'static str, Extension> {
    static REGISTRY: OnceLock<BTreeMap<&'static str, Extension>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut m = BTreeMap::new();
        for name in [
            "add", "sub", "and", "or", "xor", "cmp", "test", "mov", "inc", "dec", "neg", "not",
            "adc", "sbb", "shl", "shr", "sar", "rol", "ror", "shld", "shrd", "lea", "imul", "mul",
            "div", "idiv", "bt", "btc", "btr", "bts", "movzx",
        ] {
            m.insert(name, Extension::Base);
        }
        for name in ["cmove", "cmovne", "cmovl", "cmovg"] {
            m.insert(name, Extension::Cmov);
        }
        for name in ["popcnt", "lzcnt", "tzcnt"] {
            m.insert(name, Extension::Popcnt);
        }
        for name in [
            "paddb", "paddw", "paddd", "paddq", "psubb", "psubw", "psubd", "psubq", "pand", "por",
            "pxor", "pcmpeqd", "pminsd", "pmaxsd", "addps", "addpd", "subps", "subpd", "pmulld",
            "pmullw", "mulps", "mulpd", "divps", "divpd", "sqrtps", "sqrtpd", "pshufd", "pshufb",
            "punpcklbw", "punpckhbw", "palignr", "pblendw", "permilps", "unpcklps", "cvtdq2ps",
            "cvtps2dq", "cvtpd2ps", "cvtps2pd", "cvtsi2ss", "cvtsi2sd", "cvtss2si", "cvtsd2si",
            "movups", "movaps", "movdqu",
        ] {
            m.insert(name, Extension::Sse);
        }
        for name in ["fmadd213ps", "fmadd213pd"] {
            m.insert(name, Extension::Fma);
        }
        m
    })
}

/// How a table's entries translate into candidate form keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyStyle {
    /// Native x86 form names (`add_r64_r64`, `paddd_v128_v128_v128`).
    X86,
    /// ARM-flavoured form names of the synthetic ARMv8 set
    /// (`add_r64_r64_r64`, `add_4s_v128_v128_v128`) — each entry's value
    /// is the translated target mnemonic.
    Arm,
}

/// One microarchitecture's mapping table: which registry mnemonics the
/// chip implements, at what maximum vector width, and how they spell
/// themselves as instruction-form keys.
#[derive(Debug, Clone)]
pub struct UarchTable {
    name: &'static str,
    platform: &'static str,
    style: KeyStyle,
    max_vec_bits: u32,
    entries: BTreeMap<&'static str, &'static str>,
}

impl UarchTable {
    /// The uarch's lower-case name (`"skl"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The matching platform name in `pmevo_machine::platforms`
    /// (`"SKL"`), i.e. the mapping-store name corpus replay routes to.
    pub fn platform(&self) -> &'static str {
        self.platform
    }

    /// The widest vector register the uarch supports, in bits (0 when
    /// the table has no vector extension at all).
    pub fn max_vec_bits(&self) -> u32 {
        self.max_vec_bits
    }

    /// The scalar x86 core every x86 uarch starts from.
    fn x86_base() -> UarchTable {
        let mut t = UarchTable {
            name: "x86-base",
            platform: "",
            style: KeyStyle::X86,
            max_vec_bits: 0,
            entries: BTreeMap::new(),
        };
        t.insert_identity(Extension::Base);
        t
    }

    /// Every registry mnemonic of `ext`, spelled natively.
    fn insert_identity(&mut self, ext: Extension) {
        for (&name, &e) in registry() {
            if e == ext {
                self.entries.insert(name, name);
            }
        }
    }

    fn with_cmov(mut self) -> Self {
        self.insert_identity(Extension::Cmov);
        self
    }

    fn with_popcnt(mut self) -> Self {
        self.insert_identity(Extension::Popcnt);
        self
    }

    fn with_sse(mut self) -> Self {
        self.insert_identity(Extension::Sse);
        self.max_vec_bits = self.max_vec_bits.max(128);
        self
    }

    fn with_avx(mut self) -> Self {
        self.max_vec_bits = self.max_vec_bits.max(256);
        self
    }

    fn with_fma(mut self) -> Self {
        self.insert_identity(Extension::Fma);
        self
    }

    /// The scalar ARMv8 core: x86 mnemonic → translated ARM mnemonic.
    /// The flag-carry (`adc`/`sbb`), double-shift (`shld`/`shrd`) and
    /// bit-test (`bt*`) families have no entry — no single ARM
    /// instruction in the form universe expresses them, so they stay
    /// visible in the unmapped accounting as `missing_extension(base)`.
    fn arm_base() -> UarchTable {
        let mut t = UarchTable {
            name: "arm-base",
            platform: "",
            style: KeyStyle::Arm,
            max_vec_bits: 0,
            entries: BTreeMap::new(),
        };
        for (x86, arm) in [
            ("add", "add"),
            ("sub", "sub"),
            ("and", "and"),
            ("or", "orr"),
            ("xor", "eor"),
            ("cmp", "subs"),
            ("test", "ands"),
            ("mov", "mov"),
            ("inc", "add"),
            ("dec", "sub"),
            ("neg", "sub"),
            ("not", "orn"),
            ("shl", "lsl"),
            ("shr", "lsr"),
            ("sar", "asr"),
            ("rol", "ror"),
            ("ror", "ror"),
            ("lea", "add"),
            ("imul", "mul"),
            ("mul", "umulh"),
            ("div", "udiv"),
            ("idiv", "sdiv"),
            ("movzx", "ldr"),
        ] {
            t.entries.insert(x86, arm);
        }
        t
    }

    /// Conditional moves translate to conditional select.
    fn with_csel(mut self) -> Self {
        for cc in ["cmove", "cmovne", "cmovl", "cmovg"] {
            self.entries.insert(cc, "csel");
        }
        self
    }

    /// `lzcnt` is `clz`; `popcnt`/`tzcnt` need multi-instruction
    /// expansions on this core and are deliberately left out.
    fn with_bitcount(mut self) -> Self {
        self.entries.insert("lzcnt", "clz");
        self
    }

    /// The SSE subset with NEON equivalents, plus FMA (`fmla`).
    /// `pblendw`/`permilps` have no single-NEON translation and are left
    /// out.
    fn with_neon(mut self) -> Self {
        for (x86, arm) in [
            ("paddb", "add_16b"),
            ("paddw", "add_8h"),
            ("paddd", "add_4s"),
            ("paddq", "add_2d"),
            ("psubb", "sub_16b"),
            ("psubw", "sub_8h"),
            ("psubd", "sub_4s"),
            ("psubq", "sub_2d"),
            ("pand", "and_v"),
            ("por", "orr_v"),
            ("pxor", "eor_v"),
            ("pcmpeqd", "cmeq_4s"),
            ("pminsd", "smin_4s"),
            ("pmaxsd", "smax_4s"),
            ("addps", "fadd_4s"),
            ("addpd", "fadd_2d"),
            ("subps", "fsub_4s"),
            ("subpd", "fsub_2d"),
            ("pmulld", "mul_4s"),
            ("pmullw", "mul_8h"),
            ("mulps", "fmul_4s"),
            ("mulpd", "fmul_2d"),
            ("divps", "fdiv_4s"),
            ("divpd", "fdiv_2d"),
            ("sqrtps", "fsqrt_4s"),
            ("sqrtpd", "fsqrt_2d"),
            ("pshufd", "dup_4s"),
            ("pshufb", "tbl"),
            ("punpcklbw", "zip1"),
            ("punpckhbw", "zip2"),
            ("palignr", "ext"),
            ("unpcklps", "zip1"),
            ("cvtdq2ps", "scvtf_4s"),
            ("cvtps2dq", "fcvtzs_4s"),
            ("cvtpd2ps", "fcvtn"),
            ("cvtps2pd", "fcvtl"),
            ("cvtsi2ss", "scvtf"),
            ("cvtsi2sd", "scvtf"),
            ("cvtss2si", "fcvtzs"),
            ("cvtsd2si", "fcvtzs"),
            ("movups", "ldr_q"),
            ("movaps", "ldr_q"),
            ("movdqu", "ldr_q"),
            ("fmadd213ps", "fmla_4s"),
            ("fmadd213pd", "fmla_2d"),
        ] {
            self.entries.insert(x86, arm);
        }
        self.max_vec_bits = self.max_vec_bits.max(128);
        self
    }

    fn named(mut self, name: &'static str, platform: &'static str) -> Self {
        self.name = name;
        self.platform = platform;
        self
    }
}

/// Intel Skylake: the full x86 feature set of the form universe.
pub fn skl() -> UarchTable {
    UarchTable::x86_base()
        .with_cmov()
        .with_popcnt()
        .with_sse()
        .with_avx()
        .with_fma()
        .named("skl", "SKL")
}

/// AMD Zen: same ISA surface as Skylake in this form universe (the port
/// mappings differ, not the decoder), built by the same accretion chain.
pub fn zen() -> UarchTable {
    UarchTable::x86_base()
        .with_cmov()
        .with_popcnt()
        .with_sse()
        .with_avx()
        .with_fma()
        .named("zen", "ZEN")
}

/// ARM Cortex-A72: x86 text cross-translated onto the ARMv8 form
/// universe — 128-bit NEON only, no flag-carry/bit-test families, no
/// `popcnt`/`tzcnt`.
pub fn a72() -> UarchTable {
    UarchTable::arm_base().with_csel().with_bitcount().with_neon().named("a72", "A72")
}

/// Looks up a uarch table by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<UarchTable> {
    match name.to_ascii_lowercase().as_str() {
        "skl" => Some(skl()),
        "zen" => Some(zen()),
        "a72" => Some(a72()),
        _ => None,
    }
}

/// Why an instruction did not resolve onto the target platform.
///
/// Every non-resolution has exactly one of these reasons; corpus replay
/// aggregates them so coverage loss is always attributable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unmapped {
    /// The mnemonic is not in the [`registry`] at all.
    UnknownMnemonic {
        /// The canonical (lower-cased, suffix-stripped) spelling.
        mnemonic: String,
        /// The nearest registry mnemonic, if one is plausibly meant.
        suggestion: Option<String>,
    },
    /// The mnemonic is known and available, but no form of the target
    /// platform matches this operand shape.
    UnsupportedOperands {
        /// The canonical mnemonic.
        mnemonic: String,
        /// The first candidate form key that was tried.
        key: String,
    },
    /// The target uarch does not implement the mnemonic (or the vector
    /// width) — its table never grew the relevant extension.
    MissingExtension {
        /// The canonical mnemonic.
        mnemonic: String,
        /// The extension the uarch lacks.
        extension: Extension,
    },
}

impl Unmapped {
    /// The stable accounting key for this failure class.
    pub fn reason(&self) -> &'static str {
        match self {
            Unmapped::UnknownMnemonic { .. } => "unknown_mnemonic",
            Unmapped::UnsupportedOperands { .. } => "unsupported_operands",
            Unmapped::MissingExtension { .. } => "missing_extension",
        }
    }
}

impl fmt::Display for Unmapped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unmapped::UnknownMnemonic { mnemonic, suggestion } => {
                write!(f, "unknown mnemonic {mnemonic:?}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                Ok(())
            }
            Unmapped::UnsupportedOperands { mnemonic, key } => {
                write!(f, "no form of {mnemonic:?} matches operand shape {key}")
            }
            Unmapped::MissingExtension { mnemonic, extension } => {
                write!(f, "uarch lacks {extension} extension for {mnemonic:?}")
            }
        }
    }
}

/// Resolves normalized instructions onto one platform's instruction set
/// for one uarch table. Construction builds the name → id lookup once;
/// resolution is then allocation-light per instruction.
pub struct Resolver<'a> {
    table: UarchTable,
    names: HashMap<&'a str, InstId>,
}

impl<'a> Resolver<'a> {
    /// Builds a resolver for `table` targeting `isa`'s forms.
    pub fn new(table: UarchTable, isa: &'a InstructionSet) -> Resolver<'a> {
        Resolver { table, names: isa.name_map() }
    }

    /// The uarch table this resolver maps onto.
    pub fn table(&self) -> &UarchTable {
        &self.table
    }

    /// Resolves one normalized instruction to a form id, or explains why
    /// it cannot be.
    ///
    /// # Example
    ///
    /// ```
    /// use pmevo_isa::synth::synthetic_x86;
    /// use pmevo_x86::{normalize, parse_line, skl, Resolver};
    ///
    /// let isa = synthetic_x86();
    /// let r = Resolver::new(skl(), &isa);
    /// let inst = normalize(&parse_line("addq %rax, %rbx").unwrap().unwrap());
    /// let id = r.resolve(&inst).unwrap();
    /// assert_eq!(isa.form(id).name, "add_r64_r64");
    /// ```
    pub fn resolve(&self, inst: &NormInst) -> Result<InstId, Unmapped> {
        let reg = registry();
        if !inst.known {
            return Err(Unmapped::UnknownMnemonic {
                mnemonic: inst.mnemonic.clone(),
                suggestion: suggest::nearest(&inst.mnemonic, reg.keys().copied())
                    .map(str::to_owned),
            });
        }
        let extension = reg[inst.mnemonic.as_str()];
        let widest_vec = inst
            .shapes
            .iter()
            .filter_map(|s| match s {
                Shape::V(b) => Some(*b),
                _ => None,
            })
            .max();
        if let Some(v) = widest_vec {
            if v > self.table.max_vec_bits {
                // 256-bit on a 128-bit uarch is an AVX gap; any vector at
                // all on a vector-less table is the base vector extension.
                let missing =
                    if self.table.max_vec_bits >= 128 { Extension::Avx } else { Extension::Sse };
                return Err(Unmapped::MissingExtension {
                    mnemonic: inst.mnemonic.clone(),
                    extension: missing,
                });
            }
        }
        let Some(&target) = self.table.entries.get(inst.mnemonic.as_str()) else {
            return Err(Unmapped::MissingExtension { mnemonic: inst.mnemonic.clone(), extension });
        };
        let candidates = match self.table.style {
            KeyStyle::X86 => x86_keys(&inst.mnemonic, &inst.shapes),
            KeyStyle::Arm => arm_keys(&inst.mnemonic, target, &inst.shapes),
        };
        for key in &candidates {
            if let Some(&id) = self.names.get(key.as_str()) {
                return Ok(id);
            }
        }
        Err(Unmapped::UnsupportedOperands {
            mnemonic: inst.mnemonic.clone(),
            key: candidates.into_iter().next().unwrap_or_else(|| direct_key(&inst.mnemonic, &inst.shapes)),
        })
    }
}

/// The literal key for a mnemonic + shape list: `add` + `[R(64), I]` →
/// `add_r64_i32`. Immediates are always spelled `i32`, matching the form
/// universe.
fn direct_key(mnemonic: &str, shapes: &[Shape]) -> String {
    let mut key = mnemonic.to_string();
    for s in shapes {
        key.push('_');
        match s {
            Shape::R(b) => key.push_str(&format!("r{b}")),
            Shape::V(b) => key.push_str(&format!("v{b}")),
            Shape::I => key.push_str("i32"),
            Shape::M { bits, .. } => key.push_str(&format!("m{bits}")),
        }
    }
    key
}

/// Candidate form keys for native x86 tables, most-specific first.
fn x86_keys(m: &str, shapes: &[Shape]) -> Vec<String> {
    // Instruction-specific spellings that diverge from the literal key.
    match (m, shapes) {
        ("lea", [Shape::R(w), Shape::M { has_index, .. }]) => {
            return vec![if *has_index {
                format!("lea3_r{w}_r64_r64")
            } else {
                format!("lea_r{w}_r64")
            }];
        }
        // The form universe models zero-extending loads as `movzx_rW_m32`
        // regardless of source width.
        ("movzx", [Shape::R(w), Shape::M { .. }]) => return vec![format!("movzx_r{w}_m32")],
        // One-operand multiply/divide implicitly use rAX/rDX: spelled as
        // two-operand forms (the widening multiply is the `mulhi` form).
        ("div" | "idiv", [Shape::R(w)]) => return vec![format!("{m}_r{w}_r{w}")],
        ("mul" | "imul", [Shape::R(w)]) => return vec![format!("mulhi_r{w}_r{w}")],
        ("imul", [Shape::R(w), Shape::R(w2), Shape::I]) => {
            return vec![format!("imul3_r{w}_r{w2}_i32")];
        }
        _ => {}
    }
    let mut keys = vec![direct_key(m, shapes)];
    match shapes {
        // SSE two-operand encodings of three-operand forms (dest doubles
        // as first source): `paddd xmm0, xmm1` → `paddd_v128_v128_v128`.
        [Shape::V(a), Shape::V(b)] => keys.push(format!("{m}_v{a}_v{a}_v{b}")),
        // Shuffles with an immediate selector fold it away:
        // `pshufd xmm0, xmm1, 0x1b` → `pshufd_v128_v128_v128`.
        [Shape::V(a), Shape::V(b), Shape::I] => keys.push(format!("{m}_v{a}_v{b}_v{b}")),
        // AVX three-operand encodings of two-operand forms:
        // `vdivps ymm0, ymm1, ymm2` → `divps_v256_v256`.
        [Shape::V(a), Shape::V(b), Shape::V(_)] => keys.push(format!("{m}_v{a}_v{b}")),
        _ => {}
    }
    keys
}

/// Candidate form keys for the ARM-translated table: `target` is the
/// translated mnemonic from the uarch entry.
fn arm_keys(m: &str, target: &str, shapes: &[Shape]) -> Vec<String> {
    // x86 idioms whose translation depends on the operand shape, not
    // just the mnemonic.
    match (m, shapes) {
        ("mov", [Shape::R(w), Shape::R(_)]) => return vec![format!("orr_r{w}_r{w}_r{w}")],
        ("mov", [Shape::R(w), Shape::I]) => return vec![format!("mov_r{w}_i32")],
        ("mov", [Shape::R(w), Shape::M { bits, .. }]) => return vec![format!("ldr_r{w}_m{bits}")],
        ("mov", [Shape::M { bits, .. }, Shape::R(w)]) => return vec![format!("str_m{bits}_r{w}")],
        ("movups" | "movaps" | "movdqu", [Shape::V(_), Shape::M { .. }]) => {
            return vec!["ldr_q_v128_m128".to_string()];
        }
        ("movups" | "movaps" | "movdqu", [Shape::M { .. }, Shape::V(_)]) => {
            return vec!["str_q_m128_v128".to_string()];
        }
        // Zero-extending word load.
        ("movzx", [Shape::R(_), Shape::M { .. }]) => return vec!["ldr_r32_m32".to_string()],
        // Address arithmetic: register add (indexed) or add-immediate.
        ("lea", [Shape::R(w), Shape::M { has_index, .. }]) => {
            return vec![if *has_index {
                format!("add_r{w}_r{w}_r{w}")
            } else {
                format!("add_r{w}_r{w}_i32")
            }];
        }
        ("inc", [Shape::R(w)]) => return vec![format!("add_r{w}_r{w}_i32")],
        ("dec", [Shape::R(w)]) => return vec![format!("sub_r{w}_r{w}_i32")],
        ("neg", [Shape::R(w)]) => return vec![format!("sub_r{w}_r{w}_r{w}")],
        ("not", [Shape::R(w)]) => return vec![format!("orn_r{w}_r{w}_r{w}")],
        ("div", [Shape::R(w)]) => return vec![format!("udiv_r{w}_r{w}_r{w}")],
        ("idiv", [Shape::R(w)]) => return vec![format!("sdiv_r{w}_r{w}_r{w}")],
        // Widening one-operand multiplies are the 64-bit high-half forms.
        ("mul", [Shape::R(_)]) => return vec!["umulh_r64_r64_r64".to_string()],
        ("imul", [Shape::R(_)]) => return vec!["smulh_r64_r64_r64".to_string()],
        ("cvtsi2ss" | "cvtsi2sd", [Shape::V(_), Shape::R(w)]) => {
            return vec![format!("scvtf_v128_r{w}")];
        }
        ("cvtss2si" | "cvtsd2si", [Shape::R(w), Shape::V(_)]) => {
            return vec![format!("fcvtzs_r{w}_v128")];
        }
        _ => {}
    }
    match shapes {
        // Two-operand x86 scalar ops become three-operand ARM ops with
        // the destination doubling as a source; genuinely two-operand
        // targets (`clz`) fall through to the second candidate.
        [Shape::R(w), Shape::R(_)] => {
            vec![format!("{target}_r{w}_r{w}_r{w}"), format!("{target}_r{w}_r{w}")]
        }
        [Shape::R(w), Shape::I] => {
            vec![format!("{target}_r{w}_r{w}_i32"), format!("{target}_r{w}_i32")]
        }
        // Vector shapes: the target already carries its element suffix.
        [Shape::V(_), Shape::V(_)] => {
            vec![format!("{target}_v128_v128"), format!("{target}_v128_v128_v128")]
        }
        [Shape::V(_), Shape::V(_), Shape::V(_)] | [Shape::V(_), Shape::V(_), Shape::I] => {
            vec![format!("{target}_v128_v128_v128"), format!("{target}_v128_v128")]
        }
        _ => vec![direct_key(target, shapes)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parse::parse_line;
    use pmevo_isa::synth::{synthetic_arm, synthetic_x86};

    fn resolve_on<'a>(r: &Resolver<'a>, line: &str) -> Result<&'a str, Unmapped> {
        let inst = normalize(&parse_line(line).unwrap().unwrap());
        r.resolve(&inst).map(|_| "ok")
    }

    fn resolved_name(isa: &InstructionSet, r: &Resolver<'_>, line: &str) -> String {
        let inst = normalize(&parse_line(line).unwrap().unwrap());
        let id = r.resolve(&inst).unwrap_or_else(|e| panic!("{line}: {e}"));
        isa.form(id).name.clone()
    }

    #[test]
    fn skl_resolves_the_scalar_and_vector_core() {
        let isa = synthetic_x86();
        let r = Resolver::new(skl(), &isa);
        for (line, form) in [
            ("addq %rax, %rbx", "add_r64_r64"),
            ("add ebx, 5", "add_r32_i32"),
            ("addq 8(%rdi), %rax", "add_r64_m64"),
            ("movq (%rdi), %rax", "mov_r64_m64"),
            ("mov qword ptr [rdi], rax", "mov_m64_r64"),
            ("leaq 4(%rsp), %rcx", "lea_r64_r64"),
            ("lea ecx, [rax+rbx*2]", "lea3_r32_r64_r64"),
            ("imul rax, rbx", "imul_r64_r64"),
            ("imul rax, rbx, 3", "imul3_r64_r64_i32"),
            ("mulq %rcx", "mulhi_r64_r64"),
            ("divq %rcx", "div_r64_r64"),
            ("shlq $3, %rax", "shl_r64_i32"),
            ("popcnt rax, rbx", "popcnt_r64_r64"),
            ("cmove eax, ebx", "cmove_r32_r32"),
            ("movzbl (%rdi), %eax", "movzx_r32_m32"),
            ("paddd %xmm1, %xmm0", "paddd_v128_v128_v128"),
            ("vpaddd ymm0, ymm1, ymm2", "paddd_v256_v256_v256"),
            ("pshufd xmm0, xmm1, 27", "pshufd_v128_v128_v128"),
            ("vdivps ymm0, ymm1, ymm2", "divps_v256_v256"),
            ("sqrtps xmm0, xmm1", "sqrtps_v128_v128"),
            ("vfmadd213ps %ymm2, %ymm1, %ymm0", "fmadd213ps_v256_v256_v256"),
            ("movups xmm0, [rax]", "movups_v128_m128"),
            ("movups [rax], xmm0", "movups_m128_v128"),
            ("cvtsi2sd xmm0, rax", "cvtsi2sd_v128_r64"),
        ] {
            assert_eq!(resolved_name(&isa, &r, line), form, "{line}");
        }
    }

    #[test]
    fn a72_cross_translates_x86_text() {
        let isa = synthetic_arm();
        let r = Resolver::new(a72(), &isa);
        for (line, form) in [
            ("addq %rax, %rbx", "add_r64_r64_r64"),
            ("add ebx, 5", "add_r32_r32_i32"),
            ("xorq %rax, %rbx", "eor_r64_r64_r64"),
            ("cmp rax, rbx", "subs_r64_r64_r64"),
            ("mov rax, rbx", "orr_r64_r64_r64"),
            ("mov rax, 7", "mov_r64_i32"),
            ("movq (%rdi), %rax", "ldr_r64_m64"),
            ("mov qword ptr [rdi], rax", "str_m64_r64"),
            ("leaq (%rax,%rbx,4), %rcx", "add_r64_r64_r64"),
            ("shl rax, 3", "lsl_r64_r64_i32"),
            ("lzcnt eax, ebx", "clz_r32_r32"),
            ("cmovne rax, rbx", "csel_r64_r64_r64"),
            ("divq %rcx", "udiv_r64_r64_r64"),
            ("paddd %xmm1, %xmm0", "add_4s_v128_v128_v128"),
            ("mulps xmm0, xmm1", "fmul_4s_v128_v128_v128"),
            ("divps xmm0, xmm1", "fdiv_4s_v128_v128"),
            ("movups xmm0, [rax]", "ldr_q_v128_m128"),
            ("movups [rax], xmm0", "str_q_m128_v128"),
            ("cvtdq2ps xmm0, xmm1", "scvtf_4s_v128_v128"),
            ("cvtsi2ss xmm0, eax", "scvtf_v128_r32"),
            ("vfmadd213pd %xmm2, %xmm1, %xmm0", "fmla_2d_v128_v128_v128"),
        ] {
            assert_eq!(resolved_name(&isa, &r, line), form, "{line}");
        }
    }

    #[test]
    fn unmapped_reasons_are_attributed() {
        let x86 = synthetic_x86();
        let arm = synthetic_arm();
        let skl_r = Resolver::new(skl(), &x86);
        let a72_r = Resolver::new(a72(), &arm);

        // Typo: unknown mnemonic with a nearest-known suggestion.
        match resolve_on(&skl_r, "addd %rax, %rbx").unwrap_err() {
            Unmapped::UnknownMnemonic { mnemonic, suggestion } => {
                assert_eq!(mnemonic, "addd");
                assert_eq!(suggestion.as_deref(), Some("add"));
            }
            other => panic!("expected UnknownMnemonic, got {other:?}"),
        }

        // Known mnemonic, no matching form shape (8-bit registers are
        // outside the form universe).
        match resolve_on(&skl_r, "add al, bl").unwrap_err() {
            Unmapped::UnsupportedOperands { mnemonic, key } => {
                assert_eq!(mnemonic, "add");
                assert_eq!(key, "add_r8_r8");
            }
            other => panic!("expected UnsupportedOperands, got {other:?}"),
        }

        // 256-bit vectors on a 128-bit uarch.
        match resolve_on(&a72_r, "vpaddd ymm0, ymm1, ymm2").unwrap_err() {
            Unmapped::MissingExtension { extension, .. } => {
                assert_eq!(extension, Extension::Avx);
            }
            other => panic!("expected MissingExtension, got {other:?}"),
        }

        // Families the A72 table never grew.
        for line in ["popcnt rax, rbx", "adcq %rax, %rbx", "btq $3, %rax", "pblendw xmm0, xmm1, 7"]
        {
            let err = resolve_on(&a72_r, line).unwrap_err();
            assert_eq!(err.reason(), "missing_extension", "{line}: {err}");
        }

        // 512-bit vectors are beyond every table.
        let err = resolve_on(&skl_r, "vpaddd zmm0, zmm1, zmm2").unwrap_err();
        assert_eq!(err.reason(), "missing_extension");
    }

    #[test]
    fn registry_and_tables_are_consistent() {
        // Every SKL/ZEN entry is in the registry under its own name.
        for t in [skl(), zen()] {
            for (&m, &target) in &t.entries {
                assert_eq!(m, target, "{}: x86 tables are identity maps", t.name());
                assert!(registry().contains_key(m), "{m} not in registry");
            }
        }
        // Every A72 entry translates a registry mnemonic.
        for &m in a72().entries.keys() {
            assert!(registry().contains_key(m), "{m} not in registry");
        }
        assert!(skl().entries.len() > a72().entries.len());
        assert_eq!(by_name("SKL").unwrap().platform(), "SKL");
        assert_eq!(by_name("a72").unwrap().max_vec_bits(), 128);
        assert!(by_name("m1").is_none());
    }
}
