//! Corpus replay: stream basic blocks through a throughput predictor
//! and account for every block that cannot be predicted.
//!
//! One basic block is one [`Experiment`] — the multiset of its resolved
//! instruction forms — exactly the quantity PMEvo's mappings predict
//! steady-state throughput for. Replay resolves every line of every
//! block, batches all fully-mapped blocks through one
//! [`Predictor::predict_batch`] call, and aggregates the failures into
//! an [`Accounting`] whose JSON rendering is deterministic: fixed field
//! order, no wall-clock, a checksum over all predicted cycles in block
//! order. Two replays of the same corpus against the same mapping are
//! byte-identical regardless of predictor worker count.

use crate::corpus::parse_corpus;
use crate::normalize::normalize;
use crate::parse::parse_line;
use crate::uarch::Resolver;
use pmevo_core::json::{self, Value};
use pmevo_core::{Experiment, InstId};
use pmevo_predict::{MappingId, Predictor};
use std::collections::BTreeMap;

/// Accounting key for lines the tokenizer rejected (alongside the
/// [`crate::Unmapped::reason`] keys for resolver failures).
pub const MALFORMED_LINE: &str = "malformed_line";

/// The outcome of one basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockResult {
    /// Every line resolved; predicted steady-state cycles per iteration.
    Cycles(f64),
    /// At least one line failed; the block is excluded from prediction.
    Unmapped {
        /// 1-based corpus line of the *first* failing instruction.
        line: u32,
        /// 1-based column of the failing token (the mnemonic's column
        /// for resolver failures, which concern the whole instruction).
        column: u32,
        /// Stable accounting reason (`unknown_mnemonic`, ...).
        reason: &'static str,
        /// Human-readable description of the first failure.
        detail: String,
    },
}

/// One replayed block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockOutcome {
    /// 1-based corpus line the block starts at.
    pub start_line: u32,
    /// Number of instruction lines in the block.
    pub insts: u32,
    /// Prediction or first failure.
    pub result: BlockResult,
}

/// Deterministic corpus-level accounting: totals, per-reason failure
/// counts, and a checksum over the predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accounting {
    /// Total basic blocks in the corpus.
    pub blocks: u64,
    /// Blocks whose every instruction resolved.
    pub mapped_blocks: u64,
    /// Total instruction lines.
    pub insts: u64,
    /// Instruction lines that individually resolved (counted even inside
    /// blocks that failed on another line, so instruction-level coverage
    /// is honest).
    pub mapped_insts: u64,
    /// Failure reason → number of *blocks* whose first failure had it.
    pub by_reason: BTreeMap<&'static str, u64>,
    /// FNV-1a over the bits of every predicted cycle count, in block
    /// order: equal checksums mean bit-identical replay results.
    pub checksum: u64,
}

impl Accounting {
    /// Fraction of instruction lines that resolved, in `[0, 1]`.
    pub fn inst_coverage(&self) -> f64 {
        if self.insts == 0 {
            return 1.0;
        }
        self.mapped_insts as f64 / self.insts as f64
    }

    /// Fraction of blocks that were fully mapped, in `[0, 1]`.
    pub fn block_coverage(&self) -> f64 {
        if self.blocks == 0 {
            return 1.0;
        }
        self.mapped_blocks as f64 / self.blocks as f64
    }
}

/// A full replay: per-block outcomes in corpus order plus accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// One outcome per basic block, in corpus order.
    pub outcomes: Vec<BlockOutcome>,
    /// The aggregate accounting.
    pub accounting: Accounting,
}

/// FNV-1a over the raw bits of every prediction, in block order.
fn checksum(cycles: impl Iterator<Item = f64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in cycles {
        for b in t.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Replays a corpus against one stored mapping.
///
/// Every line of every block is resolved (even after a block has already
/// failed, so `mapped_insts` reflects true instruction-level coverage);
/// all fully-mapped blocks go through the predictor as one batch. The
/// result is a pure function of `(corpus, resolver, mapping)` —
/// predictor worker count and cache configuration do not change a byte
/// of it.
pub fn replay(corpus: &str, resolver: &Resolver<'_>, predictor: &Predictor, id: MappingId) -> Replay {
    let blocks = parse_corpus(corpus);
    let mut outcomes: Vec<BlockOutcome> = Vec::with_capacity(blocks.len());
    let mut experiments: Vec<Experiment> = Vec::new();
    // Index into `outcomes` for each experiment, to write cycles back.
    let mut mapped_at: Vec<usize> = Vec::new();
    let mut acc = Accounting {
        blocks: blocks.len() as u64,
        mapped_blocks: 0,
        insts: 0,
        mapped_insts: 0,
        by_reason: BTreeMap::new(),
        checksum: 0,
    };

    for block in &blocks {
        let mut counts: BTreeMap<InstId, u32> = BTreeMap::new();
        let mut failure: Option<(u32, u32, &'static str, String)> = None;
        for (line_no, text) in &block.lines {
            acc.insts += 1;
            let resolved = match parse_line(text) {
                Err(e) => Err((*line_no, e.column as u32, MALFORMED_LINE, e.to_string())),
                Ok(None) => continue,
                Ok(Some(inst)) => match resolver.resolve(&normalize(&inst)) {
                    Ok(id) => Ok(id),
                    Err(u) => Err((*line_no, inst.column as u32, u.reason(), u.to_string())),
                },
            };
            match resolved {
                Ok(id) => {
                    acc.mapped_insts += 1;
                    *counts.entry(id).or_insert(0) += 1;
                }
                Err(f) => {
                    failure.get_or_insert(f);
                }
            }
        }
        let insts = block.lines.len() as u32;
        match failure {
            None => {
                let pairs: Vec<(InstId, u32)> = counts.into_iter().collect();
                mapped_at.push(outcomes.len());
                experiments.push(Experiment::from_counts(&pairs));
                outcomes.push(BlockOutcome {
                    start_line: block.start_line,
                    insts,
                    // Placeholder until the batch prediction lands below.
                    result: BlockResult::Cycles(f64::NAN),
                });
                acc.mapped_blocks += 1;
            }
            Some((line, column, reason, detail)) => {
                *acc.by_reason.entry(reason).or_insert(0) += 1;
                outcomes.push(BlockOutcome {
                    start_line: block.start_line,
                    insts,
                    result: BlockResult::Unmapped { line, column, reason, detail },
                });
            }
        }
    }

    let cycles = predictor.predict_batch(id, &experiments);
    for (&at, &t) in mapped_at.iter().zip(&cycles) {
        outcomes[at].result = BlockResult::Cycles(t);
    }
    acc.checksum = checksum(cycles.into_iter());
    Replay { outcomes, accounting: acc }
}

/// Renders accounting as one compact JSON object with a fixed field
/// order and no wall-clock content — the byte-determinism anchor that
/// CI double-runs and `cmp`s.
pub fn accounting_json(acc: &Accounting) -> String {
    let by_reason = acc
        .by_reason
        .iter()
        .map(|(&reason, &n)| (reason.to_string(), Value::UInt(n)))
        .collect();
    json::write_compact(&Value::Obj(vec![
        ("blocks".into(), Value::UInt(acc.blocks)),
        ("mapped_blocks".into(), Value::UInt(acc.mapped_blocks)),
        ("insts".into(), Value::UInt(acc.insts)),
        ("mapped_insts".into(), Value::UInt(acc.mapped_insts)),
        ("inst_coverage".into(), Value::Num(acc.inst_coverage())),
        ("block_coverage".into(), Value::Num(acc.block_coverage())),
        ("by_reason".into(), Value::Obj(by_reason)),
        ("checksum".into(), Value::UInt(acc.checksum)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::synthetic_corpus;
    use crate::uarch::skl;
    use pmevo_isa::synth::synthetic_x86;
    use pmevo_machine::platforms;
    use pmevo_predict::{MappingStore, PredictorConfig};

    fn skl_predictor(workers: usize) -> (Predictor, MappingId) {
        let p = platforms::skl();
        let mut store = MappingStore::new();
        let names = p.isa().forms().iter().map(|f| f.name.clone()).collect();
        let id = store.insert(p.name(), names, p.ground_truth().clone());
        (Predictor::new(store, PredictorConfig { workers, cache_capacity: 1024 }), id)
    }

    #[test]
    fn replay_predicts_mapped_blocks_and_accounts_failures() {
        let isa = synthetic_x86();
        let resolver = Resolver::new(skl(), &isa);
        let (predictor, id) = skl_predictor(1);
        let corpus = "addq %rax, %rbx\nimulq %rcx, %rdx\n\nfrobq %rax\n\nadd al, bl\n";
        let r = replay(corpus, &resolver, &predictor, id);
        assert_eq!(r.accounting.blocks, 3);
        assert_eq!(r.accounting.mapped_blocks, 1);
        assert_eq!(r.accounting.insts, 4);
        assert_eq!(r.accounting.mapped_insts, 2);
        assert!(matches!(r.outcomes[0].result, BlockResult::Cycles(t) if t > 0.0));
        assert_eq!(r.accounting.by_reason.get("unknown_mnemonic"), Some(&1));
        assert_eq!(r.accounting.by_reason.get("unsupported_operands"), Some(&1));
    }

    #[test]
    fn replay_is_identical_across_worker_counts() {
        let isa = synthetic_x86();
        let resolver = Resolver::new(skl(), &isa);
        let corpus = synthetic_corpus(120, 9);
        let (p1, id1) = skl_predictor(1);
        let baseline = replay(&corpus, &resolver, &p1, id1);
        for workers in [2, 8] {
            let (p, id) = skl_predictor(workers);
            let r = replay(&corpus, &resolver, &p, id);
            assert_eq!(r, baseline, "workers={workers}");
            assert_eq!(accounting_json(&r.accounting), accounting_json(&baseline.accounting));
        }
    }

    #[test]
    fn accounting_json_shape_is_stable() {
        let acc = Accounting {
            blocks: 2,
            mapped_blocks: 1,
            insts: 5,
            mapped_insts: 4,
            by_reason: BTreeMap::from([(MALFORMED_LINE, 1)]),
            checksum: 7,
        };
        assert_eq!(
            accounting_json(&acc),
            "{\"blocks\":2,\"mapped_blocks\":1,\"insts\":5,\"mapped_insts\":4,\
             \"inst_coverage\":0.8,\"block_coverage\":0.5,\
             \"by_reason\":{\"malformed_line\":1},\"checksum\":7}"
        );
    }

    #[test]
    fn malformed_lines_carry_line_and_column() {
        let isa = synthetic_x86();
        let resolver = Resolver::new(skl(), &isa);
        let (predictor, id) = skl_predictor(1);
        let r = replay("addq %rax, %rbx\nmov rax, @x\n", &resolver, &predictor, id);
        match &r.outcomes[0].result {
            BlockResult::Unmapped { line, column, reason, .. } => {
                assert_eq!(*line, 2);
                assert_eq!(*column, 10);
                assert_eq!(*reason, MALFORMED_LINE);
            }
            other => panic!("expected unmapped block, got {other:?}"),
        }
    }
}
