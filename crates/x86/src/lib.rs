//! Real-ISA ingestion front end for PMEvo serving (`pmevo-x86`).
//!
//! PMEvo's inference and serving layers speak *instruction forms*
//! (`add_r64_r64`) — the normalized vocabulary of the paper's §4.1. Real
//! workloads arrive as disassembled text. This crate bridges the gap:
//!
//! * [`parse`] — a shallow tokenizer for x86-64 disassembly in both
//!   AT&T (`addq %rax, %rbx`) and Intel (`add rbx, rax`) syntax, with
//!   1-based line/column error positions,
//! * [`mod@normalize`] — dialect-independent canonicalization: AVX `v`
//!   prefixes and AT&T width suffixes stripped, operands reordered to
//!   destination-first, operand *shapes* (reg/imm/mem + width) extracted,
//! * [`uarch`] — per-microarchitecture mapping tables built by feature
//!   accretion (`x86_base().with_cmov()...`) that resolve canonical
//!   instructions onto a platform's [`pmevo_isa::InstructionSet`],
//!   including a cross-ISA translation table for replaying x86 corpora
//!   on the ARM-flavoured A72 form universe, with every non-resolution
//!   attributed to a stable reason,
//! * [`corpus`] / [`mod@replay`] — BHive-style basic-block corpora: one
//!   block = one [`pmevo_core::Experiment`], streamed through a
//!   [`pmevo_predict::Predictor`] in a single batch with byte-
//!   deterministic coverage accounting.
//!
//! # Example
//!
//! ```
//! use pmevo_isa::synth::synthetic_x86;
//! use pmevo_x86::{normalize, parse_line, skl, Resolver};
//!
//! let isa = synthetic_x86();
//! let resolver = Resolver::new(skl(), &isa);
//! for line in ["addq %rax, %rbx", "add rbx, rax"] {
//!     let inst = normalize(&parse_line(line).unwrap().unwrap());
//!     let id = resolver.resolve(&inst).unwrap();
//!     assert_eq!(isa.form(id).name, "add_r64_r64");
//! }
//! ```

#![deny(missing_docs)]

pub mod corpus;
pub mod normalize;
pub mod parse;
pub mod replay;
pub mod uarch;

pub use corpus::{parse_corpus, synthetic_corpus, Block};
pub use normalize::{normalize, NormInst, Shape};
pub use parse::{parse_line, Operand, ParseError, ParsedInst, ParsedOperand, Syntax};
pub use replay::{
    accounting_json, replay, Accounting, BlockOutcome, BlockResult, Replay, MALFORMED_LINE,
};
pub use uarch::{a72, by_name, registry, skl, zen, Extension, Resolver, UarchTable, Unmapped};
