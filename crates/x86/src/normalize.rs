//! Mnemonic and operand-shape normalization: from a lexed line to a
//! dialect-independent instruction description.
//!
//! Normalization makes the two dialects of the same instruction
//! indistinguishable — `addq %rax, %rbx` and `add rbx, rax` produce the
//! same [`NormInst`] — so resolution ([`crate::uarch`]) only ever sees
//! one canonical spelling:
//!
//! * the mnemonic is canonicalized (AVX `v` prefix stripped, AT&T width
//!   suffix stripped, `movz*` aliases folded to `movzx`),
//! * operands are reordered to destination-first (Intel order),
//! * each operand is reduced to its [`Shape`], with memory widths
//!   inferred from explicit hints, the AT&T width suffix, or the widest
//!   register operand, in that order.

use crate::parse::{Operand, ParsedInst, Syntax};
use crate::uarch::registry;

/// The resolution-relevant shape of one operand, destination-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// General-purpose register of the given width in bits.
    R(u32),
    /// Vector register of the given width in bits.
    V(u32),
    /// Immediate constant.
    I,
    /// Memory reference.
    M {
        /// Access width in bits.
        bits: u32,
        /// Whether the address uses an index register.
        has_index: bool,
    },
}

/// A dialect-independent instruction: canonical mnemonic plus operand
/// shapes in destination-first order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormInst {
    /// Canonical mnemonic (`add`, `paddd`, `movzx`, ...). For unknown
    /// mnemonics this is the raw lower-cased spelling, kept for error
    /// reporting and typo suggestions.
    pub mnemonic: String,
    /// Whether the canonical mnemonic is in the x86 [`registry`].
    pub known: bool,
    /// Operand shapes, destination first.
    pub shapes: Vec<Shape>,
}

/// Canonicalizes a raw lower-case mnemonic: returns the registry
/// spelling plus the operand width in bits encoded by a stripped AT&T
/// suffix, if any.
///
/// Resolution order matters: an exact registry hit always wins (so
/// `cmovl` is the signed-less conditional move, not `cmov` + `l`
/// suffix), then the AVX `v` prefix is tried, then the AT&T `b`/`w`/
/// `l`/`q` width suffix, then both together.
fn canonical_mnemonic(raw: &str, syntax: Syntax) -> (String, bool, Option<u32>) {
    // movzbl/movzbq/movzwl/movzwq (AT&T) and movzx (Intel) are one
    // family; the AT&T aliases encode the *source* width in their first
    // suffix letter, matching Intel's `byte ptr`/`word ptr` hint.
    if raw == "movzx" {
        return ("movzx".to_string(), true, None);
    }
    if raw.len() == 6 {
        if let Some(bits) = [("movzb", 8), ("movzw", 16)]
            .iter()
            .find_map(|&(p, bits)| raw.starts_with(p).then_some(bits))
        {
            return ("movzx".to_string(), true, Some(bits));
        }
    }
    let reg = registry();
    if reg.contains_key(raw) {
        return (raw.to_string(), true, None);
    }
    let unprefixed = raw.strip_prefix('v').filter(|rest| reg.contains_key(*rest));
    if let Some(rest) = unprefixed {
        return (rest.to_string(), true, None);
    }
    if syntax == Syntax::Att && raw.len() > 1 {
        let (stem, suffix) = raw.split_at(raw.len() - 1);
        let bits = match suffix {
            "b" => Some(8),
            "w" => Some(16),
            "l" => Some(32),
            "q" => Some(64),
            _ => None,
        };
        if bits.is_some() {
            if reg.contains_key(stem) {
                return (stem.to_string(), true, bits);
            }
            if let Some(unprefixed) = stem.strip_prefix('v').filter(|s| reg.contains_key(*s)) {
                return (unprefixed.to_string(), true, bits);
            }
        }
    }
    (raw.to_string(), false, None)
}

/// Normalizes a parsed instruction to its canonical, dest-first form.
///
/// # Example
///
/// ```
/// use pmevo_x86::normalize::{normalize, Shape};
/// use pmevo_x86::parse::parse_line;
///
/// let att = normalize(&parse_line("addq %rax, %rbx").unwrap().unwrap());
/// let intel = normalize(&parse_line("add rbx, rax").unwrap().unwrap());
/// assert_eq!(att, intel);
/// assert_eq!(att.mnemonic, "add");
/// assert_eq!(att.shapes, vec![Shape::R(64), Shape::R(64)]);
/// ```
pub fn normalize(inst: &ParsedInst) -> NormInst {
    let (mnemonic, known, suffix_bits) = canonical_mnemonic(&inst.mnemonic, inst.syntax);

    // Memory width inference: explicit hint > AT&T suffix > widest
    // register operand (vector registers dominate — `movups` moves the
    // full vector) > 64-bit default.
    let widest_gpr = inst
        .operands
        .iter()
        .filter_map(|o| match o.op {
            Operand::Reg { vec: false, bits, .. } => Some(bits),
            _ => None,
        })
        .max();
    let widest_vec = inst
        .operands
        .iter()
        .filter_map(|o| match o.op {
            Operand::Reg { vec: true, bits, .. } => Some(bits),
            _ => None,
        })
        .max();
    let inferred = widest_vec.or(widest_gpr).or(suffix_bits).unwrap_or(64);

    let mut shapes: Vec<Shape> = inst
        .operands
        .iter()
        .map(|o| match o.op {
            Operand::Reg { vec: false, bits, .. } => Shape::R(bits),
            Operand::Reg { vec: true, bits, .. } => Shape::V(bits),
            Operand::Imm => Shape::I,
            Operand::Mem { has_index, width_hint } => Shape::M {
                bits: width_hint.or(suffix_bits).unwrap_or(inferred),
                has_index,
            },
        })
        .collect();
    if inst.syntax == Syntax::Att {
        shapes.reverse();
    }
    NormInst { mnemonic, known, shapes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_line;

    fn norm(line: &str) -> NormInst {
        normalize(&parse_line(line).unwrap().unwrap())
    }

    #[test]
    fn att_and_intel_spellings_normalize_identically() {
        for (att, intel) in [
            ("addq %rax, %rbx", "add rbx, rax"),
            ("subl $4, %eax", "sub eax, 4"),
            ("movq (%rdi), %rax", "mov rax, qword ptr [rdi]"),
            ("movq %rax, (%rdi)", "mov qword ptr [rdi], rax"),
            ("vpaddd %xmm2, %xmm1, %xmm0", "vpaddd xmm0, xmm1, xmm2"),
            ("leaq (%rax,%rbx,8), %rcx", "lea rcx, [rax+rbx*8]"),
            ("imulq $3, %rbx, %rax", "imul rax, rbx, 3"),
        ] {
            assert_eq!(norm(att), norm(intel), "{att} vs {intel}");
        }
    }

    #[test]
    fn avx_prefix_and_width_suffixes_strip() {
        assert_eq!(norm("vaddps %ymm1, %ymm2, %ymm0").mnemonic, "addps");
        assert_eq!(norm("addq %rax, %rbx").mnemonic, "add");
        assert_eq!(norm("incl %eax").mnemonic, "inc");
        // Exact registry hits win over suffix stripping.
        assert_eq!(norm("cmovl %eax, %ebx").mnemonic, "cmovl");
        // movz* aliases fold to movzx.
        assert_eq!(norm("movzbl (%rdi), %eax").mnemonic, "movzx");
        assert_eq!(norm("movzx eax, byte ptr [rdi]").mnemonic, "movzx");
    }

    #[test]
    fn unknown_mnemonics_are_flagged_not_rejected() {
        let n = norm("addd %rax, %rbx");
        assert!(!n.known);
        assert_eq!(n.mnemonic, "addd");
    }

    #[test]
    fn memory_width_inference_prefers_hint_then_suffix_then_registers() {
        assert_eq!(
            norm("add rbx, dword ptr [rax]").shapes[1],
            Shape::M { bits: 32, has_index: false }
        );
        // AT&T: suffix drives the width when no hint exists.
        assert_eq!(norm("addq (%rax), %rbx").shapes[1], Shape::M { bits: 64, has_index: false });
        // Suffix-less AT&T memory width falls back to the register.
        assert_eq!(norm("add (%rax), %ebx").shapes[1], Shape::M { bits: 32, has_index: false });
        // Vector moves use the vector width.
        assert_eq!(
            norm("movups %xmm0, (%rax)").shapes[0],
            Shape::M { bits: 128, has_index: false }
        );
    }
}
