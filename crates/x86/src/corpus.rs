//! BHive-style basic-block corpora: parsing and deterministic synthesis.
//!
//! A corpus is plain text: one instruction per line, basic blocks
//! separated by blank lines, `#`/`;` comments allowed anywhere (comment
//! lines do not terminate a block). This mirrors the layout of published
//! basic-block datasets (BHive et al.) after disassembly, so real
//! corpora drop in without conversion.

/// One basic block: its 1-based starting line and its instruction lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// 1-based line number of the block's first instruction.
    pub start_line: u32,
    /// `(1-based line number, raw text)` per instruction line.
    pub lines: Vec<(u32, String)>,
}

/// Splits corpus text into blank-line-separated basic blocks.
///
/// Comment-only and blank lines never become instructions; a run of one
/// or more blank lines ends the current block. Line numbers are 1-based
/// positions in the original text, so error messages point into the
/// file the user actually has.
///
/// # Example
///
/// ```
/// use pmevo_x86::corpus::parse_corpus;
///
/// let text = "# two blocks\naddq %rax, %rbx\n\nmov rcx, 7\nsub rcx, rax\n";
/// let blocks = parse_corpus(text);
/// assert_eq!(blocks.len(), 2);
/// assert_eq!(blocks[0].start_line, 2);
/// assert_eq!(blocks[1].lines.len(), 2);
/// ```
pub fn parse_corpus(text: &str) -> Vec<Block> {
    let mut blocks: Vec<Block> = Vec::new();
    let mut current: Option<Block> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = (i + 1) as u32;
        let code = match raw.find(['#', ';']) {
            Some(p) => &raw[..p],
            None => raw,
        };
        if code.trim().is_empty() {
            // A fully blank line ends the block; a comment line does not.
            if raw.trim().is_empty() {
                if let Some(b) = current.take() {
                    blocks.push(b);
                }
            }
            continue;
        }
        current
            .get_or_insert_with(|| Block { start_line: line_no, lines: Vec::new() })
            .lines
            .push((line_no, raw.to_string()));
    }
    if let Some(b) = current {
        blocks.push(b);
    }
    blocks
}

/// A tiny deterministic PRNG (xorshift64*) so corpus synthesis needs no
/// external randomness source and the same seed always yields the same
/// bytes.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.below(options.len())]
    }
}

const GPR64: [&str; 8] = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8", "r9"];
const GPR32: [&str; 8] = ["eax", "ebx", "ecx", "edx", "esi", "edi", "r10d", "r11d"];
const XMM: [&str; 6] = ["xmm0", "xmm1", "xmm2", "xmm3", "xmm4", "xmm5"];
const YMM: [&str; 4] = ["ymm0", "ymm1", "ymm2", "ymm3"];

/// Emits one instruction in both dialects: `(att, intel)`.
fn gen_inst(rng: &mut XorShift) -> (String, String) {
    let q = rng.pick(&GPR64);
    let q2 = rng.pick(&GPR64);
    let e = rng.pick(&GPR32);
    let e2 = rng.pick(&GPR32);
    let x = rng.pick(&XMM);
    let x2 = rng.pick(&XMM);
    let x3 = rng.pick(&XMM);
    let y = rng.pick(&YMM);
    let y2 = rng.pick(&YMM);
    let y3 = rng.pick(&YMM);
    let imm = rng.below(64);
    let disp = 8 * rng.below(8);
    match rng.below(30) {
        0 => {
            let m = rng.pick(&["add", "sub", "and", "or", "xor", "cmp"]);
            (format!("{m}q %{q2}, %{q}"), format!("{m} {q}, {q2}"))
        }
        1 => {
            let m = rng.pick(&["add", "sub", "and", "xor", "test"]);
            (format!("{m}l %{e2}, %{e}"), format!("{m} {e}, {e2}"))
        }
        2 => {
            let m = rng.pick(&["add", "sub", "cmp", "mov"]);
            (format!("{m}q ${imm}, %{q}"), format!("{m} {q}, {imm}"))
        }
        3 => {
            let m = rng.pick(&["add", "sub", "and", "or", "xor", "cmp"]);
            (
                format!("{m}q {disp}(%{q2}), %{q}"),
                format!("{m} {q}, qword ptr [{q2}+{disp}]"),
            )
        }
        4 => (format!("movq {disp}(%{q2}), %{q}"), format!("mov {q}, qword ptr [{q2}+{disp}]")),
        5 => (format!("movq %{q}, {disp}(%{q2})"), format!("mov qword ptr [{q2}+{disp}], {q}")),
        6 => (format!("movl (%{q2}), %{e}"), format!("mov {e}, dword ptr [{q2}]")),
        7 => (format!("movzbl (%{q2}), %{e}"), format!("movzx {e}, byte ptr [{q2}]")),
        8 => (format!("leaq {disp}(%{q2}), %{q}"), format!("lea {q}, [{q2}+{disp}]")),
        9 => (
            format!("leaq (%{q2},%{q},8), %{q}"),
            format!("lea {q}, [{q2}+{q}*8]"),
        ),
        10 => (format!("imulq %{q2}, %{q}"), format!("imul {q}, {q2}")),
        11 => (format!("imulq ${imm}, %{q2}, %{q}"), format!("imul {q}, {q2}, {imm}")),
        12 => (format!("mulq %{q}"), format!("mul {q}")),
        13 => (format!("divq %{q}"), format!("div {q}")),
        14 => {
            let m = rng.pick(&["shl", "shr", "sar", "rol", "ror"]);
            (format!("{m}q ${imm}, %{q}"), format!("{m} {q}, {imm}"))
        }
        15 => {
            let m = rng.pick(&["inc", "dec", "neg", "not"]);
            (format!("{m}q %{q}"), format!("{m} {q}"))
        }
        16 => {
            let m = rng.pick(&["popcnt", "lzcnt"]);
            (format!("{m} %{q2}, %{q}"), format!("{m} {q}, {q2}"))
        }
        17 => {
            let m = rng.pick(&["cmove", "cmovne", "cmovl", "cmovg"]);
            (format!("{m} %{q2}, %{q}"), format!("{m} {q}, {q2}"))
        }
        18 => {
            let m = rng.pick(&["paddb", "paddw", "paddd", "paddq", "psubd", "pand", "por", "pxor"]);
            (format!("{m} %{x2}, %{x}"), format!("{m} {x}, {x2}"))
        }
        19 => {
            let m = rng.pick(&["paddd", "psubq", "pxor", "pand"]);
            (format!("v{m} %{y3}, %{y2}, %{y}"), format!("v{m} {y}, {y2}, {y3}"))
        }
        20 => {
            let m = rng.pick(&["addps", "subps", "mulps", "addpd", "mulpd"]);
            (format!("{m} %{x2}, %{x}"), format!("{m} {x}, {x2}"))
        }
        21 => {
            let m = rng.pick(&["addps", "mulps", "subpd"]);
            (format!("v{m} %{y3}, %{y2}, %{y}"), format!("v{m} {y}, {y2}, {y3}"))
        }
        22 => {
            let m = rng.pick(&["divps", "sqrtps", "divpd"]);
            (format!("{m} %{x2}, %{x}"), format!("{m} {x}, {x2}"))
        }
        23 => (format!("pshufd ${imm}, %{x2}, %{x}"), format!("pshufd {x}, {x2}, {imm}")),
        24 => {
            let m = rng.pick(&["punpcklbw", "unpcklps", "pminsd", "pmaxsd", "pcmpeqd"]);
            (format!("{m} %{x2}, %{x}"), format!("{m} {x}, {x2}"))
        }
        25 => {
            let m = rng.pick(&["movups", "movaps", "movdqu"]);
            if rng.below(2) == 0 {
                (format!("{m} (%{q2}), %{x}"), format!("{m} {x}, [{q2}]"))
            } else {
                (format!("{m} %{x}, (%{q2})"), format!("{m} [{q2}], {x}"))
            }
        }
        26 => {
            let m = rng.pick(&["cvtdq2ps", "cvtps2dq", "cvtps2pd"]);
            (format!("{m} %{x2}, %{x}"), format!("{m} {x}, {x2}"))
        }
        27 => (format!("cvtsi2sd %{q}, %{x}"), format!("cvtsi2sd {x}, {q}")),
        28 => (
            format!("vfmadd213ps %{x3}, %{x2}, %{x}"),
            format!("vfmadd213ps {x}, {x2}, {x3}"),
        ),
        _ => {
            let m = rng.pick(&["bt", "btc", "btr", "bts"]);
            (format!("{m}q ${imm}, %{q}"), format!("{m} {q}, {imm}"))
        }
    }
}

/// A line that must not map, exercising one accounting reason each.
fn gen_bad_inst(rng: &mut XorShift) -> &'static str {
    match rng.below(4) {
        // Typo'd mnemonic: unknown_mnemonic with a suggestion.
        0 => "addd %rax, %rbx",
        // Entirely foreign mnemonic: unknown_mnemonic, no suggestion.
        1 => "crc32q %rax, %rbx",
        // 8-bit operands: unsupported_operands.
        2 => "add al, bl",
        // Lexically malformed operand: malformed_line.
        _ => "mov rax, @local_7",
    }
}

/// Generates a deterministic synthetic corpus of `blocks` basic blocks.
///
/// Each block holds 1–6 instructions rendered in one dialect (AT&T or
/// Intel, chosen per block); roughly 1 line in 64 is deliberately
/// unmappable so the accounting paths of corpus replay stay exercised.
/// Identical `(blocks, seed)` always produce identical bytes — the
/// checked-in test fixture asserts this against its own generator.
pub fn synthetic_corpus(blocks: usize, seed: u64) -> String {
    let mut rng = XorShift::new(seed);
    let mut out = String::new();
    out.push_str("# synthetic x86-64 basic-block corpus (pmevo-x86)\n");
    out.push_str(&format!("# blocks: {blocks}, seed: {seed}\n"));
    for b in 0..blocks {
        out.push('\n');
        out.push_str(&format!("# block {b}\n"));
        let len = 1 + rng.below(6);
        let att = rng.below(2) == 0;
        for _ in 0..len {
            if rng.below(64) == 0 {
                out.push_str(gen_bad_inst(&mut rng));
                out.push('\n');
                continue;
            }
            let (a, i) = gen_inst(&mut rng);
            out.push_str(if att { &a } else { &i });
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_split_on_blank_lines_not_comments() {
        let text = "addq %rax, %rbx\n# note\nsubq %rcx, %rdx\n\n\nmov rax, 1\n";
        let blocks = parse_corpus(text);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].lines.len(), 2);
        assert_eq!(blocks[0].lines[1].0, 3);
        assert_eq!(blocks[1].start_line, 6);
    }

    #[test]
    fn empty_and_comment_only_corpora_have_no_blocks() {
        assert!(parse_corpus("").is_empty());
        assert!(parse_corpus("# nothing\n\n; here\n").is_empty());
    }

    #[test]
    fn synthesis_is_deterministic_and_sized() {
        let a = synthetic_corpus(50, 7);
        let b = synthetic_corpus(50, 7);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_corpus(50, 8));
        assert_eq!(parse_corpus(&a).len(), 50);
    }

    #[test]
    fn synthetic_lines_parse() {
        let text = synthetic_corpus(200, 42);
        for block in parse_corpus(&text) {
            for (no, line) in &block.lines {
                // Every generated line is lexically valid except the
                // deliberate `@`-operand malformed one.
                if line.contains('@') {
                    continue;
                }
                assert!(
                    crate::parse::parse_line(line).is_ok(),
                    "line {no} does not parse: {line}"
                );
            }
        }
    }
}
