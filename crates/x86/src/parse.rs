//! Tokenizer for disassembled x86-64 text in AT&T or Intel syntax.
//!
//! The parser is deliberately shallow: it recognizes the lexical shape of
//! an instruction line — mnemonic plus register/immediate/memory operands
//! — and nothing about semantics. Semantic normalization (canonical
//! mnemonics, operand shapes) lives in [`mod@crate::normalize`]; resolution
//! onto platform instruction forms lives in [`crate::uarch`]. Every error
//! carries a 1-based column so front ends can point at the offending
//! token.

use std::fmt;

/// The assembly dialect a line is written in.
///
/// Detected per line: any `%`-prefixed register means AT&T, everything
/// else is treated as Intel. Mixed corpora therefore parse without any
/// global mode switch, like real disassembler output concatenated from
/// different tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Syntax {
    /// AT&T syntax (`addq %rax, %rbx`): `%` registers, `$` immediates,
    /// source before destination, width suffix on the mnemonic.
    Att,
    /// Intel syntax (`add rbx, rax`): bare registers, destination first,
    /// optional `qword ptr [...]` width prefixes on memory operands.
    Intel,
}

/// One lexical operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A register reference.
    Reg {
        /// Canonical lower-case register name without the AT&T `%`.
        name: String,
        /// Whether this is a vector register (`xmm`/`ymm`/`zmm`).
        vec: bool,
        /// Register width in bits (8/16/32/64 scalar, 128/256/512 vector).
        bits: u32,
    },
    /// An immediate constant. The value is irrelevant to throughput
    /// prediction, so it is not kept.
    Imm,
    /// A memory reference.
    Mem {
        /// Whether the address uses an index register (base + index
        /// addressing) — distinguishes simple from complex `lea`.
        has_index: bool,
        /// Access width in bits when the text spells one (`qword ptr`),
        /// `None` when it must be inferred from context.
        width_hint: Option<u32>,
    },
}

/// An operand plus the 1-based column where its text starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedOperand {
    /// The operand.
    pub op: Operand,
    /// 1-based column of the operand's first character in the line.
    pub column: usize,
}

/// One parsed instruction line, still in source operand order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedInst {
    /// The raw mnemonic, lower-cased, width suffix intact (`addq`).
    pub mnemonic: String,
    /// 1-based column of the mnemonic's first character.
    pub column: usize,
    /// Operands in *source text order* (AT&T lines are therefore
    /// source-first; [`crate::normalize()`] flips them to dest-first).
    pub operands: Vec<ParsedOperand>,
    /// The detected dialect.
    pub syntax: Syntax,
}

/// A lexical error with the 1-based column it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based column of the offending token.
    pub column: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "column {}: {}", self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Register name → `(bits, is_vector)`, or `None` for unknown names.
pub fn register_info(name: &str) -> Option<(u32, bool)> {
    // Vector registers: xmmN / ymmN / zmmN, N in 0..=31.
    for (prefix, bits) in [("xmm", 128), ("ymm", 256), ("zmm", 512)] {
        if let Some(n) = name.strip_prefix(prefix) {
            return valid_reg_number(n, 31).then_some((bits, true));
        }
    }
    // Numbered GPRs: r8..r15 with optional d/w/b suffix.
    if let Some(rest) = name.strip_prefix('r') {
        let (digits, bits) = match rest.as_bytes().last() {
            Some(b'd') => (&rest[..rest.len() - 1], 32),
            Some(b'w') => (&rest[..rest.len() - 1], 16),
            Some(b'b') => (&rest[..rest.len() - 1], 8),
            _ => (rest, 64),
        };
        if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()) {
            let n: u32 = digits.parse().ok()?;
            return (8..=15).contains(&n).then_some((bits, false));
        }
    }
    let named = match name {
        "rax" | "rbx" | "rcx" | "rdx" | "rsi" | "rdi" | "rbp" | "rsp" | "rip" => 64,
        "eax" | "ebx" | "ecx" | "edx" | "esi" | "edi" | "ebp" | "esp" => 32,
        "ax" | "bx" | "cx" | "dx" | "si" | "di" | "bp" | "sp" => 16,
        "al" | "bl" | "cl" | "dl" | "ah" | "bh" | "ch" | "dh" | "sil" | "dil" | "bpl" | "spl" => 8,
        _ => return None,
    };
    Some((named, false))
}

fn valid_reg_number(digits: &str, max: u32) -> bool {
    !digits.is_empty()
        && digits.chars().all(|c| c.is_ascii_digit())
        && digits.parse::<u32>().is_ok_and(|n| n <= max)
}

/// Whether `s` is a decimal or hex integer literal (optional sign).
fn is_number(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return !hex.is_empty() && hex.chars().all(|c| c.is_ascii_hexdigit());
    }
    !s.is_empty() && s.chars().all(|c| c.is_ascii_digit())
}

/// Parses one line of disassembly.
///
/// Returns `Ok(None)` for blank lines and `#`/`;` comment lines;
/// `Ok(Some(_))` for an instruction; `Err` with a 1-based column for
/// anything lexically malformed.
///
/// # Example
///
/// ```
/// use pmevo_x86::parse::{parse_line, Operand, Syntax};
///
/// let inst = parse_line("  addq %rax, %rbx").unwrap().unwrap();
/// assert_eq!(inst.mnemonic, "addq");
/// assert_eq!(inst.syntax, Syntax::Att);
/// assert_eq!(inst.operands.len(), 2);
///
/// let inst = parse_line("add rbx, rax").unwrap().unwrap();
/// assert_eq!(inst.syntax, Syntax::Intel);
/// assert!(matches!(inst.operands[0].op, Operand::Reg { ref name, .. } if name == "rbx"));
///
/// assert!(parse_line("# a comment").unwrap().is_none());
/// assert!(parse_line("add rbx, @x").is_err());
/// ```
pub fn parse_line(line: &str) -> Result<Option<ParsedInst>, ParseError> {
    // Strip trailing comments; `#` (GNU as) and `;` (Intel listings).
    let code = match line.find(['#', ';']) {
        Some(i) => &line[..i],
        None => line,
    };
    let trimmed = code.trim_end();
    let mnemonic_start = trimmed.len() - trimmed.trim_start().len();
    let body = trimmed.trim_start();
    if body.is_empty() {
        return Ok(None);
    }

    let syntax = if body.contains('%') { Syntax::Att } else { Syntax::Intel };
    let (mnemonic, rest_offset) = match body.find(char::is_whitespace) {
        Some(i) => (&body[..i], i),
        None => (body, body.len()),
    };
    if !mnemonic.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.') {
        return Err(ParseError {
            column: mnemonic_start + 1,
            message: format!("malformed mnemonic {mnemonic:?}"),
        });
    }
    let rest = &body[rest_offset..];
    let rest_start = mnemonic_start + rest_offset;

    let mut operands = Vec::new();
    for (token, token_start) in split_operands(rest, rest_start) {
        let op = parse_operand(token, token_start + 1, syntax)?;
        operands.push(ParsedOperand { op, column: token_start + 1 });
    }
    Ok(Some(ParsedInst {
        mnemonic: mnemonic.to_ascii_lowercase(),
        column: mnemonic_start + 1,
        operands,
        syntax,
    }))
}

/// Splits the operand list on commas that are not nested inside `()` or
/// `[]`, yielding `(trimmed_token, 0-based start offset in the line)`.
fn split_operands(rest: &str, rest_start: usize) -> Vec<(&str, usize)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut field_start = 0usize;
    let bytes = rest.as_bytes();
    for i in 0..=bytes.len() {
        let at_split = i == bytes.len() || (bytes[i] == b',' && depth == 0);
        if at_split {
            let raw = &rest[field_start..i];
            let lead = raw.len() - raw.trim_start().len();
            let token = raw.trim();
            // An entirely empty operand list yields nothing; an empty
            // field next to a comma is a real (malformed) operand.
            if !token.is_empty() || field_start != 0 || i != bytes.len() {
                out.push((token, rest_start + field_start + lead));
            }
            field_start = i + 1;
        } else {
            match bytes[i] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    out
}

fn parse_operand(token: &str, column: usize, syntax: Syntax) -> Result<Operand, ParseError> {
    if token.is_empty() {
        return Err(ParseError { column, message: "empty operand".to_string() });
    }
    match syntax {
        Syntax::Att => parse_att_operand(token, column),
        Syntax::Intel => parse_intel_operand(token, column),
    }
}

fn parse_att_operand(token: &str, column: usize) -> Result<Operand, ParseError> {
    if let Some(reg) = token.strip_prefix('%') {
        let name = reg.to_ascii_lowercase();
        let (bits, vec) = register_info(&name).ok_or_else(|| ParseError {
            column,
            message: format!("unknown register %{name}"),
        })?;
        return Ok(Operand::Reg { name, vec, bits });
    }
    if token.starts_with('$') {
        return Ok(Operand::Imm);
    }
    if let Some(open) = token.find('(') {
        let Some(inner) = token[open + 1..].strip_suffix(')') else {
            return Err(ParseError { column, message: format!("unclosed memory operand {token:?}") });
        };
        let disp = &token[..open];
        if !disp.is_empty() && !is_number(disp) {
            return Err(ParseError {
                column,
                message: format!("malformed displacement {disp:?}"),
            });
        }
        // `disp(base)`, `disp(base,index)` or `disp(base,index,scale)`.
        let has_index = inner.split(',').nth(1).is_some_and(|f| !f.trim().is_empty());
        return Ok(Operand::Mem { has_index, width_hint: None });
    }
    if is_number(token) {
        // Absolute address, e.g. `movq %rax, 4096`.
        return Ok(Operand::Mem { has_index: false, width_hint: None });
    }
    Err(ParseError { column, message: format!("unrecognized operand {token:?}") })
}

fn parse_intel_operand(token: &str, column: usize) -> Result<Operand, ParseError> {
    let lower = token.to_ascii_lowercase();
    // `qword ptr [rax]`-style width prefixes.
    let (width_hint, mem_text) = match lower.split_once("ptr") {
        Some((width, rest)) => {
            let hint = match width.trim() {
                "byte" => 8,
                "word" => 16,
                "dword" => 32,
                "qword" => 64,
                "xmmword" => 128,
                "ymmword" => 256,
                other => {
                    return Err(ParseError {
                        column,
                        message: format!("unknown width specifier {other:?}"),
                    })
                }
            };
            (Some(hint), rest.trim_start())
        }
        None => (None, lower.as_str()),
    };
    if let Some(addr) = mem_text.strip_prefix('[') {
        let Some(inner) = addr.strip_suffix(']') else {
            return Err(ParseError { column, message: format!("unclosed memory operand {token:?}") });
        };
        // `[base]`, `[base+disp]`, `[base+index*scale]`, ... — an index
        // register is present when a second register name appears.
        let regs = inner
            .split(['+', '-', '*'])
            .filter(|part| register_info(part.trim()).is_some())
            .count();
        return Ok(Operand::Mem { has_index: regs >= 2 || inner.contains('*'), width_hint });
    }
    if width_hint.is_some() {
        return Err(ParseError {
            column,
            message: format!("width specifier without memory operand in {token:?}"),
        });
    }
    if let Some((bits, vec)) = register_info(&lower) {
        return Ok(Operand::Reg { name: lower, vec, bits });
    }
    if is_number(&lower) {
        return Ok(Operand::Imm);
    }
    Err(ParseError { column, message: format!("unrecognized operand {token:?}") })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(line: &str) -> ParsedInst {
        parse_line(line).expect("parses").expect("not blank")
    }

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("# block 7").unwrap(), None);
        assert_eq!(parse_line("; intel comment").unwrap(), None);
        assert_eq!(parse_line("  add rax, rbx # trailing").unwrap().unwrap().mnemonic, "add");
    }

    #[test]
    fn att_operands_parse_with_columns() {
        let i = inst("addq %rax, %rbx");
        assert_eq!(i.syntax, Syntax::Att);
        assert_eq!(i.column, 1);
        assert_eq!(i.operands[0].column, 6);
        assert_eq!(
            i.operands[0].op,
            Operand::Reg { name: "rax".into(), vec: false, bits: 64 }
        );
        assert_eq!(i.operands[1].column, 12);

        let i = inst("movq 8(%rsp), %rcx");
        assert_eq!(i.operands[0].op, Operand::Mem { has_index: false, width_hint: None });
        let i = inst("leaq (%rax,%rbx,4), %rdx");
        assert_eq!(i.operands[0].op, Operand::Mem { has_index: true, width_hint: None });
        let i = inst("addl $42, %eax");
        assert_eq!(i.operands[0].op, Operand::Imm);
    }

    #[test]
    fn intel_operands_parse_with_width_hints() {
        let i = inst("add rbx, qword ptr [rax+8]");
        assert_eq!(i.syntax, Syntax::Intel);
        assert_eq!(i.operands[1].op, Operand::Mem { has_index: false, width_hint: Some(64) });
        let i = inst("mov eax, dword ptr [rbx+rcx*4]");
        assert_eq!(i.operands[1].op, Operand::Mem { has_index: true, width_hint: Some(32) });
        let i = inst("movups xmm0, [rax]");
        assert_eq!(i.operands[0].op, Operand::Reg { name: "xmm0".into(), vec: true, bits: 128 });
        let i = inst("add rax, 7");
        assert_eq!(i.operands[1].op, Operand::Imm);
    }

    #[test]
    fn register_table_covers_all_widths() {
        assert_eq!(register_info("rax"), Some((64, false)));
        assert_eq!(register_info("r10"), Some((64, false)));
        assert_eq!(register_info("r10d"), Some((32, false)));
        assert_eq!(register_info("r10w"), Some((16, false)));
        assert_eq!(register_info("r10b"), Some((8, false)));
        assert_eq!(register_info("al"), Some((8, false)));
        assert_eq!(register_info("ymm15"), Some((256, true)));
        assert_eq!(register_info("zmm0"), Some((512, true)));
        assert_eq!(register_info("r16"), None);
        assert_eq!(register_info("xmm32"), None);
        assert_eq!(register_info("foo"), None);
    }

    #[test]
    fn errors_carry_one_based_columns() {
        let e = parse_line("addq %rax, %nope").unwrap_err();
        assert_eq!(e.column, 12);
        assert!(e.message.contains("unknown register"));

        let e = parse_line("add rbx, @x").unwrap_err();
        assert_eq!(e.column, 10);
        assert!(e.message.contains("unrecognized operand"));

        let e = parse_line("mov rax,").unwrap_err();
        assert!(e.message.contains("empty operand"));

        let e = parse_line("add rax, qqword ptr [rbx]").unwrap_err();
        assert!(e.message.contains("unknown width specifier"));

        let e = parse_line("movq 8(%rsp, %rax").unwrap_err();
        assert!(e.message.contains("unclosed"));
    }

    #[test]
    fn zero_operand_lines_parse() {
        let i = inst("nop");
        assert!(i.operands.is_empty());
        assert_eq!(i.syntax, Syntax::Intel);
    }
}
