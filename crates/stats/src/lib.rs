//! Accuracy metrics, heat maps and table formatting for the PMEvo
//! evaluation (paper §5.3).
//!
//! * [`mape`], [`pearson`], [`spearman`] — the three accuracy measures of
//!   paper Tables 3 and 4.
//! * [`Heatmap`] — the 35×35 binned predicted-vs-measured heat maps of
//!   paper Figure 7, renderable as ASCII or CSV.
//! * [`Table`] — plain-text result tables for the reproduction binaries.

mod heatmap;
mod metrics;
mod table;

pub use heatmap::Heatmap;
pub use metrics::{mape, pearson, spearman, AccuracySummary};
pub use table::Table;
