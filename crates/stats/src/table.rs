//! Minimal aligned plain-text tables for the reproduction binaries.

use std::fmt;

/// A plain-text table with a header row and aligned columns.
///
/// # Example
///
/// ```
/// use pmevo_stats::Table;
///
/// let mut t = Table::new(vec!["tool", "MAPE"]);
/// t.row(vec!["PMEvo".into(), "14.7%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("PMEvo"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["xxx".into(), "y".into()]);
        t.row(vec!["z".into(), "wwww".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a  "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        Table::new(vec!["a"]).row(vec!["x".into(), "y".into()]);
    }
}
