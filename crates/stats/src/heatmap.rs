//! Binned predicted-vs-measured heat maps (paper Figure 7).

use std::fmt;

/// A square heat map of (measured, predicted) throughput pairs.
///
/// The value range `[0, limit]` is split into `bins × bins` equally sized
/// cells (the paper uses 35×35); each cell counts the experiments falling
/// into it. Points beyond `limit` clamp to the outermost bin, mirroring
/// the cropped axes of the paper's plots.
///
/// # Example
///
/// ```
/// use pmevo_stats::Heatmap;
///
/// let mut h = Heatmap::new(35, 35.0);
/// h.record(1.0, 1.1);
/// h.record(10.0, 9.5);
/// assert_eq!(h.total(), 2);
/// assert!(h.diagonal_fraction(1) >= 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heatmap {
    bins: usize,
    limit_milli: u64, // fixed-point to keep Eq; limit in 1/1000ths
    counts: Vec<u64>,
}

impl Heatmap {
    /// Creates an empty `bins × bins` heat map covering `[0, limit]` on
    /// both axes.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `limit <= 0`.
    pub fn new(bins: usize, limit: f64) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(limit > 0.0, "limit must be positive");
        Heatmap {
            bins,
            limit_milli: (limit * 1000.0).round() as u64,
            counts: vec![0; bins * bins],
        }
    }

    /// The number of bins per axis.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The upper bound of both axes.
    pub fn limit(&self) -> f64 {
        self.limit_milli as f64 / 1000.0
    }

    fn bin_of(&self, v: f64) -> usize {
        let frac = (v / self.limit()).clamp(0.0, 1.0);
        ((frac * self.bins as f64) as usize).min(self.bins - 1)
    }

    /// Records one experiment with measured and predicted throughput.
    pub fn record(&mut self, measured: f64, predicted: f64) {
        let x = self.bin_of(measured);
        let y = self.bin_of(predicted);
        self.counts[y * self.bins + x] += 1;
    }

    /// The count in cell (`measured_bin`, `predicted_bin`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn count(&self, measured_bin: usize, predicted_bin: usize) -> u64 {
        assert!(measured_bin < self.bins && predicted_bin < self.bins);
        self.counts[predicted_bin * self.bins + measured_bin]
    }

    /// Total number of recorded experiments.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of experiments within `tolerance` bins of the diagonal —
    /// a scalar summary of "how tight around the ideal line" the cloud
    /// is in the paper's plots.
    pub fn diagonal_fraction(&self, tolerance: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let mut near = 0u64;
        for y in 0..self.bins {
            for x in 0..self.bins {
                if x.abs_diff(y) <= tolerance {
                    near += self.counts[y * self.bins + x];
                }
            }
        }
        near as f64 / total as f64
    }

    /// Fraction of experiments strictly above the diagonal
    /// (over-estimated) minus those strictly below (under-estimated);
    /// positive means systematic over-estimation (the llvm-mca-on-ZEN
    /// pattern of Figure 7).
    pub fn over_estimation_bias(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut over = 0i64;
        for y in 0..self.bins {
            for x in 0..self.bins {
                let c = self.counts[y * self.bins + x] as i64;
                if y > x {
                    over += c;
                } else if y < x {
                    over -= c;
                }
            }
        }
        over as f64 / total as f64
    }

    /// Renders the map as CSV (`measured_bin,predicted_bin,count` rows,
    /// zero cells omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("measured_bin,predicted_bin,count\n");
        for y in 0..self.bins {
            for x in 0..self.bins {
                let c = self.counts[y * self.bins + x];
                if c > 0 {
                    out.push_str(&format!("{x},{y},{c}\n"));
                }
            }
        }
        out
    }
}

impl fmt::Display for Heatmap {
    /// ASCII rendering: predicted on the vertical axis (top = high),
    /// measured on the horizontal; density in log-scale shades.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const SHADES: [char; 6] = [' ', '.', ':', '+', '#', '@'];
        for y in (0..self.bins).rev() {
            write!(f, "|")?;
            for x in 0..self.bins {
                let c = self.counts[y * self.bins + x];
                let shade = if c == 0 {
                    0
                } else {
                    (((c as f64).log10().floor() as usize) + 1).min(SHADES.len() - 1)
                };
                write!(f, "{}", SHADES[shade])?;
            }
            writeln!(f, "|")?;
        }
        write!(f, "+{}+ 0..{:.0} cycles", "-".repeat(self.bins), self.limit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_bins() {
        let mut h = Heatmap::new(10, 10.0);
        h.record(0.5, 9.5); // measured bin 0, predicted bin 9
        assert_eq!(h.count(0, 9), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = Heatmap::new(10, 10.0);
        h.record(100.0, -1.0);
        assert_eq!(h.count(9, 0), 1);
    }

    #[test]
    fn diagonal_fraction_of_perfect_predictions_is_one() {
        let mut h = Heatmap::new(35, 35.0);
        for i in 0..35 {
            h.record(i as f64, i as f64);
        }
        assert_eq!(h.diagonal_fraction(0), 1.0);
    }

    #[test]
    fn bias_sign_tracks_over_and_under_estimation() {
        let mut over = Heatmap::new(10, 10.0);
        over.record(1.0, 9.0);
        assert!(over.over_estimation_bias() > 0.0);
        let mut under = Heatmap::new(10, 10.0);
        under.record(9.0, 1.0);
        assert!(under.over_estimation_bias() < 0.0);
    }

    #[test]
    fn csv_lists_nonzero_cells_only() {
        let mut h = Heatmap::new(4, 4.0);
        h.record(1.5, 2.5);
        let csv = h.to_csv();
        assert!(csv.contains("1,2,1"));
        assert_eq!(csv.lines().count(), 2); // header + one cell
    }

    #[test]
    fn ascii_rendering_has_expected_dimensions() {
        let h = Heatmap::new(5, 5.0);
        let s = h.to_string();
        assert_eq!(s.lines().count(), 6); // 5 rows + axis line
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Heatmap::new(0, 1.0);
    }
}
