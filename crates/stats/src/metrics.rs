//! The accuracy metrics of paper §5.3: MAPE, Pearson and Spearman
//! correlation coefficients.

/// Mean Absolute Percentage Error of `predicted` against `measured`,
/// in percent.
///
/// `MAPE = 100/n · Σ |pred_i − meas_i| / meas_i`
///
/// # Panics
///
/// Panics if the slices have different lengths, are empty, or a measured
/// value is zero (the experiments of the paper always take ≥ some
/// fraction of a cycle).
///
/// # Example
///
/// ```
/// let m = pmevo_stats::mape(&[1.1, 2.0], &[1.0, 2.0]);
/// assert!((m - 5.0).abs() < 1e-9);
/// ```
pub fn mape(predicted: &[f64], measured: &[f64]) -> f64 {
    assert_eq!(predicted.len(), measured.len(), "length mismatch");
    assert!(!measured.is_empty(), "empty metric input");
    let sum: f64 = predicted
        .iter()
        .zip(measured)
        .map(|(p, m)| {
            assert!(*m != 0.0, "measured value of zero breaks MAPE");
            (p - m).abs() / m.abs()
        })
        .sum();
    100.0 * sum / measured.len() as f64
}

/// Pearson correlation coefficient between two samples.
///
/// Returns 0 for degenerate (constant) inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(!xs.is_empty(), "empty metric input");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Ranks with average tie-handling (the standard construction for
/// Spearman's ρ).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("ranks need finite values"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient (Pearson over average ranks).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(!xs.is_empty(), "empty metric input");
    pearson(&ranks(xs), &ranks(ys))
}

/// The (MAPE, Pearson, Spearman) triple reported per tool and platform in
/// paper Tables 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracySummary {
    /// Mean absolute percentage error, in percent.
    pub mape: f64,
    /// Pearson correlation coefficient.
    pub pearson: f64,
    /// Spearman rank correlation coefficient.
    pub spearman: f64,
}

impl AccuracySummary {
    /// Computes all three metrics over prediction/measurement pairs.
    ///
    /// # Panics
    ///
    /// See [`mape`], [`pearson`], [`spearman`].
    pub fn compute(predicted: &[f64], measured: &[f64]) -> Self {
        AccuracySummary {
            mape: mape(predicted, measured),
            pearson: pearson(predicted, measured),
            spearman: spearman(predicted, measured),
        }
    }
}

impl std::fmt::Display for AccuracySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MAPE {:5.1}%  PCC {:+.2}  SCC {:+.2}",
            self.mape, self.pearson, self.spearman
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_of_perfect_prediction_is_zero() {
        assert_eq!(mape(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn mape_is_relative() {
        // 10% off on each point.
        let m = mape(&[1.1, 22.0], &[1.0, 20.0]);
        assert!((m - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_of_linear_relation_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_detects_monotone_nonlinear_relations() {
        let xs: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        // Pearson is below 1 for the same data.
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn spearman_handles_ties_with_average_ranks() {
        let xs = [1.0, 1.0, 2.0];
        let r = ranks(&xs);
        assert_eq!(r, vec![1.5, 1.5, 3.0]);
        // Correlation with itself remains exactly 1 under ties.
        assert!((spearman(&xs, &xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_combines_all_metrics() {
        let s = AccuracySummary::compute(&[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(s.mape, 0.0);
        assert!((s.pearson - 1.0).abs() < 1e-12);
        assert!((s.spearman - 1.0).abs() < 1e-12);
        assert!(s.to_string().contains("MAPE"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        mape(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn zero_measurement_panics() {
        mape(&[1.0], &[0.0]);
    }
}
