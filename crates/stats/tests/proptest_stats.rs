//! Property tests for the accuracy metrics and heat maps.

use proptest::prelude::*;
use pmevo_stats::{mape, pearson, spearman, Heatmap};

fn sample_pairs() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (2usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.1..100.0f64, n),
            proptest::collection::vec(0.1..100.0f64, n),
        )
    })
}

proptest! {
    // Case budget: capped so the whole workspace suite stays well under
    // a minute; override downward with PROPTEST_CASES=<n> (see vendored
    // proptest). Cases are drawn from a per-test deterministic seed.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mape_is_nonnegative_and_zero_only_for_exact((p, m) in sample_pairs()) {
        let e = mape(&p, &m);
        prop_assert!(e >= 0.0);
        prop_assert_eq!(mape(&m, &m), 0.0);
    }

    #[test]
    fn correlations_are_bounded((p, m) in sample_pairs()) {
        for c in [pearson(&p, &m), spearman(&p, &m)] {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c), "correlation {c}");
        }
    }

    #[test]
    fn correlation_is_symmetric((p, m) in sample_pairs()) {
        prop_assert!((pearson(&p, &m) - pearson(&m, &p)).abs() < 1e-9);
        prop_assert!((spearman(&p, &m) - spearman(&m, &p)).abs() < 1e-9);
    }

    /// Spearman is invariant under strictly monotone transforms of
    /// either argument — the property that makes it a *rank* metric.
    #[test]
    fn spearman_is_invariant_under_monotone_transform((p, m) in sample_pairs()) {
        let transformed: Vec<f64> = p.iter().map(|x| (x * 0.3).exp() + 5.0).collect();
        let a = spearman(&p, &m);
        let b = spearman(&transformed, &m);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// Pearson is invariant under positive affine transforms.
    #[test]
    fn pearson_is_affine_invariant((p, m) in sample_pairs(), scale in 0.1..10.0f64, shift in -50.0..50.0f64) {
        let t: Vec<f64> = p.iter().map(|x| scale * x + shift).collect();
        let a = pearson(&p, &m);
        let b = pearson(&t, &m);
        prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    /// Every recorded point lands in exactly one heat-map cell.
    #[test]
    fn heatmap_conserves_mass(
        points in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..100),
        bins in 1usize..40,
    ) {
        let mut h = Heatmap::new(bins, 35.0);
        for &(m, p) in &points {
            h.record(m, p);
        }
        prop_assert_eq!(h.total(), points.len() as u64);
        let cells: u64 = (0..bins)
            .flat_map(|x| (0..bins).map(move |y| (x, y)))
            .map(|(x, y)| h.count(x, y))
            .sum();
        prop_assert_eq!(cells, points.len() as u64);
    }

    /// Perfect predictions always sit on the diagonal.
    #[test]
    fn heatmap_diagonal_for_perfect_predictions(
        points in proptest::collection::vec(0.0..35.0f64, 1..50),
    ) {
        let mut h = Heatmap::new(35, 35.0);
        for &v in &points {
            h.record(v, v);
        }
        prop_assert_eq!(h.diagonal_fraction(0), 1.0);
        prop_assert_eq!(h.over_estimation_bias(), 0.0);
    }
}
