//! The throughput-measurement harness (paper §4.2).
//!
//! Wraps the simulator the way the paper wraps `gettimeofday()`-based
//! wall-clock measurement: experiments are unrolled into ~50-instruction
//! loop bodies, run to a steady state, perturbed by a measurement-noise
//! model (standing in for clock-frequency jitter), and the median over
//! several repetitions is reported.

use crate::platform::Platform;
use crate::sim::simulate_kernel;
use pmevo_core::{Experiment, MeasuredExperiment};
use pmevo_isa::LoopBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the measurement harness.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureConfig {
    /// Target loop-body length in instructions (paper: 50).
    pub body_len: usize,
    /// Warm-up iterations excluded from the steady-state measurement.
    pub warmup_iters: u32,
    /// Measured iterations after warm-up.
    pub measure_iters: u32,
    /// Relative standard deviation of the multiplicative measurement
    /// noise (0 disables noise).
    pub noise_sigma: f64,
    /// Number of noisy repetitions; the median is reported (paper §4.2).
    pub repetitions: u32,
    /// RNG seed for the noise model.
    pub seed: u64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            body_len: 50,
            warmup_iters: 15,
            measure_iters: 75,
            noise_sigma: 0.01,
            repetitions: 5,
            seed: 0xC0FFEE,
        }
    }
}

impl MeasureConfig {
    /// A noise-free configuration, for tests and model validation.
    pub fn exact() -> Self {
        MeasureConfig {
            noise_sigma: 0.0,
            repetitions: 1,
            ..Self::default()
        }
    }
}

/// Measures experiment throughputs on a [`Platform`].
///
/// # Example
///
/// ```
/// use pmevo_machine::{platforms, MeasureConfig, Measurer};
/// use pmevo_core::{Experiment, InstId};
///
/// let skl = platforms::skl();
/// let measurer = Measurer::new(&skl, MeasureConfig::exact());
/// let tp = measurer.measure(&Experiment::singleton(InstId(0)));
/// assert!(tp > 0.0);
/// ```
#[derive(Debug)]
pub struct Measurer<'a> {
    platform: &'a Platform,
    config: MeasureConfig,
}

impl<'a> Measurer<'a> {
    /// Creates a measurer over `platform`.
    pub fn new(platform: &'a Platform, config: MeasureConfig) -> Self {
        Measurer { platform, config }
    }

    /// The platform under measurement.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// The measurement configuration.
    pub fn config(&self) -> &MeasureConfig {
        &self.config
    }

    /// Measures the steady-state throughput of `e` in cycles per
    /// experiment instance: the median of noisy repetitions.
    ///
    /// # Panics
    ///
    /// Panics if `e` is empty or references unknown instructions.
    pub fn measure(&self, e: &Experiment) -> f64 {
        let kernel = LoopBuilder::new(self.platform.isa())
            .body_len(self.config.body_len)
            .build(e);
        let exact = simulate_kernel(
            self.platform,
            &kernel,
            self.config.warmup_iters,
            self.config.warmup_iters + self.config.measure_iters,
        )
        .cycles_per_instance;
        if self.config.noise_sigma == 0.0 || self.config.repetitions <= 1 {
            return exact;
        }
        // Derive a per-experiment noise stream so measurement order does
        // not matter (and parallel measurement stays deterministic).
        let mut hash = self.config.seed;
        for (i, n) in e.iter() {
            hash = hash
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(i.0) << 32 | u64::from(n));
        }
        let mut rng = StdRng::seed_from_u64(hash);
        let mut samples: Vec<f64> = (0..self.config.repetitions)
            .map(|_| {
                let z = standard_normal(&mut rng);
                (exact * (1.0 + self.config.noise_sigma * z)).max(1e-9)
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("noise samples are finite"));
        samples[samples.len() / 2]
    }

    /// Measures a batch of experiments.
    pub fn measure_all(&self, experiments: &[Experiment]) -> Vec<MeasuredExperiment> {
        experiments
            .iter()
            .map(|e| MeasuredExperiment::new(e.clone(), self.measure(e)))
            .collect()
    }
}

/// Samples a standard normal deviate via Box–Muller (the `rand_distr`
/// crate is not on the allowed dependency list).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;
    use pmevo_core::InstId;

    #[test]
    fn exact_measurement_is_deterministic() {
        let p = platforms::skl();
        let m = Measurer::new(&p, MeasureConfig::exact());
        let e = Experiment::pair(InstId(0), 1, InstId(50), 2);
        assert_eq!(m.measure(&e), m.measure(&e));
    }

    #[test]
    fn noisy_median_is_close_to_exact() {
        let p = platforms::skl();
        let exact = Measurer::new(&p, MeasureConfig::exact());
        let noisy = Measurer::new(
            &p,
            MeasureConfig {
                noise_sigma: 0.02,
                repetitions: 9,
                ..MeasureConfig::default()
            },
        );
        let e = Experiment::singleton(InstId(40));
        let a = exact.measure(&e);
        let b = noisy.measure(&e);
        assert!((a - b).abs() / a < 0.05, "exact {a} vs noisy median {b}");
    }

    #[test]
    fn noise_is_order_independent() {
        let p = platforms::skl();
        let m = Measurer::new(&p, MeasureConfig::default());
        let e1 = Experiment::singleton(InstId(3));
        let e2 = Experiment::singleton(InstId(4));
        let a1 = m.measure(&e1);
        // Interleave another measurement; e1's result must not change.
        let _ = m.measure(&e2);
        assert_eq!(a1, m.measure(&e1));
    }

    #[test]
    fn measure_all_preserves_order_and_pairs() {
        let p = platforms::a72();
        let m = Measurer::new(&p, MeasureConfig::exact());
        let es = vec![
            Experiment::singleton(InstId(0)),
            Experiment::singleton(InstId(1)),
        ];
        let out = m.measure_all(&es);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].experiment, es[0]);
        assert!(out.iter().all(|me| me.throughput > 0.0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
