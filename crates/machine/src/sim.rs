//! The cycle-level out-of-order core simulator.
//!
//! Model (mirroring the sketch in paper Figure 1 / §2):
//!
//! * **Rename** — instructions enter in program order; each read operand
//!   captures the index of its producing instruction (the most recent
//!   earlier writer of that register). Write-after-read and
//!   write-after-write hazards do not exist: the register management
//!   engine renames them away.
//! * **Dispatch** — up to `fetch_width` µops per cycle enter the
//!   scheduler window (capacity `window_size` µops). An instruction's
//!   µops enter together with it, in order.
//! * **Issue** — each cycle the scheduler scans waiting µops oldest-first
//!   and issues every µop whose operands are ready to a free port from
//!   its port set (a greedy, non-optimal policy — real schedulers are not
//!   optimal either, which is exactly the model error the paper observes
//!   in Figure 6 for longer experiments). Ports accept one µop per cycle;
//!   a µop with `blocking > 1` occupies its port for several cycles
//!   (dividers).
//! * **Complete** — an instruction's results become available `latency`
//!   cycles after its last µop issued.
//!
//! Throughput is the steady-state number of cycles per kernel iteration,
//! measured between iteration boundaries after a warm-up phase
//! (paper Definition 1).

use crate::platform::Platform;
use pmevo_isa::{Kernel, Reg, RegClass};

/// Result of simulating a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Steady-state cycles per kernel iteration.
    pub cycles_per_iter: f64,
    /// Steady-state cycles per *experiment instance* (divided by the
    /// kernel's unroll factor) — the paper's throughput `t*(e)`.
    pub cycles_per_instance: f64,
    /// Total simulated cycles, including warm-up.
    pub total_cycles: u64,
}

/// A µop waiting in the scheduler window.
#[derive(Debug, Clone, Copy)]
struct WindowUop {
    /// Index into the global instruction stream.
    inst_idx: usize,
    /// Compact port mask of the µop.
    ports: u64,
    /// Port-blocking duration.
    blocking: u32,
}

/// Per-dynamic-instruction bookkeeping.
#[derive(Debug, Clone, Copy)]
struct InstState {
    /// Producer instruction indices for each read operand (compressed:
    /// up to 3 tracked producers; extra reads fold into the max).
    deps: [usize; 3],
    /// Number of µops not yet issued.
    uops_left: u32,
    /// Max issue cycle among the instruction's µops so far.
    last_issue: u64,
    /// Cycle when results are available (`u64::MAX` until known).
    complete: u64,
    /// Result latency.
    latency: u32,
}

const NO_DEP: usize = usize::MAX;

/// Simulates `iters` iterations of `kernel` on `platform` and reports the
/// steady-state throughput measured over the post-warm-up iterations.
///
/// `warmup` iterations are excluded from the measurement; the defaults
/// used by [`Measurer`](crate::Measurer) are generous enough for every
/// built-in platform.
///
/// # Panics
///
/// Panics if the kernel is empty, `iters <= warmup`, or the kernel
/// references forms outside the platform's ISA.
pub fn simulate_kernel(platform: &Platform, kernel: &Kernel, warmup: u32, iters: u32) -> SimResult {
    assert!(!kernel.is_empty(), "cannot simulate an empty kernel");
    assert!(iters > warmup, "need iters > warmup");

    let body = kernel.insts();
    let body_len = body.len();
    let num_ports = platform.num_ports();

    // Pre-resolve per-body-position µop lists and exec parameters.
    struct BodyEntry {
        uops: Vec<(u64, u32)>, // (port mask, blocking)
        latency: u32,
    }
    let entries: Vec<BodyEntry> = body
        .iter()
        .map(|ki| {
            let params = platform.exec_params(ki.inst);
            let uops = platform
                .ground_truth()
                .decomposition(ki.inst)
                .iter()
                .flat_map(|e| {
                    std::iter::repeat_n((e.ports.mask(), params.blocking), e.count as usize)
                })
                .collect();
            BodyEntry {
                uops,
                latency: params.latency,
            }
        })
        .collect();

    // Register rename table: last writer instruction index per register.
    let mut last_writer = [[NO_DEP; 64]; 2];
    let reg_slot = |r: Reg| -> (usize, usize) {
        let c = match r.class {
            RegClass::Gpr => 0,
            RegClass::Vec => 1,
        };
        (c, r.index as usize % 64)
    };

    let total_insts = body_len * iters as usize;
    let mut insts: Vec<InstState> = Vec::with_capacity(total_insts);
    let mut window: std::collections::VecDeque<WindowUop> =
        std::collections::VecDeque::with_capacity(platform.window_size() as usize + 8);

    let mut port_free_at = vec![0u64; num_ports];
    let mut cycle: u64 = 0;
    let mut next_fetch_inst = 0usize; // next dynamic instruction to rename
    let mut fetch_uop_pos = 0usize; // next µop within that instruction
    // Cycle at which the last instruction of each iteration finished
    // issuing; used for the steady-state measurement.
    let mut iter_end_cycle = vec![0u64; iters as usize];
    let mut iters_done = 0usize;

    let fetch_width = platform.fetch_width() as usize;
    let window_size = platform.window_size() as usize;

    while iters_done < iters as usize {
        // --- Issue: oldest-first greedy over waiting µops. ---
        let mut issued_any = false;
        let mut i = 0;
        while i < window.len() {
            let uop = window[i];
            let st = &insts[uop.inst_idx];
            // Operand readiness: all producers complete by this cycle.
            let ready = st
                .deps
                .iter()
                .all(|&d| d == NO_DEP || insts[d].complete <= cycle);
            if ready {
                // Find a free port in the µop's port set; rotate the
                // starting port with the cycle count to avoid systematic
                // bias toward low port numbers.
                let mut chosen = None;
                let start = (cycle as usize) % num_ports;
                for off in 0..num_ports {
                    let p = (start + off) % num_ports;
                    if (uop.ports >> p) & 1 == 1 && port_free_at[p] <= cycle {
                        chosen = Some(p);
                        break;
                    }
                }
                if let Some(p) = chosen {
                    port_free_at[p] = cycle + u64::from(uop.blocking);
                    let st = &mut insts[uop.inst_idx];
                    st.uops_left -= 1;
                    st.last_issue = st.last_issue.max(cycle);
                    if st.uops_left == 0 {
                        st.complete = st.last_issue + u64::from(st.latency);
                        // Iteration boundary: the last instruction of an
                        // iteration finished issuing.
                        let iter_idx = uop.inst_idx / body_len;
                        if uop.inst_idx % body_len == body_len - 1 {
                            iter_end_cycle[iter_idx] = st.last_issue;
                            iters_done += 1;
                        }
                    }
                    window.remove(i);
                    issued_any = true;
                    continue; // do not advance i: next µop shifted in
                }
            }
            i += 1;
        }

        // --- Fetch/rename: up to fetch_width µops into the window. ---
        let mut fetched = 0;
        while fetched < fetch_width
            && window.len() < window_size
            && next_fetch_inst < total_insts
        {
            let body_pos = next_fetch_inst % body_len;
            if fetch_uop_pos == 0 {
                // Rename the instruction: capture RAW producers.
                let ki = &body[body_pos];
                let mut deps = [NO_DEP; 3];
                let mut extra = NO_DEP;
                for (k, &r) in ki.reads.iter().enumerate() {
                    let (c, s) = reg_slot(r);
                    let producer = last_writer[c][s];
                    if k < 3 {
                        deps[k] = producer;
                    } else if producer != NO_DEP && (extra == NO_DEP || producer > extra) {
                        extra = producer;
                    }
                }
                if extra != NO_DEP {
                    // Fold surplus reads into the slot with the oldest dep.
                    deps[2] = if deps[2] == NO_DEP { extra } else { deps[2].max(extra) };
                }
                insts.push(InstState {
                    deps,
                    uops_left: entries[body_pos].uops.len() as u32,
                    last_issue: 0,
                    complete: u64::MAX,
                    latency: entries[body_pos].latency,
                });
                for &w in &ki.writes {
                    let (c, s) = reg_slot(w);
                    last_writer[c][s] = next_fetch_inst;
                }
            }
            let (ports, blocking) = entries[body_pos].uops[fetch_uop_pos];
            window.push_back(WindowUop {
                inst_idx: next_fetch_inst,
                ports,
                blocking,
            });
            fetch_uop_pos += 1;
            fetched += 1;
            if fetch_uop_pos == entries[body_pos].uops.len() {
                fetch_uop_pos = 0;
                next_fetch_inst += 1;
            }
        }

        // Guard against (impossible) livelock: if nothing happened and
        // nothing can happen, the model is broken — fail loudly.
        if !issued_any && fetched == 0 && window.is_empty() && next_fetch_inst >= total_insts {
            break;
        }
        cycle += 1;
    }

    let total_cycles = cycle;
    let w = warmup as usize;
    let n = iters as usize;
    let span = iter_end_cycle[n - 1].saturating_sub(iter_end_cycle[w]) as f64;
    let cycles_per_iter = span / (n - 1 - w) as f64;
    let cycles_per_instance = cycles_per_iter / f64::from(kernel.instances_per_iter());
    SimResult {
        cycles_per_iter,
        cycles_per_instance,
        total_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;
    use pmevo_core::{Experiment, InstId};
    use pmevo_isa::LoopBuilder;

    fn measure(platform: &Platform, e: &Experiment) -> f64 {
        let kernel = LoopBuilder::new(platform.isa()).build(e);
        simulate_kernel(platform, &kernel, 10, 60).cycles_per_instance
    }

    #[test]
    fn single_alu_instruction_is_throughput_bound() {
        let p = platforms::skl();
        let add = p.isa().find("add_r64_r64").unwrap();
        // 4 ALU ports, fetch width 4: one add per 1/4 cycle.
        let tp = measure(&p, &Experiment::singleton(add));
        assert!(
            (tp - 0.25).abs() < 0.05,
            "add throughput {tp}, expected ~0.25"
        );
    }

    #[test]
    fn port_restricted_instruction_hits_its_port_limit() {
        let p = platforms::skl();
        let mul = p.isa().find("imul_r64_r64").unwrap();
        // Multiply only runs on port 1: 1 cycle per instruction.
        let tp = measure(&p, &Experiment::singleton(mul));
        assert!((tp - 1.0).abs() < 0.1, "imul throughput {tp}, expected ~1");
    }

    #[test]
    fn blocking_divider_serializes() {
        let p = platforms::a72();
        let div = p.isa().find("sdiv_r64_r64_r64").unwrap();
        let tp = measure(&p, &Experiment::singleton(div));
        // The divider blocks its port for 12 cycles.
        assert!(tp > 10.0, "sdiv throughput {tp}, expected ~12");
    }

    #[test]
    fn disjoint_instructions_overlap() {
        let p = platforms::skl();
        let mul = p.isa().find("imul_r64_r64").unwrap(); // port 1
        let load = p.isa().find("mov_r64_m64").unwrap(); // ports 2,3
        let pair = Experiment::pair(mul, 1, load, 1);
        let tp = measure(&p, &pair);
        // Both fit in one cycle: combined throughput ≈ max(1, 0.5) = 1.
        assert!(tp < 1.3, "mul+load throughput {tp}, expected ~1");
    }

    #[test]
    fn conflicting_instructions_add_up() {
        let p = platforms::skl();
        let mul = p.isa().find("imul_r64_r64").unwrap(); // port 1 only
        let mulhi = p.isa().find("mulhi_r64_r64").unwrap(); // port 1 + 5
        let tp_pair = measure(&p, &Experiment::pair(mul, 1, mulhi, 1));
        // Both need port 1; mulhi also occupies port 5: bottleneck is
        // port 1 with 2 µops => ~2 cycles.
        assert!(tp_pair > 1.6, "conflicting pair throughput {tp_pair}");
    }

    #[test]
    fn simulator_tracks_optimal_model_on_simple_experiments() {
        // For short dependency-free experiments, the simulator should be
        // close to the bottleneck-model prediction of the ground truth
        // (this is what paper Figure 6 demonstrates at small lengths).
        let p = platforms::skl();
        let gt = p.ground_truth();
        for ids in [[0usize, 40], [10, 80], [5, 120]] {
            let e = Experiment::pair(InstId(ids[0] as u32), 1, InstId(ids[1] as u32), 1);
            let predicted = gt.throughput(&e).max(2.0 / p.fetch_width() as f64);
            let measured = measure(&p, &e);
            let err = (measured - predicted).abs() / predicted;
            assert!(
                err < 0.25,
                "sim {measured} vs model {predicted} for {e} (err {err:.2})"
            );
        }
    }

    #[test]
    fn a72_narrow_frontend_limits_throughput() {
        let p = platforms::a72();
        let add = p.isa().find("add_r64_r64_r64").unwrap();
        let tp = measure(&p, &Experiment::singleton(add));
        // 2 ALU ports but fetch width 3 — port-bound at 0.5.
        assert!((tp - 0.5).abs() < 0.1, "A72 add throughput {tp}");
    }

    #[test]
    #[should_panic(expected = "iters > warmup")]
    fn bad_iteration_counts_panic() {
        let p = platforms::skl();
        let k = LoopBuilder::new(p.isa()).build(&Experiment::singleton(InstId(0)));
        simulate_kernel(&p, &k, 10, 10);
    }
}
