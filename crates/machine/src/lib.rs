//! Machine substrate: cycle-level out-of-order processor simulation.
//!
//! The PMEvo paper measures throughput on three physical machines (Intel
//! Skylake, AMD Zen+, ARM Cortex-A72; paper Table 1). This reproduction
//! replaces them with parameterized simulators that expose exactly the
//! observable the paper relies on — the steady-state throughput of
//! dependency-free instruction loops — while keeping the *hidden ground
//! truth* (the port mapping) available for validation.
//!
//! Components:
//!
//! * [`Platform`] — a machine description: instruction set, ground-truth
//!   three-level port mapping, per-form latencies and port-blocking
//!   behaviour, and pipeline parameters (fetch width, scheduler window).
//!   [`platforms`] builds the three paper-analogous machines.
//! * [`sim`] — the cycle-level simulator: rename (RAW dependencies only,
//!   false dependencies are renamed away), a greedy oldest-first
//!   scheduler over execution ports, fully-pipelined units with optional
//!   multi-cycle port blocking (divisions).
//! * [`Measurer`] — the measurement harness of paper §4.2: unrolled
//!   50-instruction loop bodies, steady-state cycle counting, a
//!   configurable noise model and median-of-repetitions reporting.
//! * [`SimBackend`] — the harness behind the
//!   [`pmevo_core::MeasurementBackend`] trait: measurement batches
//!   chunked across worker threads, with thread-count-independent
//!   results.

pub mod platform;
pub mod sim;

mod backend;
mod measure;

pub use backend::SimBackend;
pub use measure::{MeasureConfig, Measurer};
pub use platform::{Platform, PlatformInfo};
pub use sim::{simulate_kernel, SimResult};

/// The three paper-analogous machine configurations (paper Table 1),
/// plus the TINY toy machine for smoke tests and CI sweeps.
pub mod platforms {
    pub use crate::platform::{a72, by_name, skl, tiny, zen};
}
