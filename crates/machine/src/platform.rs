//! Machine descriptions with hidden ground-truth port mappings.
//!
//! Each platform assigns every instruction form a µop decomposition
//! (the ground truth PMEvo tries to recover), a result latency, and a
//! port-blocking duration (1 = fully pipelined; >1 models non-pipelined
//! units such as dividers, the exception the paper notes under
//! Definition 3). The decompositions follow the published structure of
//! the respective microarchitectures (Intel/AMD/ARM optimization guides,
//! uops.info) at the class × width × quirk granularity.

use pmevo_core::{InstId, PortSet, ThreeLevelMapping, UopEntry};
use pmevo_isa::{synth, InstructionForm, InstructionSet, OpClass};

/// Descriptive metadata of a platform (the rows of paper Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformInfo {
    /// Manufacturer analog (e.g. `"Intel-like"`).
    pub manufacturer: String,
    /// Processor analog (e.g. `"Core i7 6700 (simulated)"`).
    pub processor: String,
    /// Microarchitecture analog.
    pub microarch: String,
    /// Human-readable port summary (e.g. `"8 + DIV"`).
    pub ports_desc: String,
    /// Instruction-set name.
    pub isa_name: String,
    /// Nominal clock frequency in GHz (descriptive only; the simulator
    /// counts cycles).
    pub clock_ghz: f64,
}

/// Per-form execution parameters assigned by the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecParams {
    /// Result latency in cycles (producer → consumer).
    pub latency: u32,
    /// Cycles each µop of the form occupies its port (1 = pipelined).
    pub blocking: u32,
}

/// A simulated machine: instruction set, ground-truth mapping, timing
/// parameters and pipeline shape.
///
/// # Example
///
/// ```
/// use pmevo_machine::platforms;
///
/// let skl = platforms::skl();
/// assert_eq!(skl.num_ports(), 9); // 8 + DIV pipe (paper Table 1)
/// assert_eq!(skl.isa().len(), 310);
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    name: String,
    info: PlatformInfo,
    isa: InstructionSet,
    ground_truth: ThreeLevelMapping,
    exec: Vec<ExecParams>,
    fetch_width: u32,
    window_size: u32,
}

impl Platform {
    /// Assembles a platform from its parts.
    ///
    /// # Panics
    ///
    /// Panics if table lengths disagree with the instruction set, or if
    /// `fetch_width`/`window_size` is zero.
    pub fn new(
        name: impl Into<String>,
        info: PlatformInfo,
        isa: InstructionSet,
        ground_truth: ThreeLevelMapping,
        exec: Vec<ExecParams>,
        fetch_width: u32,
        window_size: u32,
    ) -> Self {
        assert_eq!(ground_truth.num_insts(), isa.len(), "mapping/ISA mismatch");
        assert_eq!(exec.len(), isa.len(), "exec table/ISA mismatch");
        assert!(fetch_width > 0 && window_size > 0);
        Platform {
            name: name.into(),
            info,
            isa,
            ground_truth,
            exec,
            fetch_width,
            window_size,
        }
    }

    /// Short name used in result tables (`"SKL"`, `"ZEN"`, `"A72"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Descriptive metadata (paper Table 1).
    pub fn info(&self) -> &PlatformInfo {
        &self.info
    }

    /// The instruction set of the machine.
    pub fn isa(&self) -> &InstructionSet {
        &self.isa
    }

    /// The hidden ground-truth port mapping.
    ///
    /// PMEvo never reads this; it exists for the oracle baselines and for
    /// validating inferred mappings.
    pub fn ground_truth(&self) -> &ThreeLevelMapping {
        &self.ground_truth
    }

    /// Number of ports in the machine model.
    pub fn num_ports(&self) -> usize {
        self.ground_truth.num_ports()
    }

    /// Execution parameters of a form.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn exec_params(&self, id: InstId) -> ExecParams {
        self.exec[id.index()]
    }

    /// µops fetched/renamed per cycle.
    pub fn fetch_width(&self) -> u32 {
        self.fetch_width
    }

    /// Scheduler window capacity in µops.
    pub fn window_size(&self) -> u32 {
        self.window_size
    }
}

fn ps(ports: &[usize]) -> PortSet {
    PortSet::from_ports(ports)
}

fn u(count: u32, ports: PortSet) -> UopEntry {
    UopEntry::new(count, ports)
}

/// SKL-like ground truth for one form. Ports: 0,1,5,6 integer ALU;
/// 0,6 shifts/branch-adjacent; 1,5 lea/slow-int; 0,1,5 vector ALU;
/// 2,3 load; 4 store-data; 7 store-address (with 2,3); 8 the DIV pipe.
fn skl_decomp(f: &InstructionForm) -> (Vec<UopEntry>, ExecParams) {
    use OpClass::*;
    let w = f.max_width_bits();
    let mem_read = f
        .operands
        .iter()
        .any(|o| matches!(o, pmevo_isa::OperandKind::Mem { access, .. } if access.is_read()));
    let mut uops;
    let mut lat;
    let mut blocking = 1;
    match f.class {
        IntAlu => {
            uops = if f.quirk == 1 {
                vec![u(1, ps(&[0, 6]))]
            } else {
                vec![u(1, ps(&[0, 1, 5, 6]))]
            };
            lat = 1;
        }
        Shift => {
            uops = if f.quirk == 1 {
                vec![u(1, ps(&[1])), u(1, ps(&[0, 6]))]
            } else {
                vec![u(1, ps(&[0, 6]))]
            };
            lat = if f.quirk == 1 { 3 } else { 1 };
        }
        Lea => {
            uops = if f.quirk == 1 {
                vec![u(1, ps(&[1]))]
            } else {
                vec![u(1, ps(&[1, 5]))]
            };
            lat = if f.quirk == 1 { 3 } else { 1 };
        }
        IntMul => {
            uops = if f.quirk == 1 {
                vec![u(1, ps(&[1])), u(1, ps(&[5]))]
            } else {
                vec![u(1, ps(&[1]))]
            };
            lat = 3;
        }
        IntDiv => {
            let k = if w >= 64 { 8 } else { 4 };
            uops = vec![u(1, ps(&[0])), u(k, ps(&[8]))];
            lat = if w >= 64 { 36 } else { 24 };
        }
        BitTest => {
            uops = match f.quirk {
                0 => vec![u(1, ps(&[0, 6]))],
                4 => vec![u(1, ps(&[1]))],
                _ => vec![u(2, ps(&[0, 6]))],
            };
            lat = if f.quirk == 4 { 3 } else { 1 };
        }
        CondMove => {
            uops = vec![u(1, ps(&[0, 6]))];
            lat = 1;
        }
        VecAlu => {
            uops = vec![u(1, ps(&[0, 1, 5]))];
            lat = if f.name.starts_with("add") || f.name.starts_with("sub") {
                4
            } else {
                1
            };
        }
        VecMul => {
            uops = vec![u(1, ps(&[0, 1]))];
            lat = 4;
        }
        VecDiv => {
            let k = if w >= 256 { 5 } else { 3 };
            uops = vec![u(1, ps(&[0])), u(k, ps(&[8]))];
            lat = if f.quirk == 1 { 18 } else { 11 };
        }
        Shuffle => {
            uops = vec![u(1, ps(&[5]))];
            lat = 1;
        }
        Convert => {
            uops = vec![u(1, ps(&[1])), u(1, ps(&[5]))];
            lat = 4;
        }
        Load => {
            uops = vec![u(1, ps(&[2, 3]))];
            lat = 4;
        }
        Store => {
            uops = vec![u(1, ps(&[4])), u(1, ps(&[2, 3, 7]))];
            lat = 1;
        }
    }
    if mem_read && !matches!(f.class, Load) {
        uops.push(u(1, ps(&[2, 3])));
        lat += 4;
    }
    if matches!(f.class, IntDiv | VecDiv) {
        blocking = 1; // SKL models the divider as extra µops on port 8
    }
    (
        uops,
        ExecParams {
            latency: lat,
            blocking,
        },
    )
}

/// ZEN-like ground truth. Ports: 0–3 integer ALUs (3 also multiply/divide);
/// 4,5 AGU/load; 6 store; 7–9 FP/vector pipes. 256-bit operations split
/// into two 128-bit µops (Zen+ has 128-bit datapaths).
fn zen_decomp(f: &InstructionForm) -> (Vec<UopEntry>, ExecParams) {
    use OpClass::*;
    let w = f.max_width_bits();
    let dbl = if w >= 256 { 2 } else { 1 };
    let mem_read = f
        .operands
        .iter()
        .any(|o| matches!(o, pmevo_isa::OperandKind::Mem { access, .. } if access.is_read()));
    let mut uops;
    let mut lat;
    let mut blocking = 1;
    match f.class {
        IntAlu => {
            uops = if f.quirk == 1 {
                vec![u(1, ps(&[0, 1]))]
            } else {
                vec![u(1, ps(&[0, 1, 2, 3]))]
            };
            lat = 1;
        }
        Shift => {
            uops = if f.quirk == 1 {
                vec![u(1, ps(&[1, 2])), u(1, ps(&[0, 1, 2, 3]))]
            } else {
                vec![u(1, ps(&[1, 2]))]
            };
            lat = 1;
        }
        Lea => {
            uops = if f.quirk == 1 {
                vec![u(1, ps(&[1, 2]))]
            } else {
                vec![u(1, ps(&[0, 1, 2, 3]))]
            };
            lat = 1;
        }
        IntMul => {
            uops = if f.quirk == 1 {
                vec![u(1, ps(&[3])), u(1, ps(&[0, 1, 2, 3]))]
            } else {
                vec![u(1, ps(&[3]))]
            };
            lat = 3;
        }
        IntDiv => {
            uops = vec![u(1, ps(&[3]))];
            lat = if w >= 64 { 30 } else { 20 };
            blocking = if w >= 64 { 14 } else { 9 };
        }
        BitTest => {
            uops = match f.quirk {
                0 => vec![u(1, ps(&[1, 2]))],
                4 => vec![u(1, ps(&[0, 1, 2, 3]))],
                _ => vec![u(2, ps(&[1, 2]))],
            };
            lat = 1;
        }
        CondMove => {
            uops = vec![u(1, ps(&[0, 1, 2, 3]))];
            lat = 1;
        }
        VecAlu => {
            uops = vec![u(dbl, ps(&[7, 8, 9]))];
            lat = if f.name.contains("add") || f.name.contains("sub") {
                3
            } else {
                1
            };
        }
        VecMul => {
            uops = vec![u(dbl, ps(&[7]))];
            lat = 4;
        }
        VecDiv => {
            uops = vec![u(dbl, ps(&[9]))];
            lat = if f.quirk == 1 { 20 } else { 13 };
            blocking = if f.quirk == 1 { 9 } else { 5 };
        }
        Shuffle => {
            uops = vec![u(dbl, ps(&[8]))];
            lat = 1;
        }
        Convert => {
            uops = vec![u(1, ps(&[7])), u(1, ps(&[8]))];
            lat = 4;
        }
        Load => {
            uops = vec![u(dbl, ps(&[4, 5]))];
            lat = 4;
        }
        Store => {
            uops = vec![u(dbl, ps(&[6])), u(1, ps(&[4, 5]))];
            lat = 1;
        }
    }
    if mem_read && !matches!(f.class, Load) {
        uops.push(u(1, ps(&[4, 5])));
        lat += 4;
    }
    (
        uops,
        ExecParams {
            latency: lat,
            blocking,
        },
    )
}

/// A72-like ground truth. Ports: 0,1 integer ALUs; 2 the M pipe
/// (multiply/divide/shifted ops); 3,4 FP/NEON; 5 load; 6 store. The
/// branch port of the real A72 is omitted, as in the paper (§5.1.1).
fn a72_decomp(f: &InstructionForm) -> (Vec<UopEntry>, ExecParams) {
    use OpClass::*;
    let mem_read = f
        .operands
        .iter()
        .any(|o| matches!(o, pmevo_isa::OperandKind::Mem { access, .. } if access.is_read()));
    let mut uops;
    let mut lat;
    let mut blocking = 1;
    match f.class {
        IntAlu => {
            uops = if f.quirk == 1 {
                vec![u(1, ps(&[2]))] // shifted-operand forms use the M pipe
            } else {
                vec![u(1, ps(&[0, 1]))]
            };
            lat = if f.quirk == 1 { 2 } else { 1 };
        }
        Shift => {
            uops = vec![u(1, ps(&[0, 1]))];
            lat = 1;
        }
        Lea => {
            uops = vec![u(1, ps(&[0, 1]))];
            lat = 1;
        }
        BitTest => {
            uops = vec![u(1, ps(&[0, 1]))];
            lat = 1;
        }
        IntMul => {
            uops = if f.quirk == 1 {
                vec![u(1, ps(&[2])), u(1, ps(&[0, 1]))]
            } else {
                vec![u(1, ps(&[2]))]
            };
            lat = 3;
        }
        IntDiv => {
            uops = vec![u(1, ps(&[2]))];
            lat = 12;
            blocking = 12;
        }
        CondMove => {
            uops = vec![u(1, ps(&[0, 1]))];
            lat = 1;
        }
        VecAlu => {
            uops = vec![u(1, ps(&[3, 4]))];
            lat = 3;
        }
        VecMul => {
            uops = vec![u(1, ps(&[3]))];
            lat = 5;
        }
        VecDiv => {
            uops = vec![u(1, ps(&[3]))];
            lat = if f.quirk == 1 { 17 } else { 11 };
            blocking = if f.quirk == 1 { 10 } else { 6 };
        }
        Shuffle => {
            uops = vec![u(1, ps(&[4]))];
            lat = 3;
        }
        Convert => {
            uops = if f.quirk == 1 {
                vec![u(1, ps(&[3, 4])), u(1, ps(&[0, 1]))]
            } else {
                vec![u(1, ps(&[3, 4]))]
            };
            lat = 4;
        }
        Load => {
            uops = vec![u(1, ps(&[5]))];
            lat = 4;
        }
        Store => {
            uops = vec![u(1, ps(&[6]))];
            lat = 1;
        }
    }
    if mem_read && !matches!(f.class, Load) {
        uops.push(u(1, ps(&[5])));
        lat += 4;
    }
    (
        uops,
        ExecParams {
            latency: lat,
            blocking,
        },
    )
}

fn build(
    name: &str,
    info: PlatformInfo,
    isa: InstructionSet,
    num_ports: usize,
    decomp_fn: impl Fn(&InstructionForm) -> (Vec<UopEntry>, ExecParams),
    fetch_width: u32,
    window_size: u32,
) -> Platform {
    let mut decomp = Vec::with_capacity(isa.len());
    let mut exec = Vec::with_capacity(isa.len());
    for f in isa.forms() {
        let (uops, params) = decomp_fn(f);
        decomp.push(uops);
        exec.push(params);
    }
    let gt = ThreeLevelMapping::new(num_ports, decomp);
    Platform::new(name, info, isa, gt, exec, fetch_width, window_size)
}

/// The SKL-analog machine: 8 ports + DIV pipe, x86-like ISA, wide and
/// deep out-of-order engine (paper Table 1, Intel Core i7-6700).
pub fn skl() -> Platform {
    build(
        "SKL",
        PlatformInfo {
            manufacturer: "Intel-like".into(),
            processor: "Core i7 6700 (simulated)".into(),
            microarch: "Skylake".into(),
            ports_desc: "8 + DIV".into(),
            isa_name: "x86-64".into(),
            clock_ghz: 3.4,
        },
        synth::synthetic_x86(),
        9,
        skl_decomp,
        4,
        97,
    )
}

/// The ZEN-analog machine: 10 ports, x86-like ISA, 128-bit vector
/// datapaths (paper Table 1, AMD Ryzen 5 2600X).
pub fn zen() -> Platform {
    build(
        "ZEN",
        PlatformInfo {
            manufacturer: "AMD-like".into(),
            processor: "Ryzen 5 2600X (simulated)".into(),
            microarch: "Zen+".into(),
            ports_desc: "10".into(),
            isa_name: "x86-64".into(),
            clock_ghz: 3.6,
        },
        synth::synthetic_x86(),
        10,
        zen_decomp,
        5,
        72,
    )
}

/// The A72-analog machine: 7 ports (branch port omitted), ARM-like ISA,
/// narrow and shallow out-of-order engine — the paper attributes A72's
/// higher prediction error to exactly this (§5.3.2).
pub fn a72() -> Platform {
    build(
        "A72",
        PlatformInfo {
            manufacturer: "RockChip-like".into(),
            processor: "RK3399 (simulated)".into(),
            microarch: "Cortex-A72".into(),
            ports_desc: "7 + BR".into(),
            isa_name: "ARMv8-A".into(),
            clock_ghz: 1.8,
        },
        synth::synthetic_arm(),
        7,
        a72_decomp,
        3,
        40,
    )
}

/// TINY-like ground truth over the six-form toy ISA. Ports: 0,1 integer
/// ALU (0 also multiply; the divider is a 4-µop port-0 chain); 2 load;
/// 3 store; 1 vector. Everything is fully pipelined so the cycle-level
/// simulator tracks the bottleneck model closely — TINY exists for
/// smoke tests and CI sweeps where held-out accuracy should reflect
/// inference quality, not frontend artifacts.
fn tiny_decomp(f: &InstructionForm) -> (Vec<UopEntry>, ExecParams) {
    use OpClass::*;
    let (uops, lat) = match f.class {
        IntMul => (vec![u(1, ps(&[0]))], 3),
        IntDiv => (vec![u(4, ps(&[0]))], 8),
        Load => (vec![u(1, ps(&[2]))], 4),
        Store => (vec![u(1, ps(&[3]))], 1),
        VecAlu | VecMul | VecDiv | Shuffle | Convert => (vec![u(1, ps(&[1]))], 2),
        _ => (vec![u(1, ps(&[0, 1]))], 1),
    };
    (
        uops,
        ExecParams {
            latency: lat,
            blocking: 1,
        },
    )
}

/// The TINY toy machine: 4 ports over the six-form
/// [`pmevo_isa::synth::tiny_isa`] — small enough for smoke tests and CI
/// sweeps (`fig_budget` runs its budget × policy grid on it), yet with
/// real port structure (shared ALU ports, a port-restricted multiplier
/// and multi-µop divider, disjoint load/store pipes) so inference has
/// something to find.
pub fn tiny() -> Platform {
    build(
        "TINY",
        PlatformInfo {
            manufacturer: "toy".into(),
            processor: "toy core (simulated)".into(),
            microarch: "tiny".into(),
            ports_desc: "4".into(),
            isa_name: "tiny".into(),
            clock_ghz: 1.0,
        },
        synth::tiny_isa(),
        4,
        tiny_decomp,
        4,
        32,
    )
}

/// Looks up a built-in platform by its (case-insensitive) name —
/// `"SKL"`, `"ZEN"`, `"A72"` or `"TINY"` — the shared resolver behind
/// every CLI `--platform` flag and the serving layer's
/// mapping-artifact loading.
pub fn by_name(name: &str) -> Option<Platform> {
    match name.to_uppercase().as_str() {
        "SKL" => Some(skl()),
        "ZEN" => Some(zen()),
        "A72" => Some(a72()),
        "TINY" => Some(tiny()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_case_insensitively() {
        assert_eq!(by_name("skl").unwrap().name(), "SKL");
        assert_eq!(by_name("Tiny").unwrap().name(), "TINY");
        assert!(by_name("M1").is_none());
    }

    #[test]
    fn platforms_are_well_formed() {
        for (p, ports, forms) in [
            (skl(), 9, 310),
            (zen(), 10, 310),
            (a72(), 7, 390),
            (tiny(), 4, 6),
        ] {
            assert_eq!(p.num_ports(), ports, "{}", p.name());
            assert_eq!(p.isa().len(), forms, "{}", p.name());
            assert_eq!(p.ground_truth().num_insts(), forms);
            // Every form has at least one µop and sane parameters.
            for id in p.isa().ids() {
                assert!(!p.ground_truth().decomposition(id).is_empty());
                let e = p.exec_params(id);
                assert!(e.latency >= 1 && e.blocking >= 1);
            }
        }
    }

    #[test]
    fn skl_has_div_pipe_uops() {
        let p = skl();
        let div = p.isa().find("div_r64_r64").expect("div form exists");
        let d = p.ground_truth().decomposition(div);
        assert!(d.iter().any(|e| e.ports == ps(&[8]) && e.count > 1));
    }

    #[test]
    fn zen_doubles_256_bit_vector_ops() {
        let p = zen();
        let v128 = p.isa().find("paddd_v128_v128_v128").unwrap();
        let v256 = p.isa().find("paddd_v256_v256_v256").unwrap();
        let n128: u32 = p.ground_truth().num_uops_of(v128);
        let n256: u32 = p.ground_truth().num_uops_of(v256);
        assert_eq!(n256, 2 * n128);
        // ...while SKL executes both as one µop.
        let s = skl();
        assert_eq!(
            s.ground_truth().num_uops_of(v128),
            s.ground_truth().num_uops_of(v256)
        );
    }

    #[test]
    fn a72_divider_blocks_its_port() {
        let p = a72();
        let div = p.isa().find("sdiv_r64_r64_r64").unwrap();
        assert!(p.exec_params(div).blocking > 1);
    }

    #[test]
    fn ground_truth_congruence_exists() {
        // Plenty of forms must share decompositions (the basis of the
        // paper's congruence filtering working at all).
        let p = skl();
        let gt = p.ground_truth();
        let mut distinct: Vec<Vec<UopEntry>> =
            gt.decompositions().to_vec();
        distinct.sort_by_key(|d| format!("{d:?}"));
        distinct.dedup();
        assert!(
            distinct.len() * 2 < p.isa().len(),
            "only {} distinct decompositions over {} forms",
            distinct.len(),
            p.isa().len()
        );
    }
}
