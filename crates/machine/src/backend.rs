//! The simulator-backed [`MeasurementBackend`]: measurement batches run
//! on the cycle-level simulator, chunked across worker threads.

use crate::measure::{MeasureConfig, Measurer};
use crate::platform::Platform;
use pmevo_core::{BackendStats, Experiment, MeasurementBackend};
use std::time::Instant;

/// Measures experiment batches on a [`Platform`]'s cycle-level simulator
/// through the [`Measurer`] harness of paper §4.2.
///
/// Batches are split into contiguous chunks across up to
/// [`parallelism`](Self::parallelism) worker threads. The measurement
/// noise stream is a pure function of `(config.seed, experiment)` (see
/// [`Measurer::measure`]), so results are bit-identical for every thread
/// count and batch split.
///
/// # Example
///
/// ```
/// use pmevo_core::{Experiment, InstId, MeasurementBackend};
/// use pmevo_machine::{platforms, MeasureConfig, SimBackend};
///
/// let mut backend = SimBackend::new(platforms::a72(), MeasureConfig::exact());
/// let tp = backend.measure_batch(&[Experiment::singleton(InstId(0))]);
/// assert!(tp[0] > 0.0);
/// assert_eq!(backend.stats().measurements_performed, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SimBackend {
    platform: Platform,
    config: MeasureConfig,
    parallelism: usize,
    name: String,
    stats: BackendStats,
}

impl SimBackend {
    /// Creates a backend over `platform`, measuring with all available
    /// cores.
    pub fn new(platform: Platform, config: MeasureConfig) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::with_parallelism(platform, config, parallelism)
    }

    /// Creates a backend with an explicit worker-thread cap.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn with_parallelism(platform: Platform, config: MeasureConfig, parallelism: usize) -> Self {
        assert!(parallelism > 0, "need at least one measurement thread");
        let name = format!("sim({})", platform.name());
        SimBackend {
            platform,
            config,
            parallelism,
            name,
            stats: BackendStats::default(),
        }
    }

    /// The platform under measurement.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The measurement configuration.
    pub fn config(&self) -> &MeasureConfig {
        &self.config
    }

    /// The worker-thread cap for batch measurement.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }
}

impl MeasurementBackend for SimBackend {
    fn measure_batch(&mut self, experiments: &[Experiment]) -> Vec<f64> {
        let start = Instant::now();
        let threads = self.parallelism.min(experiments.len()).max(1);
        let out = if threads <= 1 {
            let measurer = Measurer::new(&self.platform, self.config.clone());
            experiments.iter().map(|e| measurer.measure(e)).collect()
        } else {
            let chunk = experiments.len().div_ceil(threads);
            let mut out = Vec::with_capacity(experiments.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = experiments
                    .chunks(chunk)
                    .map(|exps| {
                        let platform = &self.platform;
                        let config = &self.config;
                        scope.spawn(move || {
                            let measurer = Measurer::new(platform, config.clone());
                            exps.iter().map(|e| measurer.measure(e)).collect::<Vec<f64>>()
                        })
                    })
                    .collect();
                for h in handles {
                    out.extend(h.join().expect("measurement worker panicked"));
                }
            });
            out
        };
        self.stats.measurements_requested += experiments.len() as u64;
        self.stats.measurements_performed += experiments.len() as u64;
        self.stats.measurement_time += start.elapsed();
        out
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;
    use pmevo_core::InstId;

    #[test]
    fn parallel_batches_match_sequential_measurement() {
        let p = platforms::skl();
        let exps: Vec<Experiment> = (0..13)
            .map(|i| Experiment::singleton(InstId(i * 7)))
            .collect();
        let mut seq = SimBackend::with_parallelism(p.clone(), MeasureConfig::default(), 1);
        let mut par = SimBackend::with_parallelism(p, MeasureConfig::default(), 4);
        assert_eq!(seq.measure_batch(&exps), par.measure_batch(&exps));
        assert_eq!(par.stats().measurements_performed, 13);
        assert!(par.name().starts_with("sim(SKL"));
    }

    #[test]
    fn incremental_batches_match_one_batch_for_every_parallelism() {
        // The adaptive selection loop submits many small top-k batches
        // instead of one up-front corpus; the chunked parallel
        // measurement (and its per-experiment noise stream) must return
        // the same values however the batch is split across calls and
        // worker threads.
        let p = platforms::tiny();
        let mut exps: Vec<Experiment> = (0..6).map(|i| Experiment::singleton(InstId(i))).collect();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                exps.push(Experiment::pair(InstId(a), 1, InstId(b), 2));
            }
        }
        let mut oneshot = SimBackend::with_parallelism(p.clone(), MeasureConfig::default(), 4);
        let want = oneshot.measure_batch(&exps);
        for threads in [1, 2, 8] {
            for chunk in [1, 3, exps.len()] {
                let mut backend =
                    SimBackend::with_parallelism(p.clone(), MeasureConfig::default(), threads);
                let mut got = Vec::with_capacity(exps.len());
                for sub in exps.chunks(chunk) {
                    got.extend(backend.measure_batch(sub));
                }
                assert_eq!(
                    got, want,
                    "{threads} threads with {chunk}-experiment batches diverged"
                );
                assert_eq!(backend.stats().measurements_performed, exps.len() as u64);
            }
        }
    }

    #[test]
    fn matches_the_measurer_directly() {
        let p = platforms::a72();
        let e = Experiment::pair(InstId(0), 1, InstId(4), 2);
        let want = Measurer::new(&p, MeasureConfig::exact()).measure(&e);
        let mut backend = SimBackend::new(p, MeasureConfig::exact());
        assert_eq!(backend.measure_batch(std::slice::from_ref(&e)), vec![want]);
    }
}
