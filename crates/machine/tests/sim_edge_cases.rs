//! Edge-case integration tests for the cycle-level simulator: extreme
//! pipeline shapes must degrade gracefully, and throughput must respond
//! to each structural hazard in the expected direction.

use pmevo_core::{Experiment, InstId, PortSet, ThreeLevelMapping, UopEntry};
use pmevo_isa::synth::tiny_isa;
use pmevo_isa::LoopBuilder;
use pmevo_machine::platform::ExecParams;
use pmevo_machine::{platforms, simulate_kernel, Platform, PlatformInfo};

fn custom_platform(fetch: u32, window: u32, blocking: u32, latency: u32) -> Platform {
    let isa = tiny_isa();
    let u = |count, ports: &[usize]| UopEntry::new(count, PortSet::from_ports(ports));
    let decomp = vec![
        vec![u(1, &[0, 1])],
        vec![u(1, &[0])],
        vec![u(1, &[2])], // "div" slot, used for the blocking tests
        vec![u(1, &[3])],
        vec![u(1, &[3])],
        vec![u(1, &[1])],
    ];
    let exec = (0..isa.len())
        .map(|_| ExecParams { latency, blocking })
        .collect();
    Platform::new(
        "EDGE",
        PlatformInfo {
            manufacturer: "test".into(),
            processor: "edge".into(),
            microarch: "edge".into(),
            ports_desc: "4".into(),
            isa_name: "tiny".into(),
            clock_ghz: 1.0,
        },
        isa,
        ThreeLevelMapping::new(4, decomp),
        exec,
        fetch,
        window,
    )
}

fn throughput(p: &Platform, e: &Experiment) -> f64 {
    let kernel = LoopBuilder::new(p.isa()).build(e);
    simulate_kernel(p, &kernel, 10, 60).cycles_per_instance
}

#[test]
fn fetch_width_one_serializes_the_front_end() {
    let wide = custom_platform(4, 32, 1, 1);
    let narrow = custom_platform(1, 32, 1, 1);
    let e = Experiment::pair(InstId(0), 1, InstId(3), 1);
    let t_wide = throughput(&wide, &e);
    let t_narrow = throughput(&narrow, &e);
    // 2 µops per experiment at 1 µop/cycle fetch: at least 2 cycles.
    assert!(t_narrow >= 1.9, "narrow fetch throughput {t_narrow}");
    assert!(t_wide < t_narrow, "wider fetch must be at least as fast");
}

#[test]
fn tiny_scheduler_window_still_makes_progress() {
    let p = custom_platform(2, 1, 1, 1);
    let e = Experiment::singleton(InstId(0));
    let t = throughput(&p, &e);
    // Window of one µop: issue can still retire one µop per cycle.
    assert!(t.is_finite() && t >= 0.9, "window-1 throughput {t}");
}

#[test]
fn port_blocking_scales_throughput_linearly() {
    let mut previous = 0.0;
    for blocking in [1u32, 3, 6] {
        let p = custom_platform(4, 32, blocking, 1);
        let t = throughput(&p, &Experiment::singleton(InstId(2)));
        assert!(
            (t - f64::from(blocking)).abs() < 0.2,
            "blocking {blocking} gave throughput {t}"
        );
        assert!(t > previous);
        previous = t;
    }
}

#[test]
fn latency_does_not_affect_dependency_free_throughput() {
    // The §4.2 register allocation breaks dependencies, so even long
    // latencies must not slow the steady state (within window limits).
    let fast = custom_platform(4, 64, 1, 1);
    let slow = custom_platform(4, 64, 1, 12);
    let e = Experiment::pair(InstId(0), 1, InstId(5), 1);
    // A generous register file keeps the dependence distance well above
    // the 12-cycle latency even at 2 instructions per cycle.
    let measure = |p: &Platform| {
        let kernel = LoopBuilder::new(p.isa()).register_file(32, 16).build(&e);
        simulate_kernel(p, &kernel, 10, 60).cycles_per_instance
    };
    let tf = measure(&fast);
    let ts = measure(&slow);
    assert!(
        (tf - ts).abs() / tf < 0.15,
        "latency leaked into throughput: {tf} vs {ts}"
    );
}

#[test]
fn dependency_chains_do_slow_small_register_files() {
    // Conversely: with almost no registers, the same long latency must
    // hurt, because reads land close to their writers.
    let p = custom_platform(4, 64, 1, 12);
    let e = Experiment::singleton(InstId(0));
    let free = {
        let kernel = LoopBuilder::new(p.isa()).build(&e);
        simulate_kernel(&p, &kernel, 10, 60).cycles_per_instance
    };
    let chained = {
        // 4 GPRs = 3 allocatable (one is the base pointer): the 3-operand
        // add form is forced to read its own recent writers.
        let kernel = LoopBuilder::new(p.isa()).register_file(4, 2).build(&e);
        simulate_kernel(&p, &kernel, 10, 60).cycles_per_instance
    };
    assert!(
        chained > free * 2.0,
        "expected dependency slowdown: free {free}, chained {chained}"
    );
}

#[test]
fn built_in_platforms_sustain_full_port_pressure() {
    // Saturating every port class at once must not deadlock or starve:
    // the simulator finishes and throughput stays within the total-µop
    // bound.
    for p in [platforms::skl(), platforms::zen(), platforms::a72()] {
        let n = p.isa().len() as u32;
        let e = Experiment::from_counts(&[
            (InstId(0), 2),
            (InstId(n / 3), 2),
            (InstId(2 * n / 3), 2),
            (InstId(n - 1), 2),
        ]);
        let t = throughput(&p, &e);
        let uops: u32 = e
            .iter()
            .map(|(i, c)| p.ground_truth().num_uops_of(i) * c)
            .sum();
        assert!(t > 0.0 && t <= f64::from(uops) + 1.0, "{}: {t}", p.name());
    }
}
