//! Property tests for the inference engine: experiment generation,
//! congruence partitioning and the evolutionary operators.

use proptest::prelude::*;
use pmevo_core::{Experiment, InstId, MeasuredExperiment, PortSet, ThreeLevelMapping};
use pmevo_evo::evolution::recombine_for_test;
use pmevo_evo::{CongruencePartition, ExperimentGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mapping_strategy(num_ports: usize, num_insts: usize) -> impl Strategy<Value = ThreeLevelMapping> {
    proptest::collection::vec(
        proptest::collection::vec((1u32..4, 1u64..(1 << num_ports)), 1..4),
        num_insts,
    )
    .prop_map(move |decomp| {
        ThreeLevelMapping::new(
            num_ports,
            decomp
                .into_iter()
                .map(|entries| {
                    entries
                        .into_iter()
                        .map(|(n, mask)| pmevo_core::UopEntry::new(n, PortSet::from_mask(mask)))
                        .collect()
                })
                .collect(),
        )
    })
}

proptest! {
    // Case budget: capped so the whole workspace suite stays well under
    // a minute; override downward with PROPTEST_CASES=<n> (see vendored
    // proptest). Cases are drawn from a per-test deterministic seed.
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Experiment generation covers every unordered pair exactly once
    /// with the plain pair, plus at most one ratio pair.
    #[test]
    fn pair_generation_counts(
        tps in proptest::collection::vec(0.25..8.0f64, 2..12),
    ) {
        let n = tps.len();
        let gen = ExperimentGenerator::new((0..n as u32).map(InstId).collect());
        let pairs = gen.pairs(&tps);
        let plain = n * (n - 1) / 2;
        prop_assert!(pairs.len() >= plain);
        prop_assert!(pairs.len() <= 2 * plain);
        // No duplicates.
        let mut sorted = pairs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), pairs.len());
    }

    /// The congruence partition is a partition: every instruction has
    /// exactly one representative, representatives represent themselves,
    /// and classes cover the universe.
    #[test]
    fn congruence_is_a_partition(m in mapping_strategy(4, 8)) {
        let ids: Vec<InstId> = (0..8u32).map(InstId).collect();
        let gen = ExperimentGenerator::new(ids.clone());
        let indiv: Vec<f64> = ids
            .iter()
            .map(|&i| m.throughput(&Experiment::singleton(i)))
            .collect();
        let measured: Vec<MeasuredExperiment> = gen
            .all(&indiv)
            .into_iter()
            .map(|e| {
                let t = m.throughput(&e);
                MeasuredExperiment::new(e, t)
            })
            .collect();
        let part = CongruencePartition::compute(&ids, &measured, 0.01);
        let mut covered = 0usize;
        for (rep, members) in part.classes() {
            prop_assert_eq!(part.representative(rep), rep, "rep must represent itself");
            for m in &members {
                prop_assert_eq!(part.representative(*m), rep);
            }
            covered += members.len();
        }
        prop_assert_eq!(covered, ids.len());
        prop_assert_eq!(part.num_classes(), part.representatives().len());
    }

    /// Instructions with identical ground-truth decompositions are
    /// always congruent under exact measurement.
    #[test]
    fn identical_decompositions_merge(m in mapping_strategy(4, 6)) {
        // Duplicate instruction 0's decomposition onto instruction 1.
        let mut decomp: Vec<Vec<pmevo_core::UopEntry>> =
            m.decompositions().to_vec();
        decomp[1] = decomp[0].clone();
        let m = ThreeLevelMapping::new(4, decomp);
        let ids: Vec<InstId> = (0..6u32).map(InstId).collect();
        let gen = ExperimentGenerator::new(ids.clone());
        let indiv: Vec<f64> = ids
            .iter()
            .map(|&i| m.throughput(&Experiment::singleton(i)))
            .collect();
        let measured: Vec<MeasuredExperiment> = gen
            .all(&indiv)
            .into_iter()
            .map(|e| {
                let t = m.throughput(&e);
                MeasuredExperiment::new(e, t)
            })
            .collect();
        let part = CongruencePartition::compute(&ids, &measured, 0.01);
        prop_assert_eq!(
            part.representative(InstId(0)),
            part.representative(InstId(1))
        );
    }

    /// Recombination always produces structurally valid children: every
    /// instruction keeps at least one µop, all port sets stay within the
    /// machine, and no new port sets are invented.
    #[test]
    fn recombination_children_are_valid(
        a in mapping_strategy(5, 6),
        b in mapping_strategy(5, 6),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (c1, c2) = recombine_for_test(&mut rng, &a, &b);
        for child in [&c1, &c2] {
            prop_assert_eq!(child.num_insts(), 6);
            prop_assert_eq!(child.num_ports(), 5);
            for i in 0..6u32 {
                let id = InstId(i);
                prop_assert!(child.num_uops_of(id) >= 1, "instruction {id} lost all µops");
                let parent_sets: Vec<PortSet> = a
                    .decomposition(id)
                    .iter()
                    .chain(b.decomposition(id))
                    .map(|e| e.ports)
                    .collect();
                for e in child.decomposition(id) {
                    prop_assert!(
                        parent_sets.contains(&e.ports),
                        "child invented µop {} for {id}",
                        e.ports
                    );
                }
            }
        }
    }
}
