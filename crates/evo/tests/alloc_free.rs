//! The fitness hot path performs **zero heap allocations per evaluation
//! after warm-up** (ISSUE 2 acceptance criterion), verified with a
//! counting global allocator.
//!
//! The counter is a per-thread cell, so allocations by the libtest
//! harness (which runs on its own threads) cannot leak into the measured
//! window — only what the evaluating thread itself allocates counts.

use pmevo_core::{Experiment, InstId, MeasuredExperiment, PortSet, ThreeLevelMapping, UopEntry};
use pmevo_evo::FitnessEngine;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

std::thread_local! {
    /// Const-initialized so reading/bumping it never allocates itself.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

fn bump() {
    // `try_with`: allocations during TLS teardown are simply not counted.
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn uop(count: u32, ports: &[usize]) -> UopEntry {
    UopEntry::new(count, PortSet::from_ports(ports))
}

/// An 6-instruction, 5-port ground truth with singleton + pair
/// experiments labeled by its own predictions.
fn training_set() -> (ThreeLevelMapping, Vec<MeasuredExperiment>) {
    let gt = ThreeLevelMapping::new(
        5,
        vec![
            vec![uop(1, &[0])],
            vec![uop(1, &[0, 1])],
            vec![uop(2, &[1, 2]), uop(1, &[3])],
            vec![uop(1, &[2, 3, 4])],
            vec![uop(3, &[4])],
            vec![uop(1, &[0, 4]), uop(1, &[1, 2])],
        ],
    );
    let n = gt.num_insts() as u32;
    let mut exps = Vec::new();
    for i in 0..n {
        exps.push(Experiment::singleton(InstId(i)));
        for j in (i + 1)..n {
            exps.push(Experiment::pair(InstId(i), 2, InstId(j), 1));
        }
    }
    let measured = exps
        .into_iter()
        .map(|e| {
            let t = gt.throughput(&e);
            MeasuredExperiment::new(e, t)
        })
        .collect();
    (gt, measured)
}

#[test]
fn hot_path_is_allocation_free_after_warmup() {
    let (gt, measured) = training_set();
    // Thread count 1: batch jobs and results travel over channels (one
    // node per *batch*, not per evaluation); the per-evaluation claim is
    // about the solver path, measured here on the calling thread.
    let mut engine = FitnessEngine::new(&measured, 1);

    let m1 = gt.clone();
    let mut m2 = gt.clone();
    m2.set_decomposition(InstId(0), vec![uop(2, &[0, 1]), uop(1, &[2])]);

    // Warm-up: grow every scratch buffer (zeta window, loaded-mapping
    // tables, delta staging, error cache) to steady-state size.
    for _ in 0..3 {
        engine.evaluate(&m1);
        engine.evaluate(&m2);
    }
    let mut cache = engine.build_cache(&m1);
    engine.try_update(&m2, &cache, InstId(0));
    engine.commit_update(&mut cache);
    engine.try_update(&m1, &cache, InstId(0));
    engine.commit_update(&mut cache);

    let before = thread_allocations();
    let mut acc = 0.0f64;
    for _ in 0..64 {
        // Full evaluations...
        acc += engine.evaluate(&m1).error;
        acc += engine.evaluate(&m2).error;
        // ...and delta evaluations, committed both ways.
        acc += engine.try_update(&m2, &cache, InstId(0)).error;
        engine.commit_update(&mut cache);
        acc += engine.try_update(&m1, &cache, InstId(0)).error;
        engine.commit_update(&mut cache);
    }
    let after = thread_allocations();

    assert!(acc.is_finite());
    assert_eq!(
        after - before,
        0,
        "fitness hot path allocated {} times across 256 evaluations",
        after - before
    );
}
