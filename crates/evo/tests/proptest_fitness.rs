//! Property tests: the compiled, batched and delta evaluation paths of
//! [`FitnessEngine`] return **exactly** (bit-for-bit) the same
//! [`Objectives`] as the naive [`average_relative_error`] reference, on
//! random mappings and random experiment sets (ISSUE 2 satellite).

use proptest::prelude::*;
use pmevo_core::{Experiment, InstId, MeasuredExperiment, PortSet, ThreeLevelMapping, UopEntry};
use pmevo_evo::{average_relative_error, FitnessEngine, Objectives};
use std::sync::Arc;

const NUM_INSTS: usize = 6;
const NUM_PORTS: usize = 4;

fn mapping_strategy() -> impl Strategy<Value = ThreeLevelMapping> {
    proptest::collection::vec(
        proptest::collection::vec((1u32..4, 1u64..(1 << NUM_PORTS)), 1..4),
        NUM_INSTS,
    )
    .prop_map(|decomp| {
        ThreeLevelMapping::new(
            NUM_PORTS,
            decomp
                .into_iter()
                .map(|entries| {
                    entries
                        .into_iter()
                        .map(|(n, mask)| UopEntry::new(n, PortSet::from_mask(mask)))
                        .collect()
                })
                .collect(),
        )
    })
}

/// Random non-empty measured experiment sets over the instruction
/// universe, with positive measured throughputs unrelated to any mapping
/// (the equivalence must hold for arbitrary labels, not just consistent
/// ones).
fn experiments_strategy() -> impl Strategy<Value = Vec<MeasuredExperiment>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0u32..NUM_INSTS as u32, 1u32..4), 1..4),
            0.25..8.0f64,
        ),
        1..20,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(counts, tp)| {
                let pairs: Vec<(InstId, u32)> =
                    counts.into_iter().map(|(i, n)| (InstId(i), n)).collect();
                MeasuredExperiment::new(Experiment::from_counts(&pairs), tp)
            })
            .collect()
    })
}

fn reference(mapping: &ThreeLevelMapping, experiments: &[MeasuredExperiment]) -> Objectives {
    Objectives {
        error: average_relative_error(mapping, experiments),
        volume: mapping.volume(),
    }
}

proptest! {
    // Case budget: engine construction is cheap at thread count 1–2, so
    // the workspace-wide cap of 128 cases per property holds here too
    // (override with PROPTEST_CASES).
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Single evaluation through the engine's compiled path is exactly
    /// the naive reference.
    #[test]
    fn engine_evaluate_is_bit_identical_to_reference(
        m in mapping_strategy(),
        exps in experiments_strategy(),
    ) {
        let mut engine = FitnessEngine::new(&exps, 1);
        let got = engine.evaluate(&m);
        let want = reference(&m, &exps);
        prop_assert_eq!(got.error.to_bits(), want.error.to_bits());
        prop_assert_eq!(got.volume, want.volume);
        // Scratch reuse across candidates must not change anything.
        let again = engine.evaluate(&m);
        prop_assert_eq!(again.error.to_bits(), want.error.to_bits());
    }

    /// Batched evaluation over the worker pool equals the reference for
    /// every candidate, in order.
    #[test]
    fn batch_evaluation_is_bit_identical_to_reference(
        ms in proptest::collection::vec(mapping_strategy(), 1..6),
        exps in experiments_strategy(),
    ) {
        let mut engine = FitnessEngine::new(&exps, 2);
        let batch = Arc::new(ms);
        let got = engine.evaluate_batch(&batch);
        prop_assert_eq!(got.len(), batch.len());
        for (m, o) in batch.iter().zip(&got) {
            let want = reference(m, &exps);
            prop_assert_eq!(o.error.to_bits(), want.error.to_bits());
            prop_assert_eq!(o.volume, want.volume);
        }
    }

    /// Delta re-evaluation after a single-instruction mutation equals a
    /// full naive evaluation of the mutated mapping, and committing makes
    /// the cache agree with it.
    #[test]
    fn delta_update_is_bit_identical_to_reference(
        m in mapping_strategy(),
        new_decomp in proptest::collection::vec((1u32..4, 1u64..(1 << NUM_PORTS)), 1..4),
        changed_idx in 0..NUM_INSTS as u32,
        exps in experiments_strategy(),
    ) {
        let mut engine = FitnessEngine::new(&exps, 1);
        let mut cache = engine.build_cache(&m);
        prop_assert_eq!(cache.mean_error().to_bits(), reference(&m, &exps).error.to_bits());

        let changed = InstId(changed_idx);
        let mut mutated = m.clone();
        mutated.set_decomposition(
            changed,
            new_decomp
                .into_iter()
                .map(|(n, mask)| UopEntry::new(n, PortSet::from_mask(mask)))
                .collect(),
        );
        let got = engine.try_update(&mutated, &cache, changed);
        let want = reference(&mutated, &exps);
        prop_assert_eq!(got.error.to_bits(), want.error.to_bits());
        prop_assert_eq!(got.volume, want.volume);

        engine.commit_update(&mut cache);
        prop_assert_eq!(cache.mean_error().to_bits(), want.error.to_bits());

        // A second mutation from the committed baseline stays exact.
        let mut back = mutated.clone();
        back.set_decomposition(changed, m.decomposition(changed).to_vec());
        let got2 = engine.try_update(&back, &cache, changed);
        let want2 = reference(&back, &exps);
        prop_assert_eq!(got2.error.to_bits(), want2.error.to_bits());
        prop_assert_eq!(got2.volume, want2.volume);
    }
}
