//! Property test: adaptive-selection pipeline results are bit-identical
//! across fitness-engine worker-thread counts and across measurement
//! backend chunk sizes, for random platforms, budgets and policies.
//!
//! This is the determinism contract the adaptive scheduler inherits
//! from the PR 3 session API: what gets measured (and, from there,
//! everything the pipeline reports) must be a pure function of the
//! configuration and seed — never of how work was split across threads
//! or batches.

use pmevo_core::{
    BackendStats, Experiment, MeasurementBackend, MeasurementBudget, ModelBackend, PortSet,
    RoundStats, SelectionPolicy, ThreeLevelMapping, UopEntry,
};
use pmevo_evo::{run, AdaptiveTuning, EvoConfig, PipelineConfig, PipelineResult};
use proptest::prelude::*;

/// A test decorator that forwards every batch in fixed-size chunks, the
/// way an incremental harness with a bounded submission queue would.
struct ChunkedBackend<B> {
    inner: B,
    chunk: usize,
}

impl<B: MeasurementBackend> MeasurementBackend for ChunkedBackend<B> {
    fn measure_batch(&mut self, experiments: &[Experiment]) -> Vec<f64> {
        let mut out = Vec::with_capacity(experiments.len());
        for sub in experiments.chunks(self.chunk.max(1)) {
            out.extend(self.inner.measure_batch(sub));
        }
        out
    }
    fn name(&self) -> &str {
        "chunked"
    }
    fn stats(&self) -> BackendStats {
        self.inner.stats()
    }
}

/// Random ground-truth mappings: 3–6 instructions over 2–4 ports, each
/// with 1–2 µops of non-empty port sets.
fn ground_truth_strategy() -> impl Strategy<Value = ThreeLevelMapping> {
    (2usize..=4).prop_flat_map(|num_ports| {
        let mask_bound = (1u64 << num_ports) - 1;
        collection::vec(
            collection::vec((1u32..3, 1u64..=mask_bound), 1..3),
            3..7,
        )
        .prop_map(move |rows| {
            let decomp = rows
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|(count, mask)| UopEntry::new(count, PortSet::from_mask(mask)))
                        .collect()
                })
                .collect();
            ThreeLevelMapping::new(num_ports, decomp)
        })
    })
}

fn policy_strategy() -> impl Strategy<Value = SelectionPolicy> {
    prop_oneof![
        (1usize..4).prop_map(|top_k| SelectionPolicy::Disagreement { top_k }),
        (1usize..4).prop_map(|top_k| SelectionPolicy::Uniform { top_k }),
    ]
}

fn adaptive_config(
    policy: SelectionPolicy,
    budget: u64,
    seed: u64,
    num_threads: usize,
) -> PipelineConfig {
    PipelineConfig {
        selection: policy,
        budget: MeasurementBudget::measurements(budget),
        adaptive: AdaptiveTuning {
            gens_per_round: 2,
            ensemble: 6,
            pool_factor: 3,
            ..AdaptiveTuning::default()
        },
        evo: EvoConfig {
            population_size: 12,
            max_generations: 4,
            local_search_passes: 2,
            num_threads,
            seed,
            ..EvoConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// The deterministic fingerprint of a pipeline result: everything
/// except the wall-clock fields.
fn fingerprint(result: &PipelineResult) -> (ThreeLevelMapping, Vec<RoundStats>, Vec<ThreeLevelMapping>, u64, usize, String) {
    (
        result.mapping.clone(),
        result.rounds.iter().map(|r| r.without_timing()).collect(),
        result.round_mappings.clone(),
        result.measurements_performed,
        result.num_experiments,
        format!("{:?}", result.evo.objectives),
    )
}

proptest! {
    // Each case runs the full pipeline 7 times; keep the budget small.
    // Override with PROPTEST_CASES=<n>.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn adaptive_results_are_thread_and_chunk_independent(
        gt in ground_truth_strategy(),
        policy in policy_strategy(),
        budget in 6u64..30,
        seed in 0u64..1000,
    ) {
        let num_insts = gt.num_insts();
        let num_ports = gt.num_ports();
        let reference = {
            let mut backend = ModelBackend::new(gt.clone());
            let config = adaptive_config(policy, budget, seed, 1);
            fingerprint(&run(num_insts, num_ports, &mut backend, &config))
        };

        // Worker-thread counts must not change anything.
        for threads in [2usize, 8] {
            let mut backend = ModelBackend::new(gt.clone());
            let config = adaptive_config(policy, budget, seed, threads);
            let got = fingerprint(&run(num_insts, num_ports, &mut backend, &config));
            prop_assert_eq!(&got, &reference, "{} worker threads diverged", threads);
        }

        // Backend chunk sizes must not change anything either: the
        // noise-free oracle is trivially per-experiment, and the
        // scheduler must not depend on batch boundaries.
        for chunk in [1usize, 3, 1024] {
            let mut backend = ChunkedBackend { inner: ModelBackend::new(gt.clone()), chunk };
            let config = adaptive_config(policy, budget, seed, 2);
            let got = fingerprint(&run(num_insts, num_ports, &mut backend, &config));
            prop_assert_eq!(&got, &reference, "chunk size {} diverged", chunk);
        }
    }
}
