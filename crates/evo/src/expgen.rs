//! Experiment generation (paper §4.1).
//!
//! Three kinds of experiments are generated from an instruction universe:
//!
//! 1. a singleton `{i ↦ 1}` per instruction form, measuring its
//!    individual throughput `t*(i)`;
//! 2. an unweighted pair `{iA ↦ 1, iB ↦ 1}` per pair of forms;
//! 3. a ratio pair `{iA ↦ 1, iB ↦ n}` with `n = ⌈t*(iA)/t*(iB)⌉` per
//!    pair with `t*(iA) > t*(iB)`, which saturates the faster form's
//!    ports enough to expose partial conflicts.

use pmevo_core::{Experiment, InstId};

/// Generates the experiment sets of paper §4.1.
///
/// # Example
///
/// ```
/// use pmevo_core::InstId;
/// use pmevo_evo::ExperimentGenerator;
///
/// let ids = vec![InstId(0), InstId(1), InstId(2)];
/// let gen = ExperimentGenerator::new(ids);
/// assert_eq!(gen.singletons().len(), 3);
/// // Individual throughputs: i0 twice as slow as i1 => ratio pair {i0, 2×i1}.
/// let pairs = gen.pairs(&[2.0, 1.0, 1.0]);
/// assert!(pairs.len() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentGenerator {
    insts: Vec<InstId>,
}

impl ExperimentGenerator {
    /// Creates a generator over the given instruction universe.
    ///
    /// # Panics
    ///
    /// Panics if `insts` is empty or contains duplicates.
    pub fn new(insts: Vec<InstId>) -> Self {
        assert!(!insts.is_empty(), "empty instruction universe");
        let mut sorted = insts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), insts.len(), "duplicate instruction ids");
        ExperimentGenerator { insts }
    }

    /// The instruction universe.
    pub fn insts(&self) -> &[InstId] {
        &self.insts
    }

    /// Kind-1 experiments: one singleton per form, in universe order.
    pub fn singletons(&self) -> Vec<Experiment> {
        self.insts.iter().map(|&i| Experiment::singleton(i)).collect()
    }

    /// Kind-2 and kind-3 experiments, given the measured individual
    /// throughputs (indexed like [`insts`](Self::insts)).
    ///
    /// Duplicate experiments (a ratio pair with `n = 1` coincides with
    /// the plain pair) are emitted once. Equivalent to collecting
    /// [`candidates`](Self::candidates), which streams the same
    /// experiments lazily.
    ///
    /// # Panics
    ///
    /// Panics if `indiv_tp` has the wrong length or contains
    /// non-positive values.
    pub fn pairs(&self, indiv_tp: &[f64]) -> Vec<Experiment> {
        self.candidates(indiv_tp).collect()
    }

    /// Streams the kind-2 and kind-3 pair experiments lazily, in the
    /// same deterministic order [`pairs`](Self::pairs) materializes
    /// them: for every unordered pair (universe order) the plain pair,
    /// then the ratio pair when its multiplier exceeds 1.
    ///
    /// This is the candidate source of the adaptive experiment
    /// scheduler ([`crate::selection`]): the full `O(n²)` corpus is
    /// never materialized, candidates are pulled into a bounded pool as
    /// the measurement budget allows.
    ///
    /// # Example
    ///
    /// ```
    /// use pmevo_core::InstId;
    /// use pmevo_evo::ExperimentGenerator;
    ///
    /// let gen = ExperimentGenerator::new((0..40).map(InstId).collect());
    /// let tp = vec![1.0; 40];
    /// // Pull the first chunk without generating all 780 pairs.
    /// let chunk: Vec<_> = gen.candidates(&tp).take(8).collect();
    /// assert_eq!(chunk.len(), 8);
    /// assert_eq!(gen.candidates(&tp).count(), gen.pairs(&tp).len());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `indiv_tp` has the wrong length or contains
    /// non-positive values.
    pub fn candidates<'a>(&'a self, indiv_tp: &'a [f64]) -> CandidateStream<'a> {
        assert_eq!(indiv_tp.len(), self.insts.len(), "throughput table size");
        assert!(
            indiv_tp.iter().all(|&t| t > 0.0),
            "non-positive individual throughput"
        );
        CandidateStream {
            insts: &self.insts,
            indiv_tp,
            a: 0,
            b: 1,
            pending: None,
        }
    }

    /// The full experiment set: singletons followed by pairs.
    pub fn all(&self, indiv_tp: &[f64]) -> Vec<Experiment> {
        let mut out = self.singletons();
        out.extend(self.pairs(indiv_tp));
        out
    }

    /// Samples `count` random three-form experiments `{a↦1, b↦1, c↦1}`.
    ///
    /// Paper §4.1 notes that longer experiments can in theory unveil
    /// resource conflicts the pair experiments cannot, but found no
    /// quality benefit on real processors; this generator exists to
    /// repeat that design-space exploration
    /// ([`PipelineConfig::extra_triples`](crate::PipelineConfig)).
    ///
    /// Duplicates (within the sample and with fewer than 3 distinct
    /// forms) are skipped, so fewer than `count` experiments may be
    /// returned for tiny universes.
    pub fn triples(&self, count: usize, seed: u64) -> Vec<Experiment> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(count);
        let n = self.insts.len();
        let mut attempts = 0usize;
        while out.len() < count && attempts < count * 20 {
            attempts += 1;
            let mut picks = [0usize; 3];
            for p in &mut picks {
                *p = rng.gen_range(0..n);
            }
            picks.sort_unstable();
            if picks[0] == picks[1] || picks[1] == picks[2] {
                continue;
            }
            if seen.insert(picks) {
                out.push(Experiment::from_counts(&[
                    (self.insts[picks[0]], 1),
                    (self.insts[picks[1]], 1),
                    (self.insts[picks[2]], 1),
                ]));
            }
        }
        out
    }
}

/// The lazy pair-experiment stream behind
/// [`ExperimentGenerator::candidates`].
///
/// Iteration order is a pure function of the universe and the
/// individual-throughput table, so two streams over equal inputs yield
/// identical sequences — adaptive runs stay deterministic.
#[derive(Debug, Clone)]
pub struct CandidateStream<'a> {
    insts: &'a [InstId],
    indiv_tp: &'a [f64],
    /// Cursor: next unordered pair `(a, b)` with `a < b`.
    a: usize,
    b: usize,
    /// Ratio pair of the current `(a, b)`, emitted after the plain pair.
    pending: Option<Experiment>,
}

impl Iterator for CandidateStream<'_> {
    type Item = Experiment;

    fn next(&mut self) -> Option<Experiment> {
        if let Some(ratio) = self.pending.take() {
            return Some(ratio);
        }
        if self.b >= self.insts.len() {
            return None;
        }
        let (a, b) = (self.a, self.b);
        let (ia, ib) = (self.insts[a], self.insts[b]);
        // Kind 3: saturate the faster instruction.
        let (slow, fast, ts, tf) = if self.indiv_tp[a] > self.indiv_tp[b] {
            (ia, ib, self.indiv_tp[a], self.indiv_tp[b])
        } else {
            (ib, ia, self.indiv_tp[b], self.indiv_tp[a])
        };
        if ts > tf {
            let n = (ts / tf).ceil() as u32;
            if n > 1 {
                self.pending = Some(Experiment::pair(slow, 1, fast, n));
            }
        }
        self.b += 1;
        if self.b >= self.insts.len() {
            self.a += 1;
            self.b = self.a + 1;
        }
        Some(Experiment::pair(ia, 1, ib, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<InstId> {
        (0..n).map(InstId).collect()
    }

    #[test]
    fn candidate_stream_matches_materialized_pairs() {
        let g = ExperimentGenerator::new(ids(7));
        let tp = [1.0, 2.5, 0.5, 1.0, 3.0, 1.25, 2.0];
        let streamed: Vec<Experiment> = g.candidates(&tp).collect();
        assert_eq!(streamed, g.pairs(&tp));
        // Lazy pulls see the same prefix.
        let prefix: Vec<Experiment> = g.candidates(&tp).take(5).collect();
        assert_eq!(prefix[..], streamed[..5]);
    }

    #[test]
    fn singleton_count_matches_universe() {
        let g = ExperimentGenerator::new(ids(5));
        let s = g.singletons();
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|e| e.total_insts() == 1));
    }

    #[test]
    fn plain_pairs_cover_all_unordered_pairs() {
        let g = ExperimentGenerator::new(ids(4));
        let pairs = g.pairs(&[1.0; 4]);
        // Equal throughputs: no ratio pairs, only C(4,2) = 6 plain pairs.
        assert_eq!(pairs.len(), 6);
        assert!(pairs.iter().all(|e| e.total_insts() == 2));
    }

    #[test]
    fn ratio_pairs_use_ceiling_ratio() {
        let g = ExperimentGenerator::new(ids(2));
        // t(i0) = 2.5, t(i1) = 1 => n = ceil(2.5) = 3.
        let pairs = g.pairs(&[2.5, 1.0]);
        assert_eq!(pairs.len(), 2);
        let ratio = &pairs[1];
        assert_eq!(ratio.count_of(InstId(0)), 1);
        assert_eq!(ratio.count_of(InstId(1)), 3);
    }

    #[test]
    fn ratio_pair_with_n_equal_one_is_not_duplicated() {
        let g = ExperimentGenerator::new(ids(2));
        // Ratio 1.2 => n = 2; ratio 1.0 => no extra experiment.
        assert_eq!(g.pairs(&[1.2, 1.0]).len(), 2);
        assert_eq!(g.pairs(&[1.0, 1.0]).len(), 1);
    }

    #[test]
    fn all_concatenates_singletons_and_pairs() {
        let g = ExperimentGenerator::new(ids(3));
        let all = g.all(&[1.0, 2.0, 4.0]);
        // 3 singletons + 3 plain pairs + 3 ratio pairs.
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn triples_are_distinct_and_sized() {
        let g = ExperimentGenerator::new(ids(10));
        let ts = g.triples(20, 5);
        assert_eq!(ts.len(), 20);
        for t in &ts {
            assert_eq!(t.num_distinct(), 3);
            assert_eq!(t.total_insts(), 3);
        }
        let mut dedup = ts.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ts.len(), "sampled duplicate triples");
        // Deterministic under the seed.
        assert_eq!(ts, g.triples(20, 5));
    }

    #[test]
    fn triples_on_tiny_universe_saturate() {
        let g = ExperimentGenerator::new(ids(3));
        // Only one distinct triple exists.
        assert_eq!(g.triples(10, 1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ids_panic() {
        ExperimentGenerator::new(vec![InstId(0), InstId(0)]);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_throughput_panics() {
        ExperimentGenerator::new(ids(2)).pairs(&[0.0, 1.0]);
    }
}
