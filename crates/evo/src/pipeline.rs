//! The end-to-end PMEvo pipeline (paper Figure 5).
//!
//! Wires experiment generation → measurement → congruence filtering →
//! evolutionary optimization, and records the bookkeeping reported in
//! paper Table 2 (benchmarking time, inference time, fraction of
//! congruent instructions, number of distinct µops).
//!
//! Measurement goes through a [`MeasurementBackend`] — a simulator
//! ([`SimBackend`](../../pmevo_machine/struct.SimBackend.html)), a
//! recorded artifact ([`pmevo_core::ReplayBackend`]), real hardware, or
//! any decorator stack over those. Benchmarking time and measurement
//! counts come from the backend's [`BackendStats`] delta, so a
//! [`pmevo_core::CachingBackend`] that answers from its cache is not
//! billed again.

use crate::congruence::CongruencePartition;
use crate::evolution::{evolve, EvoConfig, EvoResult};
use crate::expgen::ExperimentGenerator;
use pmevo_core::{
    BackendStats, InstId, MeasuredExperiment, MeasurementBackend, ThreeLevelMapping,
};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Configuration of a full pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Symmetric-relative-difference bound ε for congruence filtering
    /// (paper evaluation: 0.05).
    pub epsilon: f64,
    /// Set to `false` to skip congruence filtering (ablation); every
    /// instruction becomes its own class.
    pub congruence_filtering: bool,
    /// Number of additional random three-form experiments to measure
    /// and train on. The paper explored longer experiments and found no
    /// quality benefit (§4.1); 0 (the default) reproduces the paper's
    /// final design, non-zero values repeat the exploration.
    pub extra_triples: usize,
    /// Parameters of the evolutionary algorithm.
    pub evo: EvoConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            epsilon: 0.05,
            congruence_filtering: true,
            extra_triples: 0,
            evo: EvoConfig::default(),
        }
    }
}

/// Result of a pipeline run, including the Table 2 bookkeeping.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The inferred mapping, expanded to the full instruction universe
    /// (every instruction carries its class representative's
    /// decomposition).
    pub mapping: ThreeLevelMapping,
    /// Time the backend spent performing real measurements (from its
    /// [`BackendStats`]; cache hits of a
    /// [`pmevo_core::CachingBackend`] cost nothing here).
    pub benchmarking_time: Duration,
    /// Time spent in congruence filtering + evolution + local search.
    pub inference_time: Duration,
    /// Real measurements the backend performed for this run (deduped
    /// experiments are counted once).
    pub measurements_performed: u64,
    /// Fraction of instructions merged into another instruction's class.
    pub congruent_fraction: f64,
    /// Number of congruence classes (= instructions seen by evolution).
    pub num_classes: usize,
    /// Number of measured experiments (benchmark workload size).
    pub num_experiments: usize,
    /// The evolutionary algorithm's result on the representative
    /// universe.
    pub evo: EvoResult,
}

impl PipelineResult {
    /// Number of distinct µops of the inferred mapping (paper Table 2).
    pub fn num_distinct_uops(&self) -> usize {
        self.mapping.num_distinct_uops()
    }
}

/// Runs the full PMEvo pipeline on an instruction universe of
/// `num_insts` forms (ids `0..num_insts`) over a machine with
/// `num_ports` ports, measuring through `backend`.
///
/// # Panics
///
/// Panics if `num_insts == 0`, the backend returns the wrong number of
/// results, or measurements are not positive and finite.
pub fn run(
    num_insts: usize,
    num_ports: usize,
    backend: &mut dyn MeasurementBackend,
    config: &PipelineConfig,
) -> PipelineResult {
    assert!(num_insts > 0, "empty instruction universe");
    let universe: Vec<InstId> = (0..num_insts as u32).map(InstId).collect();
    let generator = ExperimentGenerator::new(universe.clone());

    // Stage 1+2: generate and measure experiments. Cost is accounted by
    // the backend itself, so deduplicated measurements are not
    // double-counted.
    let stats_before: BackendStats = backend.stats();
    let singletons = generator.singletons();
    let indiv_tp = backend.measure_batch_checked(&singletons);
    let mut extra = generator.pairs(&indiv_tp);
    if config.extra_triples > 0 {
        extra.extend(generator.triples(config.extra_triples, config.evo.seed ^ 0x7319));
    }
    let extra_tp = backend.measure_batch_checked(&extra);
    let bench_stats = backend.stats().since(&stats_before);

    let mut measured: Vec<MeasuredExperiment> = Vec::with_capacity(singletons.len() + extra.len());
    for (e, t) in singletons.iter().cloned().zip(indiv_tp.iter().copied()) {
        measured.push(MeasuredExperiment::new(e, t));
    }
    for (e, t) in extra.into_iter().zip(extra_tp) {
        measured.push(MeasuredExperiment::new(e, t));
    }
    let num_experiments = measured.len();

    // Stage 3: congruence filtering.
    let infer_start = Instant::now();
    let partition = if config.congruence_filtering {
        CongruencePartition::compute(&universe, &measured, config.epsilon)
    } else {
        CongruencePartition::identity(&universe)
    };
    let reps = partition.representatives().to_vec();
    let rep_index: BTreeMap<InstId, u32> = reps
        .iter()
        .enumerate()
        .map(|(k, &id)| (id, k as u32))
        .collect();

    // Keep only experiments entirely over representatives; remap ids to
    // the compact representative universe 0..k.
    let rep_measured: Vec<MeasuredExperiment> = measured
        .iter()
        .filter(|me| me.experiment.iter().all(|(i, _)| rep_index.contains_key(&i)))
        .map(|me| {
            let exp = me.experiment.map_insts(|i| InstId(rep_index[&i]));
            MeasuredExperiment::new(exp, me.throughput)
        })
        .collect();
    let rep_indiv: Vec<f64> = reps
        .iter()
        .map(|&id| {
            measured
                .iter()
                .find(|me| me.experiment.counts() == [(id, 1)])
                .expect("singleton measured for every representative")
                .throughput
        })
        .collect();

    // Stage 4: evolutionary optimization on the representative universe.
    let evo_result = evolve(reps.len(), num_ports, &rep_measured, &rep_indiv, &config.evo);

    // Expand the representative mapping back to the full universe.
    let full_decomp = universe
        .iter()
        .map(|&id| {
            let rep = partition.representative(id);
            evo_result
                .mapping
                .decomposition(InstId(rep_index[&rep]))
                .to_vec()
        })
        .collect();
    let mapping = ThreeLevelMapping::new(num_ports, full_decomp);
    let inference_time = infer_start.elapsed();

    PipelineResult {
        mapping,
        benchmarking_time: bench_stats.measurement_time,
        inference_time,
        measurements_performed: bench_stats.measurements_performed,
        congruent_fraction: partition.merged_fraction(),
        num_classes: partition.num_classes(),
        num_experiments,
        evo: evo_result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{CachingBackend, Experiment, ModelBackend, PortSet, UopEntry};

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, PortSet::from_ports(ports))
    }

    /// A 5-instruction ground truth with two congruent pairs.
    fn toy_ground_truth() -> ThreeLevelMapping {
        ThreeLevelMapping::new(
            3,
            vec![
                vec![uop(1, &[0, 1])], // i0
                vec![uop(1, &[0, 1])], // i1 (congruent to i0)
                vec![uop(1, &[2])],    // i2
                vec![uop(1, &[2])],    // i3 (congruent to i2)
                vec![uop(2, &[0])],    // i4
            ],
        )
    }

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            evo: EvoConfig {
                population_size: 60,
                max_generations: 30,
                // Extra patience: with this small budget the search can
                // stall a few generations before escaping a local optimum.
                stall_generations: 12,
                num_threads: 2,
                seed: 7,
                ..EvoConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_recovers_toy_machine_behaviour() {
        let mut backend = ModelBackend::new(toy_ground_truth());
        let result = run(5, 3, &mut backend, &small_config());
        // Congruence: 5 forms -> 3 classes.
        assert_eq!(result.num_classes, 3);
        assert!((result.congruent_fraction - 0.4).abs() < 1e-12);
        // The inferred mapping explains the training data well.
        assert!(
            result.evo.objectives.error < 0.05,
            "pipeline error {}",
            result.evo.objectives.error
        );
        // Expanded mapping covers all 5 instructions and congruent forms
        // share decompositions.
        assert_eq!(result.mapping.num_insts(), 5);
        assert_eq!(
            result.mapping.decomposition(InstId(0)),
            result.mapping.decomposition(InstId(1))
        );
        assert_eq!(
            result.mapping.decomposition(InstId(2)),
            result.mapping.decomposition(InstId(3))
        );
    }

    #[test]
    fn disabled_filtering_keeps_all_classes() {
        let mut cfg = small_config();
        cfg.congruence_filtering = false;
        cfg.evo.max_generations = 5;
        let mut backend = ModelBackend::new(toy_ground_truth());
        let result = run(5, 3, &mut backend, &cfg);
        assert_eq!(result.num_classes, 5);
        assert_eq!(result.congruent_fraction, 0.0);
    }

    #[test]
    fn bookkeeping_is_populated() {
        let mut cfg = small_config();
        cfg.evo.max_generations = 3;
        let mut backend = ModelBackend::new(toy_ground_truth());
        let result = run(5, 3, &mut backend, &cfg);
        assert!(result.num_experiments >= 5 + 10);
        assert_eq!(result.measurements_performed, result.num_experiments as u64);
        assert!(result.num_distinct_uops() >= 1);
        assert!(result.inference_time > Duration::ZERO);
    }

    #[test]
    fn cached_measurements_are_not_billed_again() {
        let mut cfg = small_config();
        cfg.evo.max_generations = 2;
        let mut backend = CachingBackend::new(ModelBackend::new(toy_ground_truth()));
        let first = run(5, 3, &mut backend, &cfg);
        assert_eq!(first.measurements_performed, first.num_experiments as u64);
        // The second run over the same universe hits the cache for every
        // experiment: zero real measurements, zero benchmarking time.
        let second = run(5, 3, &mut backend, &cfg);
        assert_eq!(second.num_experiments, first.num_experiments);
        assert_eq!(second.measurements_performed, 0);
        assert_eq!(second.benchmarking_time, Duration::ZERO);
    }

    /// A backend that always returns one measurement, whatever the batch.
    struct BrokenBackend;

    impl MeasurementBackend for BrokenBackend {
        fn measure_batch(&mut self, _experiments: &[Experiment]) -> Vec<f64> {
            vec![1.0]
        }
        fn name(&self) -> &str {
            "broken"
        }
        fn stats(&self) -> BackendStats {
            BackendStats::default()
        }
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn wrong_measurement_count_panics() {
        run(2, 2, &mut BrokenBackend, &small_config());
    }

    #[test]
    fn extra_triples_extend_the_training_set() {
        let mut base_cfg = small_config();
        base_cfg.evo.max_generations = 2;
        let mut triple_cfg = base_cfg.clone();
        triple_cfg.extra_triples = 6;
        let base = run(5, 3, &mut ModelBackend::new(toy_ground_truth()), &base_cfg);
        let with_triples = run(5, 3, &mut ModelBackend::new(toy_ground_truth()), &triple_cfg);
        assert_eq!(
            with_triples.num_experiments,
            base.num_experiments + 6,
            "triples must be measured on top of singletons and pairs"
        );
    }
}
