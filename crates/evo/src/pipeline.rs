//! The end-to-end PMEvo pipeline (paper Figure 5).
//!
//! Wires experiment generation → measurement → congruence filtering →
//! evolutionary optimization, and records the bookkeeping reported in
//! paper Table 2 (benchmarking time, inference time, fraction of
//! congruent instructions, number of distinct µops).
//!
//! Measurement goes through a [`MeasurementBackend`] — a simulator
//! ([`SimBackend`](../../pmevo_machine/struct.SimBackend.html)), a
//! recorded artifact ([`pmevo_core::ReplayBackend`]), real hardware, or
//! any decorator stack over those. Benchmarking time and measurement
//! counts come from the backend's [`BackendStats`] delta, so a
//! [`pmevo_core::CachingBackend`] that answers from its cache is not
//! billed again.

use crate::congruence::{throughput_close, CongruencePartition};
use crate::evolution::{EvoConfig, EvoResult};
use crate::expgen::ExperimentGenerator;
use crate::islands::{evolve_islands, EvoState, IslandConfig, IslandControl, IslandObserver, IslandStart};
use crate::selection::{
    run_adaptive_with, AdaptiveContext, AdaptiveResume, AdaptiveTuning, CheckpointEvent,
    CheckpointHook,
};
use pmevo_core::checkpoint::{CheckpointPhase, SessionCheckpoint};
use pmevo_core::{
    BackendStats, Experiment, InstId, MeasuredExperiment, MeasurementBackend,
    MeasurementBudget, RoundStats, SelectionPolicy, ThreeLevelMapping,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Configuration of a full pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Symmetric-relative-difference bound ε for congruence filtering
    /// (paper evaluation: 0.05).
    pub epsilon: f64,
    /// Set to `false` to skip congruence filtering (ablation); every
    /// instruction becomes its own class.
    pub congruence_filtering: bool,
    /// Number of additional random three-form experiments to measure
    /// and train on. The paper explored longer experiments and found no
    /// quality benefit (§4.1); 0 (the default) reproduces the paper's
    /// final design, non-zero values repeat the exploration. Only used
    /// by the one-shot path.
    pub extra_triples: usize,
    /// How experiments are chosen: the paper's up-front corpus
    /// ([`SelectionPolicy::OneShot`], the default) or a round-based
    /// adaptive loop (see [`crate::selection`]).
    pub selection: SelectionPolicy,
    /// Measurement budget for the round-based policies (ignored by
    /// [`SelectionPolicy::OneShot`]).
    pub budget: MeasurementBudget,
    /// Tuning of the round-based loop (ignored by
    /// [`SelectionPolicy::OneShot`]).
    pub adaptive: AdaptiveTuning,
    /// Parameters of the evolutionary algorithm.
    pub evo: EvoConfig,
    /// Island topology for every evolution run (one island by default —
    /// the classic loop, bit for bit).
    pub islands: IslandConfig,
    /// Checkpoint/resume configuration; `None` disables both.
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            epsilon: 0.05,
            congruence_filtering: true,
            extra_triples: 0,
            selection: SelectionPolicy::OneShot,
            budget: MeasurementBudget::UNLIMITED,
            adaptive: AdaptiveTuning::default(),
            evo: EvoConfig::default(),
            islands: IslandConfig::default(),
            checkpoint: None,
        }
    }
}

/// Checkpoint/resume configuration of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Where the checkpoint artifact is written (atomically: a `.tmp`
    /// sibling is renamed into place on every write).
    pub path: PathBuf,
    /// Write every this many evolution generations; phase boundaries
    /// (pre-polish) are always written. Values `<= 1` write every
    /// generation.
    pub every: u32,
    /// A previously written checkpoint to continue from; `None` starts
    /// fresh. The resumed run re-measures nothing and is bit-identical
    /// to the uninterrupted one (up to wall-clock timings).
    pub resume_from: Option<Box<SessionCheckpoint>>,
    /// Stop the run right after this many checkpoint writes — a
    /// deterministic stand-in for `kill -9` used by the resume tests and
    /// `pmevo-cli infer --halt-after-checkpoints`.
    pub halt_after: Option<u32>,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every `every` generations, no resume, no
    /// halt.
    pub fn new(path: impl Into<PathBuf>, every: u32) -> Self {
        CheckpointConfig {
            path: path.into(),
            every,
            resume_from: None,
            halt_after: None,
        }
    }
}

/// The pipeline's [`CheckpointHook`]: fills a header template with each
/// event's dynamic state and writes the artifact on the configured
/// cadence.
struct CheckpointWriter {
    path: PathBuf,
    every: u32,
    halt_after: Option<u32>,
    written: u32,
    generations_seen: u32,
    template: SessionCheckpoint,
}

impl CheckpointWriter {
    fn new(cfg: &CheckpointConfig, template: SessionCheckpoint) -> Self {
        CheckpointWriter {
            path: cfg.path.clone(),
            every: cfg.every.max(1),
            halt_after: cfg.halt_after,
            written: 0,
            generations_seen: 0,
            template,
        }
    }
}

impl CheckpointHook for CheckpointWriter {
    fn on_state(&mut self, event: &CheckpointEvent<'_>) -> IslandControl {
        let due = match event.phase {
            CheckpointPhase::PrePolish => true,
            _ => {
                self.generations_seen += 1;
                self.generations_seen.is_multiple_of(self.every)
            }
        };
        if !due {
            return IslandControl::Continue;
        }
        let mut cp = self.template.clone();
        cp.used = event.used;
        cp.measured = event.measured.to_vec();
        cp.rounds = event.rounds.to_vec();
        cp.round_mappings = event.round_mappings.to_vec();
        cp.pool = event.pool.to_vec();
        cp.stream_taken = event.stream_taken;
        cp.phase = event.phase;
        cp.evo = event.evo.map(EvoState::to_checkpoint);
        if let Err(e) = cp.save(&self.path) {
            panic!("cannot write checkpoint: {e}");
        }
        self.written += 1;
        if self.halt_after.is_some_and(|n| self.written >= n) {
            return IslandControl::Halt;
        }
        IslandControl::Continue
    }
}

/// The header template of every checkpoint this run writes: the static
/// configuration plus the full-universe singleton throughputs and
/// congruence classes (`rep_of[i]` = representative of instruction `i`),
/// from which a resume reconstructs the partition without re-measuring.
fn checkpoint_template(
    num_insts: usize,
    num_ports: usize,
    config: &PipelineConfig,
    indiv_tp: &[f64],
    partition: &CongruencePartition,
) -> SessionCheckpoint {
    SessionCheckpoint {
        seed: config.evo.seed,
        num_insts,
        num_ports,
        islands: config.islands.count,
        population_size: config.evo.population_size as u64,
        selection: config.selection,
        budget: config.budget,
        used: BackendStats::default(),
        indiv_tp: indiv_tp.to_vec(),
        rep_of: (0..num_insts as u32)
            .map(|i| partition.representative(InstId(i)).0)
            .collect(),
        measured: Vec::new(),
        rounds: Vec::new(),
        round_mappings: Vec::new(),
        pool: Vec::new(),
        stream_taken: 0,
        phase: CheckpointPhase::OneShot,
        evo: None,
    }
}

/// Result of a pipeline run, including the Table 2 bookkeeping.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The inferred mapping, expanded to the full instruction universe
    /// (every instruction carries its class representative's
    /// decomposition).
    pub mapping: ThreeLevelMapping,
    /// Time the backend spent performing real measurements (from its
    /// [`BackendStats`]; cache hits of a
    /// [`pmevo_core::CachingBackend`] cost nothing here).
    pub benchmarking_time: Duration,
    /// Time spent in congruence filtering + evolution + local search.
    pub inference_time: Duration,
    /// Real measurements the backend performed for this run (deduped
    /// experiments are counted once).
    pub measurements_performed: u64,
    /// Fraction of instructions merged into another instruction's class.
    pub congruent_fraction: f64,
    /// Number of congruence classes (= instructions seen by evolution).
    pub num_classes: usize,
    /// Number of measured experiments (benchmark workload size).
    pub num_experiments: usize,
    /// Per-round measurement accounting: a single round for the
    /// one-shot policy, one entry per measurement round (round 0 = seed
    /// corpus) for the adaptive policies.
    pub rounds: Vec<RoundStats>,
    /// Best full-universe mapping at the end of each round, parallel to
    /// [`rounds`](Self::rounds) (the final entry equals
    /// [`mapping`](Self::mapping)).
    pub round_mappings: Vec<ThreeLevelMapping>,
    /// The evolutionary algorithm's result on the representative
    /// universe.
    pub evo: EvoResult,
}

impl PipelineResult {
    /// Number of distinct µops of the inferred mapping (paper Table 2).
    pub fn num_distinct_uops(&self) -> usize {
        self.mapping.num_distinct_uops()
    }
}

/// Expands a mapping over the representative universe back to the full
/// universe: every instruction carries its class representative's
/// decomposition.
fn expand_mapping(
    universe: &[InstId],
    partition: &CongruencePartition,
    rep_index: &BTreeMap<InstId, u32>,
    dense: &ThreeLevelMapping,
    num_ports: usize,
) -> ThreeLevelMapping {
    let full_decomp = universe
        .iter()
        .map(|&id| {
            let rep = partition.representative(id);
            dense.decomposition(InstId(rep_index[&rep])).to_vec()
        })
        .collect();
    ThreeLevelMapping::new(num_ports, full_decomp)
}

/// Runs the full PMEvo pipeline on an instruction universe of
/// `num_insts` forms (ids `0..num_insts`) over a machine with
/// `num_ports` ports, measuring through `backend`.
///
/// With the default [`SelectionPolicy::OneShot`] the full §4.1 corpus
/// is measured up front; with a round-based policy the pipeline
/// interleaves measurement and evolution rounds under
/// [`PipelineConfig::budget`] (see [`crate::selection`]). In that mode
/// the paper's pair-informed congruence partition is replaced by
/// pairwise-verified seeding (one targeted pair measurement per
/// equally-fast candidate; see `verified_congruence_seed`), skipped
/// when the budget is already spent by the singleton sweep.
///
/// The budget governs the round loop: the singleton sweep is mandatory
/// (inference is undefined without it), so a budget smaller than the
/// universe is exceeded by the seed corpus and no rounds are run.
///
/// # Panics
///
/// Panics if `num_insts == 0`, the backend returns the wrong number of
/// results, or measurements are not positive and finite.
pub fn run(
    num_insts: usize,
    num_ports: usize,
    backend: &mut dyn MeasurementBackend,
    config: &PipelineConfig,
) -> PipelineResult {
    assert!(num_insts > 0, "empty instruction universe");
    if let Some(snapshot) = config
        .checkpoint
        .as_ref()
        .and_then(|c| c.resume_from.as_deref())
    {
        return resume_run(num_insts, num_ports, backend, config, snapshot);
    }
    let universe: Vec<InstId> = (0..num_insts as u32).map(InstId).collect();
    let generator = ExperimentGenerator::new(universe.clone());
    let run_start: BackendStats = backend.stats();
    let wall_start = Instant::now();

    // Stage 1: the singleton sweep — the seed corpus of every policy.
    // Cost is accounted by the backend itself, so deduplicated
    // measurements are not double-counted.
    let singletons = generator.singletons();
    let indiv_tp = backend.measure_batch_checked(&singletons);
    let mut measured: Vec<MeasuredExperiment> = singletons
        .iter()
        .cloned()
        .zip(indiv_tp.iter().copied())
        .map(|(e, t)| MeasuredExperiment::new(e, t))
        .collect();

    if config.selection.is_adaptive() {
        return run_adaptive_pipeline(
            num_ports, &universe, measured, &indiv_tp, backend, config, run_start, wall_start,
        );
    }

    // --- One-shot path (paper Figure 5). ---
    // Stage 2: measure the full pair corpus.
    let mut extra = generator.pairs(&indiv_tp);
    if config.extra_triples > 0 {
        extra.extend(generator.triples(config.extra_triples, config.evo.seed ^ 0x7319));
    }
    let extra_tp = backend.measure_batch_checked(&extra);
    let bench_stats = backend.stats().since(&run_start);
    for (e, t) in extra.into_iter().zip(extra_tp) {
        measured.push(MeasuredExperiment::new(e, t));
    }
    let num_experiments = measured.len();

    // Stage 3: congruence filtering.
    let infer_start = Instant::now();
    let partition = if config.congruence_filtering {
        CongruencePartition::compute(&universe, &measured, config.epsilon)
    } else {
        CongruencePartition::identity(&universe)
    };
    let reps = partition.representatives().to_vec();
    let rep_index: BTreeMap<InstId, u32> = reps
        .iter()
        .enumerate()
        .map(|(k, &id)| (id, k as u32))
        .collect();

    // Keep only experiments entirely over representatives; remap ids to
    // the compact representative universe 0..k.
    let rep_measured: Vec<MeasuredExperiment> = measured
        .iter()
        .filter(|me| me.experiment.iter().all(|(i, _)| rep_index.contains_key(&i)))
        .map(|me| {
            let exp = me.experiment.map_insts(|i| InstId(rep_index[&i]));
            MeasuredExperiment::new(exp, me.throughput)
        })
        .collect();
    let rep_indiv: Vec<f64> = reps
        .iter()
        .map(|&id| {
            measured
                .iter()
                .find(|me| me.experiment.counts() == [(id, 1)])
                .expect("singleton measured for every representative")
                .throughput
        })
        .collect();

    // Stage 4: evolutionary optimization on the representative universe
    // (one island is the paper's classic loop, bit for bit).
    let mut writer = config.checkpoint.as_ref().map(|cfg| {
        CheckpointWriter::new(
            cfg,
            checkpoint_template(num_insts, num_ports, config, &indiv_tp, &partition),
        )
    });
    // One-shot checkpoints carry the whole corpus and its single round
    // (training error still unknown), so a resume skips all measurement.
    let checkpoint_rounds = vec![RoundStats::from_delta(
        0,
        &bench_stats,
        bench_stats.measurements_performed,
        f64::INFINITY,
    )];
    let evo_result = {
        let mut observe;
        let observer: Option<IslandObserver<'_>> = match writer.as_mut() {
            Some(w) => {
                observe = |state: &EvoState| {
                    w.on_state(&CheckpointEvent {
                        phase: CheckpointPhase::OneShot,
                        evo: Some(state),
                        measured: &measured,
                        rounds: &checkpoint_rounds,
                        round_mappings: &[],
                        pool: &[],
                        stream_taken: 0,
                        used: bench_stats,
                    })
                };
                Some(&mut observe)
            }
            None => None,
        };
        evolve_islands(
            reps.len(),
            num_ports,
            &rep_measured,
            &rep_indiv,
            &config.evo,
            &config.islands,
            IslandStart::Fresh(Vec::new()),
            true,
            observer,
        )
        .result
    };

    // Expand the representative mapping back to the full universe.
    let mapping = expand_mapping(&universe, &partition, &rep_index, &evo_result.mapping, num_ports);
    let inference_time = infer_start.elapsed();

    let rounds = vec![RoundStats::from_delta(
        0,
        &bench_stats,
        bench_stats.measurements_performed,
        evo_result.objectives.error,
    )];
    PipelineResult {
        round_mappings: vec![mapping.clone()],
        mapping,
        benchmarking_time: bench_stats.measurement_time,
        inference_time,
        measurements_performed: bench_stats.measurements_performed,
        congruent_fraction: partition.merged_fraction(),
        num_classes: partition.num_classes(),
        num_experiments,
        rounds,
        evo: evo_result,
    }
}

/// Pairwise-verified congruence seeding for budgeted runs: forms with
/// ε-equal singleton throughput are merge *candidates*; each candidate
/// is merged into its group's leader only after the leader–candidate
/// pair is measured and its throughput equals the sum of the two
/// singleton throughputs (within ε). Identical decompositions always
/// pass this check (doubling every µop mass exactly doubles the
/// bottleneck), while port-disjoint forms that happen to be equally
/// fast overlap when paired, fall short of the sum, and stay separate.
///
/// The check is one-directional: two *different* decompositions that
/// fully conflict through this one pair (e.g. `[{0}]` against
/// `[{0}, {1}]`) can still merge — congruence here, as in the paper, is
/// relative to the measured experiments, and a single pair is a coarser
/// witness than the full corpus. What the budget buys is `O(n)`
/// verification measurements instead of the `O(n²)` corpus — at most
/// `max_pairs` of them when the budget has less room left. Returns the
/// partition plus every verification pair measured, so rejected pairs
/// join the training seed and nothing is measured twice.
fn verified_congruence_seed(
    universe: &[InstId],
    indiv_tp: &[f64],
    backend: &mut dyn MeasurementBackend,
    epsilon: f64,
    max_pairs: Option<u64>,
) -> (CongruencePartition, Vec<MeasuredExperiment>) {
    let mut leaders: Vec<usize> = Vec::new();
    let mut candidates: Vec<(usize, usize)> = Vec::new(); // (form, leader)
    for i in 0..universe.len() {
        match leaders
            .iter()
            .copied()
            .find(|&l| throughput_close(indiv_tp[l], indiv_tp[i], epsilon))
        {
            Some(l) => candidates.push((i, l)),
            None => leaders.push(i),
        }
    }
    // An unverified candidate stays unmerged — the safe direction — so
    // a tight budget truncates verification instead of overshooting.
    if let Some(max) = max_pairs {
        candidates.truncate(usize::try_from(max).unwrap_or(usize::MAX));
    }
    let pairs: Vec<Experiment> = candidates
        .iter()
        .map(|&(i, l)| Experiment::pair(universe[l], 1, universe[i], 1))
        .collect();
    let pair_tp = if pairs.is_empty() {
        Vec::new()
    } else {
        backend.measure_batch_checked(&pairs)
    };
    let mut repr: BTreeMap<InstId, InstId> = BTreeMap::new();
    let mut verification = Vec::with_capacity(pairs.len());
    for ((&(i, l), e), &t) in candidates.iter().zip(&pairs).zip(&pair_tp) {
        if throughput_close(t, indiv_tp[l] + indiv_tp[i], epsilon) {
            repr.insert(universe[i], universe[l]);
        }
        verification.push(MeasuredExperiment::new(e.clone(), t));
    }
    (
        CongruencePartition::from_representatives(universe, repr),
        verification,
    )
}

/// The round-based pipeline: pairwise-verified congruence seeding, then
/// the interleaved measure→evolve loop of [`crate::selection`].
#[allow(clippy::too_many_arguments)]
fn run_adaptive_pipeline(
    num_ports: usize,
    universe: &[InstId],
    measured_singletons: Vec<MeasuredExperiment>,
    indiv_tp: &[f64],
    backend: &mut dyn MeasurementBackend,
    config: &PipelineConfig,
    run_start: BackendStats,
    wall_start: Instant,
) -> PipelineResult {
    // The paper's partition needs the full pair corpus — exactly what
    // the budget avoids — and merging from singleton throughputs alone
    // would conflate port-disjoint forms. Verified seeding buys the
    // class structure with one targeted pair measurement per candidate,
    // clamped to whatever the mandatory singleton sweep left of the
    // budget (like the round loop clamps its top-k submissions).
    let seed_used = backend.stats().since(&run_start);
    let seeding_affordable = !config.budget.is_exhausted(&seed_used);
    let (partition, verification) = if config.congruence_filtering && seeding_affordable {
        verified_congruence_seed(
            universe,
            indiv_tp,
            backend,
            config.epsilon,
            config.budget.remaining_measurements(&seed_used),
        )
    } else {
        (CongruencePartition::identity(universe), Vec::new())
    };
    let reps = partition.representatives().to_vec();
    let rep_index: BTreeMap<InstId, u32> = reps
        .iter()
        .enumerate()
        .map(|(k, &id)| (id, k as u32))
        .collect();
    let rep_indiv: Vec<f64> = reps.iter().map(|&id| indiv_tp[id.index()]).collect();
    // The training seed: singleton sweep plus the verification pairs,
    // restricted to experiments entirely over representatives (a merged
    // candidate's measurements are paid for but train nothing — its
    // representative carries the class).
    let seed_measured: Vec<MeasuredExperiment> = measured_singletons
        .into_iter()
        .chain(verification)
        .filter(|me| me.experiment.iter().all(|(i, _)| rep_index.contains_key(&i)))
        .collect();

    let mut writer = config.checkpoint.as_ref().map(|cfg| {
        CheckpointWriter::new(
            cfg,
            checkpoint_template(universe.len(), num_ports, config, indiv_tp, &partition),
        )
    });
    let ctx = AdaptiveContext {
        islands: config.islands,
        hook: writer.as_mut().map(|w| w as &mut dyn CheckpointHook),
        resume: None,
        prior: BackendStats::default(),
    };
    let outcome = run_adaptive_with(
        &reps,
        num_ports,
        &rep_indiv,
        seed_measured,
        backend,
        config.selection,
        &config.budget,
        &config.adaptive,
        &config.evo,
        &run_start,
        ctx,
    );

    let bench_stats = backend.stats().since(&run_start);
    let mapping = expand_mapping(universe, &partition, &rep_index, &outcome.evo.mapping, num_ports);
    let round_mappings: Vec<ThreeLevelMapping> = outcome
        .round_mappings
        .iter()
        .map(|dense| expand_mapping(universe, &partition, &rep_index, dense, num_ports))
        .collect();

    PipelineResult {
        mapping,
        benchmarking_time: bench_stats.measurement_time,
        // Measurement and inference interleave here, so inference time
        // is everything that was not spent measuring.
        inference_time: wall_start
            .elapsed()
            .saturating_sub(bench_stats.measurement_time),
        measurements_performed: bench_stats.measurements_performed,
        congruent_fraction: partition.merged_fraction(),
        num_classes: partition.num_classes(),
        num_experiments: outcome.measured.len(),
        rounds: outcome.rounds,
        round_mappings,
        evo: outcome.evo,
    }
}

/// Continues a checkpointed run. Nothing is re-measured: the corpus,
/// singleton throughputs and congruence classes all come from the
/// artifact, and budget accounting starts from the checkpoint's
/// [`SessionCheckpoint::used`]. The resumed run's result is
/// bit-identical to the uninterrupted run's (up to wall-clock timings).
///
/// # Panics
///
/// Panics when the checkpoint's header disagrees with the current
/// configuration (universe size, port count, seed, islands, population
/// size, selection policy, or budget).
fn resume_run(
    num_insts: usize,
    num_ports: usize,
    backend: &mut dyn MeasurementBackend,
    config: &PipelineConfig,
    snapshot: &SessionCheckpoint,
) -> PipelineResult {
    assert_eq!(snapshot.num_insts, num_insts, "checkpoint instruction-universe mismatch");
    assert_eq!(snapshot.num_ports, num_ports, "checkpoint port-count mismatch");
    assert_eq!(snapshot.seed, config.evo.seed, "checkpoint seed mismatch");
    assert_eq!(snapshot.islands, config.islands.count, "checkpoint island-count mismatch");
    assert_eq!(
        snapshot.population_size as usize, config.evo.population_size,
        "checkpoint population-size mismatch"
    );
    assert_eq!(snapshot.selection, config.selection, "checkpoint selection-policy mismatch");
    assert_eq!(snapshot.budget, config.budget, "checkpoint budget mismatch");

    let universe: Vec<InstId> = (0..num_insts as u32).map(InstId).collect();
    let run_start: BackendStats = backend.stats();
    let wall_start = Instant::now();
    let prior = snapshot.used;

    // Reconstruct the congruence partition from the stored class map.
    let repr: BTreeMap<InstId, InstId> = snapshot
        .rep_of
        .iter()
        .enumerate()
        .filter(|&(i, &r)| r != i as u32)
        .map(|(i, &r)| (InstId(i as u32), InstId(r)))
        .collect();
    let partition = CongruencePartition::from_representatives(&universe, repr);
    let reps = partition.representatives().to_vec();
    let rep_index: BTreeMap<InstId, u32> = reps
        .iter()
        .enumerate()
        .map(|(k, &id)| (id, k as u32))
        .collect();
    let rep_indiv: Vec<f64> = reps
        .iter()
        .map(|&id| snapshot.indiv_tp[id.index()])
        .collect();

    // Keep checkpointing the continued run through the same header.
    let mut writer = config.checkpoint.as_ref().map(|cfg| {
        let mut template = snapshot.clone();
        template.used = BackendStats::default();
        template.measured = Vec::new();
        template.rounds = Vec::new();
        template.round_mappings = Vec::new();
        template.pool = Vec::new();
        template.stream_taken = 0;
        template.phase = CheckpointPhase::OneShot;
        template.evo = None;
        CheckpointWriter::new(cfg, template)
    });

    if snapshot.phase == CheckpointPhase::OneShot {
        // --- One-shot resume: the corpus is fully measured; restart the
        // evolution loop exactly where the checkpoint left it. ---
        let num_experiments = snapshot.measured.len();
        let rep_measured: Vec<MeasuredExperiment> = snapshot
            .measured
            .iter()
            .filter(|me| me.experiment.iter().all(|(i, _)| rep_index.contains_key(&i)))
            .map(|me| {
                let exp = me.experiment.map_insts(|i| InstId(rep_index[&i]));
                MeasuredExperiment::new(exp, me.throughput)
            })
            .collect();
        let state = EvoState::from_checkpoint(
            snapshot
                .evo
                .as_ref()
                .expect("a one-shot checkpoint carries evolution state"),
        );
        let evo_result = {
            let mut observe;
            let observer: Option<IslandObserver<'_>> = match writer.as_mut() {
                Some(w) => {
                    observe = |state: &EvoState| {
                        w.on_state(&CheckpointEvent {
                            phase: CheckpointPhase::OneShot,
                            evo: Some(state),
                            measured: &snapshot.measured,
                            rounds: &snapshot.rounds,
                            round_mappings: &[],
                            pool: &[],
                            stream_taken: 0,
                            used: prior,
                        })
                    };
                    Some(&mut observe)
                }
                None => None,
            };
            evolve_islands(
                reps.len(),
                num_ports,
                &rep_measured,
                &rep_indiv,
                &config.evo,
                &config.islands,
                IslandStart::Resume(state),
                true,
                observer,
            )
            .result
        };
        let bench_stats = prior.plus(&backend.stats().since(&run_start));
        let mapping =
            expand_mapping(&universe, &partition, &rep_index, &evo_result.mapping, num_ports);
        let rounds = vec![RoundStats::from_delta(
            0,
            &bench_stats,
            bench_stats.measurements_performed,
            evo_result.objectives.error,
        )];
        return PipelineResult {
            round_mappings: vec![mapping.clone()],
            mapping,
            benchmarking_time: bench_stats.measurement_time,
            inference_time: wall_start.elapsed(),
            measurements_performed: bench_stats.measurements_performed,
            congruent_fraction: partition.merged_fraction(),
            num_classes: partition.num_classes(),
            num_experiments,
            rounds,
            evo: evo_result,
        };
    }

    // --- Adaptive resume: re-enter the round loop mid-flight. ---
    let resume = AdaptiveResume {
        phase: snapshot.phase,
        evo: snapshot.evo.clone(),
        pool: snapshot.pool.clone(),
        stream_taken: snapshot.stream_taken,
        rounds: snapshot.rounds.clone(),
        round_mappings: snapshot.round_mappings.clone(),
    };
    let ctx = AdaptiveContext {
        islands: config.islands,
        hook: writer.as_mut().map(|w| w as &mut dyn CheckpointHook),
        resume: Some(resume),
        prior,
    };
    let outcome = run_adaptive_with(
        &reps,
        num_ports,
        &rep_indiv,
        snapshot.measured.clone(),
        backend,
        config.selection,
        &config.budget,
        &config.adaptive,
        &config.evo,
        &run_start,
        ctx,
    );

    let bench_stats = prior.plus(&backend.stats().since(&run_start));
    let mapping = expand_mapping(&universe, &partition, &rep_index, &outcome.evo.mapping, num_ports);
    let round_mappings: Vec<ThreeLevelMapping> = outcome
        .round_mappings
        .iter()
        .map(|dense| expand_mapping(&universe, &partition, &rep_index, dense, num_ports))
        .collect();

    PipelineResult {
        mapping,
        benchmarking_time: bench_stats.measurement_time,
        inference_time: wall_start
            .elapsed()
            .saturating_sub(bench_stats.measurement_time),
        measurements_performed: bench_stats.measurements_performed,
        congruent_fraction: partition.merged_fraction(),
        num_classes: partition.num_classes(),
        num_experiments: outcome.measured.len(),
        rounds: outcome.rounds,
        round_mappings,
        evo: outcome.evo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{CachingBackend, Experiment, ModelBackend, PortSet, UopEntry};

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, PortSet::from_ports(ports))
    }

    /// A 5-instruction ground truth with two congruent pairs.
    fn toy_ground_truth() -> ThreeLevelMapping {
        ThreeLevelMapping::new(
            3,
            vec![
                vec![uop(1, &[0, 1])], // i0
                vec![uop(1, &[0, 1])], // i1 (congruent to i0)
                vec![uop(1, &[2])],    // i2
                vec![uop(1, &[2])],    // i3 (congruent to i2)
                vec![uop(2, &[0])],    // i4
            ],
        )
    }

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            evo: EvoConfig {
                population_size: 60,
                max_generations: 30,
                // Extra patience: with this small budget the search can
                // stall a few generations before escaping a local optimum.
                stall_generations: 12,
                num_threads: 2,
                seed: 7,
                ..EvoConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_recovers_toy_machine_behaviour() {
        let mut backend = ModelBackend::new(toy_ground_truth());
        let result = run(5, 3, &mut backend, &small_config());
        // Congruence: 5 forms -> 3 classes.
        assert_eq!(result.num_classes, 3);
        assert!((result.congruent_fraction - 0.4).abs() < 1e-12);
        // The inferred mapping explains the training data well.
        assert!(
            result.evo.objectives.error < 0.05,
            "pipeline error {}",
            result.evo.objectives.error
        );
        // Expanded mapping covers all 5 instructions and congruent forms
        // share decompositions.
        assert_eq!(result.mapping.num_insts(), 5);
        assert_eq!(
            result.mapping.decomposition(InstId(0)),
            result.mapping.decomposition(InstId(1))
        );
        assert_eq!(
            result.mapping.decomposition(InstId(2)),
            result.mapping.decomposition(InstId(3))
        );
    }

    #[test]
    fn disabled_filtering_keeps_all_classes() {
        let mut cfg = small_config();
        cfg.congruence_filtering = false;
        cfg.evo.max_generations = 5;
        let mut backend = ModelBackend::new(toy_ground_truth());
        let result = run(5, 3, &mut backend, &cfg);
        assert_eq!(result.num_classes, 5);
        assert_eq!(result.congruent_fraction, 0.0);
    }

    #[test]
    fn bookkeeping_is_populated() {
        let mut cfg = small_config();
        cfg.evo.max_generations = 3;
        let mut backend = ModelBackend::new(toy_ground_truth());
        let result = run(5, 3, &mut backend, &cfg);
        assert!(result.num_experiments >= 5 + 10);
        assert_eq!(result.measurements_performed, result.num_experiments as u64);
        assert!(result.num_distinct_uops() >= 1);
        assert!(result.inference_time > Duration::ZERO);
    }

    #[test]
    fn cached_measurements_are_not_billed_again() {
        let mut cfg = small_config();
        cfg.evo.max_generations = 2;
        let mut backend = CachingBackend::new(ModelBackend::new(toy_ground_truth()));
        let first = run(5, 3, &mut backend, &cfg);
        assert_eq!(first.measurements_performed, first.num_experiments as u64);
        // The second run over the same universe hits the cache for every
        // experiment: zero real measurements, zero benchmarking time.
        let second = run(5, 3, &mut backend, &cfg);
        assert_eq!(second.num_experiments, first.num_experiments);
        assert_eq!(second.measurements_performed, 0);
        assert_eq!(second.benchmarking_time, Duration::ZERO);
    }

    /// A backend that always returns one measurement, whatever the batch.
    struct BrokenBackend;

    impl MeasurementBackend for BrokenBackend {
        fn measure_batch(&mut self, _experiments: &[Experiment]) -> Vec<f64> {
            vec![1.0]
        }
        fn name(&self) -> &str {
            "broken"
        }
        fn stats(&self) -> BackendStats {
            BackendStats::default()
        }
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn wrong_measurement_count_panics() {
        run(2, 2, &mut BrokenBackend, &small_config());
    }

    #[test]
    fn adaptive_budget_smaller_than_seed_stops_after_singletons() {
        let mut cfg = small_config();
        cfg.selection = SelectionPolicy::Disagreement { top_k: 2 };
        // Less than the 5 mandatory singletons: the seed sweep runs
        // anyway, but verification pairs and all rounds are skipped.
        cfg.budget = MeasurementBudget::measurements(3);
        let mut backend = ModelBackend::new(toy_ground_truth());
        let result = run(5, 3, &mut backend, &cfg);
        assert_eq!(result.measurements_performed, 5);
        assert_eq!(result.rounds.len(), 1);
        assert_eq!(result.num_experiments, 5);
        // Congruence seeding was skipped → identity partition.
        assert_eq!(result.num_classes, 5);
        assert_eq!(result.congruent_fraction, 0.0);
    }

    #[test]
    fn adaptive_verification_pairs_respect_the_budget() {
        let mut cfg = small_config();
        cfg.selection = SelectionPolicy::Disagreement { top_k: 2 };
        // Room for exactly one verification pair after the 5 singletons.
        cfg.budget = MeasurementBudget::measurements(6);
        let mut backend = ModelBackend::new(toy_ground_truth());
        let result = run(5, 3, &mut backend, &cfg);
        assert_eq!(result.measurements_performed, 6, "budget overshot");
        // Of the two merge candidates (i1→i0, i3→i2) only the first
        // could be verified; the unverified one stays its own class.
        assert_eq!(result.num_classes, 4);
    }

    #[test]
    fn extra_triples_extend_the_training_set() {
        let mut base_cfg = small_config();
        base_cfg.evo.max_generations = 2;
        let mut triple_cfg = base_cfg.clone();
        triple_cfg.extra_triples = 6;
        let base = run(5, 3, &mut ModelBackend::new(toy_ground_truth()), &base_cfg);
        let with_triples = run(5, 3, &mut ModelBackend::new(toy_ground_truth()), &triple_cfg);
        assert_eq!(
            with_triples.num_experiments,
            base.num_experiments + 6,
            "triples must be measured on top of singletons and pairs"
        );
    }
}
