//! Island-model evolution: N subpopulations over one shared fitness
//! pool, with deterministic ring migration.
//!
//! The paper's GA is embarrassingly island-parallel: subpopulations
//! evolve independently and only exchange their best individuals every
//! few generations. This module generalizes [`crate::evolve_resumable`]
//! into that shape while keeping the workspace's bit-identity contract:
//!
//! * **RNG splitting** — island `i` draws from its own `StdRng` stream
//!   seeded with [`island_seed`]`(config.seed, i)`. Island 0's seed *is*
//!   the session seed, so a 1-island run consumes exactly the stream of
//!   the classic single-population loop and reproduces it bit for bit.
//! * **Lockstep generations, one shared pool** — each generation, every
//!   island's children are concatenated into a single
//!   [`FitnessEngine::evaluate_batch_owned`] call. The engine's batch
//!   results are order-deterministic for every worker count, so island
//!   results never depend on thread scheduling.
//! * **Deterministic migration** — every
//!   [`IslandConfig::interval`] generations, each island sends clones of
//!   its [`IslandConfig::migrants`] best individuals (stable
//!   lexicographic `(error, volume, index)` order) to its ring successor
//!   `(i + 1) mod N`, replacing the receiver's worst individuals. All
//!   migrants are chosen from the pre-migration snapshot, so the
//!   exchange is independent of island iteration order.
//!
//! The full loop state lives in [`EvoState`], which converts losslessly
//! to and from [`pmevo_core::checkpoint::EvoCheckpoint`] — the basis of
//! the session checkpoint/resume feature (see [`crate::selection`]).

use crate::evolution::{hill_climb, mutate, recombine, EvoConfig, EvoResult};
use crate::fitness::{scalarize, FitnessEngine, Objectives};
use pmevo_core::checkpoint::{EvoCheckpoint, IslandCheckpoint};
use pmevo_core::{MeasuredExperiment, ThreeLevelMapping};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Island-model topology parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IslandConfig {
    /// Number of islands (1 = the classic single-population loop).
    pub count: u32,
    /// Migrate every this many generations (0 disables migration).
    pub interval: u32,
    /// Individuals each island sends to its ring successor per
    /// migration (clamped to the population size).
    pub migrants: usize,
}

impl Default for IslandConfig {
    fn default() -> Self {
        IslandConfig {
            count: 1,
            interval: 8,
            migrants: 2,
        }
    }
}

/// One island mid-run: its population, the objectives parallel to it,
/// and its private RNG stream.
#[derive(Debug, Clone)]
pub struct Island {
    /// The island's current population.
    pub population: Vec<ThreeLevelMapping>,
    /// Objectives parallel to [`population`](Self::population).
    pub objectives: Vec<Objectives>,
    /// The island's generator stream (split from the session seed via
    /// [`island_seed`]).
    pub rng: StdRng,
}

/// The complete state of the island loop between two generations —
/// everything [`evolve_islands`] needs to continue bit-identically.
#[derive(Debug, Clone)]
pub struct EvoState {
    /// Every island, in ring order.
    pub islands: Vec<Island>,
    /// Generations completed so far.
    pub generations: u32,
    /// Best `D_avg` across all islands per completed generation.
    pub history: Vec<f64>,
    /// Best `D_avg` seen so far (`+inf` before the first generation).
    pub best_so_far: f64,
    /// Generations without convergence-tolerance improvement.
    pub stall: u32,
}

impl EvoState {
    /// The state as serializable checkpoint rows (RNG as raw xoshiro
    /// words, objectives as `(error, volume)` pairs).
    pub fn to_checkpoint(&self) -> EvoCheckpoint {
        EvoCheckpoint {
            islands: self
                .islands
                .iter()
                .map(|isl| IslandCheckpoint {
                    population: isl.population.clone(),
                    objectives: isl.objectives.iter().map(|o| (o.error, o.volume)).collect(),
                    rng: isl.rng.state(),
                })
                .collect(),
            generations: self.generations,
            history: self.history.clone(),
            best_so_far: self.best_so_far,
            stall: self.stall,
        }
    }

    /// Restores loop state from checkpoint rows; the restored run
    /// continues the original bit for bit.
    pub fn from_checkpoint(cp: &EvoCheckpoint) -> EvoState {
        EvoState {
            islands: cp
                .islands
                .iter()
                .map(|isl| Island {
                    population: isl.population.clone(),
                    objectives: isl
                        .objectives
                        .iter()
                        .map(|&(error, volume)| Objectives { error, volume })
                        .collect(),
                    rng: StdRng::from_state(isl.rng),
                })
                .collect(),
            generations: cp.generations,
            history: cp.history.clone(),
            best_so_far: cp.best_so_far,
            stall: cp.stall,
        }
    }
}

/// How [`evolve_islands`] starts: fresh per-island seed populations
/// (topped up with random samples), or a mid-run [`EvoState`] restored
/// from a checkpoint.
#[derive(Debug, Clone)]
pub enum IslandStart {
    /// Start island `i` from the `i`-th seed population (missing or
    /// empty entries are filled with random samples). The outer vector
    /// may be shorter than the island count, never longer.
    Fresh(Vec<Vec<ThreeLevelMapping>>),
    /// Continue a checkpointed run exactly where it stopped.
    Resume(EvoState),
}

/// An observer's verdict after each generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IslandControl {
    /// Keep evolving.
    Continue,
    /// Stop now (used by the checkpoint writer to simulate a kill; the
    /// returned state resumes via [`IslandStart::Resume`]).
    Halt,
}

/// Per-generation observer: sees the post-generation [`EvoState`] (after
/// any migration) and may halt the run. Must not mutate anything the
/// evolution depends on — it exists for checkpoint writing.
pub type IslandObserver<'a> = &'a mut dyn FnMut(&EvoState) -> IslandControl;

/// Outcome of [`evolve_islands`].
#[derive(Debug, Clone)]
pub struct IslandsEvolution {
    /// The fittest individual across all islands (after local search,
    /// when enabled and the run was not halted).
    pub result: EvoResult,
    /// Final per-island populations, for warm-starting a later segment.
    pub islands: Vec<Island>,
    /// Whether an observer halted the run before convergence; a halted
    /// result is provisional (no local search was applied).
    pub halted: bool,
}

/// The RNG seed of island `island` under session seed `base`.
///
/// Island 0 uses `base` itself — a 1-island run is bit-compatible with
/// the pre-island single-population loop. Later islands mix the island
/// index through a SplitMix64 finalizer so their streams are
/// statistically independent of each other and of the base stream.
pub fn island_seed(base: u64, island: u32) -> u64 {
    if island == 0 {
        return base;
    }
    let mut z = base ^ u64::from(island).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lexicographic `(error, volume, index)` order — the stable fitness
/// order migrants are chosen by.
fn cmp_lex(objectives: &[Objectives], x: usize, y: usize) -> std::cmp::Ordering {
    (objectives[x].error, objectives[x].volume, x)
        .partial_cmp(&(objectives[y].error, objectives[y].volume, y))
        .expect("objectives are finite")
}

/// Ring migration: island `i` sends clones of its `migrants` best to
/// island `(i + 1) mod N`, replacing the receiver's worst individuals.
/// All outgoing sets are snapshotted before any replacement happens, so
/// the result is independent of island iteration order.
fn migrate(islands: &mut [Island], migrants: usize) {
    let n = islands.len();
    let outgoing: Vec<Vec<(ThreeLevelMapping, Objectives)>> = islands
        .iter()
        .map(|isl| {
            let m = migrants.min(isl.population.len());
            let mut order: Vec<usize> = (0..isl.population.len()).collect();
            order.sort_unstable_by(|&x, &y| cmp_lex(&isl.objectives, x, y));
            order
                .iter()
                .take(m)
                .map(|&i| (isl.population[i].clone(), isl.objectives[i]))
                .collect()
        })
        .collect();
    for (src, incoming) in outgoing.into_iter().enumerate() {
        let dst = (src + 1) % n;
        let isl = &mut islands[dst];
        let mut order: Vec<usize> = (0..isl.population.len()).collect();
        order.sort_unstable_by(|&x, &y| cmp_lex(&isl.objectives, x, y));
        // The worst slots are the tail of the ascending order.
        let worst: Vec<usize> = order.iter().rev().take(incoming.len()).copied().collect();
        for (slot, (mapping, obj)) in worst.into_iter().zip(incoming) {
            isl.population[slot] = mapping;
            isl.objectives[slot] = obj;
        }
    }
}

/// Runs the island-model evolutionary algorithm.
///
/// With `islands.count == 1` and a fresh start this is exactly the
/// classic [`crate::evolve_resumable`] loop, bit for bit; more islands
/// trade per-island population size for diversity and migrate on the
/// ring described in the [module documentation](self).
///
/// `observer`, when given, runs after every generation (post-migration)
/// and may halt the run — the checkpoint writer uses this to both
/// persist [`EvoState`] snapshots and simulate process kills in tests.
///
/// # Panics
///
/// Panics if inputs are empty or inconsistent, a fresh seed individual
/// does not match `num_insts`/`num_ports`, a fresh seed population is
/// larger than `config.population_size`, or a resumed state does not
/// have `islands.count` islands of that size.
#[allow(clippy::too_many_arguments)]
pub fn evolve_islands(
    num_insts: usize,
    num_ports: usize,
    experiments: &[MeasuredExperiment],
    indiv_tp: &[f64],
    config: &EvoConfig,
    islands: &IslandConfig,
    start: IslandStart,
    local_search: bool,
    mut observer: Option<IslandObserver<'_>>,
) -> IslandsEvolution {
    assert!(num_insts > 0, "empty instruction universe");
    assert_eq!(indiv_tp.len(), num_insts, "throughput table size mismatch");
    assert!(config.population_size >= 2, "population too small");
    assert!(islands.count >= 1, "need at least one island");
    let n_islands = islands.count as usize;
    let p = config.population_size;

    // One engine per run: experiments are compiled once and the worker
    // threads live across every generation and the final local search.
    let mut engine = FitnessEngine::new(experiments, config.num_threads);

    let mut state = match start {
        IslandStart::Fresh(seeds) => {
            assert!(
                seeds.len() <= n_islands,
                "more seed populations ({}) than islands ({n_islands})",
                seeds.len()
            );
            let mut seeds = seeds.into_iter();
            let mut isl_pops = Vec::with_capacity(n_islands);
            let mut rngs = Vec::with_capacity(n_islands);
            for i in 0..n_islands {
                let mut rng = StdRng::seed_from_u64(island_seed(config.seed, i as u32));
                let population = seeds.next().unwrap_or_default();
                assert!(
                    population.len() <= p,
                    "initial population larger than the configured population size \
                     ({} > {p})",
                    population.len()
                );
                for m in &population {
                    assert_eq!(m.num_insts(), num_insts, "initial individual universe mismatch");
                    assert_eq!(m.num_ports(), num_ports, "initial individual port-count mismatch");
                }
                let mut population = population;
                while population.len() < p {
                    population.push(ThreeLevelMapping::sample_random(
                        &mut rng, num_insts, num_ports, indiv_tp,
                    ));
                }
                isl_pops.push(population);
                rngs.push(rng);
            }
            // One merged batch for every island's initial evaluation.
            let flat: Vec<ThreeLevelMapping> = isl_pops.into_iter().flatten().collect();
            let (flat, objectives) = engine.evaluate_batch_owned(flat);
            let mut flat = flat.into_iter();
            let mut objectives = objectives.into_iter();
            let islands_vec = rngs
                .into_iter()
                .map(|rng| Island {
                    population: flat.by_ref().take(p).collect(),
                    objectives: objectives.by_ref().take(p).collect(),
                    rng,
                })
                .collect();
            EvoState {
                islands: islands_vec,
                generations: 0,
                history: Vec::new(),
                best_so_far: f64::INFINITY,
                stall: 0,
            }
        }
        IslandStart::Resume(state) => {
            assert_eq!(state.islands.len(), n_islands, "resumed island count mismatch");
            for isl in &state.islands {
                assert_eq!(isl.population.len(), p, "resumed population size mismatch");
                assert_eq!(
                    isl.population.len(),
                    isl.objectives.len(),
                    "resumed objectives length mismatch"
                );
                for m in &isl.population {
                    assert_eq!(m.num_insts(), num_insts, "resumed individual universe mismatch");
                    assert_eq!(m.num_ports(), num_ports, "resumed individual port-count mismatch");
                }
            }
            state
        }
    };

    let mut halted = false;
    // Equivalent to the classic `for gen { ...; if stall { break } }`
    // shape, but with the stall check hoisted to the loop head so a
    // checkpoint taken after any generation resumes into the identical
    // control flow.
    while state.generations < config.max_generations {
        if state.stall >= config.stall_generations {
            break;
        }
        // Children: p new individuals per island from random parent
        // pairs, drawn from the island's own stream, evaluated in one
        // merged batch (order-deterministic for every worker count).
        let mut all_children = Vec::with_capacity(p * n_islands);
        for isl in &mut state.islands {
            let mut children = Vec::with_capacity(p);
            while children.len() < p {
                let ia = isl.rng.gen_range(0..p);
                let ib = isl.rng.gen_range(0..p);
                let (mut c1, mut c2) =
                    recombine(&mut isl.rng, &isl.population[ia], &isl.population[ib]);
                mutate(&mut isl.rng, &mut c1, config.mutation_rate);
                mutate(&mut isl.rng, &mut c2, config.mutation_rate);
                children.push(c1);
                if children.len() < p {
                    children.push(c2);
                }
            }
            all_children.extend(children);
        }
        let (all_children, child_objectives) = engine.evaluate_batch_owned(all_children);

        // Pool selection per island: keep the island's p best by
        // scalarized fitness over its own 2p pool.
        let mut children_iter = all_children.into_iter();
        for (k, isl) in state.islands.iter_mut().enumerate() {
            isl.population.extend(children_iter.by_ref().take(p));
            isl.objectives.extend_from_slice(&child_objectives[k * p..(k + 1) * p]);
            let fitness = scalarize(&isl.objectives);
            let mut order: Vec<usize> = (0..isl.population.len()).collect();
            order.sort_by(|&x, &y| {
                fitness[x]
                    .partial_cmp(&fitness[y])
                    .expect("fitness values are finite")
            });
            order.truncate(p);
            let mut new_pop = Vec::with_capacity(p);
            let mut new_obj = Vec::with_capacity(p);
            for idx in order {
                new_pop.push(isl.population[idx].clone());
                new_obj.push(isl.objectives[idx]);
            }
            isl.population = new_pop;
            isl.objectives = new_obj;
        }
        state.generations += 1;

        let gen_best = state
            .islands
            .iter()
            .flat_map(|isl| isl.objectives.iter().map(|o| o.error))
            .fold(f64::INFINITY, f64::min);
        state.history.push(gen_best);
        if gen_best < state.best_so_far - config.convergence_tol {
            state.best_so_far = gen_best;
            state.stall = 0;
        } else {
            state.stall += 1;
        }

        if n_islands > 1
            && islands.migrants > 0
            && islands.interval > 0
            && state.generations % islands.interval == 0
        {
            migrate(&mut state.islands, islands.migrants);
        }

        if let Some(obs) = observer.as_mut() {
            if obs(&state) == IslandControl::Halt {
                halted = true;
                break;
            }
        }
    }

    // Fittest individual across all islands by lexicographic
    // (error, volume), ties resolved by concatenated island order —
    // identical to the classic loop's `min_by` for one island.
    let (best_isl, best_idx) = state
        .islands
        .iter()
        .enumerate()
        .flat_map(|(k, isl)| (0..isl.population.len()).map(move |i| (k, i)))
        .min_by(|&(kx, x), &(ky, y)| {
            let ox = state.islands[kx].objectives[x];
            let oy = state.islands[ky].objectives[y];
            (ox.error, ox.volume)
                .partial_cmp(&(oy.error, oy.volume))
                .expect("objectives are finite")
        })
        .expect("population is non-empty");
    let mut best = state.islands[best_isl].population[best_idx].clone();
    let best_objectives = if local_search && !halted {
        hill_climb(&mut best, &mut engine, config.local_search_passes)
    } else {
        state.islands[best_isl].objectives[best_idx]
    };

    IslandsEvolution {
        result: EvoResult {
            mapping: best,
            objectives: best_objectives,
            generations: state.generations,
            history: state.history,
        },
        islands: state.islands,
        halted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolution::evolve_resumable;
    use pmevo_core::{Experiment, InstId, PortSet, UopEntry};

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, PortSet::from_ports(ports))
    }

    fn toy_problem() -> (Vec<MeasuredExperiment>, Vec<f64>) {
        let gt = ThreeLevelMapping::new(
            3,
            vec![
                vec![uop(1, &[0])],
                vec![uop(1, &[0, 1])],
                vec![uop(1, &[2]), uop(1, &[0, 1])],
            ],
        );
        let ids: Vec<InstId> = (0..3).map(InstId).collect();
        let mut exps = Vec::new();
        for &i in &ids {
            exps.push(Experiment::singleton(i));
        }
        for a in 0..3usize {
            for b in (a + 1)..3 {
                exps.push(Experiment::pair(ids[a], 1, ids[b], 1));
                exps.push(Experiment::pair(ids[a], 2, ids[b], 1));
            }
        }
        let measured = exps
            .into_iter()
            .map(|e| {
                let t = gt.throughput(&e);
                MeasuredExperiment::new(e, t)
            })
            .collect();
        let indiv = (0..3)
            .map(|i| gt.throughput(&Experiment::singleton(InstId(i))))
            .collect();
        (measured, indiv)
    }

    fn config(seed: u64, threads: usize) -> EvoConfig {
        EvoConfig {
            population_size: 16,
            max_generations: 10,
            num_threads: threads,
            seed,
            ..EvoConfig::default()
        }
    }

    #[test]
    fn island_zero_seed_is_the_session_seed() {
        assert_eq!(island_seed(0x90AD, 0), 0x90AD);
        assert_ne!(island_seed(0x90AD, 1), 0x90AD);
        assert_ne!(island_seed(0x90AD, 1), island_seed(0x90AD, 2));
    }

    #[test]
    fn one_island_is_bitwise_the_classic_loop() {
        let (measured, indiv) = toy_problem();
        let cfg = config(21, 2);
        let classic = evolve_resumable(3, 3, &measured, &indiv, &cfg, Vec::new(), true);
        let island = evolve_islands(
            3,
            3,
            &measured,
            &indiv,
            &cfg,
            &IslandConfig::default(),
            IslandStart::Fresh(Vec::new()),
            true,
            None,
        );
        assert_eq!(classic.result.mapping, island.result.mapping);
        assert_eq!(classic.result.history, island.result.history);
        assert_eq!(classic.population, island.islands[0].population);
        assert!(!island.halted);
    }

    #[test]
    fn multi_island_is_worker_count_invariant() {
        let (measured, indiv) = toy_problem();
        let islands = IslandConfig { count: 3, interval: 2, migrants: 2 };
        let run = |threads: usize| {
            evolve_islands(
                3,
                3,
                &measured,
                &indiv,
                &config(5, threads),
                &islands,
                IslandStart::Fresh(Vec::new()),
                true,
                None,
            )
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a.result.mapping, b.result.mapping);
        assert_eq!(a.result.history, b.result.history);
        for (x, y) in a.islands.iter().zip(&b.islands) {
            assert_eq!(x.population, y.population);
        }
    }

    #[test]
    fn halt_and_resume_reproduces_the_uninterrupted_run() {
        let (measured, indiv) = toy_problem();
        let cfg = config(9, 2);
        let islands = IslandConfig { count: 2, interval: 3, migrants: 1 };
        let full = evolve_islands(
            3, 3, &measured, &indiv, &cfg, &islands,
            IslandStart::Fresh(Vec::new()), true, None,
        );
        for halt_after in [1u32, 2, 4] {
            let mut snapshot = None;
            let mut hook = |state: &EvoState| {
                if state.generations == halt_after {
                    snapshot = Some(state.to_checkpoint());
                    IslandControl::Halt
                } else {
                    IslandControl::Continue
                }
            };
            let partial = evolve_islands(
                3, 3, &measured, &indiv, &cfg, &islands,
                IslandStart::Fresh(Vec::new()), true, Some(&mut hook),
            );
            assert!(partial.halted);
            let state = EvoState::from_checkpoint(&snapshot.expect("halt fired"));
            let resumed = evolve_islands(
                3, 3, &measured, &indiv, &cfg, &islands,
                IslandStart::Resume(state), true, None,
            );
            assert_eq!(full.result.mapping, resumed.result.mapping);
            assert_eq!(full.result.history, resumed.result.history);
            assert_eq!(full.result.generations, resumed.result.generations);
            for (x, y) in full.islands.iter().zip(&resumed.islands) {
                assert_eq!(x.population, y.population);
                assert_eq!(x.rng.state(), y.rng.state());
            }
        }
    }

    #[test]
    #[should_panic(expected = "initial population larger than the configured population size")]
    fn oversized_seed_population_is_rejected() {
        let (measured, indiv) = toy_problem();
        let cfg = config(1, 1);
        let seed_pop: Vec<ThreeLevelMapping> = std::iter::repeat_with(|| {
            ThreeLevelMapping::new(3, vec![vec![uop(1, &[0])]; 3])
        })
        .take(cfg.population_size + 1)
        .collect();
        evolve_islands(
            3,
            3,
            &measured,
            &indiv,
            &cfg,
            &IslandConfig::default(),
            IslandStart::Fresh(vec![seed_pop]),
            false,
            None,
        );
    }
}
