//! [`InferenceAlgorithm`] implementation for the PMEvo pipeline, so the
//! evolutionary approach plugs into the session API next to the
//! baseline algorithms of `pmevo-baselines`.

use crate::pipeline::{run, PipelineConfig};
use pmevo_core::{InferenceAlgorithm, InferredMapping, MeasurementBackend};

/// The paper's inference pipeline (Figure 5) as an
/// [`InferenceAlgorithm`]: experiment generation, measurement,
/// congruence filtering, evolution and local search.
///
/// # Example
///
/// ```
/// use pmevo_core::{InferenceAlgorithm, ModelBackend};
/// use pmevo_core::{PortSet, ThreeLevelMapping, UopEntry};
/// use pmevo_evo::{EvoConfig, PipelineConfig, PmEvoAlgorithm};
///
/// let gt = ThreeLevelMapping::new(2, vec![
///     vec![UopEntry::new(1, PortSet::from_ports(&[0]))],
///     vec![UopEntry::new(1, PortSet::from_ports(&[0, 1]))],
/// ]);
/// let algorithm = PmEvoAlgorithm::new(PipelineConfig {
///     evo: EvoConfig { population_size: 30, max_generations: 5, seed: 1, ..EvoConfig::default() },
///     ..PipelineConfig::default()
/// });
/// let inferred = algorithm.infer(2, 2, &mut ModelBackend::new(gt));
/// assert_eq!(inferred.mapping.num_insts(), 2);
/// assert_eq!(inferred.algorithm, "PMEvo");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PmEvoAlgorithm {
    /// The pipeline configuration the algorithm runs with.
    pub config: PipelineConfig,
}

impl PmEvoAlgorithm {
    /// Creates the algorithm with an explicit pipeline configuration.
    pub fn new(config: PipelineConfig) -> Self {
        PmEvoAlgorithm { config }
    }

    /// The default configuration with the given evolution seed — what a
    /// session runs when no algorithm is configured explicitly.
    pub fn with_seed(seed: u64) -> Self {
        let mut config = PipelineConfig::default();
        config.evo.seed = seed;
        PmEvoAlgorithm { config }
    }

    /// [`with_seed`](Self::with_seed) plus an experiment-selection
    /// policy and measurement budget — what a session runs when
    /// `.selection(..)` / `.budget(..)` are configured.
    pub fn with_selection(
        seed: u64,
        selection: pmevo_core::SelectionPolicy,
        budget: pmevo_core::MeasurementBudget,
    ) -> Self {
        let mut algorithm = Self::with_seed(seed);
        algorithm.config.selection = selection;
        algorithm.config.budget = budget;
        algorithm
    }
}

impl InferenceAlgorithm for PmEvoAlgorithm {
    fn name(&self) -> &str {
        "PMEvo"
    }

    fn infer(
        &self,
        num_insts: usize,
        num_ports: usize,
        backend: &mut dyn MeasurementBackend,
    ) -> InferredMapping {
        let result = run(num_insts, num_ports, backend, &self.config);
        InferredMapping {
            algorithm: self.name().to_owned(),
            mapping: result.mapping,
            num_experiments: result.num_experiments,
            measurements_performed: result.measurements_performed,
            benchmarking_time: result.benchmarking_time,
            inference_time: result.inference_time,
            congruent_fraction: result.congruent_fraction,
            num_classes: result.num_classes,
            training_error: Some(result.evo.objectives.error),
            rounds: result.rounds,
            round_mappings: result.round_mappings,
        }
    }

    fn set_worker_threads(&mut self, threads: usize) {
        self.config.evo.num_threads = threads.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EvoConfig;
    use pmevo_core::{ModelBackend, PortSet, ThreeLevelMapping, UopEntry};

    fn gt() -> ThreeLevelMapping {
        ThreeLevelMapping::new(
            3,
            vec![
                vec![UopEntry::new(1, PortSet::from_ports(&[0]))],
                vec![UopEntry::new(1, PortSet::from_ports(&[0, 1]))],
                vec![UopEntry::new(2, PortSet::from_ports(&[2]))],
            ],
        )
    }

    #[test]
    fn infer_matches_pipeline_run() {
        let algorithm = PmEvoAlgorithm::new(PipelineConfig {
            evo: EvoConfig {
                population_size: 40,
                max_generations: 10,
                num_threads: 2,
                seed: 5,
                ..EvoConfig::default()
            },
            ..PipelineConfig::default()
        });
        let inferred = algorithm.infer(3, 3, &mut ModelBackend::new(gt()));
        let direct = run(3, 3, &mut ModelBackend::new(gt()), &algorithm.config);
        assert_eq!(inferred.mapping, direct.mapping);
        assert_eq!(inferred.num_experiments, direct.num_experiments);
        assert_eq!(inferred.training_error, Some(direct.evo.objectives.error));
        assert_eq!(inferred.num_distinct_uops(), direct.num_distinct_uops());
    }

    #[test]
    fn worker_thread_cap_does_not_change_results() {
        let mut a = PmEvoAlgorithm::with_seed(9);
        a.config.evo.population_size = 40;
        a.config.evo.max_generations = 8;
        let mut b = a.clone();
        a.set_worker_threads(1);
        b.set_worker_threads(4);
        let ra = a.infer(3, 3, &mut ModelBackend::new(gt()));
        let rb = b.infer(3, 3, &mut ModelBackend::new(gt()));
        assert_eq!(ra.mapping, rb.mapping);
        assert_eq!(ra.training_error, rb.training_error);
    }
}
