//! Behavioural validation of inferred mappings against a reference.
//!
//! Port mappings are not uniquely identified by throughputs (paper
//! §4.4): structurally different mappings can be observationally
//! equivalent. Validation therefore compares *predictions*, per
//! instruction and on a probe set, instead of graph structure. On
//! simulated platforms the reference is the hidden ground truth; on
//! real hardware it can be a published mapping (e.g. uops.info).

use pmevo_core::{Experiment, InstId, ThreeLevelMapping, ThroughputSolver};

/// Outcome of validating an inferred mapping against a reference.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Relative throughput difference per instruction (singleton
    /// experiments), indexed by instruction id.
    pub per_inst: Vec<f64>,
    /// Mean relative difference over the probe experiments.
    pub probe_disagreement: f64,
    /// The `k` instructions with the largest singleton disagreement,
    /// worst first.
    pub worst: Vec<(InstId, f64)>,
}

impl ValidationReport {
    /// Mean singleton disagreement.
    pub fn mean_singleton_disagreement(&self) -> f64 {
        self.per_inst.iter().sum::<f64>() / self.per_inst.len().max(1) as f64
    }

    /// Fraction of instructions whose singleton throughput matches the
    /// reference within `tol` (relative).
    pub fn fraction_matching(&self, tol: f64) -> f64 {
        let ok = self.per_inst.iter().filter(|&&d| d <= tol).count();
        ok as f64 / self.per_inst.len().max(1) as f64
    }
}

/// Validates `inferred` against `reference` on singleton experiments
/// and the given probe set.
///
/// # Panics
///
/// Panics if the mappings cover different instruction counts or the
/// probe set references instructions outside them.
pub fn validate(
    inferred: &ThreeLevelMapping,
    reference: &ThreeLevelMapping,
    probes: &[Experiment],
    worst_k: usize,
) -> ValidationReport {
    assert_eq!(
        inferred.num_insts(),
        reference.num_insts(),
        "mapping universes differ"
    );
    // One solver for the whole report: probe sets can be large, and the
    // reused scratch keeps every comparison allocation-free.
    let mut solver = ThroughputSolver::new();
    let per_inst: Vec<f64> = (0..inferred.num_insts())
        .map(|i| {
            let e = Experiment::singleton(InstId(i as u32));
            let a = solver.mapping_throughput(inferred, &e);
            let b = solver.mapping_throughput(reference, &e);
            (a - b).abs() / a.max(b).max(1e-12)
        })
        .collect();

    let probe_disagreement = if probes.is_empty() {
        0.0
    } else {
        probes
            .iter()
            .map(|e| {
                let a = solver.mapping_throughput(inferred, e);
                let b = solver.mapping_throughput(reference, e);
                (a - b).abs() / a.max(b).max(1e-12)
            })
            .sum::<f64>()
            / probes.len() as f64
    };

    let mut ranked: Vec<(InstId, f64)> = per_inst
        .iter()
        .enumerate()
        .map(|(i, &d)| (InstId(i as u32), d))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite disagreements"));
    ranked.truncate(worst_k);

    ValidationReport {
        per_inst,
        probe_disagreement,
        worst: ranked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{PortSet, UopEntry};

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, PortSet::from_ports(ports))
    }

    #[test]
    fn identical_mappings_validate_perfectly() {
        let m = ThreeLevelMapping::new(
            2,
            vec![vec![uop(1, &[0])], vec![uop(2, &[0, 1])]],
        );
        let probes = vec![Experiment::pair(InstId(0), 1, InstId(1), 1)];
        let r = validate(&m, &m, &probes, 2);
        assert_eq!(r.mean_singleton_disagreement(), 0.0);
        assert_eq!(r.probe_disagreement, 0.0);
        assert_eq!(r.fraction_matching(0.0), 1.0);
    }

    #[test]
    fn structurally_different_but_equivalent_mappings_agree() {
        // i0 as one µop on {0,1} vs two half-width µops on {0} and {1}:
        // different structure, same singleton throughput (0.5 vs 1+1...).
        // Use a genuinely equivalent pair instead: {0,1} vs {1,0}.
        let a = ThreeLevelMapping::new(2, vec![vec![uop(1, &[0, 1])]]);
        let b = ThreeLevelMapping::new(2, vec![vec![uop(1, &[1, 0])]]);
        let r = validate(&a, &b, &[], 1);
        assert_eq!(r.mean_singleton_disagreement(), 0.0);
    }

    #[test]
    fn worst_offenders_are_ranked() {
        let inferred = ThreeLevelMapping::new(
            2,
            vec![vec![uop(1, &[0])], vec![uop(4, &[0])]],
        );
        let reference = ThreeLevelMapping::new(
            2,
            vec![vec![uop(1, &[0])], vec![uop(1, &[0])]],
        );
        let r = validate(&inferred, &reference, &[], 2);
        assert_eq!(r.worst[0].0, InstId(1));
        assert!((r.worst[0].1 - 0.75).abs() < 1e-12); // |4-1|/4
        assert_eq!(r.worst[1].1, 0.0);
        assert_eq!(r.fraction_matching(0.1), 0.5);
    }

    #[test]
    #[should_panic(expected = "universes differ")]
    fn mismatched_universes_panic() {
        let a = ThreeLevelMapping::new(1, vec![vec![uop(1, &[0])]]);
        let b = ThreeLevelMapping::new(1, vec![]);
        validate(&a, &b, &[], 1);
    }
}
