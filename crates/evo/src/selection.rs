//! Adaptive, budget-aware experiment selection — the round-based
//! alternative to measuring the full §4.1 corpus up front.
//!
//! On real machines the experiment corpus dominates PMEvo's cost (paper
//! Table 2 reports tens of hours of benchmarking time). This module
//! turns the fixed corpus into an online loop driven by *population
//! disagreement*: experiments whose predicted throughput the current
//! evolutionary population cannot agree on are exactly the experiments
//! whose measurement will discriminate between the surviving hypotheses.
//!
//! Each round:
//!
//! 1. **evolve** a few generations on everything measured so far
//!    (warm-started from the previous round's population,
//!    [`evolve_resumable`](crate::evolution::evolve_resumable));
//! 2. **score** a bounded pool of unmeasured candidates — pulled lazily
//!    from [`ExperimentGenerator::candidates`] — by the variance of
//!    their predicted throughput across the fittest population members
//!    (the [`CompiledExperiments`]/[`ThroughputSolver`] batch path, so
//!    scoring allocates nothing per candidate after warm-up);
//! 3. **submit** the `top_k` most contested candidates to the
//!    [`MeasurementBackend`], unless the [`MeasurementBudget`] is
//!    exhausted.
//!
//! The loop is bit-deterministic: scoring is single-pass in fixed order,
//! evolution is thread-count-independent by contract, and measurement
//! backends derive noise per experiment — so results do not depend on
//! worker threads or backend batch chunking (enforced by
//! `tests/proptest_selection.rs`).
//!
//! # Worked example
//!
//! Infer a 4-instruction toy machine under a 16-measurement budget,
//! through the full pipeline (the usual entry point — it handles the
//! singleton seed corpus and congruence filtering):
//!
//! ```
//! use pmevo_core::{MeasurementBudget, ModelBackend, SelectionPolicy};
//! use pmevo_core::{PortSet, ThreeLevelMapping, UopEntry};
//! use pmevo_evo::{run, EvoConfig, PipelineConfig};
//!
//! let uop = |n, ports: &[usize]| UopEntry::new(n, PortSet::from_ports(ports));
//! let ground_truth = ThreeLevelMapping::new(3, vec![
//!     vec![uop(1, &[0])],
//!     vec![uop(1, &[0, 1])],
//!     vec![uop(2, &[2])],
//!     vec![uop(1, &[1, 2])],
//! ]);
//! let config = PipelineConfig {
//!     selection: SelectionPolicy::Disagreement { top_k: 2 },
//!     budget: MeasurementBudget::measurements(16),
//!     evo: EvoConfig { population_size: 30, max_generations: 10, seed: 3,
//!                      num_threads: 1, ..EvoConfig::default() },
//!     ..PipelineConfig::default()
//! };
//! let result = run(4, 3, &mut ModelBackend::new(ground_truth), &config);
//! // Round 0 seeds 4 singletons plus 1 congruence-verification pair
//! // (i1 and i3 are equally fast but port-disjoint, so the pair
//! // measurement keeps them separate); later rounds submitted ≤ 2
//! // each, and the backend never exceeded the budget.
//! assert!(result.measurements_performed <= 16);
//! assert!(result.rounds.len() > 1);
//! assert_eq!(result.rounds[0].measurements_performed, 5);
//! assert_eq!(result.num_classes, 4);
//! assert_eq!(result.round_mappings.len(), result.rounds.len());
//! ```

use crate::evolution::{EvoConfig, EvoResult};
use crate::expgen::ExperimentGenerator;
use crate::fitness::Objectives;
use crate::islands::{
    evolve_islands, EvoState, Island, IslandConfig, IslandControl, IslandObserver, IslandStart,
};
use pmevo_core::checkpoint::{CheckpointPhase, EvoCheckpoint};
use pmevo_core::{
    BackendStats, CompiledExperiments, Experiment, InstId, MeasuredExperiment,
    MeasurementBackend, MeasurementBudget, RoundStats, SelectionPolicy, ThreeLevelMapping,
    ThroughputSolver,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs of the round-based loop, deliberately separate from the
/// serializable [`SelectionPolicy`]: these shape *how* the loop runs,
/// not *what* is being compared in reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveTuning {
    /// Evolution generations between measurement rounds (the final
    /// round always runs the full [`EvoConfig`] with local search).
    pub gens_per_round: u32,
    /// Population members (fittest first) whose prediction variance
    /// defines the disagreement score.
    pub ensemble: usize,
    /// Candidate-pool size as a multiple of the policy's `top_k`: the
    /// pool is refilled from the streaming generator up to
    /// `pool_factor · top_k` candidates per round, so the full `O(n²)`
    /// corpus is never materialized.
    pub pool_factor: usize,
    /// Hard cap on measurement rounds (a backstop for unlimited
    /// budgets on small universes).
    pub max_rounds: u32,
}

impl Default for AdaptiveTuning {
    fn default() -> Self {
        AdaptiveTuning {
            gens_per_round: 6,
            ensemble: 12,
            pool_factor: 4,
            max_rounds: 256,
        }
    }
}

/// Outcome of one [`run_adaptive`] loop, over the representative
/// universe it was given.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The final evolution result (after the full-configuration polish
    /// run with local search), over the dense universe `0..reps.len()`.
    pub evo: EvoResult,
    /// Every measured experiment — seed corpus plus all submitted
    /// rounds — in original instruction ids, in measurement order.
    pub measured: Vec<MeasuredExperiment>,
    /// Per-round accounting (round 0 is the seed corpus).
    pub rounds: Vec<RoundStats>,
    /// Best dense mapping at the end of each round, parallel to
    /// [`rounds`](Self::rounds).
    pub round_mappings: Vec<ThreeLevelMapping>,
    /// Whether a [`CheckpointHook`] halted the run before it finished.
    /// A halted outcome is valid but provisional: the last round's
    /// mapping is the best individual at halt time, no polish ran, and
    /// the run continues from the written checkpoint, not from this
    /// value.
    pub halted: bool,
}

/// A checkpointable boundary of the round-based loop: everything a
/// [`CheckpointHook`] needs to persist a complete
/// [`pmevo_core::checkpoint::SessionCheckpoint`].
///
/// Events fire after every evolution generation of every round (phase
/// [`CheckpointPhase::Round`]) and once before the final polish (phase
/// [`CheckpointPhase::PrePolish`], with `evo` holding the final round
/// populations the polish warm-starts from).
#[derive(Debug)]
pub struct CheckpointEvent<'a> {
    /// Where in the loop the event fires.
    pub phase: CheckpointPhase,
    /// The live evolution state at the boundary.
    pub evo: Option<&'a EvoState>,
    /// Every measured experiment so far, original ids, measurement order.
    pub measured: &'a [MeasuredExperiment],
    /// Per-round accounting so far (the in-flight round's training error
    /// is still `+inf`).
    pub rounds: &'a [RoundStats],
    /// Best mapping per completed round.
    pub round_mappings: &'a [ThreeLevelMapping],
    /// The unmeasured candidate pool.
    pub pool: &'a [Experiment],
    /// Candidates the streaming generator has yielded so far.
    pub stream_taken: u64,
    /// Budget accounting at the boundary (prior process + this one).
    pub used: BackendStats,
}

/// Observer of [`CheckpointEvent`]s — the seam the pipeline's checkpoint
/// writer plugs into. Returning [`IslandControl::Halt`] stops the run at
/// the boundary, which is how tests and `--halt-after-checkpoints`
/// simulate a process kill.
pub trait CheckpointHook {
    /// Called at every checkpointable boundary.
    fn on_state(&mut self, event: &CheckpointEvent<'_>) -> IslandControl;
}

/// Mid-run state to continue from, decoded from a checkpoint artifact.
/// The restored run is bit-identical to the uninterrupted one.
#[derive(Debug, Clone)]
pub struct AdaptiveResume {
    /// Where the checkpoint was taken.
    pub phase: CheckpointPhase,
    /// The evolution state at the boundary (required for
    /// [`CheckpointPhase::Round`] and [`CheckpointPhase::PrePolish`]).
    pub evo: Option<EvoCheckpoint>,
    /// The candidate pool as checkpointed.
    pub pool: Vec<Experiment>,
    /// Stream cursor: candidates the generator had yielded.
    pub stream_taken: u64,
    /// Per-round accounting as checkpointed.
    pub rounds: Vec<RoundStats>,
    /// Best mapping per completed round as checkpointed.
    pub round_mappings: Vec<ThreeLevelMapping>,
}

/// Extensions threaded through [`run_adaptive_with`]: island topology,
/// the checkpoint observer, resume state, and cross-process budget
/// accounting. [`run_adaptive`] uses the default (one island, no hook).
#[derive(Default)]
pub struct AdaptiveContext<'a> {
    /// Island topology for every evolution segment.
    pub islands: IslandConfig,
    /// Checkpoint observer; `None` disables checkpointing.
    pub hook: Option<&'a mut dyn CheckpointHook>,
    /// Mid-run state to continue from; `None` starts fresh. On resume,
    /// pass the checkpoint's measured corpus as `seed_measured` — the
    /// loop re-measures nothing.
    pub resume: Option<AdaptiveResume>,
    /// Backend accounting carried over from the checkpointing process;
    /// budget decisions use `prior + stats-since-run_start`, so a
    /// resumed run spends exactly the budget the original had left.
    pub prior: BackendStats,
}

/// Derives the per-segment evolution seed: rounds must not replay the
/// identical recombination stream, but the derivation has to be a pure
/// function of (base seed, round).
fn segment_seed(base: u64, round: u32) -> u64 {
    base ^ (u64::from(round).wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs the round-based measure→evolve loop over the representative
/// universe `reps` (original instruction ids; dense position in `reps`
/// is the id evolution sees).
///
/// `seed_measured` is the already-measured seed corpus in original ids —
/// at least one singleton per representative, matching `rep_indiv` —
/// and `run_start` the backend-stats snapshot from before it was
/// measured, so the seed corpus is charged against `budget`.
///
/// The caller (normally [`crate::pipeline::run`]) owns congruence
/// filtering and the expansion of dense mappings back to the full
/// universe.
///
/// # Panics
///
/// Panics if `policy` is not adaptive, inputs are inconsistent, or the
/// backend misbehaves.
#[allow(clippy::too_many_arguments)]
pub fn run_adaptive(
    reps: &[InstId],
    num_ports: usize,
    rep_indiv: &[f64],
    seed_measured: Vec<MeasuredExperiment>,
    backend: &mut dyn MeasurementBackend,
    policy: SelectionPolicy,
    budget: &MeasurementBudget,
    tuning: &AdaptiveTuning,
    evo_config: &EvoConfig,
    run_start: &BackendStats,
) -> AdaptiveOutcome {
    run_adaptive_with(
        reps,
        num_ports,
        rep_indiv,
        seed_measured,
        backend,
        policy,
        budget,
        tuning,
        evo_config,
        run_start,
        AdaptiveContext::default(),
    )
}

/// [`run_adaptive`] with an explicit [`AdaptiveContext`]: island
/// topology, checkpoint observation, and resume-from-checkpoint. With
/// the default context this is exactly [`run_adaptive`], bit for bit.
///
/// On resume, pass the checkpoint's measured corpus as `seed_measured`
/// and the backend-stats snapshot of the *new* process as `run_start`;
/// the checkpoint's `used` accounting goes into
/// [`AdaptiveContext::prior`]. Nothing is re-measured, so the resumed
/// run's budget decisions and final outcome are bit-identical to the
/// uninterrupted run's.
///
/// # Panics
///
/// As [`run_adaptive`]; additionally if the resume state is internally
/// inconsistent (wrong phase, missing evolution state, stream cursor
/// beyond the candidate stream).
#[allow(clippy::too_many_arguments)]
pub fn run_adaptive_with(
    reps: &[InstId],
    num_ports: usize,
    rep_indiv: &[f64],
    seed_measured: Vec<MeasuredExperiment>,
    backend: &mut dyn MeasurementBackend,
    policy: SelectionPolicy,
    budget: &MeasurementBudget,
    tuning: &AdaptiveTuning,
    evo_config: &EvoConfig,
    run_start: &BackendStats,
    ctx: AdaptiveContext<'_>,
) -> AdaptiveOutcome {
    let top_k = policy
        .top_k()
        .expect("run_adaptive needs a round-based selection policy");
    assert!(top_k >= 1, "selection policy must submit at least one experiment per round");
    assert_eq!(rep_indiv.len(), reps.len(), "individual-throughput table size mismatch");
    assert!(!seed_measured.is_empty(), "empty seed corpus");

    let AdaptiveContext {
        islands: islands_cfg,
        mut hook,
        resume,
        prior,
    } = ctx;

    let rep_index: BTreeMap<InstId, u32> = reps
        .iter()
        .enumerate()
        .map(|(k, &id)| (id, k as u32))
        .collect();
    let to_dense = |e: &Experiment| e.map_insts(|i| InstId(rep_index[&i]));

    let mut measured = seed_measured;
    let mut measured_set: BTreeSet<Experiment> =
        measured.iter().map(|me| me.experiment.clone()).collect();
    let mut dense_measured: Vec<MeasuredExperiment> = measured
        .iter()
        .map(|me| MeasuredExperiment::new(to_dense(&me.experiment), me.throughput))
        .collect();

    // The streaming candidate source and its bounded pool.
    let generator = ExperimentGenerator::new(reps.to_vec());
    let mut stream = generator.candidates(rep_indiv);
    let pool_target = top_k.max(1) * tuning.pool_factor.max(1);

    let mut pool: Vec<Experiment>;
    let mut stream_taken: u64;
    let mut rounds: Vec<RoundStats>;
    let mut round_mappings: Vec<ThreeLevelMapping>;
    // Per-island state carried between segments: populations warm-start
    // the next segment (or the polish).
    let mut islands_state: Vec<Island> = Vec::new();
    // A mid-round checkpoint resumes the in-flight evolve segment
    // exactly; later segments start fresh from the carried populations.
    let mut pending_resume: Option<EvoState> = None;
    let mut skip_rounds = false;

    match resume {
        None => {
            pool = Vec::with_capacity(pool_target);
            stream_taken = 0;
            let seed_stats = backend.stats().since(run_start);
            // Training error is overwritten after the first evolve segment.
            rounds = vec![RoundStats::from_delta(
                0,
                &seed_stats,
                seed_stats.measurements_performed,
                f64::INFINITY,
            )];
            round_mappings = Vec::new();
        }
        Some(r) => {
            pool = r.pool;
            stream_taken = r.stream_taken;
            for _ in 0..stream_taken {
                stream
                    .next()
                    .expect("checkpointed stream cursor exceeds the candidate stream");
            }
            rounds = r.rounds;
            assert!(!rounds.is_empty(), "resumed round stats must not be empty");
            round_mappings = r.round_mappings;
            match r.phase {
                CheckpointPhase::Round(_) => {
                    let cp = r.evo.expect("a mid-round checkpoint carries evolution state");
                    pending_resume = Some(EvoState::from_checkpoint(&cp));
                }
                CheckpointPhase::PrePolish => {
                    let cp = r
                        .evo
                        .expect("a pre-polish checkpoint carries the final populations");
                    islands_state = EvoState::from_checkpoint(&cp).islands;
                    skip_rounds = true;
                }
                CheckpointPhase::OneShot => {
                    panic!("one-shot checkpoints resume through the pipeline, not run_adaptive")
                }
            }
        }
    }

    let mut solver = ThroughputSolver::new();
    let mut halted = false;

    // `skip_rounds` is fixed before the loop (a pre-polish resume has no
    // rounds left); each iteration exits via the `break`s below.
    loop {
        if skip_rounds {
            break;
        }
        // --- Evolve a short segment on everything measured so far. ---
        let round = rounds.len() as u32 - 1;
        let segment_config = EvoConfig {
            max_generations: tuning.gens_per_round,
            seed: segment_seed(evo_config.seed, round),
            ..evo_config.clone()
        };
        let start = match pending_resume.take() {
            Some(state) => IslandStart::Resume(state),
            None => IslandStart::Fresh(
                std::mem::take(&mut islands_state)
                    .into_iter()
                    .map(|isl| isl.population)
                    .collect(),
            ),
        };
        // Budget accounting is frozen for the segment: evolution never
        // measures, so a snapshot taken here is exact for every
        // checkpoint event inside the segment.
        let used_now = prior.plus(&backend.stats().since(run_start));
        let segment = {
            let mut obs_fn;
            let observer: Option<IslandObserver<'_>> = match hook.as_mut() {
                Some(h) => {
                    let (measured_ref, rounds_ref, mappings_ref, pool_ref) =
                        (&measured, &rounds, &round_mappings, &pool);
                    obs_fn = move |state: &EvoState| {
                        h.on_state(&CheckpointEvent {
                            phase: CheckpointPhase::Round(round),
                            evo: Some(state),
                            measured: measured_ref,
                            rounds: rounds_ref,
                            round_mappings: mappings_ref,
                            pool: pool_ref,
                            stream_taken,
                            used: used_now,
                        })
                    };
                    Some(&mut obs_fn)
                }
                None => None,
            };
            evolve_islands(
                reps.len(),
                num_ports,
                &dense_measured,
                rep_indiv,
                &segment_config,
                &islands_cfg,
                start,
                false,
                observer,
            )
        };
        let last = rounds.len() - 1;
        rounds[last].training_error = segment.result.objectives.error;
        round_mappings.push(segment.result.mapping.clone());
        islands_state = segment.islands;
        if segment.halted {
            // Simulated kill: return a valid provisional outcome; the
            // run continues from the written checkpoint.
            return AdaptiveOutcome {
                evo: segment.result,
                measured,
                rounds,
                round_mappings,
                halted: true,
            };
        }

        // --- Stop when the budget, the round cap or the candidate
        //     stream is spent. ---
        let used = prior.plus(&backend.stats().since(run_start));
        if budget.is_exhausted(&used) || round >= tuning.max_rounds {
            break;
        }
        while pool.len() < pool_target {
            let Some(candidate) = stream.next() else { break };
            stream_taken += 1;
            if !measured_set.contains(&candidate) {
                pool.push(candidate);
            }
        }
        if pool.is_empty() {
            break;
        }

        // --- Score the pool and pick the round's submissions. ---
        let scores = match policy {
            SelectionPolicy::Disagreement { .. } => {
                // Concatenated island order: for one island this is the
                // classic population order, bit for bit.
                let flat_pop: Vec<&ThreeLevelMapping> = islands_state
                    .iter()
                    .flat_map(|isl| isl.population.iter())
                    .collect();
                let flat_obj: Vec<Objectives> = islands_state
                    .iter()
                    .flat_map(|isl| isl.objectives.iter().copied())
                    .collect();
                disagreement_scores(
                    &pool,
                    &to_dense,
                    &flat_pop,
                    &flat_obj,
                    tuning.ensemble,
                    &mut solver,
                )
            }
            SelectionPolicy::Uniform { .. } => {
                let mut rng = StdRng::seed_from_u64(segment_seed(evo_config.seed, round) ^ 0x5E1E_C7ED);
                pool.iter().map(|_| rng.gen::<f64>()).collect()
            }
            SelectionPolicy::OneShot => unreachable!("checked adaptive above"),
        };
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&x, &y| {
            scores[y]
                .partial_cmp(&scores[x])
                .expect("candidate scores are finite")
                .then(x.cmp(&y))
        });
        let take = budget
            .remaining_measurements(&used)
            .map_or(top_k, |r| top_k.min(usize::try_from(r).unwrap_or(usize::MAX)));
        order.truncate(take);
        if order.is_empty() {
            break;
        }
        order.sort_unstable(); // submit in pool (= generator) order
        let selected: Vec<Experiment> = order.iter().map(|&i| pool[i].clone()).collect();
        let mut keep = vec![true; pool.len()];
        for &i in &order {
            keep[i] = false;
        }
        let mut keep_iter = keep.iter();
        pool.retain(|_| *keep_iter.next().expect("keep mask covers the pool"));

        // --- Measure the round. ---
        let before = backend.stats();
        let throughputs = backend.measure_batch_checked(&selected);
        let delta = backend.stats().since(&before);
        let cumulative = prior
            .plus(&backend.stats().since(run_start))
            .measurements_performed;
        for (e, t) in selected.into_iter().zip(throughputs) {
            measured_set.insert(e.clone());
            dense_measured.push(MeasuredExperiment::new(to_dense(&e), t));
            measured.push(MeasuredExperiment::new(e, t));
        }
        // Training error is overwritten by the next evolve segment.
        rounds.push(RoundStats::from_delta(round + 1, &delta, cumulative, f64::INFINITY));
    }

    // --- Pre-polish checkpoint boundary: the populations the polish
    //     warm-starts from are the last state worth persisting (the
    //     polish itself re-runs deterministically on resume). ---
    if let Some(h) = hook.as_mut() {
        let state = EvoState {
            islands: islands_state.clone(),
            generations: 0,
            history: Vec::new(),
            best_so_far: f64::INFINITY,
            stall: 0,
        };
        let used_now = prior.plus(&backend.stats().since(run_start));
        let control = h.on_state(&CheckpointEvent {
            phase: CheckpointPhase::PrePolish,
            evo: Some(&state),
            measured: &measured,
            rounds: &rounds,
            round_mappings: &round_mappings,
            pool: &pool,
            stream_taken,
            used: used_now,
        });
        if control == IslandControl::Halt {
            halted = true;
        }
    }
    if halted {
        let mapping = round_mappings
            .last()
            .expect("at least one round evolved")
            .clone();
        let objectives = Objectives {
            error: rounds[rounds.len() - 1].training_error,
            volume: mapping.volume(),
        };
        return AdaptiveOutcome {
            evo: EvoResult {
                mapping,
                objectives,
                generations: 0,
                history: Vec::new(),
            },
            measured,
            rounds,
            round_mappings,
            halted: true,
        };
    }

    // --- Final polish: the full evolution configuration with local
    //     search, run twice — once warm-started from the elite half of
    //     each island's final population (the rounds' accumulated search
    //     progress) and once from scratch (the converged elites can trap
    //     recombination in the rounds' local optimum; a fresh start is
    //     what the one-shot pipeline would do on the same corpus). The
    //     lexicographically better result wins, deterministically.
    let warm_seed: Vec<Vec<ThreeLevelMapping>> = islands_state
        .into_iter()
        .map(|isl| {
            let mut pop = isl.population;
            pop.truncate(evo_config.population_size.div_ceil(2));
            pop
        })
        .collect();
    let warm = evolve_islands(
        reps.len(),
        num_ports,
        &dense_measured,
        rep_indiv,
        evo_config,
        &islands_cfg,
        IslandStart::Fresh(warm_seed),
        true,
        None,
    );
    let fresh = evolve_islands(
        reps.len(),
        num_ports,
        &dense_measured,
        rep_indiv,
        evo_config,
        &islands_cfg,
        IslandStart::Fresh(Vec::new()),
        true,
        None,
    );
    let final_run = if fresh
        .result
        .objectives
        .better_than(&warm.result.objectives, 0.0)
    {
        fresh
    } else {
        warm
    };
    let last = rounds.len() - 1;
    rounds[last].training_error = final_run.result.objectives.error;
    *round_mappings.last_mut().expect("at least one round evolved") =
        final_run.result.mapping.clone();

    AdaptiveOutcome {
        evo: final_run.result,
        measured,
        rounds,
        round_mappings,
        halted: false,
    }
}

/// Population-disagreement scores: for every pool candidate, the
/// variance of its predicted throughput across the `ensemble` fittest
/// population members.
///
/// Predictions run through the compiled batch path — the pool is
/// compiled once, each ensemble member's tables are loaded once, and
/// every (member, candidate) prediction reuses the solver scratch.
/// Accumulation order is (candidate-major, member order fixed), so the
/// scores are a pure function of the inputs.
fn disagreement_scores(
    pool: &[Experiment],
    to_dense: &dyn Fn(&Experiment) -> Experiment,
    population: &[&ThreeLevelMapping],
    objectives: &[Objectives],
    ensemble: usize,
    solver: &mut ThroughputSolver,
) -> Vec<f64> {
    // The fittest `ensemble` members by lexicographic (error, volume),
    // index as the deterministic tie-break.
    let mut by_fitness: Vec<usize> = (0..population.len()).collect();
    by_fitness.sort_by(|&x, &y| {
        (objectives[x].error, objectives[x].volume, x)
            .partial_cmp(&(objectives[y].error, objectives[y].volume, y))
            .expect("objectives are finite")
    });
    by_fitness.truncate(ensemble.max(2).min(population.len()));

    // Compile the pool once; the throughput field is a placeholder (the
    // candidates are unmeasured — only predictions are read).
    let placeholder: Vec<MeasuredExperiment> = pool
        .iter()
        .map(|e| MeasuredExperiment::new(to_dense(e), 1.0))
        .collect();
    let compiled = CompiledExperiments::compile(&placeholder);

    let k = by_fitness.len() as f64;
    let mut sums = vec![0.0f64; pool.len()];
    let mut squares = vec![0.0f64; pool.len()];
    for &member in &by_fitness {
        solver.load_mapping(&compiled, population[member]);
        for c in 0..pool.len() {
            let t = solver.predict(&compiled, c);
            sums[c] += t;
            squares[c] += t * t;
        }
    }
    sums.iter()
        .zip(&squares)
        .map(|(&s, &sq)| (sq / k - (s / k) * (s / k)).max(0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{ModelBackend, PortSet, UopEntry};

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, PortSet::from_ports(ports))
    }

    fn toy_ground_truth() -> ThreeLevelMapping {
        ThreeLevelMapping::new(
            3,
            vec![
                vec![uop(1, &[0])],
                vec![uop(1, &[0, 1])],
                vec![uop(2, &[2])],
                vec![uop(1, &[1, 2])],
                vec![uop(1, &[2]), uop(1, &[0])],
            ],
        )
    }

    fn seed_corpus(
        backend: &mut dyn MeasurementBackend,
        n: u32,
    ) -> (Vec<MeasuredExperiment>, Vec<f64>) {
        let singletons: Vec<Experiment> =
            (0..n).map(|i| Experiment::singleton(InstId(i))).collect();
        let tp = backend.measure_batch_checked(&singletons);
        let measured = singletons
            .into_iter()
            .zip(tp.iter().copied())
            .map(|(e, t)| MeasuredExperiment::new(e, t))
            .collect();
        (measured, tp)
    }

    fn small_evo(seed: u64) -> EvoConfig {
        EvoConfig {
            population_size: 24,
            max_generations: 12,
            num_threads: 1,
            seed,
            ..EvoConfig::default()
        }
    }

    #[test]
    fn budget_caps_real_measurements() {
        let mut backend = ModelBackend::new(toy_ground_truth());
        let run_start = backend.stats();
        let reps: Vec<InstId> = (0..5).map(InstId).collect();
        let (seed, tp) = seed_corpus(&mut backend, 5);
        let outcome = run_adaptive(
            &reps,
            3,
            &tp,
            seed,
            &mut backend,
            SelectionPolicy::Disagreement { top_k: 2 },
            &MeasurementBudget::measurements(9),
            &AdaptiveTuning::default(),
            &small_evo(7),
            &run_start,
        );
        let performed = backend.stats().measurements_performed;
        assert!(performed <= 9 + 1, "budget overshot: {performed}");
        assert!(outcome.rounds.len() >= 2);
        assert_eq!(outcome.round_mappings.len(), outcome.rounds.len());
        // Cumulative counts are monotone and end at the backend total.
        for w in outcome.rounds.windows(2) {
            assert!(w[1].cumulative_measurements >= w[0].cumulative_measurements);
            assert_eq!(w[1].round, w[0].round + 1);
        }
        assert_eq!(
            outcome.rounds.last().unwrap().cumulative_measurements,
            performed
        );
        assert_eq!(outcome.measured.len(), performed as usize);
        // Every training error was filled in.
        assert!(outcome.rounds.iter().all(|r| r.training_error.is_finite()));
    }

    #[test]
    fn unlimited_budget_drains_the_candidate_stream() {
        let mut backend = ModelBackend::new(toy_ground_truth());
        let run_start = backend.stats();
        let reps: Vec<InstId> = (0..5).map(InstId).collect();
        let (seed, tp) = seed_corpus(&mut backend, 5);
        let outcome = run_adaptive(
            &reps,
            3,
            &tp,
            seed,
            &mut backend,
            SelectionPolicy::Disagreement { top_k: 4 },
            &MeasurementBudget::UNLIMITED,
            &AdaptiveTuning::default(),
            &EvoConfig {
                population_size: 60,
                max_generations: 40,
                stall_generations: 12,
                num_threads: 2,
                // This toy is seed-sensitive for the one-shot pipeline
                // too; 5 converges (like the pinned pipeline tests).
                seed: 5,
                ..EvoConfig::default()
            },
            &run_start,
        );
        // All pairs of the 5-instruction universe end up measured: the
        // loop stops on stream exhaustion, not on budget.
        let generator = ExperimentGenerator::new(reps);
        let all = generator.pairs(&tp).len() + 5;
        assert_eq!(outcome.measured.len(), all);
        // With everything measured the fit reaches the one-shot quality.
        assert!(
            outcome.evo.objectives.error < 0.05,
            "adaptive error {}",
            outcome.evo.objectives.error
        );
    }

    #[test]
    fn uniform_policy_differs_but_stays_deterministic() {
        let run = |policy| {
            let mut backend = ModelBackend::new(toy_ground_truth());
            let run_start = backend.stats();
            let reps: Vec<InstId> = (0..5).map(InstId).collect();
            let (seed, tp) = seed_corpus(&mut backend, 5);
            run_adaptive(
                &reps,
                3,
                &tp,
                seed,
                &mut backend,
                policy,
                &MeasurementBudget::measurements(11),
                &AdaptiveTuning::default(),
                &small_evo(5),
                &run_start,
            )
        };
        let a = run(SelectionPolicy::Uniform { top_k: 2 });
        let b = run(SelectionPolicy::Uniform { top_k: 2 });
        assert_eq!(a.measured, b.measured);
        assert_eq!(a.evo.mapping, b.evo.mapping);
        let d = run(SelectionPolicy::Disagreement { top_k: 2 });
        // Same budget, different policy: the measured sets diverge.
        assert_ne!(a.measured, d.measured);
    }

    #[test]
    #[should_panic(expected = "round-based selection policy")]
    fn one_shot_policy_is_rejected() {
        let mut backend = ModelBackend::new(toy_ground_truth());
        let run_start = backend.stats();
        let (seed, tp) = seed_corpus(&mut backend, 5);
        run_adaptive(
            &(0..5).map(InstId).collect::<Vec<_>>(),
            3,
            &tp,
            seed,
            &mut backend,
            SelectionPolicy::OneShot,
            &MeasurementBudget::UNLIMITED,
            &AdaptiveTuning::default(),
            &small_evo(1),
            &run_start,
        );
    }
}
