//! Adaptive, budget-aware experiment selection — the round-based
//! alternative to measuring the full §4.1 corpus up front.
//!
//! On real machines the experiment corpus dominates PMEvo's cost (paper
//! Table 2 reports tens of hours of benchmarking time). This module
//! turns the fixed corpus into an online loop driven by *population
//! disagreement*: experiments whose predicted throughput the current
//! evolutionary population cannot agree on are exactly the experiments
//! whose measurement will discriminate between the surviving hypotheses.
//!
//! Each round:
//!
//! 1. **evolve** a few generations on everything measured so far
//!    (warm-started from the previous round's population,
//!    [`evolve_resumable`]);
//! 2. **score** a bounded pool of unmeasured candidates — pulled lazily
//!    from [`ExperimentGenerator::candidates`] — by the variance of
//!    their predicted throughput across the fittest population members
//!    (the [`CompiledExperiments`]/[`ThroughputSolver`] batch path, so
//!    scoring allocates nothing per candidate after warm-up);
//! 3. **submit** the `top_k` most contested candidates to the
//!    [`MeasurementBackend`], unless the [`MeasurementBudget`] is
//!    exhausted.
//!
//! The loop is bit-deterministic: scoring is single-pass in fixed order,
//! evolution is thread-count-independent by contract, and measurement
//! backends derive noise per experiment — so results do not depend on
//! worker threads or backend batch chunking (enforced by
//! `tests/proptest_selection.rs`).
//!
//! # Worked example
//!
//! Infer a 4-instruction toy machine under a 16-measurement budget,
//! through the full pipeline (the usual entry point — it handles the
//! singleton seed corpus and congruence filtering):
//!
//! ```
//! use pmevo_core::{MeasurementBudget, ModelBackend, SelectionPolicy};
//! use pmevo_core::{PortSet, ThreeLevelMapping, UopEntry};
//! use pmevo_evo::{run, EvoConfig, PipelineConfig};
//!
//! let uop = |n, ports: &[usize]| UopEntry::new(n, PortSet::from_ports(ports));
//! let ground_truth = ThreeLevelMapping::new(3, vec![
//!     vec![uop(1, &[0])],
//!     vec![uop(1, &[0, 1])],
//!     vec![uop(2, &[2])],
//!     vec![uop(1, &[1, 2])],
//! ]);
//! let config = PipelineConfig {
//!     selection: SelectionPolicy::Disagreement { top_k: 2 },
//!     budget: MeasurementBudget::measurements(16),
//!     evo: EvoConfig { population_size: 30, max_generations: 10, seed: 3,
//!                      num_threads: 1, ..EvoConfig::default() },
//!     ..PipelineConfig::default()
//! };
//! let result = run(4, 3, &mut ModelBackend::new(ground_truth), &config);
//! // Round 0 seeds 4 singletons plus 1 congruence-verification pair
//! // (i1 and i3 are equally fast but port-disjoint, so the pair
//! // measurement keeps them separate); later rounds submitted ≤ 2
//! // each, and the backend never exceeded the budget.
//! assert!(result.measurements_performed <= 16);
//! assert!(result.rounds.len() > 1);
//! assert_eq!(result.rounds[0].measurements_performed, 5);
//! assert_eq!(result.num_classes, 4);
//! assert_eq!(result.round_mappings.len(), result.rounds.len());
//! ```

use crate::evolution::{evolve_resumable, EvoConfig, EvoResult};
use crate::expgen::ExperimentGenerator;
use crate::fitness::Objectives;
use pmevo_core::{
    BackendStats, CompiledExperiments, Experiment, InstId, MeasuredExperiment,
    MeasurementBackend, MeasurementBudget, RoundStats, SelectionPolicy, ThreeLevelMapping,
    ThroughputSolver,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs of the round-based loop, deliberately separate from the
/// serializable [`SelectionPolicy`]: these shape *how* the loop runs,
/// not *what* is being compared in reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveTuning {
    /// Evolution generations between measurement rounds (the final
    /// round always runs the full [`EvoConfig`] with local search).
    pub gens_per_round: u32,
    /// Population members (fittest first) whose prediction variance
    /// defines the disagreement score.
    pub ensemble: usize,
    /// Candidate-pool size as a multiple of the policy's `top_k`: the
    /// pool is refilled from the streaming generator up to
    /// `pool_factor · top_k` candidates per round, so the full `O(n²)`
    /// corpus is never materialized.
    pub pool_factor: usize,
    /// Hard cap on measurement rounds (a backstop for unlimited
    /// budgets on small universes).
    pub max_rounds: u32,
}

impl Default for AdaptiveTuning {
    fn default() -> Self {
        AdaptiveTuning {
            gens_per_round: 6,
            ensemble: 12,
            pool_factor: 4,
            max_rounds: 256,
        }
    }
}

/// Outcome of one [`run_adaptive`] loop, over the representative
/// universe it was given.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The final evolution result (after the full-configuration polish
    /// run with local search), over the dense universe `0..reps.len()`.
    pub evo: EvoResult,
    /// Every measured experiment — seed corpus plus all submitted
    /// rounds — in original instruction ids, in measurement order.
    pub measured: Vec<MeasuredExperiment>,
    /// Per-round accounting (round 0 is the seed corpus).
    pub rounds: Vec<RoundStats>,
    /// Best dense mapping at the end of each round, parallel to
    /// [`rounds`](Self::rounds).
    pub round_mappings: Vec<ThreeLevelMapping>,
}

/// Derives the per-segment evolution seed: rounds must not replay the
/// identical recombination stream, but the derivation has to be a pure
/// function of (base seed, round).
fn segment_seed(base: u64, round: u32) -> u64 {
    base ^ (u64::from(round).wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs the round-based measure→evolve loop over the representative
/// universe `reps` (original instruction ids; dense position in `reps`
/// is the id evolution sees).
///
/// `seed_measured` is the already-measured seed corpus in original ids —
/// at least one singleton per representative, matching `rep_indiv` —
/// and `run_start` the backend-stats snapshot from before it was
/// measured, so the seed corpus is charged against `budget`.
///
/// The caller (normally [`crate::pipeline::run`]) owns congruence
/// filtering and the expansion of dense mappings back to the full
/// universe.
///
/// # Panics
///
/// Panics if `policy` is not adaptive, inputs are inconsistent, or the
/// backend misbehaves.
#[allow(clippy::too_many_arguments)]
pub fn run_adaptive(
    reps: &[InstId],
    num_ports: usize,
    rep_indiv: &[f64],
    seed_measured: Vec<MeasuredExperiment>,
    backend: &mut dyn MeasurementBackend,
    policy: SelectionPolicy,
    budget: &MeasurementBudget,
    tuning: &AdaptiveTuning,
    evo_config: &EvoConfig,
    run_start: &BackendStats,
) -> AdaptiveOutcome {
    let top_k = policy
        .top_k()
        .expect("run_adaptive needs a round-based selection policy");
    assert!(top_k >= 1, "selection policy must submit at least one experiment per round");
    assert_eq!(rep_indiv.len(), reps.len(), "individual-throughput table size mismatch");
    assert!(!seed_measured.is_empty(), "empty seed corpus");

    let rep_index: BTreeMap<InstId, u32> = reps
        .iter()
        .enumerate()
        .map(|(k, &id)| (id, k as u32))
        .collect();
    let to_dense = |e: &Experiment| e.map_insts(|i| InstId(rep_index[&i]));

    let mut measured = seed_measured;
    let mut measured_set: BTreeSet<Experiment> =
        measured.iter().map(|me| me.experiment.clone()).collect();
    let mut dense_measured: Vec<MeasuredExperiment> = measured
        .iter()
        .map(|me| MeasuredExperiment::new(to_dense(&me.experiment), me.throughput))
        .collect();

    // The streaming candidate source and its bounded pool.
    let generator = ExperimentGenerator::new(reps.to_vec());
    let mut stream = generator.candidates(rep_indiv);
    let pool_target = top_k.max(1) * tuning.pool_factor.max(1);
    let mut pool: Vec<Experiment> = Vec::with_capacity(pool_target);

    let seed_stats = backend.stats().since(run_start);
    // Training error is overwritten after the first evolve segment.
    let mut rounds = vec![RoundStats::from_delta(
        0,
        &seed_stats,
        seed_stats.measurements_performed,
        f64::INFINITY,
    )];
    let mut round_mappings: Vec<ThreeLevelMapping> = Vec::new();
    let mut population: Vec<ThreeLevelMapping> = Vec::new();
    let mut solver = ThroughputSolver::new();

    loop {
        // --- Evolve a short segment on everything measured so far. ---
        let round = rounds.len() as u32 - 1;
        let segment_config = EvoConfig {
            max_generations: tuning.gens_per_round,
            seed: segment_seed(evo_config.seed, round),
            ..evo_config.clone()
        };
        let segment = evolve_resumable(
            reps.len(),
            num_ports,
            &dense_measured,
            rep_indiv,
            &segment_config,
            std::mem::take(&mut population),
            false,
        );
        let last = rounds.len() - 1;
        rounds[last].training_error = segment.result.objectives.error;
        round_mappings.push(segment.result.mapping.clone());
        population = segment.population;
        let objectives = segment.objectives;

        // --- Stop when the budget, the round cap or the candidate
        //     stream is spent. ---
        let used = backend.stats().since(run_start);
        if budget.is_exhausted(&used) || round >= tuning.max_rounds {
            break;
        }
        while pool.len() < pool_target {
            let Some(candidate) = stream.next() else { break };
            if !measured_set.contains(&candidate) {
                pool.push(candidate);
            }
        }
        if pool.is_empty() {
            break;
        }

        // --- Score the pool and pick the round's submissions. ---
        let scores = match policy {
            SelectionPolicy::Disagreement { .. } => disagreement_scores(
                &pool,
                &to_dense,
                &population,
                &objectives,
                tuning.ensemble,
                &mut solver,
            ),
            SelectionPolicy::Uniform { .. } => {
                let mut rng = StdRng::seed_from_u64(segment_seed(evo_config.seed, round) ^ 0x5E1E_C7ED);
                pool.iter().map(|_| rng.gen::<f64>()).collect()
            }
            SelectionPolicy::OneShot => unreachable!("checked adaptive above"),
        };
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&x, &y| {
            scores[y]
                .partial_cmp(&scores[x])
                .expect("candidate scores are finite")
                .then(x.cmp(&y))
        });
        let take = budget
            .remaining_measurements(&used)
            .map_or(top_k, |r| top_k.min(usize::try_from(r).unwrap_or(usize::MAX)));
        order.truncate(take);
        if order.is_empty() {
            break;
        }
        order.sort_unstable(); // submit in pool (= generator) order
        let selected: Vec<Experiment> = order.iter().map(|&i| pool[i].clone()).collect();
        let mut keep = vec![true; pool.len()];
        for &i in &order {
            keep[i] = false;
        }
        let mut keep_iter = keep.iter();
        pool.retain(|_| *keep_iter.next().expect("keep mask covers the pool"));

        // --- Measure the round. ---
        let before = backend.stats();
        let throughputs = backend.measure_batch_checked(&selected);
        let delta = backend.stats().since(&before);
        let cumulative = backend.stats().since(run_start).measurements_performed;
        for (e, t) in selected.into_iter().zip(throughputs) {
            measured_set.insert(e.clone());
            dense_measured.push(MeasuredExperiment::new(to_dense(&e), t));
            measured.push(MeasuredExperiment::new(e, t));
        }
        // Training error is overwritten by the next evolve segment.
        rounds.push(RoundStats::from_delta(round + 1, &delta, cumulative, f64::INFINITY));
    }

    // --- Final polish: the full evolution configuration with local
    //     search, run twice — once warm-started from the elite half of
    //     the last round's population (the rounds' accumulated search
    //     progress) and once from scratch (the converged elites can trap
    //     recombination in the rounds' local optimum; a fresh start is
    //     what the one-shot pipeline would do on the same corpus). The
    //     lexicographically better result wins, deterministically.
    population.truncate(evo_config.population_size.div_ceil(2));
    let warm = evolve_resumable(
        reps.len(),
        num_ports,
        &dense_measured,
        rep_indiv,
        evo_config,
        population,
        true,
    );
    let fresh = evolve_resumable(
        reps.len(),
        num_ports,
        &dense_measured,
        rep_indiv,
        evo_config,
        Vec::new(),
        true,
    );
    let final_run = if fresh
        .result
        .objectives
        .better_than(&warm.result.objectives, 0.0)
    {
        fresh
    } else {
        warm
    };
    let last = rounds.len() - 1;
    rounds[last].training_error = final_run.result.objectives.error;
    *round_mappings.last_mut().expect("at least one round evolved") =
        final_run.result.mapping.clone();

    AdaptiveOutcome {
        evo: final_run.result,
        measured,
        rounds,
        round_mappings,
    }
}

/// Population-disagreement scores: for every pool candidate, the
/// variance of its predicted throughput across the `ensemble` fittest
/// population members.
///
/// Predictions run through the compiled batch path — the pool is
/// compiled once, each ensemble member's tables are loaded once, and
/// every (member, candidate) prediction reuses the solver scratch.
/// Accumulation order is (candidate-major, member order fixed), so the
/// scores are a pure function of the inputs.
fn disagreement_scores(
    pool: &[Experiment],
    to_dense: &dyn Fn(&Experiment) -> Experiment,
    population: &[ThreeLevelMapping],
    objectives: &[Objectives],
    ensemble: usize,
    solver: &mut ThroughputSolver,
) -> Vec<f64> {
    // The fittest `ensemble` members by lexicographic (error, volume),
    // index as the deterministic tie-break.
    let mut by_fitness: Vec<usize> = (0..population.len()).collect();
    by_fitness.sort_by(|&x, &y| {
        (objectives[x].error, objectives[x].volume, x)
            .partial_cmp(&(objectives[y].error, objectives[y].volume, y))
            .expect("objectives are finite")
    });
    by_fitness.truncate(ensemble.max(2).min(population.len()));

    // Compile the pool once; the throughput field is a placeholder (the
    // candidates are unmeasured — only predictions are read).
    let placeholder: Vec<MeasuredExperiment> = pool
        .iter()
        .map(|e| MeasuredExperiment::new(to_dense(e), 1.0))
        .collect();
    let compiled = CompiledExperiments::compile(&placeholder);

    let k = by_fitness.len() as f64;
    let mut sums = vec![0.0f64; pool.len()];
    let mut squares = vec![0.0f64; pool.len()];
    for &member in &by_fitness {
        solver.load_mapping(&compiled, &population[member]);
        for c in 0..pool.len() {
            let t = solver.predict(&compiled, c);
            sums[c] += t;
            squares[c] += t * t;
        }
    }
    sums.iter()
        .zip(&squares)
        .map(|(&s, &sq)| (sq / k - (s / k) * (s / k)).max(0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{ModelBackend, PortSet, UopEntry};

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, PortSet::from_ports(ports))
    }

    fn toy_ground_truth() -> ThreeLevelMapping {
        ThreeLevelMapping::new(
            3,
            vec![
                vec![uop(1, &[0])],
                vec![uop(1, &[0, 1])],
                vec![uop(2, &[2])],
                vec![uop(1, &[1, 2])],
                vec![uop(1, &[2]), uop(1, &[0])],
            ],
        )
    }

    fn seed_corpus(
        backend: &mut dyn MeasurementBackend,
        n: u32,
    ) -> (Vec<MeasuredExperiment>, Vec<f64>) {
        let singletons: Vec<Experiment> =
            (0..n).map(|i| Experiment::singleton(InstId(i))).collect();
        let tp = backend.measure_batch_checked(&singletons);
        let measured = singletons
            .into_iter()
            .zip(tp.iter().copied())
            .map(|(e, t)| MeasuredExperiment::new(e, t))
            .collect();
        (measured, tp)
    }

    fn small_evo(seed: u64) -> EvoConfig {
        EvoConfig {
            population_size: 24,
            max_generations: 12,
            num_threads: 1,
            seed,
            ..EvoConfig::default()
        }
    }

    #[test]
    fn budget_caps_real_measurements() {
        let mut backend = ModelBackend::new(toy_ground_truth());
        let run_start = backend.stats();
        let reps: Vec<InstId> = (0..5).map(InstId).collect();
        let (seed, tp) = seed_corpus(&mut backend, 5);
        let outcome = run_adaptive(
            &reps,
            3,
            &tp,
            seed,
            &mut backend,
            SelectionPolicy::Disagreement { top_k: 2 },
            &MeasurementBudget::measurements(9),
            &AdaptiveTuning::default(),
            &small_evo(7),
            &run_start,
        );
        let performed = backend.stats().measurements_performed;
        assert!(performed <= 9 + 1, "budget overshot: {performed}");
        assert!(outcome.rounds.len() >= 2);
        assert_eq!(outcome.round_mappings.len(), outcome.rounds.len());
        // Cumulative counts are monotone and end at the backend total.
        for w in outcome.rounds.windows(2) {
            assert!(w[1].cumulative_measurements >= w[0].cumulative_measurements);
            assert_eq!(w[1].round, w[0].round + 1);
        }
        assert_eq!(
            outcome.rounds.last().unwrap().cumulative_measurements,
            performed
        );
        assert_eq!(outcome.measured.len(), performed as usize);
        // Every training error was filled in.
        assert!(outcome.rounds.iter().all(|r| r.training_error.is_finite()));
    }

    #[test]
    fn unlimited_budget_drains_the_candidate_stream() {
        let mut backend = ModelBackend::new(toy_ground_truth());
        let run_start = backend.stats();
        let reps: Vec<InstId> = (0..5).map(InstId).collect();
        let (seed, tp) = seed_corpus(&mut backend, 5);
        let outcome = run_adaptive(
            &reps,
            3,
            &tp,
            seed,
            &mut backend,
            SelectionPolicy::Disagreement { top_k: 4 },
            &MeasurementBudget::UNLIMITED,
            &AdaptiveTuning::default(),
            &EvoConfig {
                population_size: 60,
                max_generations: 40,
                stall_generations: 12,
                num_threads: 2,
                // This toy is seed-sensitive for the one-shot pipeline
                // too; 5 converges (like the pinned pipeline tests).
                seed: 5,
                ..EvoConfig::default()
            },
            &run_start,
        );
        // All pairs of the 5-instruction universe end up measured: the
        // loop stops on stream exhaustion, not on budget.
        let generator = ExperimentGenerator::new(reps);
        let all = generator.pairs(&tp).len() + 5;
        assert_eq!(outcome.measured.len(), all);
        // With everything measured the fit reaches the one-shot quality.
        assert!(
            outcome.evo.objectives.error < 0.05,
            "adaptive error {}",
            outcome.evo.objectives.error
        );
    }

    #[test]
    fn uniform_policy_differs_but_stays_deterministic() {
        let run = |policy| {
            let mut backend = ModelBackend::new(toy_ground_truth());
            let run_start = backend.stats();
            let reps: Vec<InstId> = (0..5).map(InstId).collect();
            let (seed, tp) = seed_corpus(&mut backend, 5);
            run_adaptive(
                &reps,
                3,
                &tp,
                seed,
                &mut backend,
                policy,
                &MeasurementBudget::measurements(11),
                &AdaptiveTuning::default(),
                &small_evo(5),
                &run_start,
            )
        };
        let a = run(SelectionPolicy::Uniform { top_k: 2 });
        let b = run(SelectionPolicy::Uniform { top_k: 2 });
        assert_eq!(a.measured, b.measured);
        assert_eq!(a.evo.mapping, b.evo.mapping);
        let d = run(SelectionPolicy::Disagreement { top_k: 2 });
        // Same budget, different policy: the measured sets diverge.
        assert_ne!(a.measured, d.measured);
    }

    #[test]
    #[should_panic(expected = "round-based selection policy")]
    fn one_shot_policy_is_rejected() {
        let mut backend = ModelBackend::new(toy_ground_truth());
        let run_start = backend.stats();
        let (seed, tp) = seed_corpus(&mut backend, 5);
        run_adaptive(
            &(0..5).map(InstId).collect::<Vec<_>>(),
            3,
            &tp,
            seed,
            &mut backend,
            SelectionPolicy::OneShot,
            &MeasurementBudget::UNLIMITED,
            &AdaptiveTuning::default(),
            &small_evo(1),
            &run_start,
        );
    }
}
