//! The PMEvo inference engine (paper §4): experiment generation,
//! congruence filtering, evolutionary optimization and local search.
//!
//! The stages mirror Figure 5 of the paper:
//!
//! ```text
//! ISA ──► ExperimentGenerator ──► (measurement, external) ──►
//!     CongruencePartition ──► evolve() + hill climbing ──► mapping
//! ```
//!
//! [`pipeline::run`] wires all stages against a
//! [`pmevo_core::MeasurementBackend`] and reports the bookkeeping of
//! paper Table 2 (benchmarking time, inference time, congruence ratio,
//! distinct-µop count). [`PmEvoAlgorithm`] packages the pipeline as a
//! [`pmevo_core::InferenceAlgorithm`] for the session API.
//!
//! Measurement itself is either one-shot (the paper's fixed corpus) or
//! round-based under an explicit budget: the [`selection`] module
//! interleaves measure→evolve rounds, submitting only the experiments
//! the current population disagrees on
//! ([`pmevo_core::SelectionPolicy`], [`pmevo_core::MeasurementBudget`]).

#![deny(missing_docs)]

pub mod algorithm;
pub mod congruence;
pub mod evolution;
pub mod expgen;
pub mod fitness;
pub mod islands;
pub mod pipeline;
pub mod selection;
pub mod validate;

pub use algorithm::PmEvoAlgorithm;
pub use congruence::{throughput_close, CongruencePartition};
pub use evolution::{evolve, evolve_resumable, EvoConfig, EvoResult, ResumableEvolution};
pub use expgen::{CandidateStream, ExperimentGenerator};
pub use fitness::{average_relative_error, scalarize, ErrorCache, FitnessEngine, Objectives};
pub use islands::{
    evolve_islands, island_seed, EvoState, Island, IslandConfig, IslandControl, IslandStart,
    IslandsEvolution,
};
pub use pipeline::{run, CheckpointConfig, PipelineConfig, PipelineResult};
pub use selection::{
    run_adaptive, run_adaptive_with, AdaptiveContext, AdaptiveOutcome, AdaptiveResume,
    AdaptiveTuning, CheckpointEvent, CheckpointHook,
};
pub use validate::{validate, ValidationReport};
