//! The evolutionary algorithm and greedy local search (paper §4.4,
//! Algorithm 1).
//!
//! Structure (quoted from the paper):
//!
//! ```text
//! initialize population randomly
//! while not done:
//!     apply evolutionary operators      (binary recombination; no
//!     evaluate fitness                   mutation — the paper found it
//!     select new population              not worth its fitness budget)
//! perform local search                  (hill climbing on µop counts)
//! return fittest individual
//! ```

use crate::fitness::{scalarize, FitnessEngine, Objectives};
use pmevo_core::{InstId, MeasuredExperiment, ThreeLevelMapping, UopEntry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable parameters of the evolutionary algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct EvoConfig {
    /// Population size `p` (the paper used 100 000 on real machines; the
    /// default here is sized for simulator-scale runs).
    pub population_size: usize,
    /// Hard generation limit.
    pub max_generations: u32,
    /// Stop when the best error has not improved by more than this for
    /// [`stall_generations`](Self::stall_generations) generations.
    pub convergence_tol: f64,
    /// Patience for the convergence check.
    pub stall_generations: u32,
    /// Per-instruction probability of a random µop mutation in children.
    /// The paper eliminated mutation (0.0, the default); non-zero values
    /// exist for the ablation bench.
    pub mutation_rate: f64,
    /// Worker threads for fitness evaluation.
    pub num_threads: usize,
    /// Maximum full passes of the hill-climbing local search.
    pub local_search_passes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvoConfig {
    fn default() -> Self {
        EvoConfig {
            population_size: 500,
            max_generations: 60,
            convergence_tol: 1e-6,
            stall_generations: 8,
            mutation_rate: 0.0,
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            local_search_passes: 4,
            seed: 0x90AD,
        }
    }
}

/// Result of an [`evolve`] run.
#[derive(Debug, Clone)]
pub struct EvoResult {
    /// The fittest mapping after evolution and local search.
    pub mapping: ThreeLevelMapping,
    /// Its objectives on the training experiments.
    pub objectives: Objectives,
    /// Number of generations executed.
    pub generations: u32,
    /// Best `D_avg` per generation (for convergence plots).
    pub history: Vec<f64>,
}

/// Binary recombination (paper §4.4): for each instruction, the combined
/// µop multiset of both parents is split randomly into the two children.
/// A child that would receive no µop for an instruction steals one item
/// back, keeping every individual well-formed.
fn recombine<R: Rng + ?Sized>(
    rng: &mut R,
    a: &ThreeLevelMapping,
    b: &ThreeLevelMapping,
) -> (ThreeLevelMapping, ThreeLevelMapping) {
    let num_ports = a.num_ports();
    let n = a.num_insts();
    let mut da = Vec::with_capacity(n);
    let mut db = Vec::with_capacity(n);
    for i in 0..n {
        let id = InstId(i as u32);
        // Item pool: one item per µop occurrence of either parent.
        let mut items: Vec<UopEntry> = Vec::new();
        for e in a.decomposition(id).iter().chain(b.decomposition(id)) {
            for _ in 0..e.count {
                items.push(UopEntry::new(1, e.ports));
            }
        }
        let mut ca: Vec<UopEntry> = Vec::new();
        let mut cb: Vec<UopEntry> = Vec::new();
        for item in &items {
            if rng.gen::<bool>() {
                ca.push(*item);
            } else {
                cb.push(*item);
            }
        }
        if ca.is_empty() {
            ca.push(cb[rng.gen_range(0..cb.len())]);
        }
        if cb.is_empty() {
            cb.push(ca[rng.gen_range(0..ca.len())]);
        }
        da.push(ca);
        db.push(cb);
    }
    (
        ThreeLevelMapping::new(num_ports, da),
        ThreeLevelMapping::new(num_ports, db),
    )
}

/// Optional mutation operator (ablation only): with probability
/// `rate` per instruction, resample one µop's port set.
fn mutate<R: Rng + ?Sized>(rng: &mut R, m: &mut ThreeLevelMapping, rate: f64) {
    if rate <= 0.0 {
        return;
    }
    let num_ports = m.num_ports();
    let full = pmevo_core::PortSet::first_n(num_ports).mask();
    for i in 0..m.num_insts() {
        if rng.gen::<f64>() < rate {
            let id = InstId(i as u32);
            let mut entries = m.decomposition(id).to_vec();
            let idx = rng.gen_range(0..entries.len());
            let ports = loop {
                let mask = rng.gen::<u64>() & full;
                if mask != 0 {
                    break pmevo_core::PortSet::from_mask(mask);
                }
            };
            entries[idx] = UopEntry::new(entries[idx].count, ports);
            m.set_decomposition(id, entries);
        }
    }
}

/// Greedy hill climbing on µop multiplicities (paper §4.4): for every
/// edge `(i, n, u)`, try `n ± 1` (dropping the µop when `n` reaches 0 and
/// another µop remains) and keep the change if the mapping improves
/// lexicographically in `(D_avg, V)`.
///
/// Each trial mutates a single instruction, so it is scored with the
/// engine's delta path: only the experiments containing that instruction
/// are re-predicted (the inverse index of
/// [`pmevo_core::CompiledExperiments`]), with objectives bit-identical to
/// a full re-evaluation.
pub(crate) fn hill_climb(
    mapping: &mut ThreeLevelMapping,
    engine: &mut FitnessEngine,
    max_passes: u32,
) -> Objectives {
    let mut cache = engine.build_cache(mapping);
    let mut current = Objectives {
        error: cache.mean_error(),
        volume: mapping.volume(),
    };
    for _ in 0..max_passes {
        let mut improved = false;
        for i in 0..mapping.num_insts() {
            let id = InstId(i as u32);
            // Re-read the decomposition after every accepted trial:
            // candidates must build on the kept change, not on a stale
            // snapshot that would silently revert it.
            let mut idx = 0usize;
            loop {
                let entries = mapping.decomposition(id).to_vec();
                let Some(entry) = entries.get(idx).copied() else {
                    break;
                };
                for delta in [1i64, -1] {
                    let new_count = entry.count as i64 + delta;
                    if new_count < 0 || (new_count == 0 && entries.len() == 1) {
                        continue;
                    }
                    let mut cand = entries.clone();
                    cand[idx] = UopEntry::new(new_count as u32, entry.ports);
                    mapping.set_decomposition(id, cand);
                    let obj = engine.try_update(mapping, &cache, id);
                    if obj.better_than(&current, 1e-9) {
                        engine.commit_update(&mut cache);
                        current = obj;
                        improved = true;
                        break; // keep; continue with next entry
                    } else {
                        mapping.set_decomposition(id, entries.clone());
                    }
                }
                // If an accepted trial dropped a µop, the next entry has
                // shifted into this index — examine it before moving on.
                if mapping.decomposition(id).len() == entries.len() {
                    idx += 1;
                }
            }
        }
        if !improved {
            break;
        }
    }
    current
}

/// Runs the evolutionary algorithm over `num_insts` (representative)
/// instructions on a machine with `num_ports` ports.
///
/// `experiments` are the measured training experiments (over the same
/// instruction universe `0..num_insts`), `indiv_tp[i]` the measured
/// individual throughput of instruction `i` (used to bound the random
/// initialization as in paper §4.4).
///
/// # Panics
///
/// Panics if inputs are empty or inconsistent.
pub fn evolve(
    num_insts: usize,
    num_ports: usize,
    experiments: &[MeasuredExperiment],
    indiv_tp: &[f64],
    config: &EvoConfig,
) -> EvoResult {
    evolve_resumable(num_insts, num_ports, experiments, indiv_tp, config, Vec::new(), true).result
}

/// Outcome of one [`evolve_resumable`] segment: the usual [`EvoResult`]
/// plus the final population, for warm-starting the next segment of a
/// round-based run (see [`crate::selection`]).
#[derive(Debug, Clone)]
pub struct ResumableEvolution {
    /// The segment's result (fittest individual, history, generations).
    pub result: EvoResult,
    /// The final population, ordered by scalarized fitness of the last
    /// selection (initial order if no generation ran).
    pub population: Vec<ThreeLevelMapping>,
    /// Objectives parallel to [`population`](Self::population).
    pub objectives: Vec<Objectives>,
}

/// [`evolve`], but resumable: evolution starts from `initial` (topped up
/// with random samples to the configured population size, truncated if
/// larger), the final greedy local search can be skipped for
/// intermediate rounds, and the final population is returned so a later
/// segment — typically over a grown experiment set — can continue where
/// this one stopped.
///
/// With an empty `initial` and `local_search = true` this is exactly
/// [`evolve`], bit for bit.
///
/// # Panics
///
/// Panics if inputs are empty or inconsistent, or an `initial`
/// individual does not match `num_insts`/`num_ports`.
pub fn evolve_resumable(
    num_insts: usize,
    num_ports: usize,
    experiments: &[MeasuredExperiment],
    indiv_tp: &[f64],
    config: &EvoConfig,
    initial: Vec<ThreeLevelMapping>,
    local_search: bool,
) -> ResumableEvolution {
    assert!(num_insts > 0, "empty instruction universe");
    assert_eq!(indiv_tp.len(), num_insts, "throughput table size mismatch");
    assert!(config.population_size >= 2, "population too small");
    let mut rng = StdRng::seed_from_u64(config.seed);
    // One engine per run: experiments are compiled once and the worker
    // threads live across every generation and the final local search.
    let mut engine = FitnessEngine::new(experiments, config.num_threads);

    let p = config.population_size;
    let mut population = initial;
    population.truncate(p);
    for m in &population {
        assert_eq!(m.num_insts(), num_insts, "initial individual universe mismatch");
        assert_eq!(m.num_ports(), num_ports, "initial individual port-count mismatch");
    }
    while population.len() < p {
        population.push(ThreeLevelMapping::sample_random(
            &mut rng, num_insts, num_ports, indiv_tp,
        ));
    }
    let (mut population, mut objectives) = engine.evaluate_batch_owned(population);

    let mut history = Vec::new();
    let mut best_so_far = f64::INFINITY;
    let mut stall = 0u32;
    let mut generations = 0u32;

    for gen in 0..config.max_generations {
        generations = gen + 1;
        // Children: p new individuals from random parent pairs.
        let mut children = Vec::with_capacity(p);
        while children.len() < p {
            let ia = rng.gen_range(0..p);
            let ib = rng.gen_range(0..p);
            let (mut c1, mut c2) = recombine(&mut rng, &population[ia], &population[ib]);
            mutate(&mut rng, &mut c1, config.mutation_rate);
            mutate(&mut rng, &mut c2, config.mutation_rate);
            children.push(c1);
            if children.len() < p {
                children.push(c2);
            }
        }
        let (children, child_objectives) = engine.evaluate_batch_owned(children);

        // Pool selection: keep the p best by scalarized fitness.
        population.extend(children);
        objectives.extend(child_objectives);
        let fitness = scalarize(&objectives);
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.sort_by(|&x, &y| {
            fitness[x]
                .partial_cmp(&fitness[y])
                .expect("fitness values are finite")
        });
        order.truncate(p);
        let mut new_pop = Vec::with_capacity(p);
        let mut new_obj = Vec::with_capacity(p);
        for idx in order {
            new_pop.push(population[idx].clone());
            new_obj.push(objectives[idx]);
        }
        population = new_pop;
        objectives = new_obj;

        let gen_best = objectives
            .iter()
            .map(|o| o.error)
            .fold(f64::INFINITY, f64::min);
        history.push(gen_best);
        if gen_best < best_so_far - config.convergence_tol {
            best_so_far = gen_best;
            stall = 0;
        } else {
            stall += 1;
            if stall >= config.stall_generations {
                break;
            }
        }
    }

    // Fittest individual by lexicographic (error, volume) — the final
    // answer should put accuracy first.
    let best_idx = (0..population.len())
        .min_by(|&x, &y| {
            (objectives[x].error, objectives[x].volume)
                .partial_cmp(&(objectives[y].error, objectives[y].volume))
                .expect("objectives are finite")
        })
        .expect("population is non-empty");
    let mut best = population[best_idx].clone();
    let best_objectives = if local_search {
        hill_climb(&mut best, &mut engine, config.local_search_passes)
    } else {
        objectives[best_idx]
    };

    ResumableEvolution {
        result: EvoResult {
            mapping: best,
            objectives: best_objectives,
            generations,
            history,
        },
        population,
        objectives,
    }
}

/// Re-exported for the recombination unit tests and the ablation bench.
#[doc(hidden)]
pub fn recombine_for_test<R: Rng + ?Sized>(
    rng: &mut R,
    a: &ThreeLevelMapping,
    b: &ThreeLevelMapping,
) -> (ThreeLevelMapping, ThreeLevelMapping) {
    recombine(rng, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{Experiment, PortSet};

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, PortSet::from_ports(ports))
    }

    /// Ground truth for a 3-instruction, 3-port machine; experiments are
    /// labeled with its exact bottleneck throughputs.
    fn toy_problem() -> (ThreeLevelMapping, Vec<MeasuredExperiment>, Vec<f64>) {
        let gt = ThreeLevelMapping::new(
            3,
            vec![
                vec![uop(1, &[0])],          // i0: port 0 only
                vec![uop(1, &[0, 1])],       // i1: ports 0/1
                vec![uop(1, &[2]), uop(1, &[0, 1])], // i2: two µops
            ],
        );
        let mut exps = Vec::new();
        let ids: Vec<InstId> = (0..3).map(InstId).collect();
        for &i in &ids {
            exps.push(Experiment::singleton(i));
        }
        for a in 0..3usize {
            for b in (a + 1)..3 {
                exps.push(Experiment::pair(ids[a], 1, ids[b], 1));
                exps.push(Experiment::pair(ids[a], 1, ids[b], 2));
                exps.push(Experiment::pair(ids[a], 2, ids[b], 1));
            }
        }
        let measured: Vec<MeasuredExperiment> = exps
            .into_iter()
            .map(|e| {
                let t = gt.throughput(&e);
                MeasuredExperiment::new(e, t)
            })
            .collect();
        let indiv: Vec<f64> = (0..3)
            .map(|i| gt.throughput(&Experiment::singleton(InstId(i))))
            .collect();
        (gt, measured, indiv)
    }

    #[test]
    fn recombination_preserves_item_count_and_validity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = ThreeLevelMapping::new(3, vec![vec![uop(2, &[0]), uop(1, &[1, 2])]]);
        let b = ThreeLevelMapping::new(3, vec![vec![uop(3, &[2])]]);
        for _ in 0..50 {
            let (c1, c2) = recombine(&mut rng, &a, &b);
            let items = |m: &ThreeLevelMapping| m.num_uops_of(InstId(0));
            // Items may be duplicated only by the non-empty repair.
            let total = items(&c1) + items(&c2);
            assert!((6..=7).contains(&total), "item total {total}");
            assert!(items(&c1) >= 1 && items(&c2) >= 1);
        }
    }

    #[test]
    fn evolution_fits_the_toy_ground_truth() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 60,
            max_generations: 40,
            num_threads: 2,
            seed: 7,
            ..EvoConfig::default()
        };
        let result = evolve(3, 3, &measured, &indiv, &config);
        assert!(
            result.objectives.error < 0.05,
            "evolved error {} too high",
            result.objectives.error
        );
        assert!(result.generations >= 1);
        assert_eq!(result.history.len() as u32, result.generations);
    }

    #[test]
    fn history_best_error_is_monotone_nonincreasing() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 30,
            max_generations: 15,
            num_threads: 1,
            seed: 3,
            ..EvoConfig::default()
        };
        let result = evolve(3, 3, &measured, &indiv, &config);
        for w in result.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "best error increased: {w:?}");
        }
    }

    #[test]
    fn hill_climbing_fixes_a_wrong_multiplicity() {
        let (gt, measured, _) = toy_problem();
        // Perturb the ground truth: i0 gets 3 µops instead of 1.
        let mut broken = gt.clone();
        broken.set_decomposition(InstId(0), vec![uop(3, &[0])]);
        let mut engine = FitnessEngine::new(&measured, 1);
        let before = engine.evaluate(&broken);
        let after = hill_climb(&mut broken, &mut engine, 5);
        assert!(after.error < before.error);
        assert!(after.error < 1e-9, "hill climbing should reach exactness");
    }

    #[test]
    fn mutation_rate_zero_is_a_no_op() {
        let (gt, ..) = toy_problem();
        let mut m = gt.clone();
        let mut rng = StdRng::seed_from_u64(5);
        mutate(&mut rng, &mut m, 0.0);
        assert_eq!(m, gt);
        // And a rate of 1.0 changes something (with high probability).
        let mut changed = false;
        for seed in 0..8 {
            let mut m2 = gt.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            mutate(&mut rng, &mut m2, 1.0);
            changed |= m2 != gt;
        }
        assert!(changed);
    }

    #[test]
    fn resumable_with_defaults_is_exactly_evolve() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 24,
            max_generations: 10,
            num_threads: 2,
            seed: 21,
            ..EvoConfig::default()
        };
        let plain = evolve(3, 3, &measured, &indiv, &config);
        let resumable = evolve_resumable(3, 3, &measured, &indiv, &config, Vec::new(), true);
        assert_eq!(plain.mapping, resumable.result.mapping);
        assert_eq!(plain.objectives, resumable.result.objectives);
        assert_eq!(plain.history, resumable.result.history);
        assert_eq!(resumable.population.len(), 24);
        assert_eq!(resumable.objectives.len(), 24);
    }

    #[test]
    fn warm_start_resumes_and_stays_deterministic() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 20,
            max_generations: 4,
            num_threads: 1,
            seed: 13,
            ..EvoConfig::default()
        };
        let first = evolve_resumable(3, 3, &measured, &indiv, &config, Vec::new(), false);
        let resume = |pop: Vec<ThreeLevelMapping>| {
            evolve_resumable(3, 3, &measured, &indiv, &config, pop, false)
        };
        let a = resume(first.population.clone());
        let b = resume(first.population.clone());
        assert_eq!(a.result.mapping, b.result.mapping);
        assert_eq!(a.population, b.population);
        // Continuing the search never loses the warm start's best error.
        assert!(a.result.objectives.error <= first.result.objectives.error + 1e-12);
        // A short initial population is topped up to size.
        let short = resume(first.population[..3].to_vec());
        assert_eq!(short.population.len(), 20);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn warm_start_rejects_mismatched_individuals() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 4,
            max_generations: 1,
            num_threads: 1,
            seed: 1,
            ..EvoConfig::default()
        };
        let wrong = vec![ThreeLevelMapping::new(3, vec![vec![uop(1, &[0])]])];
        evolve_resumable(3, 3, &measured, &indiv, &config, wrong, false);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 20,
            max_generations: 8,
            num_threads: 3,
            seed: 11,
            ..EvoConfig::default()
        };
        let a = evolve(3, 3, &measured, &indiv, &config);
        let b = evolve(3, 3, &measured, &indiv, &config);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.history, b.history);
    }
}
