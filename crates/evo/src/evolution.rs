//! The evolutionary algorithm and greedy local search (paper §4.4,
//! Algorithm 1).
//!
//! Structure (quoted from the paper):
//!
//! ```text
//! initialize population randomly
//! while not done:
//!     apply evolutionary operators      (binary recombination; no
//!     evaluate fitness                   mutation — the paper found it
//!     select new population              not worth its fitness budget)
//! perform local search                  (hill climbing on µop counts)
//! return fittest individual
//! ```

use crate::fitness::{FitnessEngine, Objectives};
use pmevo_core::{InstId, MeasuredExperiment, ThreeLevelMapping, UopEntry};
use rand::Rng;

/// Tunable parameters of the evolutionary algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct EvoConfig {
    /// Population size `p` (the paper used 100 000 on real machines; the
    /// default here is sized for simulator-scale runs).
    pub population_size: usize,
    /// Hard generation limit.
    pub max_generations: u32,
    /// Stop when the best error has not improved by more than this for
    /// [`stall_generations`](Self::stall_generations) generations.
    pub convergence_tol: f64,
    /// Patience for the convergence check.
    pub stall_generations: u32,
    /// Per-instruction probability of a random µop mutation in children.
    /// The paper eliminated mutation (0.0, the default); non-zero values
    /// exist for the ablation bench.
    pub mutation_rate: f64,
    /// Worker threads for fitness evaluation.
    pub num_threads: usize,
    /// Maximum full passes of the hill-climbing local search.
    pub local_search_passes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvoConfig {
    fn default() -> Self {
        EvoConfig {
            population_size: 500,
            max_generations: 60,
            convergence_tol: 1e-6,
            stall_generations: 8,
            mutation_rate: 0.0,
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            local_search_passes: 4,
            seed: 0x90AD,
        }
    }
}

/// Result of an [`evolve`] run.
#[derive(Debug, Clone)]
pub struct EvoResult {
    /// The fittest mapping after evolution and local search.
    pub mapping: ThreeLevelMapping,
    /// Its objectives on the training experiments.
    pub objectives: Objectives,
    /// Number of generations executed.
    pub generations: u32,
    /// Best `D_avg` per generation (for convergence plots).
    pub history: Vec<f64>,
}

/// Binary recombination (paper §4.4): for each instruction, the combined
/// µop multiset of both parents is split randomly into the two children.
/// A child that would receive no µop for an instruction steals one item
/// back, keeping every individual well-formed.
pub(crate) fn recombine<R: Rng + ?Sized>(
    rng: &mut R,
    a: &ThreeLevelMapping,
    b: &ThreeLevelMapping,
) -> (ThreeLevelMapping, ThreeLevelMapping) {
    let num_ports = a.num_ports();
    let n = a.num_insts();
    let mut da = Vec::with_capacity(n);
    let mut db = Vec::with_capacity(n);
    for i in 0..n {
        let id = InstId(i as u32);
        // Item pool: one item per µop occurrence of either parent.
        let mut items: Vec<UopEntry> = Vec::new();
        for e in a.decomposition(id).iter().chain(b.decomposition(id)) {
            for _ in 0..e.count {
                items.push(UopEntry::new(1, e.ports));
            }
        }
        let mut ca: Vec<UopEntry> = Vec::new();
        let mut cb: Vec<UopEntry> = Vec::new();
        for item in &items {
            if rng.gen::<bool>() {
                ca.push(*item);
            } else {
                cb.push(*item);
            }
        }
        if ca.is_empty() {
            ca.push(cb[rng.gen_range(0..cb.len())]);
        }
        if cb.is_empty() {
            cb.push(ca[rng.gen_range(0..ca.len())]);
        }
        da.push(ca);
        db.push(cb);
    }
    (
        ThreeLevelMapping::new(num_ports, da),
        ThreeLevelMapping::new(num_ports, db),
    )
}

/// Optional mutation operator (ablation only): with probability
/// `rate` per instruction, resample one µop's port set.
pub(crate) fn mutate<R: Rng + ?Sized>(rng: &mut R, m: &mut ThreeLevelMapping, rate: f64) {
    if rate <= 0.0 {
        return;
    }
    let num_ports = m.num_ports();
    let full = pmevo_core::PortSet::first_n(num_ports).mask();
    for i in 0..m.num_insts() {
        if rng.gen::<f64>() < rate {
            let id = InstId(i as u32);
            let mut entries = m.decomposition(id).to_vec();
            let idx = rng.gen_range(0..entries.len());
            let ports = loop {
                let mask = rng.gen::<u64>() & full;
                if mask != 0 {
                    break pmevo_core::PortSet::from_mask(mask);
                }
            };
            entries[idx] = UopEntry::new(entries[idx].count, ports);
            m.set_decomposition(id, entries);
        }
    }
}

/// Greedy hill climbing on µop multiplicities (paper §4.4): for every
/// edge `(i, n, u)`, try `n ± 1` (dropping the µop when `n` reaches 0 and
/// another µop remains) and keep the change if the mapping improves
/// lexicographically in `(D_avg, V)`.
///
/// Each trial mutates a single instruction, so it is scored with the
/// engine's delta path: only the experiments containing that instruction
/// are re-predicted (the inverse index of
/// [`pmevo_core::CompiledExperiments`]), with objectives bit-identical to
/// a full re-evaluation.
pub(crate) fn hill_climb(
    mapping: &mut ThreeLevelMapping,
    engine: &mut FitnessEngine,
    max_passes: u32,
) -> Objectives {
    let mut cache = engine.build_cache(mapping);
    let mut current = Objectives {
        error: cache.mean_error(),
        volume: mapping.volume(),
    };
    for _ in 0..max_passes {
        let mut improved = false;
        for i in 0..mapping.num_insts() {
            let id = InstId(i as u32);
            // Re-read the decomposition after every accepted trial:
            // candidates must build on the kept change, not on a stale
            // snapshot that would silently revert it.
            let mut idx = 0usize;
            loop {
                let entries = mapping.decomposition(id).to_vec();
                let Some(entry) = entries.get(idx).copied() else {
                    break;
                };
                for delta in [1i64, -1] {
                    let new_count = entry.count as i64 + delta;
                    if new_count < 0 || (new_count == 0 && entries.len() == 1) {
                        continue;
                    }
                    let mut cand = entries.clone();
                    cand[idx] = UopEntry::new(new_count as u32, entry.ports);
                    mapping.set_decomposition(id, cand);
                    let obj = engine.try_update(mapping, &cache, id);
                    if obj.better_than(&current, 1e-9) {
                        engine.commit_update(&mut cache);
                        current = obj;
                        improved = true;
                        break; // keep; continue with next entry
                    } else {
                        mapping.set_decomposition(id, entries.clone());
                    }
                }
                // If an accepted trial dropped a µop, the next entry has
                // shifted into this index — examine it before moving on.
                if mapping.decomposition(id).len() == entries.len() {
                    idx += 1;
                }
            }
        }
        if !improved {
            break;
        }
    }
    current
}

/// Runs the evolutionary algorithm over `num_insts` (representative)
/// instructions on a machine with `num_ports` ports.
///
/// `experiments` are the measured training experiments (over the same
/// instruction universe `0..num_insts`), `indiv_tp[i]` the measured
/// individual throughput of instruction `i` (used to bound the random
/// initialization as in paper §4.4).
///
/// # Panics
///
/// Panics if inputs are empty or inconsistent.
pub fn evolve(
    num_insts: usize,
    num_ports: usize,
    experiments: &[MeasuredExperiment],
    indiv_tp: &[f64],
    config: &EvoConfig,
) -> EvoResult {
    evolve_resumable(num_insts, num_ports, experiments, indiv_tp, config, Vec::new(), true).result
}

/// Outcome of one [`evolve_resumable`] segment: the usual [`EvoResult`]
/// plus the final population, for warm-starting the next segment of a
/// round-based run (see [`crate::selection`]).
#[derive(Debug, Clone)]
pub struct ResumableEvolution {
    /// The segment's result (fittest individual, history, generations).
    pub result: EvoResult,
    /// The final population, ordered by scalarized fitness of the last
    /// selection (initial order if no generation ran).
    pub population: Vec<ThreeLevelMapping>,
    /// Objectives parallel to [`population`](Self::population).
    pub objectives: Vec<Objectives>,
}

/// [`evolve`], but resumable: evolution starts from `initial` (topped up
/// with random samples to the configured population size), the final
/// greedy local search can be skipped for intermediate rounds, and the
/// final population is returned so a later segment — typically over a
/// grown experiment set — can continue where this one stopped.
///
/// With an empty `initial` and `local_search = true` this is exactly
/// [`evolve`], bit for bit. Since the island-model refactor this is a
/// thin wrapper over [`crate::islands::evolve_islands`] with a single
/// island, which reproduces the classic loop bit for bit.
///
/// # Panics
///
/// Panics if inputs are empty or inconsistent, an `initial` individual
/// does not match `num_insts`/`num_ports`, or `initial` holds more
/// individuals than `config.population_size` (an oversized warm start
/// would silently discard search state — pass at most `p` individuals).
pub fn evolve_resumable(
    num_insts: usize,
    num_ports: usize,
    experiments: &[MeasuredExperiment],
    indiv_tp: &[f64],
    config: &EvoConfig,
    initial: Vec<ThreeLevelMapping>,
    local_search: bool,
) -> ResumableEvolution {
    let out = crate::islands::evolve_islands(
        num_insts,
        num_ports,
        experiments,
        indiv_tp,
        config,
        &crate::islands::IslandConfig::default(),
        crate::islands::IslandStart::Fresh(vec![initial]),
        local_search,
        None,
    );
    let island = out.islands.into_iter().next().expect("one island");
    ResumableEvolution {
        result: out.result,
        population: island.population,
        objectives: island.objectives,
    }
}

/// Re-exported for the recombination unit tests and the ablation bench.
#[doc(hidden)]
pub fn recombine_for_test<R: Rng + ?Sized>(
    rng: &mut R,
    a: &ThreeLevelMapping,
    b: &ThreeLevelMapping,
) -> (ThreeLevelMapping, ThreeLevelMapping) {
    recombine(rng, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{Experiment, PortSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, PortSet::from_ports(ports))
    }

    /// Ground truth for a 3-instruction, 3-port machine; experiments are
    /// labeled with its exact bottleneck throughputs.
    fn toy_problem() -> (ThreeLevelMapping, Vec<MeasuredExperiment>, Vec<f64>) {
        let gt = ThreeLevelMapping::new(
            3,
            vec![
                vec![uop(1, &[0])],          // i0: port 0 only
                vec![uop(1, &[0, 1])],       // i1: ports 0/1
                vec![uop(1, &[2]), uop(1, &[0, 1])], // i2: two µops
            ],
        );
        let mut exps = Vec::new();
        let ids: Vec<InstId> = (0..3).map(InstId).collect();
        for &i in &ids {
            exps.push(Experiment::singleton(i));
        }
        for a in 0..3usize {
            for b in (a + 1)..3 {
                exps.push(Experiment::pair(ids[a], 1, ids[b], 1));
                exps.push(Experiment::pair(ids[a], 1, ids[b], 2));
                exps.push(Experiment::pair(ids[a], 2, ids[b], 1));
            }
        }
        let measured: Vec<MeasuredExperiment> = exps
            .into_iter()
            .map(|e| {
                let t = gt.throughput(&e);
                MeasuredExperiment::new(e, t)
            })
            .collect();
        let indiv: Vec<f64> = (0..3)
            .map(|i| gt.throughput(&Experiment::singleton(InstId(i))))
            .collect();
        (gt, measured, indiv)
    }

    #[test]
    fn recombination_preserves_item_count_and_validity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = ThreeLevelMapping::new(3, vec![vec![uop(2, &[0]), uop(1, &[1, 2])]]);
        let b = ThreeLevelMapping::new(3, vec![vec![uop(3, &[2])]]);
        for _ in 0..50 {
            let (c1, c2) = recombine(&mut rng, &a, &b);
            let items = |m: &ThreeLevelMapping| m.num_uops_of(InstId(0));
            // Items may be duplicated only by the non-empty repair.
            let total = items(&c1) + items(&c2);
            assert!((6..=7).contains(&total), "item total {total}");
            assert!(items(&c1) >= 1 && items(&c2) >= 1);
        }
    }

    #[test]
    fn evolution_fits_the_toy_ground_truth() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 60,
            max_generations: 40,
            num_threads: 2,
            seed: 7,
            ..EvoConfig::default()
        };
        let result = evolve(3, 3, &measured, &indiv, &config);
        assert!(
            result.objectives.error < 0.05,
            "evolved error {} too high",
            result.objectives.error
        );
        assert!(result.generations >= 1);
        assert_eq!(result.history.len() as u32, result.generations);
    }

    #[test]
    fn history_best_error_is_monotone_nonincreasing() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 30,
            max_generations: 15,
            num_threads: 1,
            seed: 3,
            ..EvoConfig::default()
        };
        let result = evolve(3, 3, &measured, &indiv, &config);
        for w in result.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "best error increased: {w:?}");
        }
    }

    #[test]
    fn hill_climbing_fixes_a_wrong_multiplicity() {
        let (gt, measured, _) = toy_problem();
        // Perturb the ground truth: i0 gets 3 µops instead of 1.
        let mut broken = gt.clone();
        broken.set_decomposition(InstId(0), vec![uop(3, &[0])]);
        let mut engine = FitnessEngine::new(&measured, 1);
        let before = engine.evaluate(&broken);
        let after = hill_climb(&mut broken, &mut engine, 5);
        assert!(after.error < before.error);
        assert!(after.error < 1e-9, "hill climbing should reach exactness");
    }

    #[test]
    fn mutation_rate_zero_is_a_no_op() {
        let (gt, ..) = toy_problem();
        let mut m = gt.clone();
        let mut rng = StdRng::seed_from_u64(5);
        mutate(&mut rng, &mut m, 0.0);
        assert_eq!(m, gt);
        // And a rate of 1.0 changes something (with high probability).
        let mut changed = false;
        for seed in 0..8 {
            let mut m2 = gt.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            mutate(&mut rng, &mut m2, 1.0);
            changed |= m2 != gt;
        }
        assert!(changed);
    }

    #[test]
    fn resumable_with_defaults_is_exactly_evolve() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 24,
            max_generations: 10,
            num_threads: 2,
            seed: 21,
            ..EvoConfig::default()
        };
        let plain = evolve(3, 3, &measured, &indiv, &config);
        let resumable = evolve_resumable(3, 3, &measured, &indiv, &config, Vec::new(), true);
        assert_eq!(plain.mapping, resumable.result.mapping);
        assert_eq!(plain.objectives, resumable.result.objectives);
        assert_eq!(plain.history, resumable.result.history);
        assert_eq!(resumable.population.len(), 24);
        assert_eq!(resumable.objectives.len(), 24);
    }

    #[test]
    fn warm_start_resumes_and_stays_deterministic() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 20,
            max_generations: 4,
            num_threads: 1,
            seed: 13,
            ..EvoConfig::default()
        };
        let first = evolve_resumable(3, 3, &measured, &indiv, &config, Vec::new(), false);
        let resume = |pop: Vec<ThreeLevelMapping>| {
            evolve_resumable(3, 3, &measured, &indiv, &config, pop, false)
        };
        let a = resume(first.population.clone());
        let b = resume(first.population.clone());
        assert_eq!(a.result.mapping, b.result.mapping);
        assert_eq!(a.population, b.population);
        // Continuing the search never loses the warm start's best error.
        assert!(a.result.objectives.error <= first.result.objectives.error + 1e-12);
        // A short initial population is topped up to size.
        let short = resume(first.population[..3].to_vec());
        assert_eq!(short.population.len(), 20);
    }

    #[test]
    #[should_panic(expected = "initial population larger than the configured population size")]
    fn warm_start_rejects_an_oversized_population() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 4,
            max_generations: 1,
            num_threads: 1,
            seed: 2,
            ..EvoConfig::default()
        };
        // 5 warm individuals into a population of 4: the old top-up path
        // silently truncated these; now it must refuse.
        let first = evolve_resumable(3, 3, &measured, &indiv, &config, Vec::new(), false);
        let mut oversized = first.population.clone();
        oversized.push(first.population[0].clone());
        evolve_resumable(3, 3, &measured, &indiv, &config, oversized, false);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn warm_start_rejects_mismatched_individuals() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 4,
            max_generations: 1,
            num_threads: 1,
            seed: 1,
            ..EvoConfig::default()
        };
        let wrong = vec![ThreeLevelMapping::new(3, vec![vec![uop(1, &[0])]])];
        evolve_resumable(3, 3, &measured, &indiv, &config, wrong, false);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let (_gt, measured, indiv) = toy_problem();
        let config = EvoConfig {
            population_size: 20,
            max_generations: 8,
            num_threads: 3,
            seed: 11,
            ..EvoConfig::default()
        };
        let a = evolve(3, 3, &measured, &indiv, &config);
        let b = evolve(3, 3, &measured, &indiv, &config);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.history, b.history);
    }
}
