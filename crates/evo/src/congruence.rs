//! Congruence filtering (paper §4.3).
//!
//! Instruction forms that the experiment set cannot distinguish are
//! merged into congruence classes; the evolutionary algorithm then only
//! works on class representatives, shrinking the search space (the paper
//! reports 53–69 % of forms merged away).
//!
//! Two forms `iA`, `iB` are congruent iff their individual throughputs
//! are equal and, for every third form `iC` and every multiset shape
//! `(m, n)` present in the experiment set, `{iA ↦ m, iC ↦ n}` and
//! `{iB ↦ m, iC ↦ n}` have equal measured throughput — all equalities up
//! to the symmetric relative difference `|t1 − t2| / (|t1 + t2| / 2) < ε`.
//!
//! All internal maps are `BTreeMap`s, so every iteration order here is a
//! function of the input alone: fixed-seed pipeline runs are bit-identical
//! by construction, not by the accident of a hash seed.

use pmevo_core::{InstId, MeasuredExperiment};
use std::collections::BTreeMap;

/// Checks throughput equality up to the paper's symmetric relative
/// difference bound `ε` — exposed for the adaptive pipeline's
/// pairwise-verified congruence seeding.
pub fn throughput_close(t1: f64, t2: f64, epsilon: f64) -> bool {
    let denom = (t1 + t2).abs() / 2.0;
    if denom == 0.0 {
        return true;
    }
    (t1 - t2).abs() / denom < epsilon
}

use throughput_close as close;

/// A partition of the instruction universe into congruence classes.
///
/// # Example
///
/// ```
/// use pmevo_core::{Experiment, InstId, MeasuredExperiment};
/// use pmevo_evo::CongruencePartition;
///
/// // Two identical instructions and one different one.
/// let data = vec![
///     MeasuredExperiment::new(Experiment::singleton(InstId(0)), 1.0),
///     MeasuredExperiment::new(Experiment::singleton(InstId(1)), 1.0),
///     MeasuredExperiment::new(Experiment::singleton(InstId(2)), 2.0),
///     MeasuredExperiment::new(Experiment::pair(InstId(0), 1, InstId(1), 1), 2.0),
///     MeasuredExperiment::new(Experiment::pair(InstId(0), 1, InstId(2), 1), 2.0),
///     MeasuredExperiment::new(Experiment::pair(InstId(1), 1, InstId(2), 1), 2.0),
/// ];
/// let ids = vec![InstId(0), InstId(1), InstId(2)];
/// let part = CongruencePartition::compute(&ids, &data, 0.05);
/// assert_eq!(part.num_classes(), 2);
/// assert_eq!(part.representative(InstId(1)), part.representative(InstId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct CongruencePartition {
    /// Class representative per universe position.
    repr: BTreeMap<InstId, InstId>,
    /// The representatives, in first-seen order.
    reps: Vec<InstId>,
    universe: Vec<InstId>,
}

impl CongruencePartition {
    /// Computes the partition greedily: each form joins the class of the
    /// first representative it is congruent with (congruence is not
    /// transitive under measurement noise, so a canonical greedy pass is
    /// used, like the paper's implementation).
    ///
    /// # Panics
    ///
    /// Panics if a singleton measurement is missing for some id in
    /// `universe`, or `epsilon` is not positive.
    pub fn compute(
        universe: &[InstId],
        measurements: &[MeasuredExperiment],
        epsilon: f64,
    ) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");

        // Index measurements: singleton throughputs and pair signatures.
        let mut singleton: BTreeMap<InstId, f64> = BTreeMap::new();
        // (inst) -> Vec of ((other, m_self, n_other), throughput)
        let mut pair_sig: BTreeMap<InstId, BTreeMap<(InstId, u32, u32), f64>> = BTreeMap::new();
        for me in measurements {
            let counts = me.experiment.counts();
            match counts {
                [(i, 1)] => {
                    singleton.insert(*i, me.throughput);
                }
                [(a, m), (b, n)] => {
                    pair_sig
                        .entry(*a)
                        .or_default()
                        .insert((*b, *m, *n), me.throughput);
                    pair_sig
                        .entry(*b)
                        .or_default()
                        .insert((*a, *n, *m), me.throughput);
                }
                _ => {} // longer experiments carry no congruence info here
            }
        }
        for id in universe {
            assert!(
                singleton.contains_key(id),
                "missing singleton measurement for {id}"
            );
        }

        let congruent = |a: InstId, b: InstId| -> bool {
            if !close(singleton[&a], singleton[&b], epsilon) {
                return false;
            }
            let empty = BTreeMap::new();
            let sa = pair_sig.get(&a).unwrap_or(&empty);
            let sb = pair_sig.get(&b).unwrap_or(&empty);
            for (&(c, m, n), &ta) in sa {
                if c == b {
                    continue; // experiments combining a with b directly
                }
                if let Some(&tb) = sb.get(&(c, m, n)) {
                    if !close(ta, tb, epsilon) {
                        return false;
                    }
                }
            }
            true
        };

        let mut reps: Vec<InstId> = Vec::new();
        let mut repr: BTreeMap<InstId, InstId> = BTreeMap::new();
        for &id in universe {
            match reps.iter().copied().find(|&r| congruent(r, id)) {
                Some(r) => {
                    repr.insert(id, r);
                }
                None => {
                    reps.push(id);
                    repr.insert(id, id);
                }
            }
        }
        CongruencePartition {
            repr,
            reps,
            universe: universe.to_vec(),
        }
    }

    /// The trivial partition where every form is its own class (used for
    /// the "filtering disabled" ablation).
    pub fn identity(universe: &[InstId]) -> Self {
        CongruencePartition {
            repr: universe.iter().map(|&i| (i, i)).collect(),
            reps: universe.to_vec(),
            universe: universe.to_vec(),
        }
    }

    /// Builds a partition from an explicit representative map — the
    /// constructor behind the adaptive pipeline's pairwise-verified
    /// congruence seeding, where merges are decided by targeted
    /// measurements instead of the full §4.1 corpus. Ids missing from
    /// `repr` represent themselves.
    ///
    /// # Panics
    ///
    /// Panics if a representative is not in `universe` or is itself
    /// mapped to another form (chains are not resolved).
    pub fn from_representatives(universe: &[InstId], repr: BTreeMap<InstId, InstId>) -> Self {
        let mut full: BTreeMap<InstId, InstId> = BTreeMap::new();
        for &id in universe {
            let r = repr.get(&id).copied().unwrap_or(id);
            assert!(
                repr.get(&r).copied().unwrap_or(r) == r,
                "representative {r} of {id} is itself merged away"
            );
            full.insert(id, r);
        }
        let mut reps: Vec<InstId> = Vec::new();
        for &id in universe {
            let r = full[&id];
            assert!(
                universe.contains(&r),
                "representative {r} of {id} is outside the universe"
            );
            if !reps.contains(&r) {
                reps.push(r);
            }
        }
        CongruencePartition {
            repr: full,
            reps,
            universe: universe.to_vec(),
        }
    }

    /// The representative of `id`'s class.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the partitioned universe.
    pub fn representative(&self, id: InstId) -> InstId {
        self.repr[&id]
    }

    /// All class representatives, in first-seen order.
    pub fn representatives(&self) -> &[InstId] {
        &self.reps
    }

    /// Number of congruence classes.
    pub fn num_classes(&self) -> usize {
        self.reps.len()
    }

    /// The partitioned universe.
    pub fn universe(&self) -> &[InstId] {
        &self.universe
    }

    /// Fraction of forms merged into another form's class — the
    /// "insns found congruent" row of paper Table 2.
    pub fn merged_fraction(&self) -> f64 {
        1.0 - self.reps.len() as f64 / self.universe.len() as f64
    }

    /// Members of each class, keyed by representative, in deterministic
    /// (ascending-representative) iteration order.
    pub fn classes(&self) -> BTreeMap<InstId, Vec<InstId>> {
        let mut map: BTreeMap<InstId, Vec<InstId>> = BTreeMap::new();
        for &id in &self.universe {
            map.entry(self.repr[&id]).or_default().push(id);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::Experiment;

    fn measured(e: Experiment, t: f64) -> MeasuredExperiment {
        MeasuredExperiment::new(e, t)
    }

    /// Builds the full §4.1 experiment set for a synthetic throughput
    /// oracle and returns the partition.
    fn partition_for(tps: &[f64], pair_tp: impl Fn(usize, usize) -> f64) -> CongruencePartition {
        let n = tps.len();
        let ids: Vec<InstId> = (0..n as u32).map(InstId).collect();
        let mut data = Vec::new();
        for i in 0..n {
            data.push(measured(Experiment::singleton(ids[i]), tps[i]));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                data.push(measured(Experiment::pair(ids[i], 1, ids[j], 1), pair_tp(i, j)));
            }
        }
        CongruencePartition::compute(&ids, &data, 0.05)
    }

    #[test]
    fn identical_behaviour_merges() {
        // i0, i1 identical; i2 distinct by throughput.
        let p = partition_for(&[1.0, 1.0, 3.0], |_, _| 2.0);
        assert_eq!(p.num_classes(), 2);
        assert_eq!(p.representative(InstId(1)), InstId(0));
        assert_eq!(p.representative(InstId(2)), InstId(2));
        assert!((p.merged_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn equal_singleton_but_different_pairs_do_not_merge() {
        // i0 and i1 both have tp 1, but they interact differently with i2.
        let p = partition_for(&[1.0, 1.0, 1.0], |i, j| {
            if (i, j) == (0, 2) {
                2.0
            } else if (i, j) == (1, 2) {
                1.0 // i1 overlaps i2 differently
            } else {
                2.0
            }
        });
        assert_ne!(p.representative(InstId(0)), p.representative(InstId(1)));
    }

    #[test]
    fn epsilon_tolerates_measurement_noise() {
        let n = 3;
        let ids: Vec<InstId> = (0..n).map(InstId).collect();
        let mut data = vec![
            measured(Experiment::singleton(ids[0]), 1.000),
            measured(Experiment::singleton(ids[1]), 1.004), // 0.4% apart
            measured(Experiment::singleton(ids[2]), 5.0),
        ];
        for i in 0..3usize {
            for j in (i + 1)..3 {
                let t = if i == 2 || j == 2 { 5.0 } else { 2.0 };
                data.push(measured(
                    Experiment::pair(InstId(i as u32), 1, InstId(j as u32), 1),
                    t,
                ));
            }
        }
        let p = CongruencePartition::compute(&ids, &data, 0.05);
        assert_eq!(p.representative(InstId(1)), InstId(0));
    }

    #[test]
    fn identity_partition_keeps_everything() {
        let ids: Vec<InstId> = (0..4).map(InstId).collect();
        let p = CongruencePartition::identity(&ids);
        assert_eq!(p.num_classes(), 4);
        assert_eq!(p.merged_fraction(), 0.0);
        assert_eq!(p.classes().len(), 4);
    }

    #[test]
    fn classes_cover_the_universe() {
        let p = partition_for(&[1.0, 1.0, 1.0, 2.0], |_, _| 2.0);
        let classes = p.classes();
        let covered: usize = classes.values().map(|v| v.len()).sum();
        assert_eq!(covered, 4);
        assert_eq!(p.universe().len(), 4);
    }

    #[test]
    #[should_panic(expected = "missing singleton")]
    fn missing_singleton_measurement_panics() {
        let ids = vec![InstId(0)];
        CongruencePartition::compute(&ids, &[], 0.05);
    }
}
