//! The two-objective fitness metric of paper §4.4 and the batched,
//! allocation-free evaluation engine behind it.
//!
//! PMEvo minimizes the average relative prediction error `D_avg` and the
//! µop volume `V` simultaneously. The multi-objective problem is
//! scalarized a priori: each generation, both objectives are affinely
//! normalized to `[0, 1000]` over the current selection pool and summed.
//!
//! Evaluation follows a compile-then-execute split (the "aggressive
//! performance optimizations" of paper §4.5): [`FitnessEngine`] compiles
//! the measured experiments once into the dense flat form of
//! [`CompiledExperiments`], spawns its worker threads once, and reuses
//! per-worker [`ThroughputSolver`] scratch across every generation of an
//! evolutionary run. [`average_relative_error`] remains as the naive
//! reference implementation; the engine returns bit-identical values
//! (enforced by the property tests in `tests/proptest_fitness.rs`).
//!
//! Batch results are returned in submission order and are a pure
//! function of the inputs, independent of worker count and scheduling —
//! which is what lets the island model ([`crate::islands`]) concatenate
//! every island's children into one merged batch per generation: the
//! engine is the shared pool, and the per-island results are recovered
//! by slicing the batch, bit-identically for any worker count.

use pmevo_core::{
    CompiledExperiments, InstId, MeasuredExperiment, ThreeLevelMapping, ThroughputSolver,
};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// The raw objective pair of one candidate mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Average relative prediction error `D_avg(m)`.
    pub error: f64,
    /// µop volume `V(m) = Σ n · |u|`.
    pub volume: u64,
}

impl Objectives {
    /// Lexicographic comparison used by the hill climber: smaller error
    /// wins; ties (within `tol`) fall back to smaller volume.
    pub fn better_than(&self, other: &Objectives, tol: f64) -> bool {
        if self.error < other.error - tol {
            true
        } else if self.error <= other.error + tol {
            self.volume < other.volume
        } else {
            false
        }
    }
}

/// Computes `D_avg(m)`: the mean of `|t*_m(e) − t| / t` over all measured
/// experiments (paper §4.4).
///
/// This is the **reference implementation**: it re-derives every
/// prediction from scratch through [`ThreeLevelMapping::throughput`].
/// The evolutionary loop evaluates through [`FitnessEngine`], which is
/// bit-identical but allocation-free and batched.
///
/// # Panics
///
/// Panics if `experiments` is empty, contains non-positive measurements,
/// or references instructions outside the mapping.
pub fn average_relative_error(
    mapping: &ThreeLevelMapping,
    experiments: &[MeasuredExperiment],
) -> f64 {
    assert!(!experiments.is_empty(), "no experiments to evaluate");
    let sum: f64 = experiments
        .iter()
        .map(|me| {
            debug_assert!(me.throughput > 0.0, "non-positive measured throughput");
            let predicted = mapping.throughput(&me.experiment);
            (predicted - me.throughput).abs() / me.throughput
        })
        .sum();
    sum / experiments.len() as f64
}

/// A unit of work for the persistent worker pool: evaluate
/// `mappings[start..end]` and report the objectives back tagged with
/// `start`, so the batch can be assembled deterministically regardless of
/// worker scheduling.
struct Job {
    mappings: Arc<Vec<ThreeLevelMapping>>,
    start: usize,
    end: usize,
}

/// One chunk's outcome: the evaluated objectives, or the payload of a
/// panic caught in the worker — re-raised on the calling thread so a
/// failed evaluation surfaces exactly like the old scoped-thread
/// `join().expect()` did instead of deadlocking the batch.
type ChunkResult = (usize, std::thread::Result<Vec<Objectives>>);

/// The persistent half of the engine: worker threads, the shared job
/// queue they pull from, and the channel results come back on.
struct Pool {
    job_tx: Sender<Job>,
    result_rx: Receiver<ChunkResult>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    fn spawn(num_threads: usize, compiled: &Arc<CompiledExperiments>) -> Pool {
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel();
        let handles = (0..num_threads)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                let compiled = Arc::clone(compiled);
                std::thread::spawn(move || {
                    // Each worker owns its solver for the whole engine
                    // lifetime — scratch buffers warm up once and are
                    // reused across all batches of all generations.
                    let mut solver = ThroughputSolver::new();
                    loop {
                        let job = job_rx.lock().expect("job queue poisoned").recv();
                        let Ok(job) = job else { break };
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut out = Vec::with_capacity(job.end - job.start);
                            for m in &job.mappings[job.start..job.end] {
                                out.push(Objectives {
                                    error: solver.average_error(&compiled, m),
                                    volume: m.volume(),
                                });
                            }
                            out
                        }));
                        let failed = result.is_err();
                        let start = job.start;
                        // Release the batch's Arc before signalling
                        // completion, so the caller can reclaim unique
                        // ownership once all results are in.
                        drop(job);
                        if result_tx.send((start, result)).is_err() || failed {
                            // A caught panic is re-raised by the caller;
                            // this worker retires rather than reuse
                            // possibly half-updated solver scratch.
                            break;
                        }
                    }
                })
            })
            .collect();
        Pool {
            job_tx,
            result_rx,
            handles,
        }
    }
}

/// Evaluates the objectives of candidate mappings against a compiled
/// experiment set, with persistent worker threads and reusable solver
/// state.
///
/// Create one engine per inference run: construction compiles the
/// experiments and (for `num_threads > 1`) spawns the worker pool; both
/// then live across every generation and the final local search. Batch
/// results are independent of the thread count and of worker scheduling.
///
/// The engine also drives **delta re-evaluation** for the hill climber:
/// [`build_cache`](Self::build_cache) records per-experiment errors of a
/// mapping, and [`try_update`](Self::try_update) re-evaluates only the
/// experiments containing a mutated instruction (via the inverse index of
/// [`CompiledExperiments`]), returning objectives bit-identical to a full
/// evaluation of the mutated mapping.
#[derive(Debug)]
pub struct FitnessEngine {
    compiled: Arc<CompiledExperiments>,
    /// Calling-thread solver for single and delta evaluations.
    solver: ThroughputSolver,
    num_threads: usize,
    pool: Option<Pool>,
    /// Staged `(experiment, error)` updates of the last
    /// [`try_update`](Self::try_update), applied by
    /// [`commit_update`](Self::commit_update).
    pending: Vec<(u32, f64)>,
    /// State of the calling-thread solver's loaded-mapping tables for the
    /// delta path: `Synced { dirty }` after [`build_cache`] means the
    /// tables match the hill climber's mapping except possibly at the
    /// instruction(s) in `dirty` (the previous trial's mutation);
    /// `Unsynced` after a full evaluation means [`try_update`] must
    /// reload before patching.
    ///
    /// [`build_cache`]: Self::build_cache
    /// [`try_update`]: Self::try_update
    delta_sync: DeltaSync,
    /// Prediction scratch of the batched cache/delta paths.
    batch_preds: Vec<f64>,
}

/// See [`FitnessEngine::delta_sync`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum DeltaSync {
    Unsynced,
    Synced { dirty: Option<InstId> },
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl FitnessEngine {
    /// Compiles the experiment set and (for `num_threads > 1`) spawns the
    /// persistent worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `experiments` is empty, contains non-positive
    /// measurements, or `num_threads` is zero.
    pub fn new(experiments: &[MeasuredExperiment], num_threads: usize) -> Self {
        assert!(!experiments.is_empty(), "no experiments to evaluate");
        assert!(num_threads > 0, "need at least one thread");
        let compiled = Arc::new(CompiledExperiments::compile(experiments));
        let pool = (num_threads > 1).then(|| Pool::spawn(num_threads, &compiled));
        FitnessEngine {
            compiled,
            solver: ThroughputSolver::new(),
            num_threads,
            pool,
            pending: Vec::new(),
            delta_sync: DeltaSync::Unsynced,
            batch_preds: Vec::new(),
        }
    }

    /// The compiled experiment set evaluated against.
    pub fn compiled(&self) -> &CompiledExperiments {
        &self.compiled
    }

    /// Number of worker threads used for batch evaluation.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Evaluates one mapping on the calling thread (allocation-free after
    /// warm-up).
    pub fn evaluate(&mut self, mapping: &ThreeLevelMapping) -> Objectives {
        // A full evaluation reloads the solver tables wholesale, so any
        // delta baseline previously established is gone.
        self.delta_sync = DeltaSync::Unsynced;
        Objectives {
            error: self.solver.average_error(&self.compiled, mapping),
            volume: mapping.volume(),
        }
    }

    /// Evaluates a batch of mappings across the worker pool.
    ///
    /// The batch is shared with the workers by reference counting — one
    /// `Arc` clone per chunk, never a per-mapping or per-evaluation copy.
    /// Results are in batch order and identical for every thread count.
    pub fn evaluate_batch(&mut self, mappings: &Arc<Vec<ThreeLevelMapping>>) -> Vec<Objectives> {
        let n = mappings.len();
        if n == 0 {
            return Vec::new();
        }
        if self.pool.is_none() || n == 1 {
            let mut out = Vec::with_capacity(n);
            for m in mappings.iter() {
                out.push(self.evaluate(m));
            }
            return out;
        }
        let threads = self.num_threads.min(n);
        let chunk = n.div_ceil(threads);
        let pool = self.pool.as_ref().expect("pool checked above");
        let mut jobs = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk).min(n);
            pool.job_tx
                .send(Job {
                    mappings: Arc::clone(mappings),
                    start,
                    end,
                })
                .expect("fitness worker pool is alive");
            jobs += 1;
            start = end;
        }
        let mut out = vec![
            Objectives {
                error: 0.0,
                volume: 0
            };
            n
        ];
        let mut panic_payload = None;
        for _ in 0..jobs {
            let (offset, result) = pool
                .result_rx
                .recv()
                .expect("fitness worker pool is alive");
            match result {
                Ok(objectives) => {
                    out[offset..offset + objectives.len()].copy_from_slice(&objectives);
                }
                Err(payload) => {
                    panic_payload = Some(payload);
                    break;
                }
            }
        }
        if let Some(payload) = panic_payload {
            // Retire the pool before re-raising: the batch's remaining
            // results are abandoned in flight, so a caller that catches
            // this panic and evaluates again must not see them — without
            // a pool, later batches take the (correct) sequential path.
            self.shutdown_pool();
            std::panic::resume_unwind(payload);
        }
        out
    }

    /// [`evaluate_batch`](Self::evaluate_batch) for an owned batch: wraps
    /// it in an `Arc` for the workers and hands ownership back together
    /// with the objectives.
    pub fn evaluate_batch_owned(
        &mut self,
        mappings: Vec<ThreeLevelMapping>,
    ) -> (Vec<ThreeLevelMapping>, Vec<Objectives>) {
        let mut arc = Arc::new(mappings);
        let objectives = self.evaluate_batch(&arc);
        // All results are in, so the workers have dropped their clones
        // (each drops before sending); spin-yield for the brief window in
        // which a worker is still between `drop` and thread-local cleanup.
        let mappings = loop {
            match Arc::try_unwrap(arc) {
                Ok(v) => break v,
                Err(still_shared) => {
                    arc = still_shared;
                    std::thread::yield_now();
                }
            }
        };
        (mappings, objectives)
    }

    /// Records the per-experiment errors of `mapping`, the starting point
    /// for delta re-evaluation.
    pub fn build_cache(&mut self, mapping: &ThreeLevelMapping) -> ErrorCache {
        self.solver.load_mapping(&self.compiled, mapping);
        self.delta_sync = DeltaSync::Synced { dirty: None };
        let n = self.compiled.num_experiments();
        let mut preds = std::mem::take(&mut self.batch_preds);
        self.solver.predict_all(&self.compiled, &mut preds);
        let mut per_exp = Vec::with_capacity(n);
        for (e, &p) in preds.iter().enumerate() {
            let t = self.compiled.measured(e);
            per_exp.push((p - t).abs() / t);
        }
        self.batch_preds = preds;
        let mean = mean_in_order(&per_exp);
        ErrorCache { per_exp, mean }
    }

    /// Evaluates `mapping`, which must differ from the cached mapping
    /// only in the decomposition of `changed`, by re-predicting just the
    /// experiments containing `changed`.
    ///
    /// Returns objectives **bit-identical** to a full
    /// [`evaluate`](Self::evaluate) of `mapping`. The new per-experiment
    /// errors are staged internally; call
    /// [`commit_update`](Self::commit_update) to fold them into the cache
    /// when keeping the mutation, or simply call `try_update` again (for
    /// a different mutation of the same cached mapping) to discard them.
    pub fn try_update(
        &mut self,
        mapping: &ThreeLevelMapping,
        cache: &ErrorCache,
        changed: InstId,
    ) -> Objectives {
        debug_assert_eq!(
            cache.per_exp.len(),
            self.compiled.num_experiments(),
            "ErrorCache does not belong to this engine's experiment set"
        );
        self.pending.clear();
        let affected = self.compiled.experiments_containing(changed);
        if !affected.is_empty() {
            // Bring the solver tables in line with `mapping` as cheaply
            // as possible. `mapping` is always the source of truth, so
            // after a full load, or after patching both the previous
            // trial's instruction (now reverted or committed in
            // `mapping`) and `changed`, the tables equal a full reload.
            match self.delta_sync {
                DeltaSync::Unsynced => self.solver.load_mapping(&self.compiled, mapping),
                DeltaSync::Synced { dirty } => {
                    if let Some(prev) = dirty.filter(|&prev| prev != changed) {
                        self.solver.patch_instruction(&self.compiled, mapping, prev);
                    }
                    self.solver.patch_instruction(&self.compiled, mapping, changed);
                }
            }
            self.delta_sync = DeltaSync::Synced {
                dirty: Some(changed),
            };
            let mut preds = std::mem::take(&mut self.batch_preds);
            self.solver.predict_batch(&self.compiled, affected, &mut preds);
            for (&e, &p) in affected.iter().zip(&preds) {
                let t = self.compiled.measured(e as usize);
                self.pending.push((e, (p - t).abs() / t));
            }
            self.batch_preds = preds;
        }
        // Re-sum over *all* experiments in order, substituting the staged
        // values: same additions in the same order as a full evaluation,
        // so the result is exact, with none of the drift an incremental
        // `sum - old + new` accumulator would build up.
        let n = cache.per_exp.len();
        let mut sum = 0.0f64;
        let mut p = 0usize;
        for (e, &cached) in cache.per_exp.iter().enumerate() {
            let v = if p < self.pending.len() && self.pending[p].0 as usize == e {
                let v = self.pending[p].1;
                p += 1;
                v
            } else {
                cached
            };
            sum += v;
        }
        Objectives {
            error: sum / n as f64,
            volume: mapping.volume(),
        }
    }

    /// Folds the errors staged by the last
    /// [`try_update`](Self::try_update) into `cache`, making the mutated
    /// mapping the new delta baseline.
    pub fn commit_update(&mut self, cache: &mut ErrorCache) {
        debug_assert_eq!(
            cache.per_exp.len(),
            self.compiled.num_experiments(),
            "ErrorCache does not belong to this engine's experiment set"
        );
        for &(e, v) in &self.pending {
            cache.per_exp[e as usize] = v;
        }
        cache.mean = mean_in_order(&cache.per_exp);
        self.pending.clear();
    }
}

impl FitnessEngine {
    /// Closes the job channel (every worker's `recv` then fails, which is
    /// their shutdown signal) and joins the workers.
    fn shutdown_pool(&mut self) {
        if let Some(pool) = self.pool.take() {
            drop(pool.job_tx);
            drop(pool.result_rx);
            for handle in pool.handles {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for FitnessEngine {
    fn drop(&mut self) {
        self.shutdown_pool();
    }
}

/// Per-experiment relative errors of one mapping, the state delta
/// re-evaluation works against (see [`FitnessEngine::build_cache`]).
#[derive(Debug, Clone)]
pub struct ErrorCache {
    per_exp: Vec<f64>,
    mean: f64,
}

impl ErrorCache {
    /// The mean relative error of the cached mapping, equal to what
    /// [`FitnessEngine::evaluate`] would report for it.
    pub fn mean_error(&self) -> f64 {
        self.mean
    }

    /// The cached relative error per experiment.
    pub fn per_experiment(&self) -> &[f64] {
        &self.per_exp
    }
}

/// Sequential in-order mean — the exact arithmetic of
/// [`average_relative_error`]'s `sum / len`.
fn mean_in_order(values: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    for &v in values {
        sum += v;
    }
    sum / values.len() as f64
}

/// Scalarizes a pool of objectives: both metrics are affinely mapped to
/// `[0, 1000]` over the pool's extremes and summed (paper §4.4's
/// `F(m) = Λ1(D_avg(m)) + Λ2(V(m))`). Degenerate ranges map to 0.
pub fn scalarize(pool: &[Objectives]) -> Vec<f64> {
    if pool.is_empty() {
        return Vec::new();
    }
    let (mut lo_e, mut hi_e) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut lo_v, mut hi_v) = (u64::MAX, u64::MIN);
    for o in pool {
        lo_e = lo_e.min(o.error);
        hi_e = hi_e.max(o.error);
        lo_v = lo_v.min(o.volume);
        hi_v = hi_v.max(o.volume);
    }
    let span_e = hi_e - lo_e;
    let span_v = (hi_v - lo_v) as f64;
    pool.iter()
        .map(|o| {
            let fe = if span_e > 0.0 {
                1000.0 * (o.error - lo_e) / span_e
            } else {
                0.0
            };
            let fv = if span_v > 0.0 {
                1000.0 * (o.volume - lo_v) as f64 / span_v
            } else {
                0.0
            };
            fe + fv
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{Experiment, InstId, PortSet, UopEntry};

    fn mapping(entries: Vec<Vec<UopEntry>>) -> ThreeLevelMapping {
        ThreeLevelMapping::new(4, entries)
    }

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, PortSet::from_ports(ports))
    }

    #[test]
    fn perfect_mapping_has_zero_error() {
        let m = mapping(vec![vec![uop(1, &[0])]]);
        let exps = vec![MeasuredExperiment::new(
            Experiment::from_counts(&[(InstId(0), 3)]),
            3.0,
        )];
        assert_eq!(average_relative_error(&m, &exps), 0.0);
        assert_eq!(FitnessEngine::new(&exps, 1).evaluate(&m).error, 0.0);
    }

    #[test]
    fn error_is_relative_to_measurement() {
        let m = mapping(vec![vec![uop(1, &[0])]]); // predicts 1.0
        let exps = vec![MeasuredExperiment::new(
            Experiment::singleton(InstId(0)),
            2.0, // measured 2.0 => |1-2|/2 = 0.5
        )];
        assert!((average_relative_error(&m, &exps) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_sequential_and_is_parallel_safe() {
        let exps: Vec<MeasuredExperiment> = (1..5)
            .map(|n| {
                MeasuredExperiment::new(Experiment::from_counts(&[(InstId(0), n)]), f64::from(n))
            })
            .collect();
        let mut engine = FitnessEngine::new(&exps, 4);
        let ms: Vec<ThreeLevelMapping> = (1..=8)
            .map(|c| mapping(vec![vec![uop(c, &[0])]]))
            .collect();
        let (ms, batch) = engine.evaluate_batch_owned(ms);
        for (m, o) in ms.iter().zip(&batch) {
            assert_eq!(engine.evaluate(m).error, o.error);
            assert_eq!(engine.evaluate(m).volume, o.volume);
        }
        // The engine reference path agrees with the naive reference.
        for (m, o) in ms.iter().zip(&batch) {
            assert_eq!(average_relative_error(m, &exps), o.error);
        }
    }

    #[test]
    fn batch_results_are_thread_count_independent() {
        let exps: Vec<MeasuredExperiment> = (1..6)
            .map(|n| {
                MeasuredExperiment::new(Experiment::from_counts(&[(InstId(0), n)]), f64::from(n))
            })
            .collect();
        let ms = Arc::new(
            (1..=13)
                .map(|c| mapping(vec![vec![uop(c, &[0, 1])]]))
                .collect::<Vec<_>>(),
        );
        let reference = FitnessEngine::new(&exps, 1).evaluate_batch(&ms);
        for threads in [2, 3, 5, 8] {
            let got = FitnessEngine::new(&exps, threads).evaluate_batch(&ms);
            assert_eq!(got, reference, "thread count {threads} changed results");
        }
    }

    #[test]
    fn delta_update_matches_full_evaluation() {
        let exps = vec![
            MeasuredExperiment::new(Experiment::singleton(InstId(0)), 1.0),
            MeasuredExperiment::new(Experiment::singleton(InstId(1)), 2.0),
            MeasuredExperiment::new(Experiment::pair(InstId(0), 1, InstId(1), 1), 2.0),
        ];
        let mut engine = FitnessEngine::new(&exps, 1);
        let base = mapping(vec![vec![uop(1, &[0])], vec![uop(2, &[1])]]);
        let mut cache = engine.build_cache(&base);
        assert_eq!(cache.mean_error(), engine.evaluate(&base).error);

        // Mutate instruction 1 only; experiments 1 and 2 are affected.
        let mut mutated = base.clone();
        mutated.set_decomposition(InstId(1), vec![uop(3, &[1])]);
        let delta = engine.try_update(&mutated, &cache, InstId(1));
        let full = engine.evaluate(&mutated);
        assert_eq!(delta, full);

        // Committing makes the mutation the new baseline.
        engine.commit_update(&mut cache);
        assert_eq!(cache.mean_error(), full.error);
        assert_eq!(cache.per_experiment().len(), 3);

        // And a follow-up delta from the committed state stays exact.
        let mut back = mutated.clone();
        back.set_decomposition(InstId(1), vec![uop(2, &[1])]);
        let delta2 = engine.try_update(&back, &cache, InstId(1));
        assert_eq!(delta2, engine.evaluate(&back));
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        let exps = vec![
            MeasuredExperiment::new(Experiment::singleton(InstId(0)), 1.0),
            MeasuredExperiment::new(Experiment::singleton(InstId(1)), 1.0),
        ];
        let mut engine = FitnessEngine::new(&exps, 2);
        // A mapping covering only instruction 0: evaluating the {i1}
        // experiment panics inside a worker thread. The batch call must
        // re-raise that panic, not deadlock waiting for a result.
        let bad = ThreeLevelMapping::new(1, vec![vec![uop(1, &[0])]]);
        let batch = Arc::new(vec![bad.clone(), bad]);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.evaluate_batch(&batch)
        }));
        assert!(outcome.is_err(), "worker panic was swallowed");

        // After a caught panic the pool is retired; the engine stays
        // usable and must not serve the dead batch's leftover results.
        let good = mapping(vec![vec![uop(2, &[0])], vec![uop(1, &[0, 1])]]);
        let fresh = Arc::new(vec![good.clone(), good.clone(), good.clone()]);
        let got = engine.evaluate_batch(&fresh);
        assert_eq!(got.len(), 3);
        for o in got {
            assert_eq!(o, engine.evaluate(&good));
        }
    }

    #[test]
    fn scalarization_normalizes_to_0_1000() {
        let pool = vec![
            Objectives { error: 0.0, volume: 10 },
            Objectives { error: 1.0, volume: 0 },
        ];
        let f = scalarize(&pool);
        // First: best error (0) + worst volume (1000); second: converse.
        assert_eq!(f, vec![1000.0, 1000.0]);
    }

    #[test]
    fn scalarization_handles_degenerate_pools() {
        let pool = vec![
            Objectives { error: 0.5, volume: 5 },
            Objectives { error: 0.5, volume: 5 },
        ];
        assert_eq!(scalarize(&pool), vec![0.0, 0.0]);
        assert!(scalarize(&[]).is_empty());
    }

    #[test]
    fn better_than_is_lexicographic() {
        let a = Objectives { error: 0.1, volume: 100 };
        let b = Objectives { error: 0.2, volume: 1 };
        assert!(a.better_than(&b, 1e-9));
        let c = Objectives { error: 0.1, volume: 99 };
        assert!(c.better_than(&a, 1e-9));
        assert!(!a.better_than(&c, 1e-9));
    }
}
