//! The two-objective fitness metric of paper §4.4.
//!
//! PMEvo minimizes the average relative prediction error `D_avg` and the
//! µop volume `V` simultaneously. The multi-objective problem is
//! scalarized a priori: each generation, both objectives are affinely
//! normalized to `[0, 1000]` over the current selection pool and summed.

use pmevo_core::{MeasuredExperiment, ThreeLevelMapping};

/// The raw objective pair of one candidate mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Average relative prediction error `D_avg(m)`.
    pub error: f64,
    /// µop volume `V(m) = Σ n · |u|`.
    pub volume: u64,
}

impl Objectives {
    /// Lexicographic comparison used by the hill climber: smaller error
    /// wins; ties (within `tol`) fall back to smaller volume.
    pub fn better_than(&self, other: &Objectives, tol: f64) -> bool {
        if self.error < other.error - tol {
            true
        } else if self.error <= other.error + tol {
            self.volume < other.volume
        } else {
            false
        }
    }
}

/// Computes `D_avg(m)`: the mean of `|t*_m(e) − t| / t` over all measured
/// experiments (paper §4.4).
///
/// # Panics
///
/// Panics if `experiments` is empty, contains non-positive measurements,
/// or references instructions outside the mapping.
pub fn average_relative_error(
    mapping: &ThreeLevelMapping,
    experiments: &[MeasuredExperiment],
) -> f64 {
    assert!(!experiments.is_empty(), "no experiments to evaluate");
    let sum: f64 = experiments
        .iter()
        .map(|me| {
            debug_assert!(me.throughput > 0.0, "non-positive measured throughput");
            let predicted = mapping.throughput(&me.experiment);
            (predicted - me.throughput).abs() / me.throughput
        })
        .sum();
    sum / experiments.len() as f64
}

/// Evaluates the objectives of candidate mappings, in parallel across a
/// configurable number of threads.
#[derive(Debug)]
pub struct FitnessEvaluator<'a> {
    experiments: &'a [MeasuredExperiment],
    num_threads: usize,
}

impl<'a> FitnessEvaluator<'a> {
    /// Creates an evaluator over the measured experiment set.
    ///
    /// # Panics
    ///
    /// Panics if `experiments` is empty or `num_threads` is zero.
    pub fn new(experiments: &'a [MeasuredExperiment], num_threads: usize) -> Self {
        assert!(!experiments.is_empty(), "no experiments to evaluate");
        assert!(num_threads > 0, "need at least one thread");
        FitnessEvaluator {
            experiments,
            num_threads,
        }
    }

    /// The experiment set evaluated against.
    pub fn experiments(&self) -> &[MeasuredExperiment] {
        self.experiments
    }

    /// Evaluates one mapping.
    pub fn evaluate(&self, mapping: &ThreeLevelMapping) -> Objectives {
        Objectives {
            error: average_relative_error(mapping, self.experiments),
            volume: mapping.volume(),
        }
    }

    /// Evaluates a batch of mappings, splitting the batch across threads.
    pub fn evaluate_batch(&self, mappings: &[ThreeLevelMapping]) -> Vec<Objectives> {
        if mappings.is_empty() {
            return Vec::new();
        }
        let threads = self.num_threads.min(mappings.len());
        if threads == 1 {
            return mappings.iter().map(|m| self.evaluate(m)).collect();
        }
        let chunk = mappings.len().div_ceil(threads);
        let mut out: Vec<Objectives> = Vec::with_capacity(mappings.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = mappings
                .chunks(chunk)
                .map(|ms| scope.spawn(move || ms.iter().map(|m| self.evaluate(m)).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                out.extend(h.join().expect("fitness worker panicked"));
            }
        });
        out
    }
}

/// Scalarizes a pool of objectives: both metrics are affinely mapped to
/// `[0, 1000]` over the pool's extremes and summed (paper §4.4's
/// `F(m) = Λ1(D_avg(m)) + Λ2(V(m))`). Degenerate ranges map to 0.
pub fn scalarize(pool: &[Objectives]) -> Vec<f64> {
    if pool.is_empty() {
        return Vec::new();
    }
    let (mut lo_e, mut hi_e) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut lo_v, mut hi_v) = (u64::MAX, u64::MIN);
    for o in pool {
        lo_e = lo_e.min(o.error);
        hi_e = hi_e.max(o.error);
        lo_v = lo_v.min(o.volume);
        hi_v = hi_v.max(o.volume);
    }
    let span_e = hi_e - lo_e;
    let span_v = (hi_v - lo_v) as f64;
    pool.iter()
        .map(|o| {
            let fe = if span_e > 0.0 {
                1000.0 * (o.error - lo_e) / span_e
            } else {
                0.0
            };
            let fv = if span_v > 0.0 {
                1000.0 * (o.volume - lo_v) as f64 / span_v
            } else {
                0.0
            };
            fe + fv
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmevo_core::{Experiment, InstId, PortSet, UopEntry};

    fn mapping(entries: Vec<Vec<UopEntry>>) -> ThreeLevelMapping {
        ThreeLevelMapping::new(4, entries)
    }

    fn uop(count: u32, ports: &[usize]) -> UopEntry {
        UopEntry::new(count, PortSet::from_ports(ports))
    }

    #[test]
    fn perfect_mapping_has_zero_error() {
        let m = mapping(vec![vec![uop(1, &[0])]]);
        let exps = vec![MeasuredExperiment::new(
            Experiment::from_counts(&[(InstId(0), 3)]),
            3.0,
        )];
        assert_eq!(average_relative_error(&m, &exps), 0.0);
    }

    #[test]
    fn error_is_relative_to_measurement() {
        let m = mapping(vec![vec![uop(1, &[0])]]); // predicts 1.0
        let exps = vec![MeasuredExperiment::new(
            Experiment::singleton(InstId(0)),
            2.0, // measured 2.0 => |1-2|/2 = 0.5
        )];
        assert!((average_relative_error(&m, &exps) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_sequential_and_is_parallel_safe() {
        let exps: Vec<MeasuredExperiment> = (1..5)
            .map(|n| {
                MeasuredExperiment::new(Experiment::from_counts(&[(InstId(0), n)]), f64::from(n))
            })
            .collect();
        let ev = FitnessEvaluator::new(&exps, 4);
        let ms: Vec<ThreeLevelMapping> = (1..=8)
            .map(|c| mapping(vec![vec![uop(c, &[0])]]))
            .collect();
        let batch = ev.evaluate_batch(&ms);
        for (m, o) in ms.iter().zip(&batch) {
            assert_eq!(ev.evaluate(m).error, o.error);
            assert_eq!(ev.evaluate(m).volume, o.volume);
        }
    }

    #[test]
    fn scalarization_normalizes_to_0_1000() {
        let pool = vec![
            Objectives { error: 0.0, volume: 10 },
            Objectives { error: 1.0, volume: 0 },
        ];
        let f = scalarize(&pool);
        // First: best error (0) + worst volume (1000); second: converse.
        assert_eq!(f, vec![1000.0, 1000.0]);
    }

    #[test]
    fn scalarization_handles_degenerate_pools() {
        let pool = vec![
            Objectives { error: 0.5, volume: 5 },
            Objectives { error: 0.5, volume: 5 },
        ];
        assert_eq!(scalarize(&pool), vec![0.0, 0.0]);
        assert!(scalarize(&[]).is_empty());
    }

    #[test]
    fn better_than_is_lexicographic() {
        let a = Objectives { error: 0.1, volume: 100 };
        let b = Objectives { error: 0.2, volume: 1 };
        assert!(a.better_than(&b, 1e-9));
        let c = Objectives { error: 0.1, volume: 99 };
        assert!(c.better_than(&a, 1e-9));
        assert!(!a.better_than(&c, 1e-9));
    }
}
