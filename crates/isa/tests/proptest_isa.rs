//! Property tests for register allocation and loop generation: the
//! §4.2 guarantees must hold for arbitrary instruction mixes, not just
//! the hand-written unit-test cases.

use proptest::prelude::*;
use pmevo_core::{Experiment, InstId};
use pmevo_isa::{synth, LoopBuilder, RegClass};

fn experiment_strategy(num_insts: usize) -> impl Strategy<Value = Experiment> {
    proptest::collection::vec((0..num_insts as u32, 1u32..4), 1..5).prop_map(|counts| {
        counts
            .into_iter()
            .map(|(i, n)| (InstId(i), n))
            .collect::<Experiment>()
    })
}

proptest! {
    // Case budget: capped so the whole workspace suite stays well under
    // a minute; override downward with PROPTEST_CASES=<n> (see vendored
    // proptest). Cases are drawn from a per-test deterministic seed.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No instruction reads a register written by any of the previous
    /// three instructions — the dependence-distance guarantee that makes
    /// experiments port-bound instead of latency-bound.
    #[test]
    fn kernels_have_no_short_range_raw_hazards(
        e in experiment_strategy(310),
        body_len in 10usize..80,
    ) {
        let isa = synth::synthetic_x86();
        let kernel = LoopBuilder::new(&isa).body_len(body_len).build(&e);
        let insts = kernel.insts();
        for idx in 1..insts.len() {
            for back in 1..=3usize.min(idx) {
                let producer = &insts[idx - back];
                for r in &insts[idx].reads {
                    prop_assert!(
                        !producer.writes.contains(r),
                        "instruction {idx} reads {r} written {back} instructions earlier"
                    );
                }
            }
        }
    }

    /// The unrolled body is an exact multiple of the experiment and
    /// preserves multiset ratios.
    #[test]
    fn kernels_preserve_the_multiset(e in experiment_strategy(310)) {
        let isa = synth::synthetic_x86();
        let kernel = LoopBuilder::new(&isa).build(&e);
        let u = kernel.instances_per_iter();
        prop_assert!(u >= 1);
        prop_assert_eq!(kernel.len() as u32, u * e.total_insts());
        for (inst, n) in e.iter() {
            let count = kernel.insts().iter().filter(|ki| ki.inst == inst).count();
            prop_assert_eq!(count as u32, n * u);
        }
        // Body covers the requested target length.
        prop_assert!(kernel.len() >= 50 || e.total_insts() > 50);
    }

    /// Memory base pointers are read-only and offsets never collide
    /// between adjacent memory instructions.
    #[test]
    fn memory_discipline(e in experiment_strategy(310)) {
        let isa = synth::synthetic_x86();
        let kernel = LoopBuilder::new(&isa).build(&e);
        let mut last_mem: Option<pmevo_isa::MemRef> = None;
        for ki in kernel.insts() {
            if let Some(m) = ki.mem {
                prop_assert_eq!(m.base.class, RegClass::Gpr);
                prop_assert!(!ki.writes.contains(&m.base), "base pointer written");
                if let Some(prev) = last_mem {
                    prop_assert_ne!(prev.offset, m.offset, "adjacent memory ops alias");
                }
                last_mem = Some(m);
            }
        }
    }

    /// Register allocation is deterministic: building the same kernel
    /// twice yields identical instances.
    #[test]
    fn kernel_construction_is_deterministic(e in experiment_strategy(390)) {
        let isa = synth::synthetic_arm();
        let a = LoopBuilder::new(&isa).build(&e);
        let b = LoopBuilder::new(&isa).build(&e);
        prop_assert_eq!(a, b);
    }
}
