//! Instruction forms and instruction sets.

use crate::operand::OperandKind;
use pmevo_core::InstId;
use std::fmt;

/// Semantic execution class of an instruction form.
///
/// The machine model (crate `pmevo-machine`) assigns ground-truth µop
/// decompositions and latencies per class (and width); PMEvo itself never
/// sees this information — it only observes throughputs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub enum OpClass {
    /// Simple integer arithmetic/logic (add, sub, and, or, xor, cmp, ...).
    IntAlu,
    /// Integer shifts and rotates.
    Shift,
    /// Address-generation-like arithmetic (x86 `lea`).
    Lea,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long-latency, blocking).
    IntDiv,
    /// Bit-test/bit-manipulation family (x86 `BTx`, popcnt, ...).
    BitTest,
    /// Conditional move / select.
    CondMove,
    /// Vector integer/float arithmetic.
    VecAlu,
    /// Vector multiply / FMA-like.
    VecMul,
    /// Vector divide / sqrt (long-latency, blocking).
    VecDiv,
    /// Vector permute/shuffle/pack.
    Shuffle,
    /// Scalar↔vector or int↔float conversions.
    Convert,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
}

impl OpClass {
    /// All classes, for iteration in machine model tables.
    pub const ALL: [OpClass; 14] = [
        OpClass::IntAlu,
        OpClass::Shift,
        OpClass::Lea,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::BitTest,
        OpClass::CondMove,
        OpClass::VecAlu,
        OpClass::VecMul,
        OpClass::VecDiv,
        OpClass::Shuffle,
        OpClass::Convert,
        OpClass::Load,
        OpClass::Store,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::Shift => "shift",
            OpClass::Lea => "lea",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::BitTest => "bit-test",
            OpClass::CondMove => "cond-move",
            OpClass::VecAlu => "vec-alu",
            OpClass::VecMul => "vec-mul",
            OpClass::VecDiv => "vec-div",
            OpClass::Shuffle => "shuffle",
            OpClass::Convert => "convert",
            OpClass::Load => "load",
            OpClass::Store => "store",
        };
        write!(f, "{s}")
    }
}

/// An instruction form: a mnemonic with typed operand placeholders
/// (paper §4.1).
///
/// `quirk` is an opaque micro-architectural variation index: forms of the
/// same class that real hardware implements with slightly different µop
/// decompositions (e.g. `add` vs `adc`, or the `BTx` family) carry
/// different quirk values, which the machine model translates into
/// distinct ground-truth decompositions. PMEvo never reads it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InstructionForm {
    /// Mnemonic plus operand-type suffix, e.g. `add_r64_r64`.
    pub name: String,
    /// Semantic execution class.
    pub class: OpClass,
    /// Typed operand placeholders, in operand order.
    pub operands: Vec<OperandKind>,
    /// Micro-architectural variation index within the class.
    pub quirk: u8,
}

impl InstructionForm {
    /// Creates a form.
    pub fn new(
        name: impl Into<String>,
        class: OpClass,
        operands: Vec<OperandKind>,
        quirk: u8,
    ) -> Self {
        InstructionForm {
            name: name.into(),
            class,
            operands,
            quirk,
        }
    }

    /// The widest operand width of the form in bits (64 if it has no
    /// operands, which does not occur in practice).
    pub fn max_width_bits(&self) -> u32 {
        self.operands
            .iter()
            .map(|o| match o {
                OperandKind::Reg { width, .. }
                | OperandKind::Mem { width, .. }
                | OperandKind::Imm { width } => width.bits(),
            })
            .max()
            .unwrap_or(64)
    }

    /// Whether any operand is a memory operand.
    pub fn has_mem_operand(&self) -> bool {
        self.operands
            .iter()
            .any(|o| matches!(o, OperandKind::Mem { .. }))
    }
}

impl fmt::Display for InstructionForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, op) in self.operands.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, ")")
    }
}

/// An ordered collection of instruction forms; the instruction universe of
/// one inference run.
///
/// [`InstId`]s index into this set, tying the abstract core model to the
/// concrete forms.
///
/// # Example
///
/// ```
/// use pmevo_isa::{InstructionForm, InstructionSet, OpClass, OperandKind, RegClass, Width};
/// use pmevo_core::InstId;
///
/// let mut isa = InstructionSet::new("demo");
/// let id = isa.push(InstructionForm::new(
///     "add_r64_r64",
///     OpClass::IntAlu,
///     vec![
///         OperandKind::reg_rw(RegClass::Gpr, Width::W64),
///         OperandKind::reg_read(RegClass::Gpr, Width::W64),
///     ],
///     0,
/// ));
/// assert_eq!(id, InstId(0));
/// assert_eq!(isa.form(id).class, OpClass::IntAlu);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionSet {
    name: String,
    forms: Vec<InstructionForm>,
}

impl InstructionSet {
    /// Creates an empty instruction set with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        InstructionSet {
            name: name.into(),
            forms: Vec::new(),
        }
    }

    /// The display name (e.g. `"synthetic-x86-64"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a form and returns its id.
    pub fn push(&mut self, form: InstructionForm) -> InstId {
        let id = InstId(self.forms.len() as u32);
        self.forms.push(form);
        id
    }

    /// Number of forms.
    pub fn len(&self) -> usize {
        self.forms.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.forms.is_empty()
    }

    /// The form with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn form(&self, id: InstId) -> &InstructionForm {
        &self.forms[id.index()]
    }

    /// All forms, indexed by [`InstId`].
    pub fn forms(&self) -> &[InstructionForm] {
        &self.forms
    }

    /// Iterates over `(id, form)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (InstId, &InstructionForm)> {
        self.forms
            .iter()
            .enumerate()
            .map(|(i, f)| (InstId(i as u32), f))
    }

    /// All instruction ids of the set.
    pub fn ids(&self) -> impl Iterator<Item = InstId> {
        (0..self.forms.len() as u32).map(InstId)
    }

    /// Looks up a form id by name (linear scan; test/diagnostic helper).
    pub fn find(&self, name: &str) -> Option<InstId> {
        self.forms
            .iter()
            .position(|f| f.name == name)
            .map(|i| InstId(i as u32))
    }

    /// Builds a name → id lookup table over every form, for callers that
    /// resolve many names against the same set — e.g. the `pmevo-x86`
    /// ingestion front end mapping normalized mnemonic keys onto forms.
    /// Form names are unique within a set (asserted by the generators'
    /// tests), so the map is total over the set.
    pub fn name_map(&self) -> std::collections::HashMap<&str, InstId> {
        self.iter().map(|(id, f)| (f.name.as_str(), id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::{RegClass, Width};

    fn demo_set() -> InstructionSet {
        let mut isa = InstructionSet::new("demo");
        isa.push(InstructionForm::new(
            "add_r64_r64",
            OpClass::IntAlu,
            vec![
                OperandKind::reg_rw(RegClass::Gpr, Width::W64),
                OperandKind::reg_read(RegClass::Gpr, Width::W64),
            ],
            0,
        ));
        isa.push(InstructionForm::new(
            "ld_r64_m64",
            OpClass::Load,
            vec![
                OperandKind::reg_write(RegClass::Gpr, Width::W64),
                OperandKind::Mem {
                    width: Width::W64,
                    access: crate::Access::Read,
                },
            ],
            0,
        ));
        isa
    }

    #[test]
    fn push_and_lookup() {
        let isa = demo_set();
        assert_eq!(isa.len(), 2);
        assert!(!isa.is_empty());
        assert_eq!(isa.find("ld_r64_m64"), Some(InstId(1)));
        assert_eq!(isa.find("nope"), None);
        let map = isa.name_map();
        assert_eq!(map.len(), 2);
        assert_eq!(map.get("add_r64_r64"), Some(&InstId(0)));
        assert_eq!(map.get("ld_r64_m64"), Some(&InstId(1)));
        assert_eq!(map.get("nope"), None);
        assert_eq!(isa.form(InstId(0)).name, "add_r64_r64");
        assert_eq!(isa.ids().count(), 2);
        assert_eq!(isa.iter().count(), 2);
        assert_eq!(isa.name(), "demo");
    }

    #[test]
    fn form_metadata() {
        let isa = demo_set();
        assert!(!isa.form(InstId(0)).has_mem_operand());
        assert!(isa.form(InstId(1)).has_mem_operand());
        assert_eq!(isa.form(InstId(0)).max_width_bits(), 64);
        assert_eq!(
            isa.form(InstId(0)).to_string(),
            "add_r64_r64(gpr64:rw, gpr64:r)"
        );
    }

    #[test]
    fn op_class_all_covers_display() {
        for c in OpClass::ALL {
            assert!(!c.to_string().is_empty());
        }
        assert_eq!(OpClass::ALL.len(), 14);
    }
}
