//! Instruction-set descriptions for PMEvo experiments.
//!
//! The PMEvo paper (§4.1, §5.1.2) drives its experiments from a set of
//! *instruction forms*: mnemonics with typed operand placeholders, derived
//! from the instructions compilers emit for SPEC CPU 2017. This crate
//! provides
//!
//! * the operand/form vocabulary ([`OperandKind`], [`InstructionForm`],
//!   [`InstructionSet`]),
//! * the dependency-avoiding register allocator and loop builder of paper
//!   §4.2 ([`regalloc`], [`loopgen`]),
//! * and synthetic stand-ins for the paper's x86-64 (310 forms) and
//!   ARMv8-A (390 forms) instruction sets ([`synth`]), since the physical
//!   test machines are replaced by a simulator in this reproduction (see
//!   DESIGN.md, substitution table).
//!
//! Instruction forms are grouped by [`OpClass`]: the semantic execution
//! class (integer ALU, multiply, load, ...) that the machine model uses to
//! assign ground-truth µop decompositions and latencies.

pub mod form;
pub mod loopgen;
pub mod operand;
pub mod regalloc;
pub mod synth;

pub use form::{InstructionForm, InstructionSet, OpClass};
pub use loopgen::{Kernel, KernelInst, LoopBuilder};
pub use operand::{Access, MemRef, OperandKind, Reg, RegClass, Width};
pub use regalloc::RegisterAllocator;
